package eigenpro

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates the corresponding artifact at Small scale via the runners in
// internal/bench; run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured comparison of every
// artifact. cmd/experiments prints the full tables at larger scales.

import (
	"testing"

	"eigenpro/internal/bench"
)

func benchReport(b *testing.B, f func(bench.Scale) (*bench.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := f(bench.Small)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2 (and the schematic Figure 1): time
// to a fixed train MSE vs batch size for SGD, EigenPro 1.0 and
// EigenPro 2.0 on MNIST-like and TIMIT-like workloads.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reps, err := bench.Figure2(bench.Small)
		if err != nil {
			b.Fatal(err)
		}
		if len(reps) != 2 {
			b.Fatalf("want 2 reports, got %d", len(reps))
		}
	}
}

// BenchmarkFigure3a regenerates Figure 3a: per-iteration time vs batch size
// on actual (parallel), ideal, and sequential devices.
func BenchmarkFigure3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := bench.Figure3a(bench.Small); len(r.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkFigure3b regenerates Figure 3b: per-epoch device time vs batch
// size across model sizes n.
func BenchmarkFigure3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := bench.Figure3b(bench.Small); len(r.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkTable1 regenerates Table 1: per-iteration compute/memory of
// improved vs original EigenPro vs SGD (formulas + measured overhead).
func BenchmarkTable1(b *testing.B) { benchReport(b, bench.Table1) }

// BenchmarkTable2 regenerates Table 2: error and resource time of
// EigenPro 2.0 vs EigenPro 1.0 vs FALKON across four dataset stand-ins.
func BenchmarkTable2(b *testing.B) { benchReport(b, bench.Table2) }

// BenchmarkTable3 regenerates Table 3: interactive-training wall time of
// EigenPro 2.0 vs the ThunderSVM-like and LibSVM-like SMO baselines.
func BenchmarkTable3(b *testing.B) { benchReport(b, bench.Table3) }

// BenchmarkTable4 regenerates Table 4: automatically calculated parameters
// (q, adjusted q, m = m_G, η) per dataset.
func BenchmarkTable4(b *testing.B) { benchReport(b, bench.Table4) }

// BenchmarkAcceleration regenerates the §3 acceleration claim: predicted
// a = (β/β_G)·(m_max/m*) vs measured speedup.
func BenchmarkAcceleration(b *testing.B) { benchReport(b, bench.Acceleration) }

// BenchmarkPCA regenerates the §5.5 PCA dimensionality-reduction study.
func BenchmarkPCA(b *testing.B) { benchReport(b, bench.PCAStudy) }

// BenchmarkKernelRobustness regenerates the §5.5 Laplacian-vs-Gaussian
// bandwidth robustness study.
func BenchmarkKernelRobustness(b *testing.B) { benchReport(b, bench.KernelRobustness) }

// BenchmarkAblationQ regenerates the Remark 3.1 ablation: preconditioning
// depths around the Eq. 7 choice.
func BenchmarkAblationQ(b *testing.B) { benchReport(b, bench.AblationQ) }

// BenchmarkAblationS regenerates the subsample-size ablation for the fixed
// coordinate block (the paper's §5 s-selection rule).
func BenchmarkAblationS(b *testing.B) { benchReport(b, bench.AblationS) }

// BenchmarkMultiGPU regenerates the §6 future-work study: adaptivity
// across data-parallel device groups.
func BenchmarkMultiGPU(b *testing.B) { benchReport(b, bench.MultiGPU) }

// BenchmarkServing measures batched vs unbatched serving throughput
// (requests/sec vs concurrent clients) with micro-batches sized to the
// device model's m_max — tracking the serving-path trajectory the same way
// the training benchmarks track the paper's artifacts.
func BenchmarkServing(b *testing.B) { benchReport(b, bench.ServingThroughput) }

// BenchmarkOverloadServing measures how batch occupancy and goodput hold
// up at 2x saturation with 25% client cancellation — the request-lifecycle
// hardening (cancellation propagation, greedy drain, deadline-aware
// shedding) as a measured workload.
func BenchmarkOverloadServing(b *testing.B) { benchReport(b, bench.OverloadServing) }

// BenchmarkTrainingJobs measures async training-job throughput and
// submit-to-servable latency across job-manager worker-pool sizes — the
// train → serve loop as a managed workload.
func BenchmarkTrainingJobs(b *testing.B) { benchReport(b, bench.TrainingJobs) }
