package metrics

import (
	"math"
	"testing"

	"eigenpro/internal/mat"
)

func TestMSE(t *testing.T) {
	pred := mat.NewDenseData(2, 2, []float64{1, 0, 0, 1})
	target := mat.NewDenseData(2, 2, []float64{0, 0, 0, 1})
	if got := MSE(pred, target); math.Abs(got-0.25) > 1e-15 {
		t.Fatalf("MSE = %v, want 0.25", got)
	}
	if got := MSE(pred, pred); got != 0 {
		t.Fatalf("MSE(x,x) = %v, want 0", got)
	}
}

func TestMSEEmpty(t *testing.T) {
	if got := MSE(mat.NewDense(0, 3), mat.NewDense(0, 3)); got != 0 {
		t.Fatalf("MSE empty = %v", got)
	}
}

func TestMSEShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MSE(mat.NewDense(1, 2), mat.NewDense(2, 1))
}

func TestClassificationError(t *testing.T) {
	pred := mat.NewDenseData(3, 2, []float64{
		0.9, 0.1, // -> 0
		0.2, 0.8, // -> 1
		0.6, 0.4, // -> 0
	})
	if got := ClassificationError(pred, []int{0, 1, 1}); math.Abs(got-1.0/3) > 1e-15 {
		t.Fatalf("error = %v, want 1/3", got)
	}
	if got := Accuracy(pred, []int{0, 1, 1}); math.Abs(got-2.0/3) > 1e-15 {
		t.Fatalf("accuracy = %v, want 2/3", got)
	}
}

func TestClassificationErrorEmpty(t *testing.T) {
	if got := ClassificationError(mat.NewDense(0, 2), nil); got != 0 {
		t.Fatalf("empty error = %v", got)
	}
}

func TestBinaryErrorFromSign(t *testing.T) {
	scores := []float64{2.5, -1, 0, 0.1}
	labels := []float64{1, 1, 1, 1}
	// -1 wrong, 0 counts wrong, others right -> 2/4.
	if got := BinaryErrorFromSign(scores, labels); got != 0.5 {
		t.Fatalf("binary error = %v, want 0.5", got)
	}
	if got := BinaryErrorFromSign(nil, nil); got != 0 {
		t.Fatalf("empty binary error = %v", got)
	}
}
