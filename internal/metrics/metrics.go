// Package metrics provides the evaluation measures used throughout the
// EigenPro 2.0 reproduction: mean squared error on one-hot regression
// targets (the paper's training objective and stopping criterion) and
// multiclass classification error (the paper's reported test metric).
package metrics

import (
	"fmt"

	"eigenpro/internal/mat"
)

// MSE returns the mean squared error (1/(n*l)) * Σ (pred − target)²,
// averaging over both samples and output dimensions. This matches the
// paper's "train mse" stopping criterion for one-hot multi-label targets.
func MSE(pred, target *mat.Dense) float64 {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic(fmt.Sprintf("metrics: MSE shape mismatch %dx%d vs %dx%d",
			pred.Rows, pred.Cols, target.Rows, target.Cols))
	}
	if pred.Rows == 0 || pred.Cols == 0 {
		return 0
	}
	sum := 0.0
	for i, v := range pred.Data {
		d := v - target.Data[i]
		sum += d * d
	}
	return sum / float64(len(pred.Data))
}

// ClassificationError returns the fraction of rows whose argmax prediction
// disagrees with the true label.
func ClassificationError(pred *mat.Dense, labels []int) float64 {
	if pred.Rows != len(labels) {
		panic(fmt.Sprintf("metrics: %d predictions for %d labels", pred.Rows, len(labels)))
	}
	if pred.Rows == 0 {
		return 0
	}
	wrong := 0
	for i := 0; i < pred.Rows; i++ {
		if mat.ArgMaxRow(pred.RowView(i)) != labels[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(pred.Rows)
}

// Accuracy returns 1 − ClassificationError.
func Accuracy(pred *mat.Dense, labels []int) float64 {
	return 1 - ClassificationError(pred, labels)
}

// BinaryErrorFromSign returns the misclassification rate of sign
// predictions against ±1 labels; zero scores count as wrong.
func BinaryErrorFromSign(scores []float64, labels []float64) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("metrics: %d scores for %d labels", len(scores), len(labels)))
	}
	if len(scores) == 0 {
		return 0
	}
	wrong := 0
	for i, s := range scores {
		if s*labels[i] <= 0 {
			wrong++
		}
	}
	return float64(wrong) / float64(len(scores))
}
