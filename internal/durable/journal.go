package durable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Journal is an append-only JSON-lines write-ahead log. Each record is
// one line:
//
//	<8 hex digits: IEEE CRC32 of payload> <payload JSON>\n
//
// Appends are fsynced by default, so a record returned from Append has
// reached stable storage before the caller proceeds — the write-ahead
// property recovery depends on. A crash mid-append leaves at most one
// partial line at the tail; OpenJournal detects it, reports it in the
// Replay, and truncates the file back to the last complete record so the
// next append starts on a clean boundary.
type Journal struct {
	mu   sync.Mutex
	fsys FS
	path string
	f    File
	sync bool
}

// Replay is what OpenJournal recovered from an existing journal file.
type Replay struct {
	// Records holds the payload of every intact record, in append order.
	Records [][]byte
	// Corrupt counts complete lines whose checksum or framing failed;
	// they are skipped, never surfaced as records.
	Corrupt int
	// TruncatedTail reports that the file ended in a partial line — the
	// signature of a crash mid-append. The tail was truncated away.
	TruncatedTail bool
}

// OpenJournal opens (creating if needed) the journal at path, replays its
// intact records, repairs a truncated tail, and returns the journal
// positioned for appends.
func OpenJournal(fsys FS, path string) (*Journal, Replay, error) {
	var rep Replay
	raw, err := readAll(fsys, path)
	if err != nil && !os.IsNotExist(err) {
		return nil, rep, fmt.Errorf("durable: open journal %s: %w", path, err)
	}
	records, goodLen := ReplayJournal(raw, &rep)
	rep.Records = records
	if goodLen < int64(len(raw)) {
		// A partial or corrupt tail would concatenate with the next
		// append; cut the file back to the last intact boundary first.
		if err := fsys.Truncate(path, goodLen); err != nil {
			return nil, rep, fmt.Errorf("durable: repair journal %s: %w", path, err)
		}
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, rep, fmt.Errorf("durable: open journal %s: %w", path, err)
	}
	return &Journal{fsys: fsys, path: path, f: f, sync: true}, rep, nil
}

// ReplayJournal scans raw journal bytes, appending each intact payload
// and counting corruption into rep (which may be nil). It returns the
// payloads and the byte offset just past the last line that should be
// kept — complete corrupt lines are kept (skipping them is enough; they
// are already durable), a partial tail is not. Exposed for fuzzing.
func ReplayJournal(raw []byte, rep *Replay) (records [][]byte, keep int64) {
	if rep == nil {
		rep = &Replay{}
	}
	off := int64(0)
	for len(raw) > 0 {
		nl := bytes.IndexByte(raw, '\n')
		if nl < 0 {
			// Partial tail: a crash interrupted the final append.
			rep.TruncatedTail = true
			corruptRecords.Add(1)
			return records, off
		}
		line := raw[:nl]
		raw = raw[nl+1:]
		off += int64(nl) + 1
		payload, ok := parseJournalLine(line)
		if !ok {
			rep.Corrupt++
			corruptRecords.Add(1)
			continue
		}
		records = append(records, payload)
	}
	return records, off
}

// parseJournalLine splits "crc8hex payload" and verifies the checksum.
func parseJournalLine(line []byte) ([]byte, bool) {
	if len(line) < 9 || line[8] != ' ' {
		return nil, false
	}
	var want uint32
	for _, c := range line[:8] {
		var d uint32
		switch {
		case c >= '0' && c <= '9':
			d = uint32(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint32(c-'a') + 10
		default:
			return nil, false
		}
		want = want<<4 | d
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, false
	}
	return payload, true
}

// Append marshals v as JSON and durably appends it as one record. The
// record has reached disk when Append returns nil (unless SetSync(false)
// turned fsync off for tests).
func (j *Journal) Append(v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("durable: journal append: %w", err)
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("durable: journal append: %w", os.ErrClosed)
	}
	if _, err := io.WriteString(j.f, line); err != nil {
		return fmt.Errorf("durable: journal append %s: %w", j.path, err)
	}
	if j.sync {
		fsyncs.Add(1)
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("durable: journal sync %s: %w", j.path, err)
		}
	}
	journalRecords.Add(1)
	return nil
}

// SetSync toggles the per-append fsync. Leaving it on (the default) is
// the durability contract; tests that hammer the journal may turn it off.
func (j *Journal) SetSync(on bool) {
	j.mu.Lock()
	j.sync = on
	j.mu.Unlock()
}

// Close syncs and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	fsyncs.Add(1)
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return fmt.Errorf("durable: journal close %s: %w", j.path, serr)
	}
	if cerr != nil {
		return fmt.Errorf("durable: journal close %s: %w", j.path, cerr)
	}
	return nil
}

// readAll reads the whole file at path through fsys.
func readAll(fsys FS, path string) ([]byte, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
