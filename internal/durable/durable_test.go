package durable

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob.bin")
	payload := []byte("the quick brown fox\x00\x01\x02 jumps over the lazy dog")
	if err := WriteFile(OS{}, path, payload); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(OS{}, path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: got %q want %q", got, payload)
	}
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived the rename: %v", err)
	}
}

func TestWriteFileEmptyPayload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.bin")
	if err := WriteFile(OS{}, path, nil); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(OS{}, path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("want empty payload, got %d bytes", len(got))
	}
}

func TestReadFileDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob.bin")
	payload := bytes.Repeat([]byte("eigenpro"), 64)
	if err := WriteFile(OS{}, path, payload); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	sealed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		// A torn write: only a prefix of the payload reached disk.
		"torn prefix": sealed[:len(sealed)/2],
		// Shorter than the trailer itself.
		"tiny": sealed[:5],
		// One payload byte flipped.
		"bit flip": flip(sealed, 10),
		// One trailer byte flipped (bad magic or checksum).
		"trailer flip": flip(sealed, len(sealed)-1),
		// Extra bytes appended after the trailer.
		"appended garbage": append(append([]byte{}, sealed...), "junk"...),
		"empty file":       {},
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			before := CorruptRecords()
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := ReadFile(OS{}, path)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
			if CorruptRecords() <= before {
				t.Fatal("corruption not counted")
			}
		})
	}
}

func flip(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0xff
	return out
}

func TestReadFileMissing(t *testing.T) {
	_, err := ReadFile(OS{}, filepath.Join(t.TempDir(), "nope"))
	if !os.IsNotExist(err) {
		t.Fatalf("want not-exist, got %v", err)
	}
}

func TestWriteRawNoTrailer(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "raw.txt")
	payload := []byte("verbatim content for external tools")
	err := WriteRaw(OS{}, path, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	})
	if err != nil {
		t.Fatalf("WriteRaw: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("raw file altered: got %q want %q", got, payload)
	}
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob.bin")
	if err := WriteFile(OS{}, path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(OS{}, path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("got %q want v2", got)
	}
}

func TestJournalAppendReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, rep, err := OpenJournal(OS{}, path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if len(rep.Records) != 0 || rep.Corrupt != 0 || rep.TruncatedTail {
		t.Fatalf("fresh journal replayed %+v", rep)
	}
	type rec struct {
		Type string `json:"type"`
		N    int    `json:"n"`
	}
	for i := 0; i < 10; i++ {
		if err := j.Append(rec{Type: "tick", N: i}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := j.Append(rec{}); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}

	j2, rep, err := OpenJournal(OS{}, path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if len(rep.Records) != 10 || rep.Corrupt != 0 || rep.TruncatedTail {
		t.Fatalf("replay %d records corrupt=%d tail=%v, want 10/0/false",
			len(rep.Records), rep.Corrupt, rep.TruncatedTail)
	}
	if string(rep.Records[7]) != `{"type":"tick","n":7}` {
		t.Fatalf("record 7 = %s", rep.Records[7])
	}
}

func TestJournalTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, _, err := OpenJournal(OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(map[string]int{"n": i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate a crash mid-append: cut the final record in half.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(raw) - 4
	if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, rep, err := OpenJournal(OS{}, path)
	if err != nil {
		t.Fatalf("reopen after tear: %v", err)
	}
	if len(rep.Records) != 2 || !rep.TruncatedTail {
		t.Fatalf("replay %d records tail=%v, want 2/true", len(rep.Records), rep.TruncatedTail)
	}
	// The repaired journal accepts appends cleanly on the record boundary.
	if err := j2.Append(map[string]int{"n": 99}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, rep, err = OpenJournal(OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 3 || rep.Corrupt != 0 || rep.TruncatedTail {
		t.Fatalf("post-repair replay %+v, want 3 clean records", rep)
	}
	if string(rep.Records[2]) != `{"n":99}` {
		t.Fatalf("appended record = %s", rep.Records[2])
	}
}

func TestJournalCorruptRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, _, err := OpenJournal(OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(map[string]int{"n": i}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Flip one byte inside the middle record's payload.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	lines[1][12] ^= 0xff
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	before := CorruptRecords()
	j2, rep, err := OpenJournal(OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(rep.Records) != 2 || rep.Corrupt != 1 {
		t.Fatalf("replay %d records corrupt=%d, want 2/1", len(rep.Records), rep.Corrupt)
	}
	if CorruptRecords() <= before {
		t.Fatal("journal corruption not counted")
	}
	// Records around the damage survive.
	if string(rep.Records[0]) != `{"n":0}` || string(rep.Records[1]) != `{"n":2}` {
		t.Fatalf("surviving records %s %s", rep.Records[0], rep.Records[1])
	}
}

func TestJournalConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, _, err := OpenJournal(OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSync(false) // hammering with fsync per record is pointless here
	const writers, each = 8, 50
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				if err := j.Append(map[string]int{"w": w, "i": i}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep, err := OpenJournal(OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != writers*each || rep.Corrupt != 0 {
		t.Fatalf("replay %d records corrupt=%d, want %d/0",
			len(rep.Records), rep.Corrupt, writers*each)
	}
}

func TestCountersAdvance(t *testing.T) {
	dir := t.TempDir()
	f0, r0 := Fsyncs(), JournalRecords()
	if err := WriteFile(OS{}, filepath.Join(dir, "a"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if Fsyncs() <= f0 {
		t.Fatal("sealed write did not fsync")
	}
	j, _, err := OpenJournal(OS{}, filepath.Join(dir, "j"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(map[string]bool{"ok": true}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if JournalRecords() != r0+1 {
		t.Fatalf("journal records %d, want %d", JournalRecords(), r0+1)
	}
}

func TestUnsealRejectsLengthLie(t *testing.T) {
	// A trailer claiming a different payload length than the file holds
	// must not cause a slice panic or a false accept.
	for _, n := range []int{0, 1, trailerSize - 1, trailerSize, trailerSize + 3} {
		raw := bytes.Repeat([]byte{0xaa}, n)
		if _, err := Unseal(raw); err == nil {
			t.Fatalf("Unseal accepted %d arbitrary bytes", n)
		}
	}
}

func BenchmarkJournalAppend(b *testing.B) {
	dir := b.TempDir()
	j, _, err := OpenJournal(OS{}, filepath.Join(dir, "j"))
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	j.SetSync(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := j.Append(map[string]int{"n": i}); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleWriteFile() {
	dir, _ := os.MkdirTemp("", "durable")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.gob")
	_ = WriteFile(OS{}, path, []byte("model bytes"))
	payload, _ := ReadFile(OS{}, path)
	fmt.Println(string(payload))
	// Output: model bytes
}
