package durable

import (
	"bytes"
	"hash/crc32"
	"testing"
)

// FuzzUnseal throws arbitrary bytes at the sealed-file reader: it must
// never panic, and it must accept exactly the blobs whose trailer is
// internally consistent — in which case re-sealing the returned payload
// reproduces the input.
func FuzzUnseal(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("short"))
	f.Add(seal([]byte("a valid sealed payload")))
	f.Add(seal(nil))
	f.Add(seal([]byte("payload"))[:10]) // torn prefix
	tampered := seal([]byte("payload"))
	tampered[2] ^= 0x01
	f.Add(tampered)
	f.Fuzz(func(t *testing.T, raw []byte) {
		payload, err := Unseal(raw)
		if err != nil {
			return
		}
		if !bytes.Equal(seal(payload), raw) {
			t.Fatalf("Unseal accepted %d bytes that do not re-seal to the input", len(raw))
		}
	})
}

// seal reproduces the writer's framing in memory for the fuzz oracle.
func seal(payload []byte) []byte {
	out := append([]byte{}, payload...)
	var trailer [trailerSize]byte
	putUint64(trailer[:8], uint64(len(payload)))
	putUint32(trailer[8:12], crc32.ChecksumIEEE(payload))
	copy(trailer[12:], sealMagic[:])
	return append(out, trailer[:]...)
}

// FuzzReplayJournal feeds arbitrary bytes to the journal replayer: no
// panics, every returned record must carry a valid checksum when
// re-framed, and the keep offset must land on a line boundary within the
// input.
func FuzzReplayJournal(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage with no newline"))
	f.Add(journalLine([]byte(`{"type":"submitted","job":"1"}`)))
	two := append(journalLine([]byte(`{"n":1}`)), journalLine([]byte(`{"n":2}`))...)
	f.Add(two)
	f.Add(two[:len(two)-3]) // torn tail
	bad := journalLine([]byte(`{"n":3}`))
	bad[12] ^= 0xff
	f.Add(append(bad, journalLine([]byte(`{"n":4}`))...))
	f.Add([]byte("deadbeef no-space-separator\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var rep Replay
		records, keep := ReplayJournal(raw, &rep)
		if keep < 0 || keep > int64(len(raw)) {
			t.Fatalf("keep offset %d outside [0,%d]", keep, len(raw))
		}
		if keep > 0 && raw[keep-1] != '\n' {
			t.Fatalf("keep offset %d does not end on a newline", keep)
		}
		for i, payload := range records {
			full := journalLine(payload)
			if _, ok := parseJournalLine(full[:len(full)-1]); !ok {
				t.Fatalf("record %d does not round-trip through the line codec", i)
			}
		}
		if rep.TruncatedTail && keep == int64(len(raw)) && len(raw) > 0 {
			t.Fatal("truncated tail reported but whole input kept")
		}
	})
}

// journalLine reproduces the appender's framing for fuzz seeds.
func journalLine(payload []byte) []byte {
	crc := crc32.ChecksumIEEE(payload)
	out := make([]byte, 0, len(payload)+10)
	const hexdigits = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		out = append(out, hexdigits[(crc>>shift)&0xf])
	}
	out = append(out, ' ')
	out = append(out, payload...)
	return append(out, '\n')
}
