// Package durable is the crash-safe persistence layer: atomic file
// writes with torn/corrupt-write detection, and an append-only journal
// (JSON-lines WAL) whose replay tolerates the partial records a crash
// leaves behind.
//
// The paper's train → serve loop earns its keep only if the process can
// die — kill -9, OOM, power loss — without losing acknowledged work or
// loading corrupt state afterwards. This package supplies the two disk
// primitives the job manager builds that guarantee on:
//
//   - WriteFile / ReadFile: seal a blob into path atomically (temp file +
//     fsync + rename + parent-dir fsync) with a CRC-checksummed trailer, so
//     a reader either gets exactly the bytes that were sealed or a
//     detectable ErrCorrupt — never a silent torn prefix.
//   - Journal: an append-only JSON-lines write-ahead log with a per-record
//     checksum. Replay skips (and counts) corrupt records and tolerates a
//     truncated tail, the shape a crash mid-append leaves.
//   - WriteRaw: the same atomic temp+fsync+rename discipline without the
//     trailer, for files external tools must read verbatim (pprof profiles,
//     metrics expositions in flight-recorder snapshots).
//
// All filesystem access goes through the FS interface so the fault
// package can inject deterministic errors, latency, and crash points
// under test; OS is the real implementation.
package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
)

// ErrCorrupt reports that a sealed file or journal record failed its
// integrity check: the write was torn by a crash, or the bytes were
// damaged afterwards. Callers must treat the content as absent, never as
// partially valid.
var ErrCorrupt = errors.New("durable: corrupt or torn write detected")

// File is the subset of *os.File the durability layer needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// FS abstracts the filesystem operations behind every durable write so
// tests can substitute a fault-injecting implementation (internal/fault).
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
	Truncate(name string, size int64) error
}

// OS is the real filesystem.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (OS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (OS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

// Process-wide durability counters, exposed as
// eigenpro_durable_{fsyncs,corrupt_records,journal_records}_total by the
// persistent job manager. They are package-level because durability is a
// process property: the flight recorder's atomic snapshot writes and
// every manager's journal all account into the same totals.
var (
	fsyncs         atomic.Uint64
	corruptRecords atomic.Uint64
	journalRecords atomic.Uint64
)

// Fsyncs returns how many fsync calls the durability layer has issued
// process-wide.
func Fsyncs() uint64 { return fsyncs.Load() }

// CorruptRecords returns how many corrupt or torn artifacts (sealed files
// and journal records) have been detected process-wide.
func CorruptRecords() uint64 { return corruptRecords.Load() }

// JournalRecords returns how many journal records have been appended
// process-wide.
func JournalRecords() uint64 { return journalRecords.Load() }

// Sealed-file trailer: the payload is followed by
//
//	[8 bytes payload length, little endian]
//	[4 bytes IEEE CRC32 of the payload, little endian]
//	[8 bytes magic "EPDURBL1"]
//
// A reader verifies all three from the end of the file; any mismatch —
// short file, wrong magic, wrong length, wrong checksum — is ErrCorrupt.
const trailerSize = 8 + 4 + 8

var sealMagic = [8]byte{'E', 'P', 'D', 'U', 'R', 'B', 'L', '1'}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func putUint32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint32(b []byte) uint32 {
	var v uint32
	for i := 0; i < 4; i++ {
		v |= uint32(b[i]) << (8 * i)
	}
	return v
}

// writeAtomic streams fill into path via a temp file in the same
// directory, fsyncs, renames over path, and fsyncs the parent directory —
// after which the file is durably either its previous content or the new
// content, never a mixture. seal appends the integrity trailer.
func writeAtomic(fsys FS, path string, seal bool, fill func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: write %s: %w", path, err)
	}
	cw := &crcWriter{w: f}
	if err := fill(cw); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("durable: write %s: %w", path, err)
	}
	if seal {
		var trailer [trailerSize]byte
		putUint64(trailer[:8], uint64(cw.n))
		putUint32(trailer[8:12], cw.crc)
		copy(trailer[12:], sealMagic[:])
		if _, err := f.Write(trailer[:]); err != nil {
			f.Close()
			fsys.Remove(tmp)
			return fmt.Errorf("durable: write %s: %w", path, err)
		}
	}
	fsyncs.Add(1)
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("durable: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: close %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: rename %s: %w", path, err)
	}
	syncDir(fsys, filepath.Dir(path))
	return nil
}

// crcWriter tees writes into the IEEE CRC32 and a length count.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

// syncDir makes a rename durable by fsyncing the directory entry. Errors
// are ignored: some filesystems refuse directory fsync, and the rename
// itself already succeeded.
func syncDir(fsys FS, dir string) {
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return
	}
	fsyncs.Add(1)
	d.Sync()
	d.Close()
}

// WriteFile seals data into path atomically with the integrity trailer;
// read it back with ReadFile. Use for artifacts only this layer reads
// (checkpoints, specs, models).
func WriteFile(fsys FS, path string, data []byte) error {
	return WriteFileWith(fsys, path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteFileWith is WriteFile with a streaming fill callback.
func WriteFileWith(fsys FS, path string, fill func(io.Writer) error) error {
	return writeAtomic(fsys, path, true, fill)
}

// WriteRaw writes path atomically (temp + fsync + rename) without the
// trailer, for files external tools must read verbatim — flight-recorder
// pprof profiles, metrics expositions. Torn writes cannot reach path, but
// later in-place damage is not detectable.
func WriteRaw(fsys FS, path string, fill func(io.Writer) error) error {
	return writeAtomic(fsys, path, false, fill)
}

// ReadFile reads a sealed file, verifies its trailer, and returns the
// payload. A missing trailer, bad magic, length mismatch, or checksum
// mismatch returns an error wrapping ErrCorrupt (and counts toward
// CorruptRecords); a missing file returns the os.ErrNotExist error.
func ReadFile(fsys FS, path string) ([]byte, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("durable: read %s: %w", path, err)
	}
	payload, err := Unseal(raw)
	if err != nil {
		return nil, fmt.Errorf("durable: read %s: %w", path, err)
	}
	return payload, nil
}

// Unseal verifies a sealed blob's trailer and returns its payload (the
// pure-function core of ReadFile, also the fuzzing entry point).
func Unseal(raw []byte) ([]byte, error) {
	if len(raw) < trailerSize {
		corruptRecords.Add(1)
		return nil, fmt.Errorf("%w: %d bytes is shorter than the trailer", ErrCorrupt, len(raw))
	}
	trailer := raw[len(raw)-trailerSize:]
	payload := raw[:len(raw)-trailerSize]
	if [8]byte(trailer[12:20]) != sealMagic {
		corruptRecords.Add(1)
		return nil, fmt.Errorf("%w: bad trailer magic", ErrCorrupt)
	}
	if n := getUint64(trailer[:8]); n != uint64(len(payload)) {
		corruptRecords.Add(1)
		return nil, fmt.Errorf("%w: trailer says %d payload bytes, file holds %d", ErrCorrupt, n, len(payload))
	}
	if crc := getUint32(trailer[8:12]); crc != crc32.ChecksumIEEE(payload) {
		corruptRecords.Add(1)
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}
