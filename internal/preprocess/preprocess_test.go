package preprocess

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eigenpro/internal/mat"
)

func randX(rng *rand.Rand, n, d int) *mat.Dense {
	x := mat.NewDense(n, d)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()*3 + 1
	}
	return x
}

func TestMinMaxScalesTrainTo01(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	x := randX(rng, 100, 5)
	s := FitMinMax(x)
	y := s.Apply(x)
	for j := 0; j < 5; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 100; i++ {
			v := y.At(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if math.Abs(lo) > 1e-12 || math.Abs(hi-1) > 1e-12 {
			t.Fatalf("column %d range [%v,%v], want [0,1]", j, lo, hi)
		}
	}
}

func TestMinMaxConstantColumn(t *testing.T) {
	x := mat.NewDense(4, 2)
	for i := 0; i < 4; i++ {
		x.Set(i, 0, 7) // constant
		x.Set(i, 1, float64(i))
	}
	y := FitMinMax(x).Apply(x)
	for i := 0; i < 4; i++ {
		if y.At(i, 0) != 0 {
			t.Fatal("constant column must map to 0")
		}
	}
}

func TestMinMaxAppliesTrainStatsToTest(t *testing.T) {
	train := mat.NewDenseData(2, 1, []float64{0, 10})
	test := mat.NewDenseData(2, 1, []float64{5, 20})
	s := FitMinMax(train)
	y := s.Apply(test)
	if y.At(0, 0) != 0.5 || y.At(1, 0) != 2.0 {
		t.Fatalf("got %v, %v; want 0.5, 2.0 (no clipping)", y.At(0, 0), y.At(1, 0))
	}
}

func TestZScoreTrainMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := randX(rng, 400, 4)
	y := FitZScore(x).Apply(x)
	means := mat.ColMeans(y)
	stds := mat.ColStds(y, means)
	for j := 0; j < 4; j++ {
		if math.Abs(means[j]) > 1e-10 || math.Abs(stds[j]-1) > 1e-10 {
			t.Fatalf("column %d: mean %v std %v", j, means[j], stds[j])
		}
	}
}

func TestZScoreZeroVariance(t *testing.T) {
	x := mat.NewDense(3, 1)
	x.Fill(5)
	y := FitZScore(x).Apply(x)
	for i := 0; i < 3; i++ {
		if y.At(i, 0) != 0 {
			t.Fatal("zero-variance column must map to 0")
		}
	}
}

func TestScalerDimMismatchPanics(t *testing.T) {
	s := FitMinMax(mat.NewDense(2, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Apply(mat.NewDense(2, 4))
}

func TestGrayscaleWeights(t *testing.T) {
	x := mat.NewDenseData(1, 3, []float64{1, 1, 1})
	y := Grayscale(x)
	if math.Abs(y.At(0, 0)-1) > 1e-12 {
		t.Fatalf("gray(1,1,1) = %v, want 1", y.At(0, 0))
	}
	x2 := mat.NewDenseData(1, 6, []float64{1, 0, 0, 0, 1, 0})
	y2 := Grayscale(x2)
	if math.Abs(y2.At(0, 0)-0.299) > 1e-12 || math.Abs(y2.At(0, 1)-0.587) > 1e-12 {
		t.Fatalf("gray channels = %v, %v", y2.At(0, 0), y2.At(0, 1))
	}
}

func TestGrayscaleBadColsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Grayscale(mat.NewDense(1, 4))
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Data concentrated along (1,1)/√2 with small orthogonal noise.
	rng := rand.New(rand.NewSource(42))
	n := 500
	x := mat.NewDense(n, 2)
	for i := 0; i < n; i++ {
		s := rng.NormFloat64() * 5
		e := rng.NormFloat64() * 0.1
		x.Set(i, 0, s+e)
		x.Set(i, 1, s-e)
	}
	p, err := FitPCA(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	v0, v1 := p.components.At(0, 0), p.components.At(1, 0)
	if math.Abs(math.Abs(v0)-math.Sqrt2/2) > 0.02 || math.Abs(math.Abs(v1)-math.Sqrt2/2) > 0.02 {
		t.Fatalf("principal direction (%v,%v), want ±(0.707,0.707)", v0, v1)
	}
	if p.K() != 1 {
		t.Fatalf("K = %d", p.K())
	}
}

func TestPCATransformReducesDimAndPreservesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x := randX(rng, 300, 10)
	p, err := FitPCA(x, 10)
	if err != nil {
		t.Fatal(err)
	}
	y := p.Transform(x)
	if y.Cols != 10 {
		t.Fatalf("cols = %d", y.Cols)
	}
	// Full-rank PCA is a rotation: total variance is preserved.
	totalX, totalY := 0.0, 0.0
	mx, my := mat.ColMeans(x), mat.ColMeans(y)
	sx, sy := mat.ColStds(x, mx), mat.ColStds(y, my)
	for j := 0; j < 10; j++ {
		totalX += sx[j] * sx[j]
		totalY += sy[j] * sy[j]
	}
	if math.Abs(totalX-totalY) > 1e-8*totalX {
		t.Fatalf("variance not preserved: %v vs %v", totalX, totalY)
	}
	// Explained variances descending.
	ev := p.ExplainedVariances()
	for i := 1; i < len(ev); i++ {
		if ev[i] > ev[i-1]+1e-12 {
			t.Fatalf("explained variances not descending: %v", ev)
		}
	}
}

func TestPCAErrors(t *testing.T) {
	x := mat.NewDense(5, 3)
	if _, err := FitPCA(x, 0); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := FitPCA(x, 4); err == nil {
		t.Fatal("k>d must error")
	}
	if _, err := FitPCA(mat.NewDense(1, 3), 2); err == nil {
		t.Fatal("n<2 must error")
	}
}

// Property: PCA projection is norm-nonexpansive for centered data
// (projection onto an orthonormal basis).
func TestQuickPCANonExpansive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, d := 20+r.Intn(30), 2+r.Intn(6)
		k := 1 + r.Intn(d)
		x := randX(r, n, d)
		p, err := FitPCA(x, k)
		if err != nil {
			return false
		}
		y := p.Transform(x)
		// Compare against centered x norms.
		mean := mat.ColMeans(x)
		for i := 0; i < n; i++ {
			cx := 0.0
			for j := 0; j < d; j++ {
				v := x.At(i, j) - mean[j]
				cx += v * v
			}
			py := 0.0
			for j := 0; j < k; j++ {
				py += y.At(i, j) * y.At(i, j)
			}
			if py > cx+1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
