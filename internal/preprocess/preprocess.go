// Package preprocess implements the feature transformations the paper
// applies before kernel training: min-max rescaling to [0,1] for image
// datasets, z-score standardization for TIMIT, grayscale conversion for
// color images, and PCA dimensionality reduction (§5.5, used on ImageNet
// convolutional features).
//
// Every transformation follows the fit/apply pattern: statistics are
// estimated on training data and then applied unchanged to test data.
package preprocess

import (
	"fmt"
	"math"

	"eigenpro/internal/eigen"
	"eigenpro/internal/mat"
)

// MinMaxScaler rescales each feature into [0,1] using ranges estimated at
// fit time.
type MinMaxScaler struct {
	mins, spans []float64
}

// FitMinMax estimates per-column minima and ranges from x.
func FitMinMax(x *mat.Dense) *MinMaxScaler {
	s := &MinMaxScaler{
		mins:  make([]float64, x.Cols),
		spans: make([]float64, x.Cols),
	}
	for j := 0; j < x.Cols; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < x.Rows; i++ {
			v := x.At(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		s.mins[j] = lo
		s.spans[j] = hi - lo
	}
	return s
}

// Apply returns a rescaled copy of x. Constant columns map to 0; values
// outside the fitted range extrapolate linearly (they are not clipped).
func (s *MinMaxScaler) Apply(x *mat.Dense) *mat.Dense {
	if x.Cols != len(s.mins) {
		panic(fmt.Sprintf("preprocess: MinMax fitted on %d cols, applied to %d", len(s.mins), x.Cols))
	}
	out := x.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.RowView(i)
		for j := range row {
			if s.spans[j] == 0 {
				row[j] = 0
			} else {
				row[j] = (row[j] - s.mins[j]) / s.spans[j]
			}
		}
	}
	return out
}

// ZScorer standardizes each feature to zero mean and unit variance using
// statistics estimated at fit time.
type ZScorer struct {
	means, stds []float64
}

// FitZScore estimates per-column means and standard deviations from x.
func FitZScore(x *mat.Dense) *ZScorer {
	means := mat.ColMeans(x)
	return &ZScorer{means: means, stds: mat.ColStds(x, means)}
}

// Apply returns a standardized copy of x; zero-variance columns map to 0.
func (z *ZScorer) Apply(x *mat.Dense) *mat.Dense {
	if x.Cols != len(z.means) {
		panic(fmt.Sprintf("preprocess: ZScore fitted on %d cols, applied to %d", len(z.means), x.Cols))
	}
	out := x.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.RowView(i)
		for j := range row {
			if z.stds[j] == 0 {
				row[j] = 0
			} else {
				row[j] = (row[j] - z.means[j]) / z.stds[j]
			}
		}
	}
	return out
}

// Grayscale converts interleaved RGB features (r0,g0,b0,r1,g1,b1,...) into
// single luminance channels using the ITU-R BT.601 weights the usual image
// pipelines apply. x.Cols must be divisible by 3.
func Grayscale(x *mat.Dense) *mat.Dense {
	if x.Cols%3 != 0 {
		panic(fmt.Sprintf("preprocess: Grayscale needs cols divisible by 3, got %d", x.Cols))
	}
	pixels := x.Cols / 3
	out := mat.NewDense(x.Rows, pixels)
	for i := 0; i < x.Rows; i++ {
		src := x.RowView(i)
		dst := out.RowView(i)
		for p := 0; p < pixels; p++ {
			dst[p] = 0.299*src[3*p] + 0.587*src[3*p+1] + 0.114*src[3*p+2]
		}
	}
	return out
}

// PCA holds a fitted principal component basis.
type PCA struct {
	mean       []float64
	components *mat.Dense // d x k, orthonormal columns
	variances  []float64  // eigenvalues of the covariance, descending
}

// FitPCA computes the top-k principal components of x via
// eigendecomposition of the d x d covariance matrix. k must be in [1, d].
func FitPCA(x *mat.Dense, k int) (*PCA, error) {
	d := x.Cols
	if k < 1 || k > d {
		return nil, fmt.Errorf("preprocess: PCA k=%d out of [1,%d]", k, d)
	}
	if x.Rows < 2 {
		return nil, fmt.Errorf("preprocess: PCA needs at least 2 samples, got %d", x.Rows)
	}
	mean := mat.ColMeans(x)
	centered := x.Clone()
	for i := 0; i < centered.Rows; i++ {
		row := centered.RowView(i)
		for j := range row {
			row[j] -= mean[j]
		}
	}
	cov := mat.TMul(centered, centered)
	mat.ScaleInPlace(cov, 1/float64(x.Rows-1))
	sys, err := eigen.Sym(cov)
	if err != nil {
		return nil, fmt.Errorf("preprocess: PCA eigendecomposition: %w", err)
	}
	top := sys.TopQ(k)
	return &PCA{mean: mean, components: top.Vectors, variances: top.Values}, nil
}

// Transform projects x onto the fitted components, returning an n x k
// matrix.
func (p *PCA) Transform(x *mat.Dense) *mat.Dense {
	if x.Cols != len(p.mean) {
		panic(fmt.Sprintf("preprocess: PCA fitted on %d features, applied to %d", len(p.mean), x.Cols))
	}
	centered := x.Clone()
	for i := 0; i < centered.Rows; i++ {
		row := centered.RowView(i)
		for j := range row {
			row[j] -= p.mean[j]
		}
	}
	return mat.Mul(centered, p.components)
}

// K returns the number of retained components.
func (p *PCA) K() int { return p.components.Cols }

// ExplainedVariances returns the covariance eigenvalues of the retained
// components in descending order.
func (p *PCA) ExplainedVariances() []float64 {
	out := make([]float64, len(p.variances))
	copy(out, p.variances)
	return out
}
