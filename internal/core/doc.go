// Package core implements the paper's primary contribution: EigenPro 2.0,
// a learning framework that adapts a kernel machine to a parallel
// computational resource so that SGD's critical batch size m* matches the
// resource's maximum useful batch size m_max, extending linear scaling to
// full device utilization without changing the learned predictor.
//
// The pipeline follows §3 of the paper:
//
//  1. Compute m_max = min(m_C, m_S) from the resource model
//     (internal/device).
//  2. Estimate the top of the kernel spectrum from an s-point Nyström
//     subsample (Spectrum) and pick q = max{i : m*(k_Pi) ≤ m_max} (Eq. 7).
//  3. Train with the improved EigenPro iteration (Algorithm 1, "double
//     coordinate block descent") using the analytic batch size m = m_max
//     and step size η.
//
// The same Trainer also runs plain mini-batch SGD and the original
// (2017-style) EigenPro iteration, which serve as the paper's baselines in
// Figure 2 and Tables 1-2.
package core
