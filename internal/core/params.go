package core

import (
	"fmt"
	"math"

	"eigenpro/internal/device"
	"eigenpro/internal/mat"
)

func sqrtFloat(x float64) float64 { return math.Sqrt(x) }

// MStar returns m*(k) = β(K)/λ₁(K), the critical batch size of the original
// kernel (paper §2): convergence per iteration improves linearly with batch
// size up to m*, then saturates.
func MStar(sp *Spectrum) float64 {
	l1 := sp.Lambda(1)
	if l1 <= 0 {
		return math.Inf(1)
	}
	return sp.Beta / l1
}

// BetaPrecond estimates β(K_Pq) = max_i k_Pq(x_i, x_i) on the subsample
// (paper Step 2):
//
//	k_Pq(x,x) = k(x,x) − Σ_{j≤q} (λ_j − λ_q) e_j(x)².
//
// At subsample points e_j(x_ri) = √s · V[i,j], so the sum telescopes to
// Σ_{j≤q} (σ_j − σ_q) V[i,j]².
func BetaPrecond(sp *Spectrum, q int) float64 {
	if q < 0 || q > sp.QMax() {
		panic(fmt.Sprintf("core: BetaPrecond q=%d out of [0,%d]", q, sp.QMax()))
	}
	if q == 0 {
		return sp.Beta
	}
	s := sp.S()
	sigQ := sp.Sigma[q-1]
	best := math.Inf(-1)
	for i := 0; i < s; i++ {
		drop := 0.0
		for j := 0; j < q; j++ {
			v := sp.V.At(i, j)
			drop += (sp.Sigma[j] - sigQ) * v * v
		}
		if d := sp.Beta - drop; d > best {
			best = d
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}

// BetaPrecondAt estimates β(K_Pq) from the preconditioned-kernel diagonal
// at the rows of x:
//
//	k_Pq(x,x) = k(x,x) − Σ_{j≤q} (λ_j − λ_q) e_j(x)²
//
// using Nyström-extended eigenfunctions. Training uses the maximum of this
// estimate and the subsample-telescoped BetaPrecond: probing extra points
// guards against underestimating β (and hence overestimating the safe step
// size) when the subsample misses high-leverage points.
func BetaPrecondAt(sp *Spectrum, q int, x *mat.Dense) float64 {
	if q < 0 || q > sp.QMax() {
		panic(fmt.Sprintf("core: BetaPrecondAt q=%d out of [0,%d]", q, sp.QMax()))
	}
	if q == 0 || x.Rows == 0 {
		return sp.Beta
	}
	e := sp.EigenfunctionValues(x, q)
	lamQ := sp.Lambda(q)
	best := math.Inf(-1)
	for i := 0; i < x.Rows; i++ {
		diag := sp.Kern.Eval(x.RowView(i), x.RowView(i))
		row := e.RowView(i)
		for j := 0; j < q; j++ {
			diag -= (sp.Lambda(j+1) - lamQ) * row[j] * row[j]
		}
		if diag > best {
			best = diag
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}

// MStarPrecond returns m*(k_Pq) = β(K_Pq)/λ_q(K), the critical batch size
// after flattening the top-q spectrum; P_q sets λ₁(K_Pq) = λ_q(K).
// q = 0 returns MStar.
func MStarPrecond(sp *Spectrum, q int) float64 {
	if q == 0 {
		return MStar(sp)
	}
	lq := sp.Lambda(q)
	if lq <= 0 {
		return math.Inf(1)
	}
	return BetaPrecond(sp, q) / lq
}

// ChooseQ returns q = max{i : m*(k_Pi) ≤ mMax} (paper Eq. 7), i.e. the
// deepest spectral flattening whose critical batch size does not exceed the
// device's maximum useful batch. Returns 0 when even q=1 overshoots
// (m*(k_P1) > mMax), meaning the original kernel already saturates the
// device.
func ChooseQ(sp *Spectrum, mMax int) int {
	q := 0
	for i := 1; i <= sp.QMax(); i++ {
		if sp.Lambda(i) <= 0 {
			break
		}
		if MStarPrecond(sp, i) <= float64(mMax) {
			q = i
		} else {
			break
		}
	}
	return q
}

// AdjustQ implements the paper's Appendix B heuristic of running with a
// larger q than Eq. 7 strictly requires ("Increasing q appears to lead to
// faster convergence"): it extends q while the spectrum keeps decaying
// meaningfully (σ_i > relTol·σ_1) and stays within a fraction of the
// subsample size, and never decreases q.
func AdjustQ(sp *Spectrum, q int) int {
	const relTol = 1e-5
	limit := sp.S() / 8
	if limit > sp.QMax() {
		limit = sp.QMax()
	}
	adj := q
	for i := q + 1; i <= limit; i++ {
		if sp.Sigma[i-1] <= relTol*sp.Sigma[0] {
			break
		}
		adj = i
	}
	return adj
}

// StepSize returns the analytic step size for mini-batch size m against a
// kernel whose top (post-preconditioning) eigenvalue is lambdaTop and whose
// β is beta:
//
//	η(m) = m / (2·(β + (m−1)·λ_top))
//
// This is the optimal step size of Ma et al. 2017 (Theorem 4) divided by
// the factor 2 carried by the paper's gradient convention (the update uses
// 2/m · Σ ...). At m = m* ≈ β/λ_top it reduces to ≈ m/(2β), matching the
// paper's Table 4 where η ≈ m/2 for β ≈ 1. For m ≫ m* it saturates at
// 1/(2·λ_top) — the step size cap that makes oversized batches useless for
// the original kernel.
func StepSize(m int, beta, lambdaTop float64) float64 {
	if m < 1 {
		panic(fmt.Sprintf("core: StepSize m=%d", m))
	}
	den := 2 * (beta + float64(m-1)*lambdaTop)
	if den <= 0 {
		panic(fmt.Sprintf("core: StepSize with beta=%v lambdaTop=%v", beta, lambdaTop))
	}
	return float64(m) / den
}

// Params bundles every analytically selected quantity for one training
// configuration; it is the row type of the paper's Table 4.
type Params struct {
	// N, Dim, Labels describe the workload.
	N, Dim, Labels int
	// S is the fixed coordinate block (subsample) size.
	S int
	// MStarOriginal is m*(k) for the unmodified kernel.
	MStarOriginal float64
	// MC, MS, MMax are the device batch limits m_C, m_S, m_max.
	MC, MS, MMax int
	// Q is Eq. 7's choice; QAdjusted the Appendix B heuristic actually used.
	Q, QAdjusted int
	// MStarAdapted is m*(k_G) for the adaptive kernel at QAdjusted.
	MStarAdapted float64
	// BetaOriginal, BetaAdapted are β(K) and β(K_G).
	BetaOriginal, BetaAdapted float64
	// Batch and Eta are the training batch size and step size.
	Batch int
	Eta   float64
	// Acceleration is the §3 claim's predicted speedup
	// (β/β_G)·(m_max/m*(k)).
	Acceleration float64
}

// SelectParams runs Steps 1-3 of the paper's main algorithm: compute
// m_max from the device, choose q by Eq. 7 (widened by the Appendix B
// heuristic), and derive the batch size and step size.
func SelectParams(sp *Spectrum, dev *device.Device, n, dim, labels int) Params {
	p := Params{
		N: n, Dim: dim, Labels: labels,
		S:             sp.S(),
		MStarOriginal: MStar(sp),
		MC:            dev.BatchCompute(n, dim, labels),
		MS:            dev.BatchMemory(n, dim, labels),
		BetaOriginal:  sp.Beta,
	}
	p.MMax = dev.MaxBatch(n, dim, labels)
	p.Q = ChooseQ(sp, p.MMax)
	p.QAdjusted = AdjustQ(sp, p.Q)
	p.BetaAdapted = BetaPrecond(sp, p.QAdjusted)
	p.MStarAdapted = MStarPrecond(sp, p.QAdjusted)
	p.Batch = p.MMax
	var lambdaTop float64
	if p.QAdjusted > 0 {
		lambdaTop = sp.Lambda(p.QAdjusted)
	} else {
		lambdaTop = sp.Lambda(1)
	}
	p.Eta = StepSize(p.Batch, p.BetaAdapted, lambdaTop)
	if p.MStarOriginal > 0 && !math.IsInf(p.MStarOriginal, 1) {
		p.Acceleration = (p.BetaOriginal / p.BetaAdapted) * float64(p.MMax) / p.MStarOriginal
	}
	return p
}
