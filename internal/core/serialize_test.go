package core

import (
	"bytes"
	"strings"
	"testing"

	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
	"eigenpro/internal/metrics"
)

func TestModelRoundTrip(t *testing.T) {
	ds := testDataset(150)
	for _, k := range []kernel.Func{
		kernel.Gaussian{Sigma: 4},
		kernel.Laplacian{Sigma: 7},
		kernel.Cauchy{Sigma: 2},
	} {
		cfg := trainConfig(MethodEigenPro2)
		cfg.Kernel = k
		cfg.Epochs = 3
		res, err := Train(cfg, ds.X, ds.Y)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := SaveModel(&buf, res.Model); err != nil {
			t.Fatalf("%s: save: %v", k.Name(), err)
		}
		loaded, err := LoadModel(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", k.Name(), err)
		}
		if loaded.Kern.Name() != k.Name() {
			t.Fatalf("kernel %q round-tripped as %q", k.Name(), loaded.Kern.Name())
		}
		probe := testDataset(30).X
		if mse := metrics.MSE(loaded.Predict(probe), res.Model.Predict(probe)); mse != 0 {
			t.Fatalf("%s: predictions changed after round trip: mse %v", k.Name(), mse)
		}
	}
}

type unknownKernel struct{}

func (unknownKernel) Eval(x, z []float64) float64 { return 0 }
func (unknownKernel) Name() string                { return "unknown" }

func TestSaveModelUnknownKernel(t *testing.T) {
	m := NewModel(unknownKernel{}, mat.NewDense(2, 2), 1)
	if err := SaveModel(&bytes.Buffer{}, m); err == nil {
		t.Fatal("unknown kernel must fail to serialize")
	}
}

func TestLoadModelGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not gob data")); err == nil {
		t.Fatal("garbage must fail to load")
	}
}

func TestSpectrumRoundTrip(t *testing.T) {
	ds := testDataset(200)
	sp, err := EstimateSpectrum(kernel.Gaussian{Sigma: 4}, ds.X, 100, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSpectrum(&buf, sp); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpectrum(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.S() != sp.S() || loaded.QMax() != sp.QMax() || loaded.Beta != sp.Beta {
		t.Fatal("spectrum metadata changed")
	}
	for i := range sp.Sigma {
		if loaded.Sigma[i] != sp.Sigma[i] {
			t.Fatal("eigenvalues changed")
		}
	}
	// A training run with the loaded spectrum must reproduce the run with
	// the original.
	cfg := trainConfig(MethodEigenPro2)
	cfg.Epochs = 2
	cfg.Spectrum = sp
	a, err := Train(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Spectrum = loaded
	b, err := Train(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Model.Alpha.Data {
		if a.Model.Alpha.Data[i] != b.Model.Alpha.Data[i] {
			t.Fatal("loaded spectrum changed training result")
		}
	}
}

func TestLoadSpectrumGarbage(t *testing.T) {
	if _, err := LoadSpectrum(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage must fail to load")
	}
}
