package core

import (
	"math"
	"testing"
	"time"

	"eigenpro/internal/device"
	"eigenpro/internal/kernel"
)

func testSpectrum(t *testing.T, n int) *Spectrum {
	t.Helper()
	ds := testDataset(n)
	sp, err := EstimateSpectrum(kernel.Gaussian{Sigma: 4}, ds.X, n/2, 30, 11)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestMStarPositiveAndSmall(t *testing.T) {
	sp := testSpectrum(t, 400)
	ms := MStar(sp)
	if ms <= 0 {
		t.Fatalf("m* = %v", ms)
	}
	// Rapid kernel eigendecay means m* is small (paper: "typically less
	// than 10" for practical kernels; allow some slack for synthetic data).
	if ms > 100 {
		t.Fatalf("m* = %v unexpectedly large; spectrum not decaying", ms)
	}
}

func TestBetaPrecondBounds(t *testing.T) {
	sp := testSpectrum(t, 300)
	if got := BetaPrecond(sp, 0); got != sp.Beta {
		t.Fatalf("BetaPrecond(0) = %v, want β = %v", got, sp.Beta)
	}
	for q := 1; q <= 10; q++ {
		b := BetaPrecond(sp, q)
		if b < 0 || b > sp.Beta+1e-12 {
			t.Fatalf("BetaPrecond(%d) = %v out of [0, β]", q, b)
		}
	}
	// β(K_Pq) is non-increasing in q: deeper flattening removes more of
	// the diagonal.
	prev := sp.Beta
	for q := 1; q <= 15; q++ {
		b := BetaPrecond(sp, q)
		if b > prev+1e-12 {
			t.Fatalf("BetaPrecond(%d) = %v increased from %v", q, b, prev)
		}
		prev = b
	}
}

func TestMStarPrecondMonotoneInQ(t *testing.T) {
	sp := testSpectrum(t, 400)
	prev := MStarPrecond(sp, 0)
	for q := 1; q <= 20; q++ {
		cur := MStarPrecond(sp, q)
		// λ_q decreasing should push m* up; tolerate tiny numerical dips
		// from the β(K_Pq) estimate.
		if cur < prev*0.75 {
			t.Fatalf("m*(k_P%d) = %v dropped below m*(k_P%d) = %v", q, cur, q-1, prev)
		}
		if cur > prev {
			prev = cur
		}
	}
}

func TestChooseQSatisfiesEq7(t *testing.T) {
	sp := testSpectrum(t, 400)
	for _, mMax := range []int{1, 8, 64, 512, 4096} {
		q := ChooseQ(sp, mMax)
		if q > 0 && MStarPrecond(sp, q) > float64(mMax) {
			t.Fatalf("mMax=%d: m*(k_P%d) = %v exceeds mMax", mMax, q, MStarPrecond(sp, q))
		}
		if q < sp.QMax() && sp.Lambda(q+1) > 0 {
			// Next q must overshoot (this is what makes q maximal)...
			if MStarPrecond(sp, q+1) <= float64(mMax) && q+1 <= sp.QMax() {
				// unless ChooseQ stopped at QMax.
				t.Fatalf("mMax=%d: q=%d not maximal, q+1 also fits (m*=%v)",
					mMax, q, MStarPrecond(sp, q+1))
			}
		}
	}
}

func TestChooseQMonotoneInMMax(t *testing.T) {
	sp := testSpectrum(t, 400)
	prev := -1
	for _, mMax := range []int{1, 4, 16, 64, 256, 1024, 8192} {
		q := ChooseQ(sp, mMax)
		if q < prev {
			t.Fatalf("q decreased from %d to %d as mMax grew to %d", prev, q, mMax)
		}
		prev = q
	}
}

func TestAdjustQNeverDecreases(t *testing.T) {
	sp := testSpectrum(t, 400)
	for q := 0; q <= 10; q++ {
		if adj := AdjustQ(sp, q); adj < q {
			t.Fatalf("AdjustQ(%d) = %d decreased", q, adj)
		}
	}
	// Bounded by s/8.
	if adj := AdjustQ(sp, 1); adj > sp.S()/8 {
		t.Fatalf("AdjustQ = %d exceeds s/8 = %d", adj, sp.S()/8)
	}
}

func TestStepSizeFormula(t *testing.T) {
	// At m=1: η = 1/(2β).
	if got := StepSize(1, 1, 0.25); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("StepSize(1) = %v, want 0.5", got)
	}
	// With λ_top → 0 (deep preconditioning): η = m/(2β), the Table 4 shape.
	if got := StepSize(700, 1, 0); math.Abs(got-350) > 1e-12 {
		t.Fatalf("StepSize(700, λ→0) = %v, want 350", got)
	}
	// For m ≫ m*: η saturates near 1/(2λ).
	large := StepSize(1000000, 1, 0.25)
	if math.Abs(large-2) > 0.01 {
		t.Fatalf("saturated step %v, want ≈ 1/(2·0.25) = 2", large)
	}
}

func TestStepSizeMonotoneBoundedPanics(t *testing.T) {
	prev := 0.0
	for m := 1; m <= 4096; m *= 2 {
		eta := StepSize(m, 1, 0.1)
		if eta <= prev {
			t.Fatalf("step size not increasing at m=%d", m)
		}
		prev = eta
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m=0")
		}
	}()
	StepSize(0, 1, 0.1)
}

func testDevice() *device.Device {
	return &device.Device{
		Name: "test", ParallelOps: 2e7, MemoryFloats: 5e7,
		WaveTime: time.Millisecond, LaunchOverhead: 50 * time.Microsecond,
	}
}

func TestSelectParamsConsistency(t *testing.T) {
	sp := testSpectrum(t, 400)
	dev := testDevice()
	p := SelectParams(sp, dev, 400, 20, 4)
	if p.MMax != dev.MaxBatch(400, 20, 4) {
		t.Fatalf("MMax = %d, want %d", p.MMax, dev.MaxBatch(400, 20, 4))
	}
	if p.Batch != p.MMax {
		t.Fatalf("Batch = %d, want m_max = %d", p.Batch, p.MMax)
	}
	if p.QAdjusted < p.Q {
		t.Fatalf("QAdjusted %d < Q %d", p.QAdjusted, p.Q)
	}
	if p.Eta <= 0 {
		t.Fatalf("Eta = %v", p.Eta)
	}
	// Adaptive kernel extends m*: m*(k_G) must be >= m*(k).
	if p.MStarAdapted < p.MStarOriginal*0.9 {
		t.Fatalf("adaptive m* %v below original %v", p.MStarAdapted, p.MStarOriginal)
	}
	// Acceleration claim: a = (β/β_G)·(m_max/m*).
	want := (p.BetaOriginal / p.BetaAdapted) * float64(p.MMax) / p.MStarOriginal
	if math.Abs(p.Acceleration-want) > 1e-12 {
		t.Fatalf("Acceleration = %v, want %v", p.Acceleration, want)
	}
	if p.Acceleration <= 1 {
		t.Fatalf("Acceleration = %v; adapting should speed up this workload", p.Acceleration)
	}
}

func TestSelectParamsEtaMatchesTable4Shape(t *testing.T) {
	// With deep preconditioning (λ_q small) and β_G ≈ 1, η ≈ m/2 — the
	// relationship visible across every row of the paper's Table 4.
	sp := testSpectrum(t, 400)
	dev := testDevice()
	p := SelectParams(sp, dev, 400, 20, 4)
	if p.QAdjusted == 0 {
		t.Skip("device too small to trigger preconditioning")
	}
	// Table 4's η ≈ m/2 is the special case β_G ≈ 1, λ_q·(m−1) ≪ 1 of the
	// analytic formula; the exact invariant is that SelectParams applies
	// StepSize with the adapted β and the post-preconditioning top
	// eigenvalue λ_q.
	want := StepSize(p.Batch, p.BetaAdapted, sp.Lambda(p.QAdjusted))
	if math.Abs(p.Eta-want) > 1e-12 {
		t.Fatalf("Eta = %v, want StepSize = %v", p.Eta, want)
	}
	// And η must exceed the unpreconditioned saturation cap 1/(2λ₁) once
	// m_max ≫ m*(k): that gap is what the adaptive kernel buys.
	if cap := 1 / (2 * sp.Lambda(1)); float64(p.Batch) > 4*p.MStarOriginal && p.Eta < cap {
		t.Fatalf("adapted η %v does not exceed SGD cap %v", p.Eta, cap)
	}
}
