package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
)

func TestQuickSelectMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(50)
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		k := rng.Intn(n)
		cp := append([]float64(nil), s...)
		sort.Float64s(cp)
		if got := quickSelect(s, k); got != cp[k] {
			t.Fatalf("quickSelect(%d) = %v, want %v", k, got, cp[k])
		}
	}
}

func TestMedianPairwiseDistance(t *testing.T) {
	// Four points on a unit segment: distances {1,1,1,2,2,3}... use a
	// simple known set.
	x := mat.NewDenseData(3, 1, []float64{0, 1, 3})
	// Pairwise distances: 1, 3, 2 → median 2.
	if got := MedianPairwiseDistance(x, 10, 1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("median = %v, want 2", got)
	}
	if got := MedianPairwiseDistance(mat.NewDense(1, 3), 10, 1); got != 0 {
		t.Fatalf("single point median = %v, want 0", got)
	}
}

func TestGaussianBandwidthLadder(t *testing.T) {
	ds := testDataset(100)
	ladder := GaussianBandwidthLadder(ds.X, 5, 1)
	if len(ladder) != 5 {
		t.Fatalf("ladder length %d", len(ladder))
	}
	prev := 0.0
	for _, k := range ladder {
		g := k.(kernel.Gaussian)
		if g.Sigma <= prev {
			t.Fatal("ladder not increasing")
		}
		prev = g.Sigma
	}
	// Middle rung ≈ median distance.
	mid := ladder[2].(kernel.Gaussian).Sigma
	med := MedianPairwiseDistance(ds.X, 256, 1)
	if math.Abs(mid-med) > 1e-9 {
		t.Fatalf("middle rung %v != median %v", mid, med)
	}
}

func TestSelectBandwidthPicksReasonableSigma(t *testing.T) {
	ds := testDataset(300)
	// Include absurd bandwidths; CV must reject them in favor of a sane
	// one.
	cands := []kernel.Func{
		kernel.Gaussian{Sigma: 0.01}, // far too narrow: memorizes nothing useful
		kernel.Gaussian{Sigma: 4},    // reasonable
		kernel.Gaussian{Sigma: 5000}, // far too wide: nearly constant kernel
	}
	best, scored, err := SelectBandwidth(cands, ds.X, ds.Y, ds.Labels, BandwidthConfig{
		Subsample: 200, Folds: 3, Epochs: 5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scored) != 3 {
		t.Fatalf("scored %d candidates", len(scored))
	}
	if got := best.(kernel.Gaussian).Sigma; got != 4 {
		t.Fatalf("selected σ=%v, want 4 (scores: %+v)", got, scored)
	}
	// The winner's score must be the minimum.
	for _, c := range scored {
		if c.Error < scored[1].Error-1e-12 {
			t.Fatalf("winner not minimal: %+v", scored)
		}
	}
}

func TestSelectBandwidthErrors(t *testing.T) {
	ds := testDataset(50)
	if _, _, err := SelectBandwidth(nil, ds.X, ds.Y, ds.Labels, BandwidthConfig{}); err == nil {
		t.Fatal("no candidates must error")
	}
	if _, _, err := SelectBandwidth([]kernel.Func{kernel.Gaussian{Sigma: 1}},
		ds.X, ds.Y, ds.Labels[:10], BandwidthConfig{}); err == nil {
		t.Fatal("label mismatch must error")
	}
	if _, _, err := SelectBandwidth([]kernel.Func{kernel.Gaussian{Sigma: 1}},
		ds.X, ds.Y, ds.Labels, BandwidthConfig{Folds: 30}); err == nil {
		t.Fatal("too many folds must error")
	}
}
