package core

import (
	"eigenpro/internal/obs"
)

// Trainer telemetry series names; the per-run labels (e.g. job="job-3")
// apply only to the gauges, so the counter and histogram series stay
// bounded while per-run progress remains addressable.
const (
	MetricTrainEpochsTotal       = "eigenpro_train_epochs_total"
	MetricTrainItersTotal        = "eigenpro_train_iters_total"
	MetricTrainEpochSeconds      = "eigenpro_train_epoch_duration_seconds"
	MetricTrainDeviceBusyTotal   = "eigenpro_train_device_busy_seconds_total"
	MetricTrainEpoch             = "eigenpro_train_epoch"
	MetricTrainMSE               = "eigenpro_train_mse"
	MetricTrainValError          = "eigenpro_train_val_error"
	MetricTrainDeviceUtilization = "eigenpro_train_device_utilization"
)

// trainEpochBuckets spans 1ms .. ~17min of wall time per epoch.
var trainEpochBuckets = obs.ExpBuckets(1e-3, 2, 20)

// ObserveTraining returns a Config.OnEpoch hook that records per-epoch
// training telemetry into reg: epoch/iteration counters and an
// epoch-duration histogram (unlabeled, shared across runs), plus labeled
// gauges for the run's current epoch, train MSE, validation error, and
// simulated-device utilization (device-busy seconds per wall second,
// from the device.Clock totals EpochStats carries).
//
// base is the trainer's progress before the first observed epoch — zero
// for a fresh run, or the resumed trainer's cumulative Wall/SimTime/Iters
// so a checkpoint-resume does not re-count (or mis-size) the first delta.
// The hook is not safe for concurrent use, matching OnEpoch's contract
// (it runs synchronously on the training goroutine).
func ObserveTraining(reg *obs.Registry, base EpochStats, labels ...obs.Label) func(EpochStats) {
	if reg == nil {
		return func(EpochStats) {}
	}
	epochs := reg.Counter(MetricTrainEpochsTotal, "Completed training epochs across all runs.")
	iters := reg.Counter(MetricTrainItersTotal, "Completed optimizer iterations across all runs.")
	dur := reg.Histogram(MetricTrainEpochSeconds, "Wall time per training epoch.", trainEpochBuckets)
	busy := reg.Counter(MetricTrainDeviceBusyTotal, "Simulated device time charged by training.")
	epochG := reg.Gauge(MetricTrainEpoch, "Current epoch of the run.", labels...)
	mseG := reg.Gauge(MetricTrainMSE, "Last completed epoch's running train MSE.", labels...)
	utilG := reg.Gauge(MetricTrainDeviceUtilization,
		"Simulated-device busy seconds per wall second of training.", labels...)
	var valG *obs.Gauge // registered on first real validation value

	last := base
	return func(st EpochStats) {
		epochs.Inc()
		if d := st.Iters - last.Iters; d > 0 {
			iters.Add(float64(d))
		}
		dur.Observe((st.Wall - last.Wall).Seconds())
		busy.Add((st.SimTime - last.SimTime).Seconds())
		epochG.Set(float64(st.Epoch))
		mseG.Set(st.TrainMSE)
		if w := st.Wall.Seconds(); w > 0 {
			utilG.Set(st.SimTime.Seconds() / w)
		}
		if st.ValError == st.ValError { // not NaN
			if valG == nil {
				valG = reg.Gauge(MetricTrainValError, "Last epoch's validation classification error.", labels...)
			}
			valG.Set(st.ValError)
		}
		last = st
	}
}

// LogTraining returns a Config.OnEpoch hook that emits one wide
// obs.Event per completed epoch into log: the job name, the 1-based
// epoch, its ending train MSE, and the epoch's wall-clock and
// simulated-device-busy durations as deltas. base plays the same role as
// in ObserveTraining — a resumed trainer's cumulative totals, so the
// first logged epoch reports only its own work. Epoch events carry no
// Outcome, so the log's 1-in-N ok sampling never discards them.
func LogTraining(log *obs.EventLog, job string, base EpochStats) func(EpochStats) {
	if log == nil {
		return func(EpochStats) {}
	}
	last := base
	return func(st EpochStats) {
		ev := obs.Event{
			Level:      obs.LevelInfo,
			Kind:       obs.KindTrainEpoch,
			Job:        job,
			Epoch:      st.Epoch,
			MSE:        st.TrainMSE,
			Wall:       st.Wall - last.Wall,
			DeviceBusy: st.SimTime - last.SimTime,
		}
		if st.ValError == st.ValError { // not NaN (no validation set)
			ev.ValError = st.ValError
		}
		log.Emit(ev)
		last = st
	}
}

// ObserveTrainingBase derives the ObserveTraining base from a trainer's
// partial result, so a resumed run's telemetry continues from the
// checkpointed totals instead of re-counting them.
func ObserveTrainingBase(res *Result) EpochStats {
	return EpochStats{
		Epoch:   res.Epochs,
		SimTime: res.SimTime,
		Wall:    res.WallTime,
		Iters:   res.Iters,
	}
}

// UnobserveTraining removes the labeled per-run gauge series a
// ObserveTraining hook registered — the eviction path when the run's
// owner (e.g. a deleted training job) goes away.
func UnobserveTraining(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	for _, name := range []string{MetricTrainEpoch, MetricTrainMSE, MetricTrainValError, MetricTrainDeviceUtilization} {
		reg.Remove(name, labels...)
	}
}

// ChainEpochHooks composes OnEpoch hooks into one, skipping nils — the
// way a caller layers its own progress reporting on top of an
// ObserveTraining hook.
func ChainEpochHooks(hooks ...func(EpochStats)) func(EpochStats) {
	live := make([]func(EpochStats), 0, len(hooks))
	for _, h := range hooks {
		if h != nil {
			live = append(live, h)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(st EpochStats) {
		for _, h := range live {
			h(st)
		}
	}
}
