package core

import (
	"math/rand"
	"testing"

	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
)

func randModel(rng *rand.Rand, centers, dim, labels int) *Model {
	m := NewModel(kernel.Gaussian{Sigma: 1.5}, randDense(rng, centers, dim), labels)
	for i := range m.Alpha.Data {
		m.Alpha.Data[i] = rng.NormFloat64()
	}
	return m
}

func randDense(rng *rand.Rand, r, c int) *mat.Dense {
	d := mat.NewDense(r, c)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

// predictNaive is the reference: evaluate every (query, center) kernel
// entry and contract with Alpha, no blocking or goroutines.
func predictNaive(m *Model, xq *mat.Dense) *mat.Dense {
	out := mat.NewDense(xq.Rows, m.Alpha.Cols)
	for i := 0; i < xq.Rows; i++ {
		for c := 0; c < m.X.Rows; c++ {
			k := m.Kern.Eval(xq.RowView(i), m.X.RowView(c))
			for j := 0; j < m.Alpha.Cols; j++ {
				out.Data[i*out.Cols+j] += k * m.Alpha.At(c, j)
			}
		}
	}
	return out
}

func TestPredictBatchMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randModel(rng, 37, 6, 4)
	xq := randDense(rng, 53, 6)
	want := predictNaive(m, xq)
	// Chunk sizes exercising: single chunk, uneven tail, chunk=1, and the
	// default.
	for _, chunk := range []int{0, 1, 7, 53, 64} {
		got := m.PredictBatch(xq, chunk)
		if !mat.Equal(got, want, 1e-10) {
			t.Fatalf("chunk=%d: PredictBatch diverges from naive prediction", chunk)
		}
	}
	if got := m.Predict(xq); !mat.Equal(got, want, 1e-10) {
		t.Fatal("Predict diverges from naive prediction")
	}
}

func TestPredictBatchEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randModel(rng, 10, 3, 2)
	if out := m.PredictBatch(mat.NewDense(0, 3), 4); out.Rows != 0 || out.Cols != 2 {
		t.Fatalf("empty query: got %dx%d", out.Rows, out.Cols)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("feature mismatch did not panic")
		}
	}()
	m.PredictBatch(mat.NewDense(1, 4), 0)
}

func TestPredictOps(t *testing.T) {
	if got, want := PredictOps(100, 8, 20, 5), float64(100*8*25); got != want {
		t.Fatalf("PredictOps = %v, want %v", got, want)
	}
	if PredictOps(100, 8, 20, 5) != SGDIterOps(100, 8, 20, 5) {
		t.Fatal("PredictOps must match the SGD kernel+prediction cost")
	}
}
