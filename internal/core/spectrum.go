package core

import (
	"fmt"
	"math/rand"

	"eigenpro/internal/eigen"
	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
)

// Spectrum holds the Nyström estimate of the top of a kernel operator's
// spectrum built from an s-point subsample of the training data (paper §4).
//
// Eigenvalues of the normalized n x n kernel matrix K (K_ij = k(x_i,x_j)/n)
// are estimated as λ_i ≈ σ_i/s where σ_i are eigenvalues of the *unscaled*
// s x s subsample kernel matrix K_s. Eigenfunctions extend by the Nyström
// formula e_i(x) = (√s/σ_i) · v_iᵀ φ(x) with φ(x) = (k(x_r1,x), ...,
// k(x_rs,x))ᵀ, normalized so that (1/s) Σ_j e_i(x_rj)² = 1, which makes the
// Mercer expansion Σ_i λ_i e_i(x) e_i(z) ≈ k(x,z) hold on the subsample.
type Spectrum struct {
	// Kern is the kernel the spectrum was estimated for.
	Kern kernel.Func
	// SubIdx are the indices of the s subsample points in the training set.
	SubIdx []int
	// Xsub holds the subsample rows (s x d); these are the centers of the
	// preconditioner's fixed coordinate block.
	Xsub *mat.Dense
	// Sigma are the top eigenvalues of the unscaled s x s subsample kernel
	// matrix, descending.
	Sigma []float64
	// V stores the corresponding orthonormal eigenvectors as columns
	// (s x qmax).
	V *mat.Dense
	// Beta is β(K) = max_i k(x_i, x_i); 1 for the normalized radial
	// kernels in internal/kernel.
	Beta float64
}

// S returns the subsample size.
func (sp *Spectrum) S() int { return len(sp.SubIdx) }

// QMax returns the number of eigenpairs available.
func (sp *Spectrum) QMax() int { return len(sp.Sigma) }

// Lambda returns the estimate of λ_i(K) (1-indexed by paper convention;
// Lambda(1) is the top eigenvalue of the normalized kernel matrix).
func (sp *Spectrum) Lambda(i int) float64 {
	if i < 1 || i > len(sp.Sigma) {
		panic(fmt.Sprintf("core: Lambda(%d) with %d eigenvalues", i, len(sp.Sigma)))
	}
	return sp.Sigma[i-1] / float64(sp.S())
}

// SubsampleSize returns the paper's default fixed-coordinate-block size
// (§5: s = 2·10³ for n ≤ 10⁵, s = 1.2·10⁴ for larger n), clamped to n.
func SubsampleSize(n int) int {
	s := 2000
	if n > 100000 {
		s = 12000
	}
	if s > n {
		s = n
	}
	return s
}

// EstimateSpectrum draws s points uniformly without replacement, forms
// their kernel matrix, and extracts the top qmax eigenpairs. For subsample
// sizes up to a few hundred the full QL solver is used; larger subsamples
// use randomized block subspace iteration, which exploits the rapid
// eigendecay of kernel spectra.
func EstimateSpectrum(k kernel.Func, x *mat.Dense, s, qmax int, seed int64) (*Spectrum, error) {
	n := x.Rows
	if s < 2 || s > n {
		return nil, fmt.Errorf("core: subsample size %d out of [2,%d]", s, n)
	}
	if qmax < 1 || qmax >= s {
		return nil, fmt.Errorf("core: qmax %d out of [1,%d)", qmax, s)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(n)[:s]
	xsub := x.SelectRows(idx)
	ks := kernel.Gram(k, xsub)

	var sys *eigen.System
	var err error
	if s <= 400 {
		sys, err = eigen.Sym(ks)
		if err == nil {
			sys = sys.TopQ(qmax)
		}
	} else {
		sys, err = eigen.TopQSym(ks, qmax, eigen.TopQOptions{Iters: 12, Oversample: 20, Seed: seed + 1})
	}
	if err != nil {
		return nil, fmt.Errorf("core: subsample eigendecomposition: %w", err)
	}
	// Clamp tiny negative roundoff eigenvalues of the PSD matrix.
	for i, v := range sys.Values {
		if v < 0 {
			sys.Values[i] = 0
		}
	}
	return &Spectrum{
		Kern:   k,
		SubIdx: idx,
		Xsub:   xsub,
		Sigma:  sys.Values,
		V:      sys.Vectors,
		Beta:   kernel.Beta(k, x),
	}, nil
}

// EigenfunctionValues evaluates the first q Nyström-extended eigenfunctions
// at the rows of x, returning an x.Rows x q matrix with entries
// e_i(x_j) = (√s/σ_i) v_iᵀ φ(x_j). Eigenpairs with σ_i = 0 yield zeros.
func (sp *Spectrum) EigenfunctionValues(x *mat.Dense, q int) *mat.Dense {
	if q < 0 || q > sp.QMax() {
		panic(fmt.Sprintf("core: EigenfunctionValues q=%d out of [0,%d]", q, sp.QMax()))
	}
	phi := kernel.Matrix(sp.Kern, x, sp.Xsub) // n x s
	idx := make([]int, q)
	for i := range idx {
		idx[i] = i
	}
	e := mat.Mul(phi, sp.V.SelectCols(idx)) // n x q, = φᵀ v_i
	sqrtS := sqrtFloat(float64(sp.S()))
	for j := 0; j < q; j++ {
		var scale float64
		if sp.Sigma[j] > 0 {
			scale = sqrtS / sp.Sigma[j]
		}
		for i := 0; i < e.Rows; i++ {
			e.Set(i, j, e.At(i, j)*scale)
		}
	}
	return e
}
