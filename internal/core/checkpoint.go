package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"eigenpro/internal/device"
	"eigenpro/internal/mat"
)

// Checkpointing snapshots a Trainer at an epoch boundary so an interrupted
// run can be resumed — in the same process (the job manager's
// cancel-and-resume path) or a later one — and reproduce the uninterrupted
// run bit for bit. The snapshot stores everything that is either mutable
// (coefficients, history, clock, early-stopping counters) or expensive to
// recompute (the Nyström spectrum); the analytically selected parameters
// are deterministic functions of the spectrum, the device model, and the
// workload shape, so they are recomputed on resume rather than stored. The
// shuffling RNG has no exportable state; its position is reproduced by
// replaying the per-epoch permutations consumed so far, which is exact
// because the trainer draws from it only at epoch boundaries.
//
// The training data itself is NOT stored: the caller must hand the same
// x, y matrices to ResumeTrainer, and the checkpoint records their shape to
// reject mismatches.

// checkpointWire is the on-wire layout of a Trainer snapshot.
type checkpointWire struct {
	Version int

	// Config scalars (the non-serializable ValX/ValLabels/OnEpoch fields
	// are re-supplied by the ResumeTrainer caller).
	Method       int
	S, QMax, Q   int
	Batch        int
	Eta          float64
	Epochs       int
	MaxIters     int
	StopTrainMSE float64
	Patience     int
	Seed         int64

	// Device model and workload shape.
	Device  device.Device
	N, D, L int

	// Expensive precomputation.
	Spectrum spectrumWire

	// Mutable trainer state at the epoch boundary.
	Alpha        denseWire
	Epoch        int
	Iters        int
	History      []EpochStats
	ClockElapsed int64 // time.Duration
	ClockOps     float64
	ClockIters   int64
	Wall         int64 // time.Duration
	BestVal      float64
	SinceBest    int
	Converged    bool
	Done         bool
}

// Checkpoint writes a resumable snapshot of the trainer to w. It must be
// called between steps (the trainer only exists at epoch boundaries from
// the caller's point of view). The kernel must be one of the serializable
// families (see SaveModel).
func (t *Trainer) Checkpoint(w io.Writer) error {
	cfg := t.st.cfg
	spWire, err := spectrumWireOf(t.st.sp)
	if err != nil {
		return fmt.Errorf("core: Checkpoint: %w", err)
	}
	wire := checkpointWire{
		Version:      wireVersion,
		Method:       int(cfg.Method),
		S:            cfg.S,
		QMax:         cfg.QMax,
		Q:            cfg.Q,
		Batch:        cfg.Batch,
		Eta:          cfg.Eta,
		Epochs:       cfg.Epochs,
		MaxIters:     cfg.MaxIters,
		StopTrainMSE: cfg.StopTrainMSE,
		Patience:     cfg.Patience,
		Seed:         cfg.Seed,
		Device:       *t.dev,
		N:            t.n,
		D:            t.d,
		L:            t.l,
		Spectrum:     spWire,
		Alpha:        wireOf(t.st.model.Alpha),
		Epoch:        t.epoch,
		Iters:        t.res.Iters,
		History:      t.res.History,
		ClockElapsed: int64(t.clock.Elapsed()),
		ClockOps:     t.clock.Ops(),
		ClockIters:   t.clock.Iterations(),
		Wall:         int64(t.wall),
		BestVal:      t.bestVal,
		SinceBest:    t.sinceBest,
		Converged:    t.res.Converged,
		Done:         t.done,
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("core: Checkpoint: %w", err)
	}
	return nil
}

// ResumeTrainer reconstructs a Trainer from a checkpoint written by
// Trainer.Checkpoint. x and y must be the same matrices the original run
// trained on (the checkpoint stores only their shape); cfg contributes ONLY
// the fields a checkpoint cannot carry — ValX and ValLabels — and every
// other field is taken from the snapshot, so a resumed run continues under
// exactly the configuration it started with. Stepping the returned trainer
// to completion produces coefficients bit-identical to the uninterrupted
// run with the same seed.
func ResumeTrainer(r io.Reader, cfg Config, x, y *mat.Dense) (*Trainer, error) {
	var w checkpointWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("core: ResumeTrainer: %w", err)
	}
	if w.Version != wireVersion {
		return nil, fmt.Errorf("core: ResumeTrainer: unsupported version %d", w.Version)
	}
	sp, err := w.Spectrum.spectrum()
	if err != nil {
		return nil, fmt.Errorf("core: ResumeTrainer: %w", err)
	}
	if x == nil || y == nil {
		return nil, fmt.Errorf("core: ResumeTrainer: training data is required")
	}
	if x.Rows != w.N || x.Cols != w.D || y.Rows != w.N || y.Cols != w.L {
		return nil, fmt.Errorf("core: ResumeTrainer: data %dx%d/%dx%d does not match checkpointed %dx%d/%dx%d",
			x.Rows, x.Cols, y.Rows, y.Cols, w.N, w.D, w.N, w.L)
	}
	dev := w.Device
	resumed := Config{
		Kernel:       sp.Kern,
		Device:       &dev,
		Method:       Method(w.Method),
		S:            w.S,
		QMax:         w.QMax,
		Q:            w.Q,
		Batch:        w.Batch,
		Eta:          w.Eta,
		Epochs:       w.Epochs,
		MaxIters:     w.MaxIters,
		StopTrainMSE: w.StopTrainMSE,
		ValX:         cfg.ValX,
		ValLabels:    cfg.ValLabels,
		Patience:     w.Patience,
		Seed:         w.Seed,
		Spectrum:     sp,
	}
	t, err := NewTrainer(resumed, x, y)
	if err != nil {
		return nil, fmt.Errorf("core: ResumeTrainer: %w", err)
	}
	alpha, err := w.Alpha.dense()
	if err != nil {
		return nil, fmt.Errorf("core: ResumeTrainer: %w", err)
	}
	if alpha.Rows != t.st.model.Alpha.Rows || alpha.Cols != t.st.model.Alpha.Cols {
		return nil, fmt.Errorf("core: ResumeTrainer: coefficients %dx%d, model wants %dx%d",
			alpha.Rows, alpha.Cols, t.st.model.Alpha.Rows, t.st.model.Alpha.Cols)
	}
	if w.Epoch < 0 || len(w.History) != w.Epoch {
		// The trainer appends exactly one history entry per completed
		// epoch; anything else is a corrupt snapshot.
		return nil, fmt.Errorf("core: ResumeTrainer: inconsistent epoch %d for %d history entries", w.Epoch, len(w.History))
	}
	if w.Epoch > w.Epochs {
		// Also bounds the RNG replay below: a corrupt epoch count must
		// error, not spin.
		return nil, fmt.Errorf("core: ResumeTrainer: epoch %d beyond budget %d", w.Epoch, w.Epochs)
	}
	copy(t.st.model.Alpha.Data, alpha.Data)
	t.epoch = w.Epoch
	t.done = w.Done
	t.bestVal = w.BestVal
	t.sinceBest = w.SinceBest
	t.wall = time.Duration(w.Wall)
	t.clock.Restore(time.Duration(w.ClockElapsed), w.ClockOps, w.ClockIters)
	t.res.Iters = w.Iters
	t.res.Epochs = w.Epoch
	t.res.History = append([]EpochStats(nil), w.History...)
	t.res.Converged = w.Converged
	if len(w.History) > 0 {
		t.res.FinalTrainMSE = w.History[len(w.History)-1].TrainMSE
	}
	// The shuffling RNG is reproduced by position: discard the permutations
	// the completed epochs consumed.
	for i := 0; i < w.Epoch; i++ {
		t.st.rng.Perm(x.Rows)
	}
	return t, nil
}
