package core

// Per-iteration cost formulas from the paper's Table 1. All counts are in
// scalar multiply-add operations or float64 storage slots; n is the
// training-set size, m the batch size, d the feature dimension, l the label
// dimension, s the fixed coordinate block size, and q the EigenPro
// parameter. The trainers charge these to the simulated device and the
// Table 1 benchmark checks them against instrumented op counters.

// SGDIterOps returns the operations of one plain SGD iteration:
// n·m·(d+l) — evaluating the kernel rows (n·m·d) and the predictions
// (n·m·l).
func SGDIterOps(n, m, d, l int) float64 {
	return float64(n) * float64(m) * float64(d+l)
}

// PredictOps returns the operations of one blocked kernel-GEMM prediction
// of an m-row query batch against an n-center model: n·m·(d+l) — the same
// count as the kernel-row and prediction terms of an SGD iteration. The
// serving subsystem charges this to the simulated device per micro-batch.
func PredictOps(n, m, d, l int) float64 { return SGDIterOps(n, m, d, l) }

// ImprovedEigenProIterOps returns the operations of one improved EigenPro
// (Algorithm 1) iteration: SGD cost plus the s·m·q fixed-block correction.
func ImprovedEigenProIterOps(n, m, d, l, s, q int) float64 {
	return SGDIterOps(n, m, d, l) + float64(s)*float64(m)*float64(q)
}

// OriginalEigenProIterOps returns the operations of one original (2017)
// EigenPro iteration: SGD cost plus the n·m·q eigenfunction evaluation
// against full-size coefficient vectors.
func OriginalEigenProIterOps(n, m, d, l, q int) float64 {
	return SGDIterOps(n, m, d, l) + float64(n)*float64(m)*float64(q)
}

// SGDMemoryFloats returns the working-set size of SGD: n·(m+d+l) — training
// data (n·d), model weights (n·l), and the m·n mini-batch kernel matrix.
func SGDMemoryFloats(n, m, d, l int) int64 {
	return int64(n) * int64(m+d+l)
}

// ImprovedEigenProMemoryFloats returns Algorithm 1's working set:
// SGD plus the s·q fixed-block eigensystem.
func ImprovedEigenProMemoryFloats(n, m, d, l, s, q int) int64 {
	return SGDMemoryFloats(n, m, d, l) + int64(s)*int64(q)
}

// OriginalEigenProMemoryFloats returns the original EigenPro working set:
// SGD plus n·q full-size preconditioner vectors.
func OriginalEigenProMemoryFloats(n, m, d, l, q int) int64 {
	return SGDMemoryFloats(n, m, d, l) + int64(n)*int64(q)
}

// OverheadRatio returns (method cost − SGD cost)/SGD cost for the given
// per-iteration op counts; the paper reports this is < 1% for the improved
// iteration at production scale (n=10⁶, s=10⁴, d,m ~ 10³, q,l ~ 10²).
func OverheadRatio(methodOps, sgdOps float64) float64 {
	if sgdOps == 0 {
		return 0
	}
	return (methodOps - sgdOps) / sgdOps
}
