package core

import (
	"math"
	"testing"

	"eigenpro/internal/data"
	"eigenpro/internal/eigen"
	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
)

func testDataset(n int) *data.Dataset {
	return data.Generate(data.GenConfig{
		Name: "test", N: n, Dim: 20, Classes: 4, LatentDim: 6,
		Seed: 99,
	})
}

func TestSubsampleSizeRule(t *testing.T) {
	if got := SubsampleSize(50000); got != 2000 {
		t.Fatalf("s(5e4) = %d, want 2000", got)
	}
	if got := SubsampleSize(100000); got != 2000 {
		t.Fatalf("s(1e5) = %d, want 2000", got)
	}
	if got := SubsampleSize(200000); got != 12000 {
		t.Fatalf("s(2e5) = %d, want 12000", got)
	}
	if got := SubsampleSize(500); got != 500 {
		t.Fatalf("s(500) = %d, want 500 (clamped)", got)
	}
}

func TestEstimateSpectrumBasics(t *testing.T) {
	ds := testDataset(300)
	k := kernel.Gaussian{Sigma: 4}
	sp, err := EstimateSpectrum(k, ds.X, 120, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.S() != 120 || sp.QMax() != 20 {
		t.Fatalf("s=%d qmax=%d", sp.S(), sp.QMax())
	}
	if sp.Beta != 1 {
		t.Fatalf("beta = %v, want 1 for radial kernel", sp.Beta)
	}
	for i := 1; i < len(sp.Sigma); i++ {
		if sp.Sigma[i] > sp.Sigma[i-1]+1e-12 {
			t.Fatalf("sigma not descending: %v", sp.Sigma[:i+1])
		}
	}
	for _, s := range sp.Sigma {
		if s < 0 {
			t.Fatalf("negative sigma %v", s)
		}
	}
	// λ_i = σ_i/s and λ₁ must be within (0, β].
	l1 := sp.Lambda(1)
	if l1 <= 0 || l1 > sp.Beta+1e-12 {
		t.Fatalf("lambda1 = %v out of (0,1]", l1)
	}
}

func TestEstimateSpectrumMatchesFullEig(t *testing.T) {
	// With s = n the subsample matrix is the full Gram matrix: σ_i must
	// equal its eigenvalues exactly.
	ds := testDataset(80)
	k := kernel.Laplacian{Sigma: 5}
	sp, err := EstimateSpectrum(k, ds.X, 80, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := kernel.Gram(k, ds.X.SelectRows(sp.SubIdx))
	sys, err := eigen.Sym(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if math.Abs(sp.Sigma[i]-sys.Values[i]) > 1e-8 {
			t.Fatalf("sigma[%d] = %v, full eig %v", i, sp.Sigma[i], sys.Values[i])
		}
	}
}

func TestEstimateSpectrumLargeUsesSubspace(t *testing.T) {
	// s > 400 triggers the subspace-iteration path; verify residuals.
	ds := testDataset(600)
	k := kernel.Gaussian{Sigma: 4}
	sp, err := EstimateSpectrum(k, ds.X, 500, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := kernel.Gram(k, sp.Xsub)
	sys := &eigen.System{Values: sp.Sigma, Vectors: sp.V}
	if r := eigen.Residual(g, sys); r > 1e-5*float64(sp.S()) {
		t.Fatalf("subspace residual %v too large", r)
	}
}

func TestEstimateSpectrumErrors(t *testing.T) {
	ds := testDataset(50)
	k := kernel.Gaussian{Sigma: 2}
	if _, err := EstimateSpectrum(k, ds.X, 1, 1, 0); err == nil {
		t.Fatal("s=1 must error")
	}
	if _, err := EstimateSpectrum(k, ds.X, 60, 5, 0); err == nil {
		t.Fatal("s>n must error")
	}
	if _, err := EstimateSpectrum(k, ds.X, 20, 20, 0); err == nil {
		t.Fatal("qmax>=s must error")
	}
}

func TestEstimateSpectrumDeterministic(t *testing.T) {
	ds := testDataset(200)
	k := kernel.Gaussian{Sigma: 3}
	a, _ := EstimateSpectrum(k, ds.X, 100, 8, 7)
	b, _ := EstimateSpectrum(k, ds.X, 100, 8, 7)
	for i := range a.Sigma {
		if a.Sigma[i] != b.Sigma[i] {
			t.Fatal("spectrum not deterministic for fixed seed")
		}
	}
}

func TestEigenfunctionValuesNormalization(t *testing.T) {
	// (1/s) Σ_j e_i(x_rj)² ≈ 1: eigenfunctions are L²(subsample)-normalized.
	ds := testDataset(200)
	k := kernel.Gaussian{Sigma: 4}
	sp, err := EstimateSpectrum(k, ds.X, 150, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := sp.EigenfunctionValues(sp.Xsub, 6)
	for i := 0; i < 6; i++ {
		sum := 0.0
		for j := 0; j < sp.S(); j++ {
			sum += e.At(j, i) * e.At(j, i)
		}
		norm := sum / float64(sp.S())
		if math.Abs(norm-1) > 1e-6 {
			t.Fatalf("eigenfunction %d L² norm %v, want 1", i, norm)
		}
	}
}

func TestEigenfunctionMercerReconstruction(t *testing.T) {
	// Σ_i λ_i e_i(x) e_i(z) with all s eigenpairs reconstructs k(x,z) on
	// the subsample.
	ds := testDataset(60)
	k := kernel.Gaussian{Sigma: 4}
	s := 40
	sp, err := EstimateSpectrum(k, ds.X, s, s-1, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := sp.EigenfunctionValues(sp.Xsub, s-1)
	g := kernel.Gram(k, sp.Xsub)
	recon := mat.NewDense(s, s)
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			sum := 0.0
			for p := 0; p < s-1; p++ {
				sum += sp.Lambda(p+1) * e.At(i, p) * e.At(j, p)
			}
			recon.Set(i, j, sum)
		}
	}
	// Missing only the smallest eigenpair, so tolerance is the tail size.
	tail := sp.Sigma[s-2]
	if !mat.Equal(recon, g, tail+1e-6) {
		t.Fatal("Mercer reconstruction from Nyström eigenfunctions failed")
	}
}
