package core

import (
	"fmt"

	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
)

// SolveExact computes the minimum-norm interpolating solution α = K⁻¹ y
// directly via a (jittered) Cholesky factorization of the kernel matrix.
// It is O(n³) and intended for small problems: reference solutions in
// tests, and the "numerical convergence target" both SGD and the adaptive
// kernel must agree on (paper §2, Remark 2.2). jitter adds ridge
// regularization λI for numerically singular Gram matrices; pass 0 to try
// the pure interpolant first (a tiny jitter is retried automatically on
// failure).
func SolveExact(k kernel.Func, x, y *mat.Dense, jitter float64) (*Model, error) {
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("core: SolveExact %d samples with %d targets", x.Rows, y.Rows)
	}
	g := kernel.Gram(k, x)
	n := x.Rows
	for attempt := 0; attempt < 6; attempt++ {
		if jitter > 0 {
			for i := 0; i < n; i++ {
				g.Set(i, i, g.At(i, i)+jitter)
			}
		}
		l, err := mat.Cholesky(g)
		if err == nil {
			m := NewModel(k, x, y.Cols)
			m.Alpha = mat.CholeskySolveMat(l, y)
			return m, nil
		}
		// Escalate jitter and retry on numerically singular Gram matrices.
		if jitter == 0 {
			jitter = 1e-12
		} else {
			// Remove the jitter we already added before scaling it up, to
			// keep the total close to the new value.
			for i := 0; i < n; i++ {
				g.Set(i, i, g.At(i, i)-jitter)
			}
			jitter *= 100
		}
	}
	return nil, fmt.Errorf("core: SolveExact: Gram matrix not positive definite even with jitter")
}
