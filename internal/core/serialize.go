package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
)

// Serialization stores trained models and spectra with encoding/gob so a
// model trained once (the expensive part) can serve predictions in later
// processes — the deployment path a downstream user of the library needs.
// Kernels are stored by family name and bandwidth rather than by interface
// value, keeping the format stable across refactors.

// kernelSpec is the serializable description of a kernel.
type kernelSpec struct {
	Family string
	Sigma  float64
}

func specOf(k kernel.Func) (kernelSpec, error) {
	family, sigma, err := kernel.Family(k)
	if err != nil {
		return kernelSpec{}, fmt.Errorf("core: cannot serialize kernel: %w", err)
	}
	return kernelSpec{Family: family, Sigma: sigma}, nil
}

func (s kernelSpec) kernel() (kernel.Func, error) {
	k, err := kernel.ByName(s.Family, s.Sigma)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return k, nil
}

// denseWire is the serializable form of mat.Dense.
type denseWire struct {
	Rows, Cols int
	Data       []float64
}

func wireOf(d *mat.Dense) denseWire {
	if d == nil {
		return denseWire{}
	}
	return denseWire{Rows: d.Rows, Cols: d.Cols, Data: d.Data}
}

// dense validates the wire shape before wrapping the data: gob will happily
// decode a hand-corrupted header whose dimensions disagree with its payload,
// and NewDenseData panics on that mismatch.
func (w denseWire) dense() (*mat.Dense, error) {
	if w.Rows < 0 || w.Cols < 0 {
		return nil, fmt.Errorf("core: decode matrix: negative dimension %dx%d", w.Rows, w.Cols)
	}
	if w.Cols > 0 && w.Rows > math.MaxInt/w.Cols {
		return nil, fmt.Errorf("core: decode matrix: dimensions %dx%d overflow", w.Rows, w.Cols)
	}
	if len(w.Data) != w.Rows*w.Cols {
		return nil, fmt.Errorf("core: decode matrix: %d elements for %dx%d", len(w.Data), w.Rows, w.Cols)
	}
	if w.Rows == 0 && w.Cols == 0 {
		return mat.NewDense(0, 0), nil
	}
	return mat.NewDenseData(w.Rows, w.Cols, w.Data), nil
}

// modelWire is the on-wire layout of a Model.
type modelWire struct {
	Version int
	Kernel  kernelSpec
	X       denseWire
	Alpha   denseWire
}

const wireVersion = 1

// SaveModel writes m to w in gob format.
func SaveModel(w io.Writer, m *Model) error {
	spec, err := specOf(m.Kern)
	if err != nil {
		return err
	}
	enc := gob.NewEncoder(w)
	return enc.Encode(modelWire{
		Version: wireVersion,
		Kernel:  spec,
		X:       wireOf(m.X),
		Alpha:   wireOf(m.Alpha),
	})
}

// LoadModel reads a model previously written by SaveModel.
func LoadModel(r io.Reader) (*Model, error) {
	var w modelWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("core: LoadModel: %w", err)
	}
	if w.Version != wireVersion {
		return nil, fmt.Errorf("core: LoadModel: unsupported version %d", w.Version)
	}
	k, err := w.Kernel.kernel()
	if err != nil {
		return nil, err
	}
	x, err := w.X.dense()
	if err != nil {
		return nil, fmt.Errorf("core: LoadModel: %w", err)
	}
	alpha, err := w.Alpha.dense()
	if err != nil {
		return nil, fmt.Errorf("core: LoadModel: %w", err)
	}
	m := &Model{Kern: k, X: x, Alpha: alpha}
	if m.X.Rows != m.Alpha.Rows {
		return nil, fmt.Errorf("core: LoadModel: %d centers with %d coefficient rows", m.X.Rows, m.Alpha.Rows)
	}
	return m, nil
}

// spectrumWire is the on-wire layout of a Spectrum.
type spectrumWire struct {
	Version int
	Kernel  kernelSpec
	SubIdx  []int
	Xsub    denseWire
	Sigma   []float64
	V       denseWire
	Beta    float64
}

// spectrumWireOf captures a spectrum for encoding; the checkpoint format
// embeds the same layout.
func spectrumWireOf(sp *Spectrum) (spectrumWire, error) {
	spec, err := specOf(sp.Kern)
	if err != nil {
		return spectrumWire{}, err
	}
	return spectrumWire{
		Version: wireVersion,
		Kernel:  spec,
		SubIdx:  sp.SubIdx,
		Xsub:    wireOf(sp.Xsub),
		Sigma:   sp.Sigma,
		V:       wireOf(sp.V),
		Beta:    sp.Beta,
	}, nil
}

// spectrum validates a decoded wire spectrum and rebuilds the value.
func (w spectrumWire) spectrum() (*Spectrum, error) {
	if w.Version != wireVersion {
		return nil, fmt.Errorf("core: spectrum: unsupported version %d", w.Version)
	}
	k, err := w.Kernel.kernel()
	if err != nil {
		return nil, err
	}
	xsub, err := w.Xsub.dense()
	if err != nil {
		return nil, fmt.Errorf("core: spectrum: %w", err)
	}
	v, err := w.V.dense()
	if err != nil {
		return nil, fmt.Errorf("core: spectrum: %w", err)
	}
	sp := &Spectrum{
		Kern:   k,
		SubIdx: w.SubIdx,
		Xsub:   xsub,
		Sigma:  w.Sigma,
		V:      v,
		Beta:   w.Beta,
	}
	if len(sp.SubIdx) != sp.Xsub.Rows {
		return nil, fmt.Errorf("core: spectrum: %d indices with %d subsample rows", len(sp.SubIdx), sp.Xsub.Rows)
	}
	for _, idx := range sp.SubIdx {
		if idx < 0 {
			return nil, fmt.Errorf("core: spectrum: negative subsample index %d", idx)
		}
	}
	if sp.V.Rows != sp.Xsub.Rows {
		return nil, fmt.Errorf("core: spectrum: %d eigenvector rows with %d subsample rows", sp.V.Rows, sp.Xsub.Rows)
	}
	if len(sp.Sigma) != sp.V.Cols {
		return nil, fmt.Errorf("core: spectrum: %d eigenvalues with %d eigenvectors", len(sp.Sigma), sp.V.Cols)
	}
	return sp, nil
}

// SaveSpectrum writes sp to w in gob format so the Nyström eigensystem —
// the one non-trivial precomputation — can be reused across processes.
func SaveSpectrum(w io.Writer, sp *Spectrum) error {
	wire, err := spectrumWireOf(sp)
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(wire)
}

// LoadSpectrum reads a spectrum previously written by SaveSpectrum.
func LoadSpectrum(r io.Reader) (*Spectrum, error) {
	var w spectrumWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("core: LoadSpectrum: %w", err)
	}
	sp, err := w.spectrum()
	if err != nil {
		return nil, fmt.Errorf("core: LoadSpectrum: %w", err)
	}
	return sp, nil
}
