package core

import (
	"math"
	"testing"

	"eigenpro/internal/kernel"
	"eigenpro/internal/metrics"
)

func trainConfig(method Method) Config {
	return Config{
		Kernel: kernel.Gaussian{Sigma: 4},
		Device: testDevice(),
		Method: method,
		Epochs: 10,
		Seed:   5,
	}
}

func TestTrainBasicRuns(t *testing.T) {
	ds := testDataset(300)
	for _, method := range []Method{MethodSGD, MethodEigenPro1, MethodEigenPro2} {
		cfg := trainConfig(method)
		res, err := Train(cfg, ds.X, ds.Y)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if res.Epochs != cfg.Epochs {
			t.Fatalf("%v: ran %d epochs, want %d", method, res.Epochs, cfg.Epochs)
		}
		if res.Iters == 0 || res.SimTime <= 0 {
			t.Fatalf("%v: no iterations recorded", method)
		}
		if len(res.History) != res.Epochs {
			t.Fatalf("%v: history length %d", method, len(res.History))
		}
		if res.FinalTrainMSE <= 0 || math.IsNaN(res.FinalTrainMSE) {
			t.Fatalf("%v: final mse %v", method, res.FinalTrainMSE)
		}
		// Loss must drop substantially from the initial ~1/classes scale.
		first := res.History[0].TrainMSE
		if res.FinalTrainMSE > first {
			t.Fatalf("%v: loss grew from %v to %v", method, first, res.FinalTrainMSE)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	ds := testDataset(50)
	if _, err := Train(Config{Epochs: 1}, ds.X, ds.Y); err == nil {
		t.Fatal("missing kernel must error")
	}
	if _, err := Train(Config{Kernel: kernel.Gaussian{Sigma: 1}}, ds.X, ds.Y); err == nil {
		t.Fatal("epochs=0 must error")
	}
	if _, err := Train(trainConfig(MethodEigenPro2), ds.X.SliceRows(0, 10), ds.Y); err == nil {
		t.Fatal("row mismatch must error")
	}
	cfg := trainConfig(MethodEigenPro2)
	cfg.Q = 10000
	if _, err := Train(cfg, ds.X, ds.Y); err == nil {
		t.Fatal("oversized Q must error")
	}
	cfg = trainConfig(MethodEigenPro2)
	cfg.Eta = 1e9 // absurd step size must diverge and be reported
	cfg.Epochs = 100
	if _, err := Train(cfg, ds.X, ds.Y); err == nil {
		t.Fatal("divergence must error")
	}
}

func TestTrainDeterministic(t *testing.T) {
	ds := testDataset(200)
	cfg := trainConfig(MethodEigenPro2)
	a, err := Train(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Model.Alpha.Data {
		if a.Model.Alpha.Data[i] != b.Model.Alpha.Data[i] {
			t.Fatal("training not deterministic for fixed seed")
		}
	}
}

// Equivalence invariant 1: EigenPro 2.0 with q = 0 is exactly plain SGD —
// the correction term vanishes and every update coincides.
func TestEigenPro2WithQZeroEqualsSGD(t *testing.T) {
	ds := testDataset(200)
	cfgSGD := trainConfig(MethodSGD)
	cfgSGD.Batch = 32
	cfgSGD.Epochs = 3
	resSGD, err := Train(cfgSGD, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	// Force q=0 by giving EigenPro2 a device so tiny that Eq. 7 returns 0
	// is fragile; instead exploit that MethodSGD zeroes q and compare to
	// EigenPro2 run whose update degenerates: use Q=0 via method SGD... so
	// instead verify through the state machinery: an EigenPro2 run with
	// the same seed/batch and QAdjusted forced to 0 by a 1-batch device.
	cfg2 := cfgSGD
	cfg2.Method = MethodEigenPro2
	dev := *testDevice()
	dev.ParallelOps = 1 // m_max = 1 → ChooseQ yields tiny/0 q
	cfg2.Device = &dev
	cfg2.Batch = 32
	res2, err := Train(cfg2, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Params.QAdjusted != 0 {
		t.Skipf("device still selected q=%d; invariant needs q=0", res2.Params.QAdjusted)
	}
	// Same eta must have been derived for both (both use λ₁ when q=0).
	if math.Abs(resSGD.Params.Eta-res2.Params.Eta) > 1e-12 {
		t.Fatalf("eta differs: %v vs %v", resSGD.Params.Eta, res2.Params.Eta)
	}
	for i := range resSGD.Model.Alpha.Data {
		if resSGD.Model.Alpha.Data[i] != res2.Model.Alpha.Data[i] {
			t.Fatal("EigenPro2 with q=0 must reproduce SGD exactly")
		}
	}
}

// Equivalence invariant 2: the original and improved EigenPro iterations
// apply the same preconditioner P_q, so with identical q, batch size, step
// size and seed they produce the same model up to floating-point
// association.
func TestEigenPro1EquivalentToEigenPro2(t *testing.T) {
	ds := testDataset(250)
	base := trainConfig(MethodEigenPro2)
	base.S = 100 // strictly smaller than n so the cost profiles differ
	base.Q = 12
	base.Batch = 50
	base.Epochs = 4
	res2, err := Train(base, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := base
	cfg1.Method = MethodEigenPro1
	res1, err := Train(cfg1, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	maxDiff := 0.0
	for i := range res1.Model.Alpha.Data {
		d := math.Abs(res1.Model.Alpha.Data[i] - res2.Model.Alpha.Data[i])
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-8 {
		t.Fatalf("EigenPro1 vs EigenPro2 coefficient gap %v; preconditioners should coincide", maxDiff)
	}
	// But their cost profiles must differ: original pays n-scaled overhead.
	if res1.OpsPerIter <= res2.OpsPerIter {
		t.Fatalf("original EigenPro ops %v not above improved %v", res1.OpsPerIter, res2.OpsPerIter)
	}
}

// Equivalence invariant 3 (Remark 2.2): SGD and the adaptive kernel
// converge to the same interpolating solution; at numerical convergence
// both match the direct solve of Kα = y.
func TestConvergesToInterpolation(t *testing.T) {
	ds := testDataset(120)
	k := kernel.Gaussian{Sigma: 4}
	exact, err := SolveExact(k, ds.X, ds.Y, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Interpolation: f(x_i) = y_i.
	predExact := exact.Predict(ds.X)
	if mse := metrics.MSE(predExact, ds.Y); mse > 1e-10 {
		t.Fatalf("exact solve does not interpolate: mse %v", mse)
	}

	cfg := trainConfig(MethodEigenPro2)
	cfg.S = 120 // full subsample on this tiny problem
	cfg.QMax = 40
	cfg.Epochs = 4000
	cfg.StopTrainMSE = 1e-8
	res, err := Train(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("EigenPro2 failed to reach mse 1e-8 in %d epochs (mse %v)", res.Epochs, res.FinalTrainMSE)
	}
	pred := res.Model.Predict(ds.X)
	if mse := metrics.MSE(pred, ds.Y); mse > 1e-6 {
		t.Fatalf("trained model does not interpolate: mse %v", mse)
	}
	// Predictions at held-out points agree with the exact interpolant.
	probe := testDataset(40).X
	pa := res.Model.Predict(probe)
	pb := exact.Predict(probe)
	if mse := metrics.MSE(pa, pb); mse > 1e-4 {
		t.Fatalf("adaptive-kernel solution deviates from interpolant: mse %v", mse)
	}
}

// The core acceleration claim: with a device whose m_max far exceeds m*(k),
// EigenPro 2.0 reaches a loss threshold in fewer epochs than plain SGD at
// the same batch size.
func TestEigenPro2ConvergesFasterThanSGDAtLargeBatch(t *testing.T) {
	ds := testDataset(400)
	const batch = 200 // far above m*(k) which is < 20 here
	run := func(method Method) *Result {
		cfg := trainConfig(method)
		cfg.Batch = batch
		cfg.Epochs = 400
		cfg.StopTrainMSE = 5e-3
		res, err := Train(cfg, ds.X, ds.Y)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		return res
	}
	sgd := run(MethodSGD)
	ep2 := run(MethodEigenPro2)
	if !ep2.Converged {
		t.Fatalf("EigenPro2 did not converge (mse %v)", ep2.FinalTrainMSE)
	}
	if sgd.Converged && sgd.Epochs <= ep2.Epochs {
		t.Fatalf("SGD (%d epochs) not slower than EigenPro2 (%d epochs) at batch %d",
			sgd.Epochs, ep2.Epochs, batch)
	}
	if !sgd.Converged && sgd.FinalTrainMSE < ep2.FinalTrainMSE {
		t.Fatal("SGD reached lower loss despite saturation; unexpected")
	}
}

func TestEarlyStoppingOnValidation(t *testing.T) {
	ds := testDataset(300)
	train, val := ds.Split(0.8, 3)
	cfg := trainConfig(MethodEigenPro2)
	cfg.Epochs = 200
	cfg.ValX = val.X
	cfg.ValLabels = val.Labels
	cfg.Patience = 3
	res, err := Train(cfg, train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs >= cfg.Epochs {
		t.Fatalf("early stopping never triggered in %d epochs", res.Epochs)
	}
	last := res.History[len(res.History)-1]
	if math.IsNaN(last.ValError) {
		t.Fatal("validation error not recorded")
	}
}

func TestMaxItersBound(t *testing.T) {
	ds := testDataset(200)
	cfg := trainConfig(MethodEigenPro2)
	cfg.Batch = 10
	cfg.Epochs = 50
	cfg.MaxIters = 7
	res, err := Train(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 7 {
		t.Fatalf("Iters = %d, want 7", res.Iters)
	}
}

func TestSpectrumReuse(t *testing.T) {
	ds := testDataset(200)
	cfg := trainConfig(MethodEigenPro2)
	res1, err := Train(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Spectrum = res1.Spectrum
	res2, err := Train(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Spectrum != res1.Spectrum {
		t.Fatal("spectrum not reused")
	}
	for i := range res1.Model.Alpha.Data {
		if res1.Model.Alpha.Data[i] != res2.Model.Alpha.Data[i] {
			t.Fatal("reused spectrum changed the result")
		}
	}
}

func TestPredictLabelsAndGeneralization(t *testing.T) {
	ds := testDataset(500)
	train, test := ds.Split(0.8, 1)
	cfg := trainConfig(MethodEigenPro2)
	cfg.Epochs = 20
	res, err := Train(cfg, train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	labels := res.Model.PredictLabels(test.X)
	wrong := 0
	for i, l := range labels {
		if l != test.Labels[i] {
			wrong++
		}
	}
	errRate := float64(wrong) / float64(len(labels))
	// Well-separated synthetic clusters: should classify nearly perfectly.
	if errRate > 0.1 {
		t.Fatalf("test error %v too high for separable data", errRate)
	}
}

func TestMethodString(t *testing.T) {
	if MethodSGD.String() != "sgd" || MethodEigenPro1.String() != "eigenpro1" || MethodEigenPro2.String() != "eigenpro2" {
		t.Fatal("method names wrong")
	}
	if Method(9).String() != "Method(9)" {
		t.Fatal("unknown method formatting wrong")
	}
}

func TestCostFormulas(t *testing.T) {
	n, m, d, l, s, q := 1000, 100, 50, 10, 200, 20
	sgd := SGDIterOps(n, m, d, l)
	if sgd != 1000*100*60 {
		t.Fatalf("SGD ops = %v", sgd)
	}
	imp := ImprovedEigenProIterOps(n, m, d, l, s, q)
	if imp != sgd+200*100*20 {
		t.Fatalf("improved ops = %v", imp)
	}
	orig := OriginalEigenProIterOps(n, m, d, l, q)
	if orig != sgd+1000*100*20 {
		t.Fatalf("original ops = %v", orig)
	}
	if OverheadRatio(imp, sgd) >= OverheadRatio(orig, sgd) {
		t.Fatal("improved overhead must be below original")
	}
	if SGDMemoryFloats(n, m, d, l) != int64(1000*(100+50+10)) {
		t.Fatal("SGD memory wrong")
	}
	if ImprovedEigenProMemoryFloats(n, m, d, l, s, q)-SGDMemoryFloats(n, m, d, l) != int64(200*20) {
		t.Fatal("improved memory overhead wrong")
	}
	if OriginalEigenProMemoryFloats(n, m, d, l, q)-SGDMemoryFloats(n, m, d, l) != int64(1000*20) {
		t.Fatal("original memory overhead wrong")
	}
	// Paper's production-scale example: overhead < 1% for improved.
	bigSGD := SGDIterOps(1e6, 1000, 1000, 100)
	bigImp := ImprovedEigenProIterOps(1e6, 1000, 1000, 100, 1e4, 100)
	if r := OverheadRatio(bigImp, bigSGD); r >= 0.01 {
		t.Fatalf("production-scale improved overhead %v, want < 1%%", r)
	}
}

func TestSolveExactJitterEscalation(t *testing.T) {
	// Duplicate rows make the Gram matrix exactly singular; SolveExact
	// must fall back to jitter and still fit closely.
	ds := testDataset(60)
	x := ds.X.Clone()
	x.SetRow(1, x.RowView(0))
	y := ds.Y
	m, err := SolveExact(kernel.Gaussian{Sigma: 4}, x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0 and 1 have conflicting targets, so perfect interpolation is
	// impossible; just require a finite, small residual on the rest.
	pred := m.Predict(x)
	if math.IsNaN(pred.At(2, 0)) {
		t.Fatal("solution is NaN")
	}
}
