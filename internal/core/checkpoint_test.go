package core

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"eigenpro/internal/data"
	"eigenpro/internal/kernel"
)

// checkpointCfg is a small but non-trivial EigenPro2 configuration that
// exercises the preconditioner path and a ragged tail batch.
func checkpointCfg(method Method) Config {
	return Config{
		Kernel: kernel.Gaussian{Sigma: 5},
		Method: method,
		Epochs: 4,
		S:      120,
		Seed:   7,
	}
}

// stepUninterrupted trains to completion in one trainer and returns it.
func stepUninterrupted(t *testing.T, cfg Config, ds *data.Dataset) *Trainer {
	t.Helper()
	tr, err := NewTrainer(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	for !tr.Done() {
		if _, err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// TestCheckpointResumeBitIdentical checkpoints at EVERY epoch boundary,
// resumes from the snapshot, trains the rest of the run, and asserts the
// final coefficients are bit-identical to the uninterrupted run — the
// property that makes checkpoint/cancel/resume safe to use in the job
// manager.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	for _, method := range []Method{MethodEigenPro2, MethodSGD} {
		cfg := checkpointCfg(method)
		ds := data.MNISTLike(300, 11)
		ref := stepUninterrupted(t, cfg, ds)
		want := ref.Result()

		for stop := 0; stop <= cfg.Epochs; stop++ {
			tr, err := NewTrainer(cfg, ds.X, ds.Y)
			if err != nil {
				t.Fatal(err)
			}
			for e := 0; e < stop && !tr.Done(); e++ {
				if _, err := tr.Step(); err != nil {
					t.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := tr.Checkpoint(&buf); err != nil {
				t.Fatalf("%v stop %d: checkpoint: %v", method, stop, err)
			}
			res, err := ResumeTrainer(&buf, Config{}, ds.X, ds.Y)
			if err != nil {
				t.Fatalf("%v stop %d: resume: %v", method, stop, err)
			}
			if res.Epoch() != tr.Epoch() {
				t.Fatalf("%v stop %d: resumed at epoch %d, want %d", method, stop, res.Epoch(), tr.Epoch())
			}
			for !res.Done() {
				if _, err := res.Step(); err != nil {
					t.Fatal(err)
				}
			}
			got := res.Result()
			if got.Epochs != want.Epochs || got.Iters != want.Iters {
				t.Fatalf("%v stop %d: epochs/iters %d/%d, want %d/%d",
					method, stop, got.Epochs, got.Iters, want.Epochs, want.Iters)
			}
			for i, v := range got.Model.Alpha.Data {
				if v != want.Model.Alpha.Data[i] {
					t.Fatalf("%v stop %d: coefficient %d differs: %v != %v (bit-exactness violated)",
						method, stop, i, v, want.Model.Alpha.Data[i])
				}
			}
			if got.SimTime != want.SimTime {
				t.Fatalf("%v stop %d: sim time %v != %v", method, stop, got.SimTime, want.SimTime)
			}
			if len(got.History) != len(want.History) {
				t.Fatalf("%v stop %d: history %d entries, want %d", method, stop, len(got.History), len(want.History))
			}
			for i := range got.History {
				if got.History[i].TrainMSE != want.History[i].TrainMSE {
					t.Fatalf("%v stop %d: epoch %d mse %v != %v",
						method, stop, i+1, got.History[i].TrainMSE, want.History[i].TrainMSE)
				}
			}
		}
	}
}

// TestTrainMatchesSteppedTrainer pins the refactor: the one-shot Train and
// a manually stepped Trainer produce identical results.
func TestTrainMatchesSteppedTrainer(t *testing.T) {
	cfg := checkpointCfg(MethodEigenPro2)
	ds := data.MNISTLike(250, 13)
	res, err := Train(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	stepped := stepUninterrupted(t, cfg, ds).Result()
	if res.Epochs != stepped.Epochs || res.Iters != stepped.Iters {
		t.Fatalf("Train %d/%d vs stepped %d/%d", res.Epochs, res.Iters, stepped.Epochs, stepped.Iters)
	}
	for i, v := range res.Model.Alpha.Data {
		if v != stepped.Model.Alpha.Data[i] {
			t.Fatalf("coefficient %d differs: %v != %v", i, v, stepped.Model.Alpha.Data[i])
		}
	}
}

// TestTrainOnEpochCallback verifies the per-epoch progress hook fires once
// per epoch, in order.
func TestTrainOnEpochCallback(t *testing.T) {
	cfg := checkpointCfg(MethodEigenPro2)
	var seen []int
	cfg.OnEpoch = func(st EpochStats) { seen = append(seen, st.Epoch) }
	ds := data.MNISTLike(200, 17)
	res, err := Train(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != res.Epochs {
		t.Fatalf("callback fired %d times for %d epochs", len(seen), res.Epochs)
	}
	for i, e := range seen {
		if e != i+1 {
			t.Fatalf("callback order %v", seen)
		}
	}
}

// TestResumeValidation exercises the resume error paths: wrong data shape,
// truncated snapshots, and stepping a finished trainer.
func TestResumeValidation(t *testing.T) {
	cfg := checkpointCfg(MethodEigenPro2)
	ds := data.MNISTLike(200, 19)
	tr, err := NewTrainer(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	other := data.MNISTLike(150, 19)
	if _, err := ResumeTrainer(bytes.NewReader(snap), Config{}, other.X, other.Y); err == nil {
		t.Fatal("mismatched data shape must fail")
	}
	// A corrupt epoch count must error, not replay the RNG forever.
	var w checkpointWire
	if err := gob.NewDecoder(bytes.NewReader(snap)).Decode(&w); err != nil {
		t.Fatal(err)
	}
	reencode := func(w checkpointWire) *bytes.Buffer {
		var b bytes.Buffer
		if err := gob.NewEncoder(&b).Encode(w); err != nil {
			t.Fatal(err)
		}
		return &b
	}
	huge := w
	huge.Epoch = 1 << 40
	if _, err := ResumeTrainer(reencode(huge), Config{}, ds.X, ds.Y); err == nil {
		t.Fatal("epoch beyond budget must fail")
	}
	// Corrupt subsample indices must error, not panic in the
	// preconditioner.
	outOfRange := w
	outOfRange.Spectrum.SubIdx = append([]int(nil), w.Spectrum.SubIdx...)
	outOfRange.Spectrum.SubIdx[0] = ds.X.Rows + 7
	if _, err := ResumeTrainer(reencode(outOfRange), Config{}, ds.X, ds.Y); err == nil {
		t.Fatal("out-of-range subsample index must fail")
	}
	negative := w
	negative.Spectrum.SubIdx = append([]int(nil), w.Spectrum.SubIdx...)
	negative.Spectrum.SubIdx[0] = -1
	if _, err := ResumeTrainer(reencode(negative), Config{}, ds.X, ds.Y); err == nil {
		t.Fatal("negative subsample index must fail")
	}
	if _, err := ResumeTrainer(bytes.NewReader(snap[:len(snap)/3]), Config{}, ds.X, ds.Y); err == nil {
		t.Fatal("truncated checkpoint must fail")
	}
	if _, err := ResumeTrainer(bytes.NewReader(nil), Config{}, ds.X, ds.Y); err == nil {
		t.Fatal("empty checkpoint must fail")
	}

	for !tr.Done() {
		if _, err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Step(); err != ErrTrainingComplete {
		t.Fatalf("step after completion: %v", err)
	}
	// A checkpoint of a finished run resumes as finished.
	buf.Reset()
	if err := tr.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	fin, err := ResumeTrainer(&buf, Config{}, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if !fin.Done() {
		t.Fatal("finished checkpoint must resume as done")
	}
	if mse := fin.Result().FinalTrainMSE; math.IsNaN(mse) || mse <= 0 {
		t.Fatalf("final mse %v", mse)
	}
}
