package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"eigenpro/internal/device"
	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
	"eigenpro/internal/metrics"
)

// Method selects the optimization algorithm.
type Method int

const (
	// MethodEigenPro2 is the improved EigenPro iteration of Algorithm 1
	// (double coordinate block descent) whose overhead depends only on the
	// fixed block size s. It is the zero value, so a zero Config trains
	// with the paper's method.
	MethodEigenPro2 Method = iota
	// MethodSGD is plain mini-batch kernel SGD (randomized block
	// coordinate descent on Kα = y), the paper's Eq. 2/3.
	MethodSGD
	// MethodEigenPro1 is the original 2017 EigenPro iteration with
	// preconditioner vectors stored over all n coordinates; its overhead
	// scales with n (paper Table 1, "Original EigenPro").
	MethodEigenPro1
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case MethodSGD:
		return "sgd"
	case MethodEigenPro1:
		return "eigenpro1"
	case MethodEigenPro2:
		return "eigenpro2"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config controls a training run. The zero value of every optional field
// selects the paper's automatic choice.
type Config struct {
	// Kernel is required.
	Kernel kernel.Func
	// Device is the simulated resource used for batch-size selection and
	// virtual timing. Defaults to device.SimTitanXp().
	Device *device.Device
	// Method selects the optimizer; default MethodEigenPro2.
	Method Method
	// S is the fixed coordinate block (subsample) size; 0 selects the
	// paper's rule via SubsampleSize.
	S int
	// QMax bounds how many eigenpairs are estimated; 0 selects
	// min(S/4, 256).
	QMax int
	// Q overrides the automatic (Eq. 7 + AdjustQ) choice when > 0.
	Q int
	// Batch overrides m_max when > 0.
	Batch int
	// Eta overrides the analytic step size when > 0.
	Eta float64
	// Epochs is the maximum number of passes over the data (required > 0).
	Epochs int
	// MaxIters optionally bounds total iterations across epochs (0 = off).
	MaxIters int
	// StopTrainMSE stops training once the epoch's running train MSE
	// (mean pre-update mini-batch residual) drops below it (0 = off).
	StopTrainMSE float64
	// ValX/ValLabels enable early stopping on validation classification
	// error when Patience > 0: training stops after Patience epochs
	// without improvement.
	ValX      *mat.Dense
	ValLabels []int
	// Patience is the early-stopping patience in epochs (0 = off).
	Patience int
	// Seed fixes subsampling and batch shuffling.
	Seed int64
	// Spectrum optionally reuses a precomputed spectrum (must match
	// Kernel); nil estimates one.
	Spectrum *Spectrum
	// OnEpoch, when non-nil, is invoked by Train after every completed
	// epoch with that epoch's statistics — the progress hook the async job
	// manager (internal/jobs) and CLIs build on. It runs synchronously on
	// the training goroutine; it is not serialized into checkpoints.
	OnEpoch func(EpochStats)
}

// EpochStats records one epoch of training progress.
type EpochStats struct {
	// Epoch is 1-based.
	Epoch int
	// TrainMSE is the running mean of pre-update mini-batch residual MSE
	// over the epoch — the online estimate of the training loss.
	TrainMSE float64
	// ValError is the validation classification error, or NaN when no
	// validation set is configured.
	ValError float64
	// SimTime is the cumulative simulated device time at epoch end.
	SimTime time.Duration
	// Wall is the cumulative host wall time spent in Step at epoch end —
	// the denominator for device-utilization telemetry.
	Wall time.Duration
	// Iters is the cumulative iteration count at epoch end.
	Iters int
}

// Result reports a completed training run.
type Result struct {
	// Model is the trained predictor.
	Model *Model
	// Params are the analytically selected parameters actually used.
	Params Params
	// Spectrum is the Nyström spectrum used (reusable across runs).
	Spectrum *Spectrum
	// Method echoes the optimizer.
	Method Method
	// Epochs and Iters count completed work.
	Epochs, Iters int
	// SimTime is the simulated device time over all iterations; WallTime
	// is the measured host time of the training loop.
	SimTime, WallTime time.Duration
	// History holds per-epoch statistics.
	History []EpochStats
	// FinalTrainMSE is the last epoch's running train MSE.
	FinalTrainMSE float64
	// Converged reports whether StopTrainMSE was reached.
	Converged bool
	// OpsPerIter is the Table 1 per-iteration operation count charged to
	// the device for a full-size batch.
	OpsPerIter float64
	// MemFloats is the Table 1 working-set size.
	MemFloats int64
}

// Train fits a kernel machine on x (n x d) with one-hot targets y (n x l)
// using the configured method. It returns an error for invalid
// configurations; numerical divergence (NaN/Inf residuals) also aborts with
// an error. Train is NewTrainer followed by Step until completion — use the
// Trainer directly for progress-monitored, cancellable, or checkpointed
// training.
func Train(cfg Config, x, y *mat.Dense) (*Result, error) {
	t, err := NewTrainer(cfg, x, y)
	if err != nil {
		return nil, err
	}
	for !t.Done() {
		stats, err := t.Step()
		if err != nil {
			return nil, err
		}
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(stats)
		}
	}
	return t.Result(), nil
}

// NewTrainer validates the configuration, estimates (or adopts) the
// spectrum, selects the analytic parameters, and returns a Trainer
// positioned before epoch 1.
func NewTrainer(cfg Config, x, y *mat.Dense) (*Trainer, error) {
	if cfg.Kernel == nil {
		return nil, fmt.Errorf("core: Config.Kernel is required")
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("core: Config.Epochs must be >= 1, got %d", cfg.Epochs)
	}
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("core: %d samples with %d target rows", x.Rows, y.Rows)
	}
	if x.Rows < 4 {
		return nil, fmt.Errorf("core: need at least 4 samples, got %d", x.Rows)
	}
	n, d, l := x.Rows, x.Cols, y.Cols
	dev := cfg.Device
	if dev == nil {
		dev = device.SimTitanXp()
	}

	s := cfg.S
	if s == 0 {
		s = SubsampleSize(n)
	}
	if s > n {
		s = n
	}
	qmax := cfg.QMax
	if qmax == 0 {
		qmax = s / 4
		if qmax > 256 {
			qmax = 256
		}
		if qmax < 1 {
			qmax = 1
		}
	}
	if qmax >= s {
		qmax = s - 1
	}

	sp := cfg.Spectrum
	if sp == nil {
		var err error
		sp, err = EstimateSpectrum(cfg.Kernel, x, s, qmax, cfg.Seed)
		if err != nil {
			return nil, err
		}
	} else {
		if sp.QMax() < 1 {
			return nil, fmt.Errorf("core: provided spectrum has no eigenpairs")
		}
		// A supplied spectrum (user precomputation or a decoded
		// checkpoint) indexes the training rows through SubIdx; entries
		// outside [0, n) would panic deep in the preconditioner.
		for _, idx := range sp.SubIdx {
			if idx < 0 || idx >= n {
				return nil, fmt.Errorf("core: provided spectrum subsample index %d outside %d training rows", idx, n)
			}
		}
	}

	params := SelectParams(sp, dev, n, d, l)
	if cfg.Q > 0 {
		if cfg.Q > sp.QMax() {
			return nil, fmt.Errorf("core: Q=%d exceeds available eigenpairs %d", cfg.Q, sp.QMax())
		}
		params.QAdjusted = cfg.Q
		params.BetaAdapted = BetaPrecond(sp, cfg.Q)
		params.MStarAdapted = MStarPrecond(sp, cfg.Q)
	}
	if cfg.Method == MethodSGD {
		params.QAdjusted = 0
		params.BetaAdapted = sp.Beta
		params.MStarAdapted = params.MStarOriginal
	}
	if cfg.Batch > 0 {
		params.Batch = cfg.Batch
	}
	if params.Batch > n {
		params.Batch = n
	}
	q := params.QAdjusted
	if q > 0 {
		// Refine β(K_G) with a probe over extra training points: the
		// subsample-only estimate can miss high-leverage points, and an
		// underestimated β overestimates the safe step size.
		probeN := 2000
		if probeN > n {
			probeN = n
		}
		probeIdx := rand.New(rand.NewSource(cfg.Seed + 2)).Perm(n)[:probeN]
		if bProbe := BetaPrecondAt(sp, q, x.SelectRows(probeIdx)); bProbe > params.BetaAdapted {
			params.BetaAdapted = bProbe
			if lq := sp.Lambda(q); lq > 0 {
				params.MStarAdapted = params.BetaAdapted / lq
			}
		}
	}
	// Effective top eigenvalue after preconditioning governs the step size.
	lambdaTop := sp.Lambda(1)
	if q > 0 {
		lambdaTop = sp.Lambda(q)
	}
	params.Eta = StepSize(params.Batch, params.BetaAdapted, lambdaTop)
	if cfg.Eta > 0 {
		params.Eta = cfg.Eta
	}

	st, err := newTrainState(cfg, sp, params, x, y)
	if err != nil {
		return nil, err
	}
	return newTrainerFromState(st, dev, n, d, l), nil
}

// trainState holds per-run buffers and the precomputed preconditioner.
type trainState struct {
	cfg    Config
	sp     *Spectrum
	params Params
	x, y   *mat.Dense
	model  *Model

	// EigenPro2 pieces: top-q eigenvectors (s x q) and D diagonal.
	vq    *mat.Dense
	dDiag []float64
	// EigenPro1 pieces: dense n x q coefficient matrices. we holds the
	// eigenfunction-evaluation coefficients (√s/σ_i on subsample rows);
	// wc holds the correction coefficients ((1−σ_q/σ_i) V[j,i]/√s).
	we, wc *mat.Dense

	rng *rand.Rand
}

func newTrainState(cfg Config, sp *Spectrum, params Params, x, y *mat.Dense) (*trainState, error) {
	st := &trainState{
		cfg: cfg, sp: sp, params: params, x: x, y: y,
		model: NewModel(cfg.Kernel, x, y.Cols),
		rng:   rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	q := params.QAdjusted
	if cfg.Method == MethodSGD || q == 0 {
		return st, nil
	}
	sigQ := sp.Sigma[q-1]
	switch cfg.Method {
	case MethodEigenPro2:
		idx := make([]int, q)
		for i := range idx {
			idx[i] = i
		}
		st.vq = sp.V.SelectCols(idx)
		st.dDiag = make([]float64, q)
		for i := 0; i < q; i++ {
			if sp.Sigma[i] > 0 {
				st.dDiag[i] = (1 - sigQ/sp.Sigma[i]) / sp.Sigma[i]
			}
		}
	case MethodEigenPro1:
		n := x.Rows
		s := sp.S()
		sqrtS := math.Sqrt(float64(s))
		st.we = mat.NewDense(n, q)
		st.wc = mat.NewDense(n, q)
		for j, row := range sp.SubIdx {
			for i := 0; i < q; i++ {
				if sp.Sigma[i] <= 0 {
					continue
				}
				v := sp.V.At(j, i)
				st.we.Set(row, i, sqrtS/sp.Sigma[i]*v)
				st.wc.Set(row, i, (1-sigQ/sp.Sigma[i])*v/sqrtS)
			}
		}
	default:
		return nil, fmt.Errorf("core: unknown method %v", cfg.Method)
	}
	return st, nil
}

// iterOps returns the Table 1 operation count for a batch of size m.
func (st *trainState) iterOps(n, d, l, m int) float64 {
	q := st.params.QAdjusted
	switch st.cfg.Method {
	case MethodEigenPro2:
		return ImprovedEigenProIterOps(n, m, d, l, st.sp.S(), q)
	case MethodEigenPro1:
		return OriginalEigenProIterOps(n, m, d, l, q)
	default:
		return SGDIterOps(n, m, d, l)
	}
}

func (st *trainState) memFloats(n, d, l, m int) int64 {
	q := st.params.QAdjusted
	switch st.cfg.Method {
	case MethodEigenPro2:
		return ImprovedEigenProMemoryFloats(n, m, d, l, st.sp.S(), q)
	case MethodEigenPro1:
		return OriginalEigenProMemoryFloats(n, m, d, l, q)
	default:
		return SGDMemoryFloats(n, m, d, l)
	}
}

// ErrTrainingComplete is returned by Trainer.Step once training has
// finished (all epochs run, convergence, early stop, or a prior error).
var ErrTrainingComplete = errors.New("core: training already complete")

// Trainer is the interruptible state machine behind Train. NewTrainer does
// the setup (spectrum, analytic parameter selection, preconditioner); each
// Step runs exactly one epoch; between steps the trainer can be observed
// (Epoch, Result), checkpointed to an io.Writer, and later resumed with
// ResumeTrainer such that the resumed run reproduces an uninterrupted run
// bit for bit. A Trainer is not safe for concurrent use.
type Trainer struct {
	st    *trainState
	dev   *device.Device
	clock *device.Clock
	res   *Result

	n, d, l int
	epoch   int // completed epochs
	done    bool

	// Early-stopping state (validation patience).
	bestVal   float64
	sinceBest int

	// Reusable buffers for the full-size batches that dominate the run;
	// the (at most one per epoch) ragged tail batch allocates its own.
	kbBuf, fBuf *mat.Dense

	wall time.Duration // accumulated Step wall time
}

func newTrainerFromState(st *trainState, dev *device.Device, n, d, l int) *Trainer {
	m := st.params.Batch
	t := &Trainer{
		st:      st,
		dev:     dev,
		clock:   device.NewClock(dev),
		n:       n,
		d:       d,
		l:       l,
		bestVal: math.Inf(1),
		kbBuf:   mat.NewDense(m, n),
		fBuf:    mat.NewDense(m, st.y.Cols),
	}
	t.res = &Result{
		Model:      st.model,
		Params:     st.params,
		Spectrum:   st.sp,
		Method:     st.cfg.Method,
		OpsPerIter: st.iterOps(n, d, l, m),
		MemFloats:  st.memFloats(n, d, l, m),
	}
	return t
}

// Done reports whether training has finished: the epoch budget is spent,
// StopTrainMSE was reached, validation patience ran out, MaxIters was hit,
// or a Step failed.
func (t *Trainer) Done() bool { return t.done }

// Epoch returns the number of completed epochs.
func (t *Trainer) Epoch() int { return t.epoch }

// Result returns the training result accumulated so far. It is valid both
// after completion and between steps (partial history); SimTime and
// WallTime reflect the work done up to now.
func (t *Trainer) Result() *Result {
	t.res.SimTime = t.clock.Elapsed()
	t.res.WallTime = t.wall
	return t.res
}

// Step runs one epoch and returns its statistics. After the final epoch
// (or convergence / early stop) Done reports true and further Steps return
// ErrTrainingComplete. A divergence error also marks the trainer done.
func (t *Trainer) Step() (EpochStats, error) {
	if t.done {
		return EpochStats{}, ErrTrainingComplete
	}
	start := time.Now()
	defer func() { t.wall += time.Since(start) }()

	st, cfg, params, res := t.st, t.st.cfg, t.st.params, t.res
	n, d, l := t.n, t.d, t.l
	alpha := st.model.Alpha
	m := params.Batch
	eta := params.Eta
	epoch := t.epoch + 1

	perm := st.rng.Perm(n)
	sumSq, count := 0.0, 0
	for lo := 0; lo < n; lo += m {
		if cfg.MaxIters > 0 && res.Iters >= cfg.MaxIters {
			break
		}
		hi := lo + m
		if hi > n {
			hi = n
		}
		batch := perm[lo:hi]
		mt := len(batch)
		etaT := eta
		if mt != m {
			lambdaTop := st.sp.Lambda(1)
			if params.QAdjusted > 0 {
				lambdaTop = st.sp.Lambda(params.QAdjusted)
			}
			etaT = StepSize(mt, params.BetaAdapted, lambdaTop)
			if cfg.Eta > 0 {
				etaT = cfg.Eta * float64(mt) / float64(m)
			}
		}
		xb := st.x.SelectRows(batch)
		var kb, f *mat.Dense
		if mt == m {
			kernel.MatrixInto(t.kbBuf, cfg.Kernel, xb, st.x) // m x n
			kb = t.kbBuf
			mat.MulTo(t.fBuf, kb, alpha) // m x l
			f = t.fBuf
		} else {
			kb = kernel.Matrix(cfg.Kernel, xb, st.x)
			f = mat.Mul(kb, alpha)
		}
		// Residual r = f − y_batch; accumulate pre-update loss.
		r := f
		for t, row := range batch {
			yRow := st.y.RowView(row)
			rRow := r.RowView(t)
			for j := range rRow {
				rRow[j] -= yRow[j]
				sumSq += rRow[j] * rRow[j]
			}
		}
		count += mt * l
		scale := etaT * 2 / float64(mt)
		if math.IsNaN(sumSq) || math.IsInf(sumSq, 0) {
			t.done = true
			return EpochStats{}, fmt.Errorf("core: training diverged at epoch %d (method %v, eta %v)", epoch, cfg.Method, etaT)
		}
		// Step 3 (Algorithm 1): SGD update on the sampled block.
		for t, row := range batch {
			mat.Axpy(-scale, r.RowView(t), alpha.RowView(row))
		}
		// Steps 4-5: preconditioner correction.
		switch {
		case cfg.Method == MethodEigenPro2 && params.QAdjusted > 0:
			// Φ = kb columns at the subsample indices (transposed view).
			w := kb.SelectCols(st.sp.SubIdx) // m x s
			t1 := mat.TMul(w, r)             // s x l  (= Φ r)
			t2 := mat.TMul(st.vq, t1)        // q x l
			for i := 0; i < t2.Rows; i++ {
				di := st.dDiag[i]
				row := t2.RowView(i)
				for j := range row {
					row[j] *= di
				}
			}
			t3 := mat.Mul(st.vq, t2) // s x l
			for j, row := range st.sp.SubIdx {
				mat.Axpy(scale, t3.RowView(j), alpha.RowView(row))
			}
		case cfg.Method == MethodEigenPro1 && params.QAdjusted > 0:
			eb := mat.Mul(kb, st.we) // m x q eigenfunction values (n·m·q)
			t1 := mat.TMul(eb, r)    // q x l
			delta := mat.Mul(st.wc, t1)
			mat.AddScaledInPlace(alpha, scale, delta) // n·q·l
		}
		t.clock.Charge(st.iterOps(n, d, l, mt))
		res.Iters++
	}
	stats := EpochStats{
		Epoch:    epoch,
		TrainMSE: sumSq / float64(count),
		ValError: math.NaN(),
		SimTime:  t.clock.Elapsed(),
		Wall:     t.wall + time.Since(start),
		Iters:    res.Iters,
	}
	if cfg.ValX != nil && len(cfg.ValLabels) > 0 {
		stats.ValError = metrics.ClassificationError(st.model.Predict(cfg.ValX), cfg.ValLabels)
	}
	res.History = append(res.History, stats)
	res.Epochs = epoch
	res.FinalTrainMSE = stats.TrainMSE
	t.epoch = epoch
	if math.IsNaN(stats.TrainMSE) || stats.TrainMSE > 1e30 {
		t.done = true
		return stats, fmt.Errorf("core: training diverged at epoch %d (method %v, train mse %v)", epoch, cfg.Method, stats.TrainMSE)
	}
	if cfg.StopTrainMSE > 0 && stats.TrainMSE < cfg.StopTrainMSE {
		res.Converged = true
		t.done = true
	}
	if cfg.Patience > 0 && !math.IsNaN(stats.ValError) {
		if stats.ValError < t.bestVal-1e-12 {
			t.bestVal = stats.ValError
			t.sinceBest = 0
		} else {
			t.sinceBest++
			if t.sinceBest >= cfg.Patience {
				t.done = true
			}
		}
	}
	if cfg.MaxIters > 0 && res.Iters >= cfg.MaxIters {
		t.done = true
	}
	if epoch >= cfg.Epochs {
		t.done = true
	}
	return stats, nil
}
