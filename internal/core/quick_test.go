package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eigenpro/internal/data"
	"eigenpro/internal/kernel"
)

// Property: for random synthetic datasets and bandwidths, the estimated
// spectrum is positive, descending, and bounded by β·s (σ₁ ≤ s for
// normalized kernels since tr(K_s) = s).
func TestQuickSpectrumSanity(t *testing.T) {
	f := func(seed int64, sigmaRaw float64) bool {
		r := rand.New(rand.NewSource(seed))
		sigma := 0.5 + float64(int(sigmaRaw*100)%80)/10 // 0.5..8.4
		n := 60 + r.Intn(80)
		ds := data.Generate(data.GenConfig{
			Name: "q", N: n, Dim: 5 + r.Intn(15), Classes: 2 + r.Intn(3),
			Seed: seed,
		})
		s := n / 2
		sp, err := EstimateSpectrum(kernel.Gaussian{Sigma: sigma}, ds.X, s, 8, seed)
		if err != nil {
			return false
		}
		prev := float64(s) + 1e-9 // σ₁ ≤ tr(K_s) = s
		for _, v := range sp.Sigma {
			if v < 0 || v > prev {
				return false
			}
			prev = v
		}
		return sp.Lambda(1) <= 1+1e-9 && sp.Lambda(1) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Eq. 7's q is maximal — q satisfies the constraint and q+1
// violates it (or exhausts the spectrum) for random devices.
func TestQuickChooseQMaximal(t *testing.T) {
	ds := testDataset(200)
	sp, err := EstimateSpectrum(kernel.Gaussian{Sigma: 4}, ds.X, 100, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(mMaxRaw uint16) bool {
		mMax := 1 + int(mMaxRaw%20000)
		q := ChooseQ(sp, mMax)
		if q > 0 && MStarPrecond(sp, q) > float64(mMax) {
			return false
		}
		if q < sp.QMax() && sp.Lambda(q+1) > 0 && MStarPrecond(sp, q+1) <= float64(mMax) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the analytic step size is always positive, below the
// saturation cap 1/(2λ), and increasing in m.
func TestQuickStepSizeProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(5000)
		beta := 0.1 + 0.9*r.Float64()
		// Physical regime: λ₁(K) ≤ β(K) always holds for kernel matrices
		// (the top eigenvalue of a PSD matrix is at most its max diagonal
		// times n... bounded here by β for the normalized convention).
		lam := (1e-6 + r.Float64()) * beta / 2
		eta := StepSize(m, beta, lam)
		if eta <= 0 {
			return false
		}
		if eta >= 1/(2*lam)+1e-9 {
			return false
		}
		return StepSize(m+1, beta, lam) > eta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: training never increases the epoch-average loss by more than
// noise between the first and last epoch for auto-selected parameters,
// across random small datasets.
func TestQuickTrainingImprovesLoss(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 80 + r.Intn(80)
		ds := data.Generate(data.GenConfig{
			Name: "q", N: n, Dim: 8 + r.Intn(16), Classes: 2 + r.Intn(4),
			Seed: seed,
		})
		res, err := Train(Config{
			Kernel: kernel.Gaussian{Sigma: 3},
			Device: testDevice(),
			Epochs: 4,
			Seed:   seed,
		}, ds.X, ds.Y)
		if err != nil {
			return false
		}
		return res.FinalTrainMSE <= res.History[0].TrainMSE*1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
