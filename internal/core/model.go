package core

import (
	"fmt"

	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
)

// Model is a trained kernel machine f(x) = Σ_i α_i k(x_i, x) with one
// coefficient row per training sample and one coefficient column per output
// dimension.
type Model struct {
	// Kern is the kernel used at training time. Prediction always uses the
	// original kernel: the EigenPro preconditioner changes the optimization
	// path, not the predictor (paper §1, "mathematically equivalent
	// prediction function").
	Kern kernel.Func
	// X holds the training samples / kernel centers (n x d).
	X *mat.Dense
	// Alpha holds the model coefficients (n x l).
	Alpha *mat.Dense
}

// NewModel returns a zero-initialized model over the given centers.
func NewModel(k kernel.Func, x *mat.Dense, labels int) *Model {
	return &Model{Kern: k, X: x, Alpha: mat.NewDense(x.Rows, labels)}
}

// Predict evaluates the model on the rows of xq, returning an
// xq.Rows x l matrix. Large query sets are processed in row blocks to bound
// the size of the intermediate kernel matrix.
func (m *Model) Predict(xq *mat.Dense) *mat.Dense {
	if xq.Cols != m.X.Cols {
		panic(fmt.Sprintf("core: Predict on %d features, model has %d", xq.Cols, m.X.Cols))
	}
	const block = 2048
	out := mat.NewDense(xq.Rows, m.Alpha.Cols)
	for lo := 0; lo < xq.Rows; lo += block {
		hi := lo + block
		if hi > xq.Rows {
			hi = xq.Rows
		}
		kb := kernel.Matrix(m.Kern, xq.SliceRows(lo, hi), m.X)
		pb := mat.Mul(kb, m.Alpha)
		for i := lo; i < hi; i++ {
			copy(out.RowView(i), pb.RowView(i-lo))
		}
	}
	return out
}

// PredictLabels returns the argmax class index of each prediction row.
func (m *Model) PredictLabels(xq *mat.Dense) []int {
	pred := m.Predict(xq)
	out := make([]int, pred.Rows)
	for i := range out {
		out[i] = mat.ArgMaxRow(pred.RowView(i))
	}
	return out
}
