package core

import (
	"fmt"
	"runtime"
	"sync"

	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
)

// Model is a trained kernel machine f(x) = Σ_i α_i k(x_i, x) with one
// coefficient row per training sample and one coefficient column per output
// dimension.
type Model struct {
	// Kern is the kernel used at training time. Prediction always uses the
	// original kernel: the EigenPro preconditioner changes the optimization
	// path, not the predictor (paper §1, "mathematically equivalent
	// prediction function").
	Kern kernel.Func
	// X holds the training samples / kernel centers (n x d).
	X *mat.Dense
	// Alpha holds the model coefficients (n x l).
	Alpha *mat.Dense
}

// NewModel returns a zero-initialized model over the given centers.
func NewModel(k kernel.Func, x *mat.Dense, labels int) *Model {
	return &Model{Kern: k, X: x, Alpha: mat.NewDense(x.Rows, labels)}
}

// Predict evaluates the model on the rows of xq, returning an
// xq.Rows x l matrix. Large query sets are processed in row blocks to bound
// the size of the intermediate kernel matrix.
func (m *Model) Predict(xq *mat.Dense) *mat.Dense {
	return m.PredictBatch(xq, 0)
}

// defaultPredictChunk bounds the rows of one blocked kernel-GEMM evaluation
// so the intermediate chunk x n kernel matrix stays cache- and
// memory-friendly.
const defaultPredictChunk = 2048

// PredictBatch evaluates the model on the rows of xq in row chunks of the
// given size (<= 0 selects the default), fanning independent chunks out to
// parallel goroutines. Each chunk is one blocked kernel-GEMM evaluation:
// a chunk x n kernel matrix followed by a chunk x l coefficient product.
// This is the serving fast path; Predict delegates to it.
func (m *Model) PredictBatch(xq *mat.Dense, chunk int) *mat.Dense {
	if xq.Cols != m.X.Cols {
		panic(fmt.Sprintf("core: Predict on %d features, model has %d", xq.Cols, m.X.Cols))
	}
	if chunk <= 0 {
		chunk = defaultPredictChunk
	}
	out := mat.NewDense(xq.Rows, m.Alpha.Cols)
	if xq.Rows == 0 {
		return out
	}
	if xq.Rows <= chunk {
		m.predictChunkInto(out, xq)
		return out
	}
	// The kernel and GEMM primitives already fan each chunk out across
	// GOMAXPROCS row workers, so chunk-level concurrency only buys overlap
	// of their serial sections. Cap it low: more would oversubscribe the
	// scheduler (up to GOMAXPROCS² runnable goroutines) and multiply peak
	// kernel-matrix memory, which stays at O(cap · chunk · n) floats.
	maxInflight := runtime.GOMAXPROCS(0)
	if maxInflight > 4 {
		maxInflight = 4
	}
	sem := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup
	for lo := 0; lo < xq.Rows; lo += chunk {
		hi := lo + chunk
		if hi > xq.Rows {
			hi = xq.Rows
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(lo, hi int) {
			defer wg.Done()
			defer func() { <-sem }()
			src := mat.NewDenseData(hi-lo, xq.Cols, xq.Data[lo*xq.Cols:hi*xq.Cols])
			dst := mat.NewDenseData(hi-lo, out.Cols, out.Data[lo*out.Cols:hi*out.Cols])
			m.predictChunkInto(dst, src)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// predictChunkInto computes dst = K(block, X) · Alpha for one row block.
func (m *Model) predictChunkInto(dst, block *mat.Dense) {
	kb := kernel.Matrix(m.Kern, block, m.X)
	mat.MulTo(dst, kb, m.Alpha)
}

// PredictLabels returns the argmax class index of each prediction row.
func (m *Model) PredictLabels(xq *mat.Dense) []int {
	pred := m.Predict(xq)
	out := make([]int, pred.Rows)
	for i := range out {
		out[i] = mat.ArgMaxRow(pred.RowView(i))
	}
	return out
}
