package core

import (
	"fmt"
	"math"
	"math/rand"

	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
	"eigenpro/internal/metrics"
)

// BandwidthCandidate pairs a kernel with its cross-validation score.
type BandwidthCandidate struct {
	// Kernel is the candidate kernel.
	Kernel kernel.Func
	// Error is the mean validation classification error across folds.
	Error float64
}

// BandwidthConfig controls SelectBandwidth.
type BandwidthConfig struct {
	// Subsample is the number of points used for cross-validation
	// (paper Appendix B: "the kernel bandwidth σ is selected through
	// cross-validation on a small subsampled dataset"). Default
	// min(n, 600).
	Subsample int
	// Folds is the number of CV folds (default 3).
	Folds int
	// Epochs is the training budget per fold (default 5).
	Epochs int
	// Seed fixes subsampling and fold assignment.
	Seed int64
}

// SelectBandwidth picks the kernel with the lowest k-fold validation
// classification error on a subsample, training each fold with EigenPro 2.0
// and automatic parameters. It returns the winner together with the scored
// candidate list (sorted as given). labels must parallel x rows; y is the
// one-hot encoding.
func SelectBandwidth(cands []kernel.Func, x, y *mat.Dense, labels []int, cfg BandwidthConfig) (kernel.Func, []BandwidthCandidate, error) {
	if len(cands) == 0 {
		return nil, nil, fmt.Errorf("core: SelectBandwidth with no candidates")
	}
	n := x.Rows
	if y.Rows != n || len(labels) != n {
		return nil, nil, fmt.Errorf("core: SelectBandwidth shape mismatch: x=%d y=%d labels=%d", n, y.Rows, len(labels))
	}
	sub := cfg.Subsample
	if sub == 0 {
		sub = 600
	}
	if sub > n {
		sub = n
	}
	folds := cfg.Folds
	if folds == 0 {
		folds = 3
	}
	if folds < 2 || sub/folds < 4 {
		return nil, nil, fmt.Errorf("core: SelectBandwidth needs >= 2 folds with >= 4 points each (subsample %d, folds %d)", sub, folds)
	}
	epochs := cfg.Epochs
	if epochs == 0 {
		epochs = 5
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := rng.Perm(n)[:sub]
	xs := x.SelectRows(idx)
	ys := y.SelectRows(idx)
	ls := make([]int, sub)
	for i, j := range idx {
		ls[i] = labels[j]
	}

	scored := make([]BandwidthCandidate, len(cands))
	for ci, k := range cands {
		total, counted := 0.0, 0
		for f := 0; f < folds; f++ {
			var trainIdx, valIdx []int
			for i := 0; i < sub; i++ {
				if i%folds == f {
					valIdx = append(valIdx, i)
				} else {
					trainIdx = append(trainIdx, i)
				}
			}
			res, err := Train(Config{
				Kernel: k,
				Method: MethodEigenPro2,
				Epochs: epochs,
				Seed:   cfg.Seed + int64(f),
			}, xs.SelectRows(trainIdx), ys.SelectRows(trainIdx))
			if err != nil {
				// A diverging candidate is scored as maximally bad rather
				// than aborting the search.
				total += 1
				counted++
				continue
			}
			valLabels := make([]int, len(valIdx))
			for vi, i := range valIdx {
				valLabels[vi] = ls[i]
			}
			pred := res.Model.Predict(xs.SelectRows(valIdx))
			total += metrics.ClassificationError(pred, valLabels)
			counted++
		}
		scored[ci] = BandwidthCandidate{Kernel: k, Error: total / float64(counted)}
	}

	best := 0
	for i := 1; i < len(scored); i++ {
		if scored[i].Error < scored[best].Error {
			best = i
		}
	}
	if math.IsNaN(scored[best].Error) {
		return nil, scored, fmt.Errorf("core: SelectBandwidth: all candidates failed")
	}
	return scored[best].Kernel, scored, nil
}

// GaussianBandwidthLadder returns Gaussian kernels with bandwidths spaced
// geometrically around an estimate of the median pairwise distance of a
// data subsample — a standard starting grid for the paper's
// cross-validation step.
func GaussianBandwidthLadder(x *mat.Dense, rungs int, seed int64) []kernel.Func {
	med := MedianPairwiseDistance(x, 256, seed)
	if med == 0 {
		med = 1
	}
	if rungs < 1 {
		rungs = 5
	}
	out := make([]kernel.Func, rungs)
	for i := range out {
		factor := math.Pow(2, float64(i)-float64(rungs-1)/2)
		out[i] = kernel.Gaussian{Sigma: med * factor}
	}
	return out
}

// MedianPairwiseDistance estimates the median Euclidean distance between
// rows of x from a random subsample of at most maxPoints rows.
func MedianPairwiseDistance(x *mat.Dense, maxPoints int, seed int64) float64 {
	n := x.Rows
	if n < 2 {
		return 0
	}
	if maxPoints < 2 {
		maxPoints = 2
	}
	if maxPoints > n {
		maxPoints = n
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(n)[:maxPoints]
	sub := x.SelectRows(idx)
	d2 := kernel.PairwiseSqDist(sub, sub)
	var dists []float64
	for i := 0; i < maxPoints; i++ {
		for j := 0; j < i; j++ {
			dists = append(dists, math.Sqrt(d2.At(i, j)))
		}
	}
	if len(dists) == 0 {
		return 0
	}
	// Median by partial selection.
	k := len(dists) / 2
	return quickSelect(dists, k)
}

// quickSelect returns the k-th smallest element (0-indexed), reordering s.
func quickSelect(s []float64, k int) float64 {
	lo, hi := 0, len(s)-1
	for lo < hi {
		pivot := s[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for s[i] < pivot {
				i++
			}
			for s[j] > pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return s[k]
}
