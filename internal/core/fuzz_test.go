package core

import (
	"bytes"
	"testing"

	"eigenpro/internal/data"
	"eigenpro/internal/kernel"
)

// fuzzModelBytes returns a valid SaveModel encoding to seed the corpus.
func fuzzModelBytes(tb testing.TB) []byte {
	tb.Helper()
	ds := data.SUSYLike(16, 1)
	m := NewModel(kernel.Gaussian{Sigma: 2}, ds.X, ds.Y.Cols)
	copy(m.Alpha.Data, ds.Y.Data)
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSpectrumBytes returns a valid SaveSpectrum encoding.
func fuzzSpectrumBytes(tb testing.TB) []byte {
	tb.Helper()
	ds := data.SUSYLike(32, 2)
	sp, err := EstimateSpectrum(kernel.Laplacian{Sigma: 2}, ds.X, 16, 4, 3)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSpectrum(&buf, sp); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadModel hardens the gob deployment path against truncated and
// corrupt artifacts: LoadModel must return an error, never panic, and any
// accepted model must satisfy its shape invariants.
func FuzzLoadModel(f *testing.F) {
	valid := fuzzModelBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:1])
	f.Add([]byte{})
	f.Add([]byte("not gob data"))
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := LoadModel(bytes.NewReader(b))
		if err != nil {
			return
		}
		if m.Kern == nil || m.X == nil || m.Alpha == nil {
			t.Fatal("accepted model with nil pieces")
		}
		if m.X.Rows != m.Alpha.Rows {
			t.Fatalf("accepted model with %d centers, %d coefficient rows", m.X.Rows, m.Alpha.Rows)
		}
		if len(m.X.Data) != m.X.Rows*m.X.Cols || len(m.Alpha.Data) != m.Alpha.Rows*m.Alpha.Cols {
			t.Fatal("accepted model with inconsistent backing storage")
		}
	})
}

// FuzzLoadSpectrum is the same hardening for the spectrum artifact.
func FuzzLoadSpectrum(f *testing.F) {
	valid := fuzzSpectrumBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/3])
	f.Add([]byte{})
	f.Add([]byte("junk"))
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/3] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, b []byte) {
		sp, err := LoadSpectrum(bytes.NewReader(b))
		if err != nil {
			return
		}
		if sp.Kern == nil || sp.Xsub == nil || sp.V == nil {
			t.Fatal("accepted spectrum with nil pieces")
		}
		if len(sp.SubIdx) != sp.Xsub.Rows || sp.V.Rows != sp.Xsub.Rows || len(sp.Sigma) != sp.V.Cols {
			t.Fatalf("accepted spectrum with inconsistent shapes: %d idx, %dx%d xsub, %dx%d v, %d sigma",
				len(sp.SubIdx), sp.Xsub.Rows, sp.Xsub.Cols, sp.V.Rows, sp.V.Cols, len(sp.Sigma))
		}
	})
}

// FuzzResumeTrainer hardens checkpoint decoding the same way: arbitrary
// bytes must error cleanly, never panic.
func FuzzResumeTrainer(f *testing.F) {
	ds := data.SUSYLike(40, 4)
	tr, err := NewTrainer(Config{Kernel: kernel.Gaussian{Sigma: 2}, Epochs: 2, S: 16, Seed: 4}, ds.X, ds.Y)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := tr.Step(); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Checkpoint(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/4] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, b []byte) {
		res, err := ResumeTrainer(bytes.NewReader(b), Config{}, ds.X, ds.Y)
		if err != nil {
			return
		}
		// A resumable trainer must be steppable (or already done) without
		// panicking.
		if !res.Done() {
			if _, err := res.Step(); err != nil && err != ErrTrainingComplete {
				// Divergence from fuzzed coefficients is a clean error.
				return
			}
		}
	})
}
