package svm

import (
	"math"
	"testing"

	"eigenpro/internal/data"
	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
)

func testDataset(n int) *data.Dataset {
	return data.Generate(data.GenConfig{
		Name: "test", N: n, Dim: 10, Classes: 3, LatentDim: 5, Seed: 55,
	})
}

func binaryLabels(ds *data.Dataset, positive int) []float64 {
	y := make([]float64, ds.N())
	for i, l := range ds.Labels {
		if l == positive {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	return y
}

func svmConfig() Config {
	return Config{Kernel: kernel.Gaussian{Sigma: 3}, C: 10, Seed: 2}
}

func TestTrainBinarySeparable(t *testing.T) {
	ds := testDataset(200)
	y := binaryLabels(ds, 0)
	m, err := TrainBinary(svmConfig(), ds.X, y)
	if err != nil {
		t.Fatal(err)
	}
	scores := m.DecisionBatch(ds.X)
	wrong := 0
	for i, s := range scores {
		if s*y[i] <= 0 {
			wrong++
		}
	}
	if frac := float64(wrong) / float64(len(y)); frac > 0.05 {
		t.Fatalf("binary train error %v too high", frac)
	}
	if m.SupportX.Rows == 0 || m.SupportX.Rows == ds.N() {
		t.Fatalf("suspicious support vector count %d of %d", m.SupportX.Rows, ds.N())
	}
}

func TestTrainBinaryErrors(t *testing.T) {
	ds := testDataset(20)
	if _, err := TrainBinary(Config{}, ds.X, binaryLabels(ds, 0)); err == nil {
		t.Fatal("missing kernel must error")
	}
	if _, err := TrainBinary(svmConfig(), ds.X, []float64{1, -1}); err == nil {
		t.Fatal("label count mismatch must error")
	}
	bad := binaryLabels(ds, 0)
	bad[3] = 0.5
	if _, err := TrainBinary(svmConfig(), ds.X, bad); err == nil {
		t.Fatal("non-±1 label must error")
	}
}

func TestDecisionMatchesBatch(t *testing.T) {
	ds := testDataset(100)
	m, err := TrainBinary(svmConfig(), ds.X, binaryLabels(ds, 1))
	if err != nil {
		t.Fatal(err)
	}
	batch := m.DecisionBatch(ds.X)
	for i := 0; i < 10; i++ {
		single := m.Decision(ds.X.RowView(i))
		if math.Abs(single-batch[i]) > 1e-10 {
			t.Fatalf("Decision[%d] %v != batch %v", i, single, batch[i])
		}
	}
}

func TestBoxConstraintRespected(t *testing.T) {
	ds := testDataset(150)
	cfg := svmConfig()
	cfg.C = 0.5
	m, err := TrainBinary(cfg, ds.X, binaryLabels(ds, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Coef {
		if math.Abs(c) > cfg.C+1e-9 {
			t.Fatalf("|α·y| = %v exceeds C = %v", math.Abs(c), cfg.C)
		}
	}
}

func TestMulticlassSequentialAndParallelAgree(t *testing.T) {
	ds := testDataset(200)
	seqRes, err := Train(svmConfig(), ds.X, ds.Labels, ds.Classes)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := svmConfig()
	parCfg.Parallel = true
	parRes, err := Train(parCfg, ds.X, ds.Labels, ds.Classes)
	if err != nil {
		t.Fatal(err)
	}
	// Identical seeds per class: the two drivers must produce identical
	// models.
	seqPred := seqRes.Model.PredictLabels(ds.X)
	parPred := parRes.Model.PredictLabels(ds.X)
	for i := range seqPred {
		if seqPred[i] != parPred[i] {
			t.Fatal("parallel driver changed predictions")
		}
	}
}

func TestMulticlassAccuracy(t *testing.T) {
	ds := testDataset(300)
	train, test := ds.Split(0.8, 4)
	res, err := Train(svmConfig(), train.X, train.Labels, train.Classes)
	if err != nil {
		t.Fatal(err)
	}
	pred := res.Model.PredictLabels(test.X)
	wrong := 0
	for i, p := range pred {
		if p != test.Labels[i] {
			wrong++
		}
	}
	if frac := float64(wrong) / float64(len(pred)); frac > 0.12 {
		t.Fatalf("multiclass test error %v too high", frac)
	}
	if res.WallTime <= 0 {
		t.Fatal("wall time missing")
	}
}

func TestMulticlassErrors(t *testing.T) {
	ds := testDataset(30)
	if _, err := Train(Config{}, ds.X, ds.Labels, 3); err == nil {
		t.Fatal("missing kernel must error")
	}
	if _, err := Train(svmConfig(), ds.X, ds.Labels, 1); err == nil {
		t.Fatal("single class must error")
	}
	if _, err := Train(svmConfig(), ds.X, ds.Labels[:5], 3); err == nil {
		t.Fatal("label count mismatch must error")
	}
}

func TestDegenerateAllOneClassBinary(t *testing.T) {
	// All-positive labels: no KKT violations with alpha=0; model is
	// constant but valid.
	x := mat.NewDense(10, 2)
	for i := 0; i < 10; i++ {
		x.Set(i, 0, float64(i))
	}
	y := make([]float64, 10)
	for i := range y {
		y[i] = 1
	}
	m, err := TrainBinary(svmConfig(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Decision(x.RowView(0)) // must not panic
}
