// Package svm implements a kernel Support Vector Machine trained by
// Sequential Minimal Optimization, standing in for the LibSVM and
// ThunderSVM comparators of the paper's Table 3 ("interactive training").
//
// The binary solver follows Platt's simplified SMO: repeatedly pick a
// KKT-violating multiplier, pair it with a second index, and solve the
// two-variable subproblem analytically. Multiclass problems are reduced to
// one-vs-rest. Two drivers mirror the paper's comparators:
//
//   - Sequential (LibSVM-like): binary problems solved one after another on
//     a single goroutine.
//   - Parallel (ThunderSVM-like): binary problems solved concurrently with
//     parallel kernel-row computation, emulating the GPU implementation's
//     relative speedup.
package svm

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
)

// Config controls SVM training.
type Config struct {
	// Kernel is required.
	Kernel kernel.Func
	// C is the box constraint (default 1).
	C float64
	// Tol is the KKT violation tolerance (default 1e-3, LibSVM's default).
	Tol float64
	// MaxPasses bounds the number of full passes without any multiplier
	// change before declaring convergence (default 3).
	MaxPasses int
	// MaxIters bounds total pair optimizations as a safety valve
	// (default 200·n).
	MaxIters int
	// Parallel selects the ThunderSVM-like concurrent driver.
	Parallel bool
	// Seed fixes the partner-selection randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.C == 0 {
		c.C = 1
	}
	if c.Tol == 0 {
		c.Tol = 1e-3
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 3
	}
	return c
}

// BinaryModel is a two-class decision function
// f(x) = Σ_i α_i y_i k(x_i, x) + b restricted to its support vectors.
type BinaryModel struct {
	// SupportX holds the support vectors (rows).
	SupportX *mat.Dense
	// Coef holds α_i·y_i for each support vector.
	Coef []float64
	// B is the bias term.
	B float64
	// Kern is the kernel.
	Kern kernel.Func
}

// Decision returns f(x) for a single sample.
func (m *BinaryModel) Decision(x []float64) float64 {
	s := m.B
	for i := 0; i < m.SupportX.Rows; i++ {
		s += m.Coef[i] * m.Kern.Eval(m.SupportX.RowView(i), x)
	}
	return s
}

// DecisionBatch returns f(x) for every row of xq using one kernel GEMM.
func (m *BinaryModel) DecisionBatch(xq *mat.Dense) []float64 {
	kb := kernel.Matrix(m.Kern, xq, m.SupportX)
	out := mat.MulVec(kb, m.Coef)
	for i := range out {
		out[i] += m.B
	}
	return out
}

// TrainBinary runs SMO on ±1 labels. The full Gram matrix is precomputed,
// which is the regime of the paper's Table 3 datasets (10⁴-10⁵ samples on
// the original hardware, scaled down here).
func TrainBinary(cfg Config, x *mat.Dense, y []float64) (*BinaryModel, error) {
	cfg = cfg.withDefaults()
	if cfg.Kernel == nil {
		return nil, fmt.Errorf("svm: Config.Kernel is required")
	}
	n := x.Rows
	if len(y) != n {
		return nil, fmt.Errorf("svm: %d labels for %d samples", len(y), n)
	}
	for _, v := range y {
		if v != 1 && v != -1 {
			return nil, fmt.Errorf("svm: labels must be ±1, got %v", v)
		}
	}
	maxIters := cfg.MaxIters
	if maxIters == 0 {
		maxIters = 200 * n
	}
	g := kernel.Gram(cfg.Kernel, x)
	alpha := make([]float64, n)
	b := 0.0
	rng := rand.New(rand.NewSource(cfg.Seed))

	fOf := func(i int) float64 {
		s := b
		row := g.RowView(i)
		for j, a := range alpha {
			if a != 0 {
				s += a * y[j] * row[j]
			}
		}
		return s
	}

	passes := 0
	iters := 0
	for passes < cfg.MaxPasses && iters < maxIters {
		changed := 0
		for i := 0; i < n && iters < maxIters; i++ {
			ei := fOf(i) - y[i]
			if (y[i]*ei < -cfg.Tol && alpha[i] < cfg.C) || (y[i]*ei > cfg.Tol && alpha[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				ej := fOf(j) - y[j]
				ai, aj := alpha[i], alpha[j]
				var lo, hi float64
				if y[i] != y[j] {
					lo = math.Max(0, aj-ai)
					hi = math.Min(cfg.C, cfg.C+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-cfg.C)
					hi = math.Min(cfg.C, ai+aj)
				}
				if lo == hi {
					continue
				}
				eta := 2*g.At(i, j) - g.At(i, i) - g.At(j, j)
				if eta >= 0 {
					continue
				}
				ajNew := aj - y[j]*(ei-ej)/eta
				if ajNew > hi {
					ajNew = hi
				} else if ajNew < lo {
					ajNew = lo
				}
				if math.Abs(ajNew-aj) < 1e-7 {
					continue
				}
				aiNew := ai + y[i]*y[j]*(aj-ajNew)
				b1 := b - ei - y[i]*(aiNew-ai)*g.At(i, i) - y[j]*(ajNew-aj)*g.At(i, j)
				b2 := b - ej - y[i]*(aiNew-ai)*g.At(i, j) - y[j]*(ajNew-aj)*g.At(j, j)
				switch {
				case aiNew > 0 && aiNew < cfg.C:
					b = b1
				case ajNew > 0 && ajNew < cfg.C:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				alpha[i], alpha[j] = aiNew, ajNew
				changed++
				iters++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	// Compact to support vectors.
	var idx []int
	for i, a := range alpha {
		if a > 1e-10 {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		// Degenerate but valid: constant decision function.
		return &BinaryModel{SupportX: mat.NewDense(0, x.Cols), Coef: nil, B: b, Kern: cfg.Kernel}, nil
	}
	coef := make([]float64, len(idx))
	for k, i := range idx {
		coef[k] = alpha[i] * y[i]
	}
	return &BinaryModel{SupportX: x.SelectRows(idx), Coef: coef, B: b, Kern: cfg.Kernel}, nil
}

// Model is a one-vs-rest multiclass SVM.
type Model struct {
	// Binaries holds one decision function per class.
	Binaries []*BinaryModel
}

// Result reports a multiclass fit.
type Result struct {
	// Model is the fitted classifier.
	Model *Model
	// WallTime is the measured training time.
	WallTime time.Duration
}

// Train fits a one-vs-rest multiclass SVM.
func Train(cfg Config, x *mat.Dense, labels []int, classes int) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Kernel == nil {
		return nil, fmt.Errorf("svm: Config.Kernel is required")
	}
	if classes < 2 {
		return nil, fmt.Errorf("svm: need >= 2 classes, got %d", classes)
	}
	if len(labels) != x.Rows {
		return nil, fmt.Errorf("svm: %d labels for %d samples", len(labels), x.Rows)
	}
	start := time.Now()
	models := make([]*BinaryModel, classes)
	errs := make([]error, classes)

	fit := func(c int) {
		y := make([]float64, len(labels))
		for i, l := range labels {
			if l == c {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		sub := cfg
		sub.Seed = cfg.Seed + int64(c)
		models[c], errs[c] = TrainBinary(sub, x, y)
	}

	if cfg.Parallel {
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		var wg sync.WaitGroup
		for c := 0; c < classes; c++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(c int) {
				defer wg.Done()
				defer func() { <-sem }()
				fit(c)
			}(c)
		}
		wg.Wait()
	} else {
		for c := 0; c < classes; c++ {
			fit(c)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Result{Model: &Model{Binaries: models}, WallTime: time.Since(start)}, nil
}

// PredictLabels returns the class with the highest one-vs-rest decision
// value for each row of xq.
func (m *Model) PredictLabels(xq *mat.Dense) []int {
	scores := make([][]float64, len(m.Binaries))
	for c, bm := range m.Binaries {
		scores[c] = bm.DecisionBatch(xq)
	}
	out := make([]int, xq.Rows)
	for i := range out {
		best, bc := math.Inf(-1), 0
		for c := range scores {
			if scores[c][i] > best {
				best, bc = scores[c][i], c
			}
		}
		out[i] = bc
	}
	return out
}
