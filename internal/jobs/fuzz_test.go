package jobs

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzTrainRequestDecode fuzzes the POST /train JSON decoding and
// validation (decodeTrainRequest never materializes datasets, so arbitrary
// sizes in fuzzed bodies cost nothing). Accepted requests must satisfy the
// documented bounds.
func FuzzTrainRequestDecode(f *testing.F) {
	f.Add([]byte(`{"dataset":"mnist","n":500,"epochs":3}`))
	f.Add([]byte(`{"name":"m","dataset":"susy","kernel":"laplacian","sigma":2,"method":"sgd"}`))
	f.Add([]byte(`{"x":[[1,2],[3,4]],"y":[[1,0],[0,1]]}`))
	f.Add([]byte(`{"x":[[1,2],[3,4]],"labels":[0,1],"classes":2}`))
	f.Add([]byte(`{"dataset":"mnist","n":999999999}`))
	f.Add([]byte(`{"x":[[1],[2,3]]}`))
	f.Add([]byte(`{"epochs":-5}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`{"unknown":"field"}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := decodeTrainRequest(bytes.NewReader(body))
		if err != nil {
			return
		}
		if req.Epochs < 1 || req.Epochs > maxTrainEpochs {
			t.Fatalf("accepted epochs %d", req.Epochs)
		}
		if len(req.X) == 0 && (req.N < 16 || req.N > maxTrainSamples) {
			t.Fatalf("accepted dataset n %d", req.N)
		}
		if len(req.X) > maxTrainSamples {
			t.Fatalf("accepted %d inline rows", len(req.X))
		}
		// A validated request must materialize into a submittable spec
		// without panicking — for inline data this is cheap; dataset
		// presets are bounded by the n check above. Skip large presets to
		// keep fuzzing fast.
		if len(req.X) > 0 || req.N <= 256 {
			if _, err := req.spec(); err != nil {
				t.Fatalf("validated request failed to materialize: %v", err)
			}
		}
	})
}

// FuzzJobsHTTPPath fuzzes the /jobs/ path router: arbitrary ids and
// actions must produce well-formed error responses, never panics.
func FuzzJobsHTTPPath(f *testing.F) {
	m := New(Config{Workers: 1})
	defer m.Close()
	h := NewHandler(m)

	f.Add("/jobs/job-1", "GET")
	f.Add("/jobs/job-1/cancel", "POST")
	f.Add("/jobs/job-1/resume", "POST")
	f.Add("/jobs//cancel", "POST")
	f.Add("/jobs/%2f/x/y", "POST")
	f.Add("/jobs/", "GET")
	f.Fuzz(func(t *testing.T, path, method string) {
		if !strings.HasPrefix(path, "/jobs/") {
			path = "/jobs/" + path
		}
		switch method {
		case http.MethodGet, http.MethodPost, http.MethodPut, http.MethodDelete:
		default:
			method = http.MethodGet
		}
		req := httptest.NewRequest(method, "/", nil)
		req.URL.Path = path
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code < 200 || rec.Code > 599 {
			t.Fatalf("implausible status %d", rec.Code)
		}
	})
}
