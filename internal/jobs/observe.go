package jobs

import (
	"eigenpro/internal/durable"
	"eigenpro/internal/obs"
	"eigenpro/internal/obs/slo"
)

// Job-lifecycle telemetry series names. The lifecycle counters and the
// queue-depth/per-state gauges register into Config.Metrics; per-epoch
// training series (eigenpro_train_*) are recorded into the same registry
// by the core.ObserveTraining hook each running job installs, labeled
// job="<id>".
const (
	MetricJobsSubmitted  = "eigenpro_jobs_submitted_total"
	MetricJobsCompleted  = "eigenpro_jobs_completed_total"
	MetricJobsFailed     = "eigenpro_jobs_failed_total"
	MetricJobsCancelled  = "eigenpro_jobs_cancelled_total"
	MetricJobsResumed    = "eigenpro_jobs_resumed_total"
	MetricJobsQueueDepth = "eigenpro_jobs_queue_depth"
	MetricJobsState      = "eigenpro_jobs_state"
	// MetricJobsRecovered counts jobs restored from the durable journal
	// by a restarted manager (persistent mode only).
	MetricJobsRecovered = "eigenpro_jobs_recovered_total"
	// MetricDurableWriteErrors counts tolerated persistence failures —
	// the job lifecycle proceeded, but its latest state may not survive
	// a crash. Alert on any increase.
	MetricDurableWriteErrors = "eigenpro_durable_write_errors_total"
	// Durability-layer totals, exported from the process-wide counters in
	// internal/durable (registered only in persistent mode).
	MetricDurableJournalRecords = "eigenpro_durable_journal_records_total"
	MetricDurableCorruptRecords = "eigenpro_durable_corrupt_records_total"
	MetricDurableFsyncs         = "eigenpro_durable_fsyncs_total"
)

// allStates enumerates the lifecycle states exposed as per-state gauges.
var allStates = []State{StateQueued, StateRunning, StateCancelled, StateDone, StateFailed}

// initMetrics registers the manager's lifecycle series.
func (m *Manager) initMetrics() {
	reg := m.cfg.Metrics
	m.submitted = reg.Counter(MetricJobsSubmitted, "Training jobs accepted by Submit.")
	m.completed = reg.Counter(MetricJobsCompleted, "Training jobs that finished and registered.")
	m.failed = reg.Counter(MetricJobsFailed, "Training jobs that ended in StateFailed.")
	m.cancelled = reg.Counter(MetricJobsCancelled, "Times a job entered StateCancelled.")
	m.resumed = reg.Counter(MetricJobsResumed, "Times a cancelled job was resumed.")
	m.recovered = reg.Counter(MetricJobsRecovered, "Jobs restored from the durable journal at startup.")
	m.persistErrors = reg.Counter(MetricDurableWriteErrors, "Tolerated persistence failures (state possibly not durable).")
	reg.GaugeFunc(MetricJobsQueueDepth, "Jobs queued, waiting for a worker.",
		func() float64 { return float64(len(m.queue)) })
	for _, st := range allStates {
		st := st
		reg.GaugeFunc(MetricJobsState, "Jobs currently in the labeled lifecycle state.",
			func() float64 { return float64(m.countState(st)) },
			obs.L("state", string(st)))
	}
}

// initPersistMetrics exposes the process-wide durability-layer counters;
// called only in persistent mode (re-registration into a shared registry
// dedupes, keeping the first registration).
func (m *Manager) initPersistMetrics() {
	reg := m.cfg.Metrics
	reg.CounterFunc(MetricDurableJournalRecords, "Journal records appended process-wide.",
		func() float64 { return float64(durable.JournalRecords()) })
	reg.CounterFunc(MetricDurableCorruptRecords, "Corrupt or torn durable artifacts detected process-wide.",
		func() float64 { return float64(durable.CorruptRecords()) })
	reg.CounterFunc(MetricDurableFsyncs, "Fsyncs issued by the durability layer process-wide.",
		func() float64 { return float64(durable.Fsyncs()) })
}

// countState counts jobs currently in the given state (scrape-time only).
func (m *Manager) countState(s State) int {
	m.mu.Lock()
	js := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	n := 0
	for _, j := range js {
		if j.snapshot().State == s {
			n++
		}
	}
	return n
}

// Metrics returns the registry the manager's telemetry registers into.
func (m *Manager) Metrics() *obs.Registry { return m.cfg.Metrics }

// Tracer returns the span ring recording job lifecycle traces.
func (m *Manager) Tracer() *obs.Tracer { return m.cfg.Tracer }

// Events returns the wide-event log, or nil when Config.Events was nil
// (event logging disabled).
func (m *Manager) Events() *obs.EventLog { return m.cfg.Events }

// SLO returns the burn-rate evaluator, or nil when Config.SLO was nil
// (nil is valid everywhere it is passed).
func (m *Manager) SLO() *slo.Evaluator { return m.cfg.SLO }

// Flight returns the flight recorder, or nil when Config.Flight was nil.
func (m *Manager) Flight() *obs.FlightRecorder { return m.cfg.Flight }

// Accepting reports whether the manager accepts new submissions — the
// readiness signal behind GET /readyz.
func (m *Manager) Accepting() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.closed
}
