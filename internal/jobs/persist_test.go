package jobs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/durable"
	"eigenpro/internal/fault"
	"eigenpro/internal/obs"
)

// waitEpoch blocks until the job completes at least n epochs (or fails
// the test on terminal/timeout).
func waitEpoch(t *testing.T, m *Manager, id string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		info, ok := m.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if info.Epoch >= n {
			return
		}
		if terminal(info.State) || time.Now().After(deadline) {
			t.Fatalf("job never reached epoch %d: %+v", n, info)
		}
		time.Sleep(time.Millisecond)
	}
}

// assertBitIdentical compares a recovered model against the reference
// coefficient by coefficient.
func assertBitIdentical(t *testing.T, got, want *core.Model, context string) {
	t.Helper()
	if got.X.Rows != want.X.Rows || got.Alpha.Cols != want.Alpha.Cols {
		t.Fatalf("%s: model shape %dx%d vs %dx%d", context, got.X.Rows, got.Alpha.Cols, want.X.Rows, want.Alpha.Cols)
	}
	for i, v := range got.Alpha.Data {
		if v != want.Alpha.Data[i] {
			t.Fatalf("%s: coefficient %d differs: %v != %v", context, i, v, want.Alpha.Data[i])
		}
	}
}

func TestPersistentDoneSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	regA := &countingRegistrar{}
	mA, err := Open(Config{Workers: 1, StateDir: dir, Registrar: regA})
	if err != nil {
		t.Fatal(err)
	}
	id, err := mA.Submit(smallSpec("persist-done", 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	info, err := mA.Wait(id)
	if err != nil || info.State != StateDone {
		t.Fatalf("first run: %+v err=%v", info, err)
	}
	want, _ := mA.Model(id)
	mA.Close()

	// The on-disk layout is the documented contract.
	for _, f := range []string{"journal.jsonl", "jobs/" + id + "/spec.gob", "jobs/" + id + "/model.gob"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("state-dir layout missing %s: %v", f, err)
		}
	}

	regB := &countingRegistrar{}
	mB, err := Open(Config{Workers: 1, StateDir: dir, Registrar: regB})
	if err != nil {
		t.Fatal(err)
	}
	defer mB.Close()
	if mB.Recovered() != 1 {
		t.Fatalf("recovered %d jobs, want 1", mB.Recovered())
	}
	info, ok := mB.Job(id)
	if !ok || info.State != StateDone || !info.Servable || !info.Recovered {
		t.Fatalf("recovered job: %+v", info)
	}
	// The finished model was re-registered into the serving registrar and
	// reloads bit-identically.
	regB.mu.Lock()
	reRegistered := len(regB.names) == 1 && regB.names[0] == "persist-done"
	regB.mu.Unlock()
	if !reRegistered {
		t.Fatalf("model not re-registered: %v", regB.names)
	}
	got, ok := mB.Model(id)
	if !ok {
		t.Fatal("no model on recovered job")
	}
	assertBitIdentical(t, got, want, "recovered done model")
	// A new submission on the recovered manager does not reuse the id.
	id2, err := mB.Submit(smallSpec("persist-done-2", 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("recovered manager reissued id %s", id)
	}
}

// TestRestartResumesInterruptedBitExact is the tentpole guarantee: a job
// interrupted by shutdown resumes automatically after restart from its
// durable checkpoint and produces a final model bit-identical to an
// uninterrupted run.
func TestRestartResumesInterruptedBitExact(t *testing.T) {
	spec := smallSpec("persist-exact", 80, 3)
	ref, err := core.Train(spec.Config, spec.X, spec.Y)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	mA, err := Open(Config{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id, err := mA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, mA, id, 2)
	// Shutdown mid-training: the trainer parks with a durable checkpoint
	// and the journal records the interruption.
	mA.Close()
	info, _ := mA.Job(id)
	if info.State != StateCancelled || info.Epoch >= info.Epochs {
		t.Fatalf("job after shutdown: %+v", info)
	}

	events := obs.NewEventLog(0)
	mB, err := Open(Config{Workers: 1, StateDir: dir, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	defer mB.Close()
	info, ok := mB.Job(id)
	if !ok || !info.Recovered {
		t.Fatalf("job not recovered: %+v", info)
	}
	final, err := mB.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("recovered job ended %q (err %q)", final.State, final.Error)
	}
	if final.Resumes < 1 {
		t.Fatalf("recovered job shows %d resumes", final.Resumes)
	}
	got, _ := mB.Model(id)
	assertBitIdentical(t, got, ref.Model, "restart-resumed model")
	// Recovery is observable: the job.recovered wide event landed and the
	// recovered counter reads 1.
	if evs := events.Query(obs.EventQuery{Kind: obs.KindJobRecovered}); len(evs) != 1 {
		t.Fatalf("job.recovered events: %d, want 1", len(evs))
	}
	if v, ok := mB.Metrics().Value(MetricJobsRecovered); !ok || v != 1 {
		t.Fatalf("%s = %v,%v", MetricJobsRecovered, v, ok)
	}
}

func TestPersistentCancelStaysCancelledAcrossRestart(t *testing.T) {
	spec := smallSpec("persist-cancel", 80, 5)
	ref, err := core.Train(spec.Config, spec.X, spec.Y)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	mA, err := Open(Config{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id, err := mA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, mA, id, 1)
	if err := mA.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if info, err := mA.Wait(id); err != nil || info.State != StateCancelled {
		t.Fatalf("cancel: %+v err=%v", info, err)
	}
	mA.Close()

	mB, err := Open(Config{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer mB.Close()
	// A user cancel is a decision, not an accident: the restarted manager
	// must NOT auto-resume it.
	info, ok := mB.Job(id)
	if !ok || info.State != StateCancelled {
		t.Fatalf("cancelled job after restart: %+v", info)
	}
	if !info.Checkpointed {
		t.Fatal("cancelled job lost its checkpoint across restart")
	}
	// But an explicit resume continues the identical run.
	if err := mB.Resume(id); err != nil {
		t.Fatal(err)
	}
	final, err := mB.Wait(id)
	if err != nil || final.State != StateDone {
		t.Fatalf("resume after restart: %+v err=%v", final, err)
	}
	got, _ := mB.Model(id)
	assertBitIdentical(t, got, ref.Model, "cancel+restart+resume model")
}

func TestDeletedJobDoesNotReappear(t *testing.T) {
	dir := t.TempDir()
	mA, err := Open(Config{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id, err := mA.Submit(smallSpec("persist-del", 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mA.Wait(id); err != nil {
		t.Fatal(err)
	}
	if err := mA.Delete(id); err != nil {
		t.Fatal(err)
	}
	mA.Close()
	if _, err := os.Stat(filepath.Join(dir, "jobs", id)); !os.IsNotExist(err) {
		t.Fatalf("deleted job's artifacts survive: %v", err)
	}

	mB, err := Open(Config{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer mB.Close()
	if n := len(mB.Jobs()); n != 0 {
		t.Fatalf("deleted job reappeared: %d jobs", n)
	}
}

func TestRecoveryRejectsCorruptArtifacts(t *testing.T) {
	spec := smallSpec("persist-corrupt", 80, 7)
	ref, err := core.Train(spec.Config, spec.X, spec.Y)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	mA, err := Open(Config{Workers: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id, err := mA.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitEpoch(t, mA, id, 2)
	mA.Close()

	// Damage the sealed checkpoint: recovery must detect it, count it,
	// requeue from scratch, and still converge to the identical model —
	// never load the torn bytes.
	ckpt := filepath.Join(dir, "jobs", id, "checkpoint.gob")
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	before := durable.CorruptRecords()
	events := obs.NewEventLog(0)
	mB, err := Open(Config{Workers: 1, StateDir: dir, Events: events})
	if err != nil {
		t.Fatal(err)
	}
	if durable.CorruptRecords() <= before {
		t.Fatal("corrupt checkpoint not counted")
	}
	// The durability counter is surfaced as a metric series.
	if v, ok := mB.Metrics().Value(MetricDurableCorruptRecords); !ok || v == 0 {
		t.Fatalf("%s = %v,%v", MetricDurableCorruptRecords, v, ok)
	}
	if evs := events.Query(obs.EventQuery{Kind: obs.KindDurableError}); len(evs) == 0 {
		t.Fatal("no durable.error event for the corrupt checkpoint")
	}
	final, err := mB.Wait(id)
	if err != nil || final.State != StateDone {
		t.Fatalf("after corrupt checkpoint: %+v err=%v", final, err)
	}
	got, _ := mB.Model(id)
	assertBitIdentical(t, got, ref.Model, "from-scratch after corrupt checkpoint")
	mB.Close()

	// Now corrupt the finished model of a done job: recovery must fail
	// the job with a recovery error, not register garbage.
	model := filepath.Join(dir, "jobs", id, "model.gob")
	raw, err = os.ReadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0xff
	if err := os.WriteFile(model, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	reg := &countingRegistrar{}
	mC, err := Open(Config{Workers: 1, StateDir: dir, Registrar: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer mC.Close()
	info, ok := mC.Job(id)
	if !ok || info.State != StateFailed || !strings.Contains(info.Error, "recovery") {
		t.Fatalf("corrupt-model job: %+v", info)
	}
	reg.mu.Lock()
	registered := len(reg.names)
	reg.mu.Unlock()
	if registered != 0 {
		t.Fatal("corrupt model was registered for serving")
	}
}

// TestChaosKillRestartCycles is the fault-injection chaos sweep: the
// manager runs against a filesystem that crashes at a deterministic
// operation count (tearing the in-flight write, then failing everything,
// exactly like kill -9 at that instant), and a fresh manager then
// recovers the state directory. At every crash point: recovery succeeds,
// no corrupt state is ever loaded (a done job's model always verifies and
// matches the reference bit for bit), and jobs whose durable trail
// survived resume and finish identically.
func TestChaosKillRestartCycles(t *testing.T) {
	spec := smallSpec("chaos", 6, 11)
	ref, err := core.Train(spec.Config, spec.X, spec.Y)
	if err != nil {
		t.Fatal(err)
	}

	recovered, completed := 0, 0
	for crashAfter := int64(1); crashAfter <= 61; crashAfter += 5 {
		dir := t.TempDir()
		ffs := fault.Wrap(durable.OS{}, fault.Config{Seed: crashAfter, CrashAfter: crashAfter})
		mA, err := Open(Config{Workers: 1, StateDir: dir, FS: ffs})
		if err == nil {
			// Persistence failures after the crash point are tolerated by
			// design (the in-memory run proceeds), so the first manager
			// always reaches a terminal state; only its durable trail is
			// cut short at the crash.
			if id, serr := mA.Submit(spec); serr == nil {
				if _, werr := mA.Wait(id); werr != nil {
					t.Fatalf("crashAfter=%d: wait: %v", crashAfter, werr)
				}
			}
			mA.Close()
		}

		// "Reboot": a clean filesystem over whatever the crash left.
		mB, err := Open(Config{Workers: 1, StateDir: dir})
		if err != nil {
			t.Fatalf("crashAfter=%d: recovery open: %v", crashAfter, err)
		}
		for _, info := range mB.Jobs() {
			final, werr := mB.Wait(info.ID)
			if werr != nil {
				t.Fatalf("crashAfter=%d: %v", crashAfter, werr)
			}
			switch final.State {
			case StateDone:
				got, ok := mB.Model(final.ID)
				if !ok {
					t.Fatalf("crashAfter=%d: done without model", crashAfter)
				}
				assertBitIdentical(t, got, ref.Model, "chaos-recovered model")
				completed++
			case StateFailed:
				// Legitimate only as a surfaced recovery error (e.g. the
				// spec never became durable), never a silent wrong result.
				if !strings.Contains(final.Error, "recovery") {
					t.Fatalf("crashAfter=%d: unexpected failure %q", crashAfter, final.Error)
				}
			case StateCancelled:
				// Queue-full fallback; not expected with default depth.
				t.Fatalf("crashAfter=%d: job left cancelled", crashAfter)
			}
			recovered++
		}
		mB.Close()
	}
	// The sweep must actually exercise recovery, not just trivially pass
	// with empty state dirs.
	if recovered == 0 || completed == 0 {
		t.Fatalf("chaos sweep recovered %d jobs, completed %d — crash points need retuning", recovered, completed)
	}
}

// TestPersistErrorsTolerated proves availability wins over durability:
// with every Nth filesystem operation failing, jobs still run to done,
// and every swallowed failure is counted and surfaced as a wide event.
func TestPersistErrorsTolerated(t *testing.T) {
	dir := t.TempDir()
	events := obs.NewEventLog(0)
	ffs := fault.Wrap(durable.OS{}, fault.Config{Seed: 3, FailEvery: 5})
	m, err := Open(Config{Workers: 1, StateDir: dir, FS: ffs, Events: events})
	if err != nil {
		// The journal open itself drew a failing op; that configuration
		// legitimately refuses to start.
		t.Skipf("store open hit an injected fault: %v", err)
	}
	defer m.Close()
	id, err := m.Submit(smallSpec("tolerated", 4, 13))
	if err != nil {
		t.Fatal(err)
	}
	final, err := m.Wait(id)
	if err != nil || final.State != StateDone {
		t.Fatalf("job under fault injection: %+v err=%v", final, err)
	}
	if v, ok := m.Metrics().Value(MetricDurableWriteErrors); !ok || v == 0 {
		t.Fatalf("%s = %v,%v — injected failures not counted", MetricDurableWriteErrors, v, ok)
	}
	if evs := events.Query(obs.EventQuery{Kind: obs.KindDurableError}); len(evs) == 0 {
		t.Fatal("no durable.error events under fault injection")
	}
}
