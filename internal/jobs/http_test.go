package jobs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func getJSON(t *testing.T, h http.Handler, path string, v any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if v != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
			t.Fatalf("GET %s: %v (%s)", path, err, rec.Body.String())
		}
	}
	return rec
}

func TestHTTPTrainLifecycle(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	h := NewHandler(m)

	rec := postJSON(t, h, "/train", `{"name":"susy","dataset":"susy","n":200,"epochs":2,"s":64,"sigma":3}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /train: %d %s", rec.Code, rec.Body.String())
	}
	var info Info
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Name != "susy" {
		t.Fatalf("info %+v", info)
	}

	// Status endpoints.
	var listing struct {
		Jobs []Info `json:"jobs"`
	}
	if rec := getJSON(t, h, "/jobs", &listing); rec.Code != http.StatusOK || len(listing.Jobs) != 1 {
		t.Fatalf("GET /jobs: %d %+v", rec.Code, listing)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var cur Info
		if rec := getJSON(t, h, "/jobs/"+info.ID, &cur); rec.Code != http.StatusOK {
			t.Fatalf("GET /jobs/{id}: %d", rec.Code)
		} else if terminal(cur.State) {
			if cur.State != StateDone {
				t.Fatalf("job ended %q (%s)", cur.State, cur.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Evict the terminal job over HTTP.
	req := httptest.NewRequest(http.MethodDelete, "/jobs/"+info.ID, nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE /jobs/{id}: %d %s", rec.Code, rec.Body.String())
	}
	if rec := getJSON(t, h, "/jobs/"+info.ID, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("deleted job still served: %d", rec.Code)
	}
}

func TestHTTPCancelResume(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	h := NewHandler(m)

	rec := postJSON(t, h, "/train", `{"dataset":"susy","n":200,"epochs":100,"s":64,"sigma":3}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /train: %d %s", rec.Code, rec.Body.String())
	}
	var info Info
	json.Unmarshal(rec.Body.Bytes(), &info)

	// Wait for progress, then cancel over HTTP.
	deadline := time.Now().Add(60 * time.Second)
	for {
		var cur Info
		getJSON(t, h, "/jobs/"+info.ID, &cur)
		if cur.Epoch >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if rec := postJSON(t, h, "/jobs/"+info.ID+"/cancel", ""); rec.Code != http.StatusOK {
		t.Fatalf("cancel: %d %s", rec.Code, rec.Body.String())
	}
	if got, err := m.Wait(info.ID); err != nil || got.State != StateCancelled {
		t.Fatalf("after cancel: %+v err %v", got, err)
	}
	if rec := postJSON(t, h, "/jobs/"+info.ID+"/resume", ""); rec.Code != http.StatusOK {
		t.Fatalf("resume: %d %s", rec.Code, rec.Body.String())
	}
	var cur Info
	getJSON(t, h, "/jobs/"+info.ID, &cur)
	if terminal(cur.State) && cur.State != StateDone {
		t.Fatalf("resumed state %q", cur.State)
	}
}

func TestHTTPErrors(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	h := NewHandler(m)

	cases := []struct {
		method, path, body string
		want               int
	}{
		{http.MethodGet, "/train", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/train", "{", http.StatusBadRequest},
		{http.MethodPost, "/train", `{"dataset":"nope"}`, http.StatusBadRequest},
		{http.MethodPost, "/train", `{"dataset":"susy","n":2}`, http.StatusBadRequest},
		{http.MethodPost, "/train", `{"dataset":"susy","epochs":-1}`, http.StatusBadRequest},
		{http.MethodPost, "/train", `{"x":[[1,2],[1]]}`, http.StatusBadRequest},
		{http.MethodPost, "/train", `{"x":[[1,2]],"labels":[0]}`, http.StatusBadRequest},
		{http.MethodPost, "/train", `{"x":[[1,2]],"labels":[0],"classes":2000000000}`, http.StatusBadRequest},
		{http.MethodPost, "/train", `{"unknown_field":1}`, http.StatusBadRequest},
		{http.MethodPost, "/jobs", "", http.StatusMethodNotAllowed},
		{http.MethodGet, "/jobs/absent", "", http.StatusNotFound},
		{http.MethodDelete, "/jobs/absent", "", http.StatusNotFound},
		{http.MethodPut, "/jobs/absent", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/jobs/absent/cancel", "", http.StatusNotFound},
		{http.MethodPost, "/jobs/absent/resume", "", http.StatusNotFound},
		{http.MethodGet, "/jobs/absent/cancel", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/jobs/absent/nuke", "", http.StatusNotFound},
		{http.MethodGet, "/jobs/", "", http.StatusBadRequest},
	}
	for _, c := range cases {
		req := httptest.NewRequest(c.method, c.path, strings.NewReader(c.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != c.want {
			t.Errorf("%s %s: %d, want %d (%s)", c.method, c.path, rec.Code, c.want, rec.Body.String())
		}
	}
}

// TestHTTPInlineData trains on inline rows with labels — the path an
// external client with real data uses.
func TestHTTPInlineData(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	h := NewHandler(m)

	// A tiny two-class problem, one-hot via labels+classes.
	var sb strings.Builder
	sb.WriteString(`{"name":"inline","epochs":2,"sigma":2,"s":8,"classes":2,"x":[`)
	for i := 0; i < 24; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		if i%2 == 0 {
			sb.WriteString(`[0.1,0.2]`)
		} else {
			sb.WriteString(`[0.9,0.8]`)
		}
	}
	sb.WriteString(`],"labels":[`)
	for i := 0; i < 24; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		if i%2 == 0 {
			sb.WriteString("0")
		} else {
			sb.WriteString("1")
		}
	}
	sb.WriteString(`]}`)

	rec := postJSON(t, h, "/train", sb.String())
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /train inline: %d %s", rec.Code, rec.Body.String())
	}
	var info Info
	json.Unmarshal(rec.Body.Bytes(), &info)
	got, err := m.Wait(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("inline job %q (%s)", got.State, got.Error)
	}
}
