// Package jobs is the asynchronous training-job subsystem: submitted
// training configurations run on a bounded worker pool, report per-epoch
// progress, can be cancelled (taking a checkpoint at the next epoch
// boundary) and resumed bit-for-bit, and auto-register their finished
// models into a serving registry — closing the train → serve loop.
//
// The paper sizes the training mini-batch to the device; this package makes
// the training run itself a managed, observable unit the way a production
// service needs: core.Trainer supplies the interruptible epoch state
// machine, and the Manager adds queuing, status, cancellation, recovery,
// and deployment.
//
// Components:
//
//   - Manager: bounded worker pool over a job queue, submit/cancel/resume
//     lifecycle, per-job status and metrics (jobs.go)
//   - checkpoint-on-cancel: a cancelled job snapshots its trainer via
//     core.Trainer.Checkpoint so Resume continues the identical run
//   - Registrar: completed models auto-register under the job's model
//     name; serve.Server satisfies the interface, so a trained model is
//     immediately servable with no manual step
//   - HTTP JSON endpoints: POST /train, GET /jobs, GET /jobs/{id},
//     POST /jobs/{id}/cancel, POST /jobs/{id}/resume (http.go)
package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/durable"
	"eigenpro/internal/mat"
	"eigenpro/internal/obs"
	"eigenpro/internal/obs/slo"
)

// Errors returned by the job lifecycle.
var (
	// ErrClosed reports an operation against a closed manager.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrQueueFull reports that the pending-job queue is at capacity.
	ErrQueueFull = errors.New("jobs: queue full, job rejected")
	// ErrUnknownJob reports an unknown job id.
	ErrUnknownJob = errors.New("jobs: unknown job")
)

// Registrar receives finished models; serve.Server satisfies it, making a
// completed job's model immediately servable.
type Registrar interface {
	Register(name string, m *core.Model) error
}

// Config configures a Manager; zero values select the defaults.
type Config struct {
	// Workers bounds how many training jobs run concurrently; <= 0
	// selects DefaultWorkers. Training itself parallelizes across cores,
	// so more workers trade per-job latency for queue throughput.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// <= 0 selects DefaultQueueDepth.
	QueueDepth int
	// Registrar, when non-nil, receives each completed model under the
	// job's model name (Spec.Name, default the job id).
	Registrar Registrar
	// Metrics is the registry the job-lifecycle and per-job training
	// telemetry registers into; nil creates a private registry (readable
	// via Manager.Metrics). Pass a serving Server's registry to expose
	// everything from one /metrics endpoint.
	Metrics *obs.Registry
	// Tracer records one span trace per job (submit → queue → epoch[k] →
	// checkpoint/register); nil creates a private tracer.
	Tracer *obs.Tracer
	// Events receives one wide obs.Event per job lifecycle transition
	// (kind "job.state") and per completed training epoch (kind
	// "train.epoch"). nil disables event logging. Pass a serving Server's
	// event log to read the whole system's history from one /debug/events.
	Events *obs.EventLog
	// SLO is the burn-rate evaluator judging this manager's telemetry
	// (typically a training_progress objective reading the shared event
	// log). The manager never calls into it; carrying it here lets
	// NewHandler mount GET /debug/slo and degrade /readyz while an
	// objective is paging. nil disables both.
	SLO *slo.Evaluator
	// Flight is the breach-triggered flight recorder whose snapshots
	// NewHandler serves at GET /debug/flight; nil disables the endpoint.
	Flight *obs.FlightRecorder
	// StateDir, when non-empty, selects persistent mode: every lifecycle
	// transition is appended to a checksummed journal under this
	// directory, running trainers checkpoint to disk at epoch boundaries,
	// and Open replays the journal on startup — re-registering finished
	// models and resuming interrupted jobs bit-for-bit from their last
	// durable checkpoint. Empty keeps the original in-memory manager.
	StateDir string
	// FS is the filesystem persistence goes through; nil selects the real
	// one (durable.OS). Chaos tests inject a fault.FS here to kill the
	// manager at deterministic crash points.
	FS durable.FS
	// CheckpointEvery checkpoints a running trainer every N completed
	// epochs in persistent mode; <= 0 selects every epoch. Raising it
	// trades restart re-work for fewer fsyncs on the training path.
	CheckpointEvery int
}

// Defaults for Config zero values.
const (
	DefaultWorkers    = 2
	DefaultQueueDepth = 64
)

// State is a job lifecycle phase.
type State string

// Job lifecycle states.
const (
	// StateQueued: submitted (or resumed), waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is stepping the trainer.
	StateRunning State = "running"
	// StateCancelled: stopped at an epoch boundary; a checkpoint is held
	// when any epochs completed, so Resume continues the identical run.
	StateCancelled State = "cancelled"
	// StateDone: training finished; the model is registered if a
	// Registrar is configured.
	StateDone State = "done"
	// StateFailed: training or registration errored; see Info.Error.
	StateFailed State = "failed"
)

// terminal reports whether a state ends a run (Resume can restart only
// StateCancelled).
func terminal(s State) bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec describes one training job.
type Spec struct {
	// Name is the model name used for auto-registration; empty uses the
	// job id.
	Name string
	// Config is the training configuration (Kernel and Epochs required).
	// Its kernel must be a serializable family for checkpoint-on-cancel
	// to work.
	Config core.Config
	// X, Y are the training inputs and one-hot targets.
	X, Y *mat.Dense
}

// Info is a point-in-time snapshot of a job's status and metrics.
type Info struct {
	// ID is the manager-assigned job id.
	ID string `json:"id"`
	// Name is the model name the job registers on completion.
	Name string `json:"name"`
	// State is the lifecycle phase.
	State State `json:"state"`
	// Epoch counts completed epochs; Epochs is the target.
	Epoch  int `json:"epoch"`
	Epochs int `json:"epochs"`
	// TrainMSE is the last completed epoch's running train MSE.
	TrainMSE float64 `json:"train_mse"`
	// ValError is the last epoch's validation error (0 until the first
	// epoch of a run with a validation set completes; a legitimate 0 must
	// stay visible, so no omitempty).
	ValError float64 `json:"val_error"`
	// Iters counts optimizer iterations.
	Iters int `json:"iters"`
	// SimTime is the simulated device time spent so far.
	SimTime time.Duration `json:"sim_time_ns"`
	// Submitted/Started/Finished are lifecycle timestamps (zero until
	// reached). Finished covers registration, so Finished−Submitted is
	// the time-to-servable.
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	// Error describes a failure when State is StateFailed.
	Error string `json:"error,omitempty"`
	// Servable reports that the model was registered with the Registrar.
	Servable bool `json:"servable"`
	// Checkpointed reports that a resumable snapshot is held.
	Checkpointed bool `json:"checkpointed"`
	// Resumes counts how many times the job was resumed.
	Resumes int `json:"resumes"`
	// Recovered reports that this job was restored from the durable
	// journal by a restarted manager.
	Recovered bool `json:"recovered,omitempty"`
	// TraceID names the job's span trace at /debug/traces.
	TraceID string `json:"trace_id,omitempty"`
}

// job is the manager's mutable record for one submission.
type job struct {
	mu   sync.Mutex
	cond *sync.Cond

	spec Spec
	info Info

	// tr is the job's lifecycle trace; enq is when the job last entered
	// the queue (submit or resume), the start of its "queue" span.
	tr  *obs.Trace
	enq time.Time

	// cancelRequested is latched by Cancel; cancelCh wakes the running
	// worker and is re-armed by Resume.
	cancelRequested bool
	cancelCh        chan struct{}

	// checkpoint holds the gob trainer snapshot taken on cancellation.
	checkpoint []byte
	// result holds the completed training result.
	result *core.Result
}

// set mutates the job's info under its lock and wakes waiters.
func (j *job) set(f func(*Info)) {
	j.mu.Lock()
	f(&j.info)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// snapshot returns a copy of the job's info.
func (j *job) snapshot() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.info
}

// Manager runs submitted training jobs on a bounded worker pool.
type Manager struct {
	cfg Config

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	seq    int
	closed bool

	queue chan *job
	done  chan struct{}
	wg    sync.WaitGroup

	// store is the durable persistence layer, nil outside persistent
	// mode; recoveredN counts jobs restored by Open's journal replay.
	store      *store
	recoveredN int

	// Lifecycle counters, registered in initMetrics.
	submitted *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	cancelled *obs.Counter
	resumed   *obs.Counter
	recovered *obs.Counter
	// persistErrors counts tolerated durability failures: the job kept
	// running, but its latest state may not survive a crash.
	persistErrors *obs.Counter
}

// New starts a manager with the given configuration. Close stops the
// workers, checkpointing any running jobs. In persistent mode
// (Config.StateDir set) prefer Open, which reports recovery errors
// instead of panicking on them.
func New(cfg Config) *Manager {
	m, err := Open(cfg)
	if err != nil {
		// Only possible with a StateDir whose journal cannot be opened;
		// the in-memory construction below it cannot fail.
		panic(fmt.Sprintf("jobs: New: %v (use Open to handle state-dir errors)", err))
	}
	return m
}

// Open starts a manager with the given configuration. With
// Config.StateDir set it opens (creating if needed) the durable state
// directory, replays the job journal, re-registers finished models, and
// re-enqueues interrupted jobs before the workers start — so a restarted
// process resumes exactly where the crash left it.
func Open(cfg Config) (*Manager, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.NewTracer(obs.DefaultTraceCapacity)
	}
	m := &Manager{
		cfg:   cfg,
		jobs:  make(map[string]*job),
		queue: make(chan *job, cfg.QueueDepth),
		done:  make(chan struct{}),
	}
	m.initMetrics()
	if cfg.StateDir != "" {
		st, replay, err := openStore(cfg.FS, cfg.StateDir)
		if err != nil {
			return nil, err
		}
		m.store = st
		m.initPersistMetrics()
		// Recovery runs before the workers start: re-enqueued jobs park in
		// the buffered queue channel and begin the moment workers spin up.
		m.recover(replay)
	}
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m, nil
}

// Submit validates and enqueues a training job, returning its id. The
// spec's data matrices are retained for the life of the job (they are what
// a checkpoint resume trains on).
func (m *Manager) Submit(spec Spec) (string, error) {
	if spec.Config.Kernel == nil {
		return "", fmt.Errorf("jobs: Spec.Config.Kernel is required")
	}
	if spec.Config.Epochs < 1 {
		return "", fmt.Errorf("jobs: Spec.Config.Epochs must be >= 1, got %d", spec.Config.Epochs)
	}
	if spec.X == nil || spec.Y == nil {
		return "", fmt.Errorf("jobs: Spec.X and Spec.Y are required")
	}
	if spec.X.Rows != spec.Y.Rows {
		return "", fmt.Errorf("jobs: %d samples with %d target rows", spec.X.Rows, spec.Y.Rows)
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", ErrClosed
	}
	m.seq++
	id := fmt.Sprintf("job-%d", m.seq)
	name := spec.Name
	if name == "" {
		name = id
	}
	now := time.Now()
	tr := m.cfg.Tracer.Start("job:" + id)
	j := &job{
		spec:     spec,
		tr:       tr,
		enq:      now,
		cancelCh: make(chan struct{}),
		info: Info{
			ID:        id,
			Name:      name,
			State:     StateQueued,
			Epochs:    spec.Config.Epochs,
			Submitted: now,
			TraceID:   tr.ID(),
		},
	}
	j.cond = sync.NewCond(&j.mu)
	// Enqueue while still holding the lock: Close sets closed under the
	// same lock before draining, so no job can slip into the queue after
	// the drain and sit in StateQueued forever. The send cannot block —
	// the queue channel's capacity is the admission bound.
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		return "", ErrQueueFull
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	// Persist the spec and journal the submission before releasing the
	// lock: once Submit returns the id, a crash-and-restart must be able
	// to reconstruct the job, and no later record (a worker's "started")
	// may precede "submitted" in the journal.
	if m.store != nil {
		if err := m.store.saveSpec(id, spec); err != nil {
			m.persistFailure(id, tr.ID(), fmt.Errorf("save spec: %w", err))
		}
		m.journal(journalRecord{Type: recSubmitted, Job: id, Name: name}, id, tr.ID())
	}
	m.mu.Unlock()
	tr.Span("submit", now, time.Now())
	m.submitted.Inc()
	m.stateEvent(obs.LevelInfo, id, tr.ID(), StateQueued, "")
	return id, nil
}

// stateEvent emits one job.state wide event for a lifecycle transition
// (no-op with a nil Config.Events). The new state is the event's Outcome,
// so /debug/events?outcome=failed surfaces failed jobs the same way
// outcome=shed surfaces shed requests.
func (m *Manager) stateEvent(level obs.Level, id, traceID string, state State, errText string) {
	if m.cfg.Events == nil {
		return
	}
	m.cfg.Events.Emit(obs.Event{
		Level:   level,
		Kind:    obs.KindJobState,
		Job:     id,
		Outcome: string(state),
		TraceID: traceID,
		Err:     errText,
	})
}

// jobStateEvent is stateEvent reading the id and trace from the job
// record (both are immutable after Submit publishes the job).
func (m *Manager) jobStateEvent(level obs.Level, j *job, state State, errText string) {
	m.stateEvent(level, j.info.ID, j.tr.ID(), state, errText)
}

// Job returns a snapshot of the job's status.
func (m *Manager) Job(id string) (Info, bool) {
	j, ok := m.lookup(id)
	if !ok {
		return Info{}, false
	}
	return j.snapshot(), true
}

// Jobs returns snapshots of every job in submission order.
func (m *Manager) Jobs() []Info {
	m.mu.Lock()
	js := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		js = append(js, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Info, len(js))
	for i, j := range js {
		out[i] = j.snapshot()
	}
	return out
}

// Model returns the trained model of a completed job.
func (m *Manager) Model(id string) (*core.Model, bool) {
	j, ok := m.lookup(id)
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		return nil, false
	}
	return j.result.Model, true
}

// Cancel requests that the job stop. A queued job is cancelled
// immediately; a running job stops at its next epoch boundary, taking a
// checkpoint so Resume can continue the identical run. Cancelling a
// terminal job is an error.
func (m *Manager) Cancel(id string) error {
	j, ok := m.lookup(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.info.State {
	case StateQueued:
		j.cancelRequested = true
		j.info.State = StateCancelled
		m.cancelled.Inc()
		m.jobStateEvent(obs.LevelWarn, j, StateCancelled, "")
		m.journal(journalRecord{Type: recCancelled, Job: id}, id, j.tr.ID())
		j.cond.Broadcast()
		return nil
	case StateRunning:
		if !j.cancelRequested {
			j.cancelRequested = true
			close(j.cancelCh)
		}
		return nil
	default:
		return fmt.Errorf("jobs: cannot cancel job %q in state %q", id, j.info.State)
	}
}

// Resume re-enqueues a cancelled job. If the job holds a checkpoint it
// continues from the cancelled epoch boundary — reproducing the
// uninterrupted run bit for bit — otherwise it starts from scratch.
func (m *Manager) Resume(id string) error {
	// The whole transition happens under the manager lock (with the job
	// lock nested) so a concurrent Close cannot land a job in the queue
	// after its drain; see Submit.
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.info.State != StateCancelled {
		return fmt.Errorf("jobs: cannot resume job %q in state %q", id, j.info.State)
	}
	select {
	case m.queue <- j:
	default:
		return ErrQueueFull
	}
	j.cancelRequested = false
	j.cancelCh = make(chan struct{})
	j.enq = time.Now()
	j.info.State = StateQueued
	j.info.Resumes++
	m.resumed.Inc()
	m.jobStateEvent(obs.LevelInfo, j, StateQueued, "")
	m.journal(journalRecord{Type: recResumed, Job: id}, id, j.tr.ID())
	j.cond.Broadcast()
	return nil
}

// Wait blocks until the job reaches a terminal state (done, failed, or
// cancelled) and returns its final snapshot.
func (m *Manager) Wait(id string) (Info, error) {
	j, ok := m.lookup(id)
	if !ok {
		return Info{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for !terminal(j.info.State) {
		j.cond.Wait()
	}
	return j.info, nil
}

// Delete removes a terminal (done, failed, or cancelled) job from the
// manager, releasing its training data, checkpoint, and model — the
// eviction path a long-running server needs, since the manager otherwise
// retains every job for status and resume. Non-terminal jobs must be
// cancelled first.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	j.mu.Lock()
	state := j.info.State
	j.mu.Unlock()
	if !terminal(state) {
		return fmt.Errorf("jobs: cannot delete job %q in state %q", id, state)
	}
	delete(m.jobs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	// Evict the job's labeled training gauges with it.
	core.UnobserveTraining(m.cfg.Metrics, obs.L("job", id))
	if m.store != nil {
		if err := m.store.removeJob(id); err != nil {
			m.persistFailure(id, j.tr.ID(), fmt.Errorf("remove artifacts: %w", err))
		}
		m.journal(journalRecord{Type: recDeleted, Job: id}, id, j.tr.ID())
	}
	return nil
}

// Close stops accepting jobs, signals the workers, and waits for them.
// Running jobs are checkpointed and marked cancelled at their next epoch
// boundary; queued jobs are marked cancelled. Close is idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.done)
	m.wg.Wait()
	for {
		select {
		case j := <-m.queue:
			cancelled := false
			j.set(func(i *Info) {
				if i.State == StateQueued {
					i.State = StateCancelled
					m.cancelled.Inc()
					cancelled = true
				}
			})
			if cancelled {
				m.jobStateEvent(obs.LevelWarn, j, StateCancelled, "")
				// Journaled as interrupted, not cancelled: shutdown is the
				// system's choice, so a restarted manager re-enqueues the
				// job instead of waiting for a manual resume.
				snap := j.snapshot()
				m.journal(journalRecord{Type: recInterrupted, Job: snap.ID, Epoch: snap.Epoch}, snap.ID, snap.TraceID)
			}
		default:
			if m.store != nil {
				m.store.close()
			}
			return
		}
	}
}

func (m *Manager) lookup(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// worker pulls jobs off the queue until the manager closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.done:
			return
		default:
		}
		select {
		case j := <-m.queue:
			m.run(j)
		case <-m.done:
			return
		}
	}
}

// run executes one job: build (or resume) the trainer, step it epoch by
// epoch publishing progress, honor cancellation/shutdown at epoch
// boundaries with a checkpoint, and register the finished model.
func (m *Manager) run(j *job) {
	j.mu.Lock()
	if j.info.State != StateQueued || j.cancelRequested {
		// Cancelled while queued (or marked by Close); nothing to run.
		if j.info.State == StateQueued {
			j.info.State = StateCancelled
			m.jobStateEvent(obs.LevelWarn, j, StateCancelled, "")
			m.journal(journalRecord{Type: recCancelled, Job: j.info.ID}, j.info.ID, j.tr.ID())
		}
		j.cond.Broadcast()
		j.mu.Unlock()
		return
	}
	j.info.State = StateRunning
	m.jobStateEvent(obs.LevelInfo, j, StateRunning, "")
	m.journal(journalRecord{Type: recStarted, Job: j.info.ID}, j.info.ID, j.tr.ID())
	if j.info.Started.IsZero() {
		j.info.Started = time.Now()
	}
	// A prior cancellation may have left a checkpoint-failure note; this
	// run gets a clean slate.
	j.info.Error = ""
	id := j.info.ID
	spec := j.spec
	snapshot := j.checkpoint
	cancelCh := j.cancelCh
	j.tr.Span("queue", j.enq, time.Now())
	j.cond.Broadcast()
	j.mu.Unlock()

	// The manager owns shutdown too: a closing manager interrupts the job
	// exactly like a cancel.
	var t *core.Trainer
	var err error
	if snapshot != nil {
		t, err = core.ResumeTrainer(bytes.NewReader(snapshot), spec.Config, spec.X, spec.Y)
	} else {
		t, err = core.NewTrainer(spec.Config, spec.X, spec.Y)
	}
	if err != nil {
		m.fail(j, err)
		return
	}
	// Per-epoch training telemetry lands in the manager's registry labeled
	// with the job id, and as one wide train.epoch event per epoch; a
	// resumed trainer's base keeps the first delta from re-counting
	// checkpointed totals. A user OnEpoch hook in the spec runs after
	// them, on the same stats.
	onEpoch := core.ChainEpochHooks(
		core.ObserveTraining(m.cfg.Metrics, core.ObserveTrainingBase(t.Result()), obs.L("job", id)),
		core.LogTraining(m.cfg.Events, id, core.ObserveTrainingBase(t.Result())),
		spec.Config.OnEpoch,
	)
	for !t.Done() {
		epochStart := time.Now()
		stats, err := t.Step()
		if err != nil {
			m.fail(j, err)
			return
		}
		j.tr.Span(fmt.Sprintf("epoch[%d]", stats.Epoch), epochStart, time.Now())
		onEpoch(stats)
		j.set(func(i *Info) {
			i.Epoch = stats.Epoch
			i.TrainMSE = stats.TrainMSE
			if !math.IsNaN(stats.ValError) {
				i.ValError = stats.ValError
			}
			i.Iters = stats.Iters
			i.SimTime = stats.SimTime
		})
		if t.Done() {
			// A cancel racing the final epoch loses: the work is already
			// done, so the job completes and registers instead of parking
			// a fully-trained model as cancelled.
			break
		}
		// Persistent mode: seal the trainer state to disk at the epoch
		// boundary, so a kill -9 from here on loses at most the epochs
		// since the last checkpoint — and the journal record makes the
		// progress discoverable at recovery.
		if m.store != nil && stats.Epoch%m.cfg.CheckpointEvery == 0 {
			if err := m.store.saveCheckpoint(id, t); err != nil {
				m.persistFailure(id, j.tr.ID(), fmt.Errorf("epoch %d checkpoint: %w", stats.Epoch, err))
			} else {
				m.journal(journalRecord{Type: recEpoch, Job: id, Epoch: stats.Epoch, Checkpoint: true}, id, j.tr.ID())
			}
		}
		select {
		case <-cancelCh:
			m.park(j, t, false)
			return
		case <-m.done:
			m.park(j, t, true)
			return
		default:
		}
	}

	res := t.Result()
	j.mu.Lock()
	j.result = res
	name := j.info.Name
	j.mu.Unlock()
	// Persist the finished model before anything acknowledges completion.
	// The "done" record is journaled only once the model is durably on
	// disk: if the persist fails (or a crash lands between them), the last
	// journal record is still an epoch checkpoint, so a restarted manager
	// re-runs the tail of the training — deterministically producing the
	// identical model — instead of recording a completion it cannot serve.
	modelDurable := false
	if m.store != nil {
		if err := m.store.saveModel(id, res.Model); err != nil {
			m.persistFailure(id, j.tr.ID(), fmt.Errorf("save model: %w", err))
		} else {
			modelDurable = true
		}
	}
	if m.cfg.Registrar != nil {
		regStart := time.Now()
		if err := m.cfg.Registrar.Register(name, res.Model); err != nil {
			m.fail(j, fmt.Errorf("jobs: register model %q: %w", name, err))
			return
		}
		j.tr.Span("register", regStart, time.Now())
	}
	m.completed.Inc()
	j.set(func(i *Info) {
		i.State = StateDone
		i.Finished = time.Now()
		i.Servable = m.cfg.Registrar != nil
		i.Checkpointed = false
	})
	m.jobStateEvent(obs.LevelInfo, j, StateDone, "")
	if modelDurable {
		m.journal(journalRecord{Type: recDone, Job: id, Epoch: res.Epochs}, id, j.tr.ID())
	}
}

// park checkpoints an interrupted trainer and marks the job cancelled.
// interrupted distinguishes a manager shutdown (journaled so recovery
// auto-resumes the job) from a user cancel (journaled so it stays
// cancelled until an explicit resume).
func (m *Manager) park(j *job, t *core.Trainer, interrupted bool) {
	ckptStart := time.Now()
	var buf bytes.Buffer
	err := t.Checkpoint(&buf)
	j.tr.Span("checkpoint", ckptStart, time.Now())
	m.cancelled.Inc()
	j.mu.Lock()
	if err == nil {
		j.checkpoint = buf.Bytes()
		j.info.Checkpointed = true
	} else {
		// Unserializable kernel: the job can still be resumed from
		// scratch.
		j.checkpoint = nil
		j.info.Checkpointed = false
		j.info.Error = fmt.Sprintf("checkpoint: %v", err)
	}
	j.info.State = StateCancelled
	errText := j.info.Error
	id := j.info.ID
	epoch := j.info.Epoch
	ckpt := j.info.Checkpointed
	j.cond.Broadcast()
	j.mu.Unlock()
	m.jobStateEvent(obs.LevelWarn, j, StateCancelled, errText)
	if m.store != nil {
		if ckpt {
			if serr := m.store.saveCheckpointBytes(id, buf.Bytes()); serr != nil {
				m.persistFailure(id, j.tr.ID(), fmt.Errorf("park checkpoint: %w", serr))
				ckpt = false
			}
		}
		typ := recCancelled
		if interrupted {
			typ = recInterrupted
		}
		m.journal(journalRecord{Type: typ, Job: id, Epoch: epoch, Checkpoint: ckpt, Error: errText}, id, j.tr.ID())
	}
}

// fail marks the job failed.
func (m *Manager) fail(j *job, err error) {
	m.failed.Inc()
	j.set(func(i *Info) {
		i.State = StateFailed
		i.Error = err.Error()
		i.Finished = time.Now()
	})
	m.jobStateEvent(obs.LevelError, j, StateFailed, err.Error())
	snap := j.snapshot()
	m.journal(journalRecord{Type: recFailed, Job: snap.ID, Epoch: snap.Epoch, Error: snap.Error}, snap.ID, snap.TraceID)
}
