package jobs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/data"
	"eigenpro/internal/kernel"
	"eigenpro/internal/serve"
)

// smallSpec is a fast training job over a low-dimensional dataset.
func smallSpec(name string, epochs int, seed int64) Spec {
	ds := data.SUSYLike(200, seed)
	return Spec{
		Name: name,
		Config: core.Config{
			Kernel: kernel.Gaussian{Sigma: 3},
			Epochs: epochs,
			S:      64,
			Seed:   seed,
		},
		X: ds.X,
		Y: ds.Y,
	}
}

// countingRegistrar records registrations.
type countingRegistrar struct {
	mu    sync.Mutex
	names []string
}

func (r *countingRegistrar) Register(name string, m *core.Model) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m == nil || m.X == nil {
		return fmt.Errorf("nil model for %q", name)
	}
	r.names = append(r.names, name)
	return nil
}

func TestJobLifecycle(t *testing.T) {
	reg := &countingRegistrar{}
	m := New(Config{Workers: 1, Registrar: reg})
	defer m.Close()

	id, err := m.Submit(smallSpec("lifecycle", 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateDone {
		t.Fatalf("state %q (err %q), want done", info.State, info.Error)
	}
	if !info.Servable {
		t.Fatal("completed job must be servable")
	}
	if info.Epoch != 3 || info.Epochs != 3 {
		t.Fatalf("epochs %d/%d", info.Epoch, info.Epochs)
	}
	if info.TrainMSE <= 0 || info.Iters == 0 || info.SimTime <= 0 {
		t.Fatalf("metrics not populated: %+v", info)
	}
	if info.Submitted.IsZero() || info.Started.IsZero() || info.Finished.IsZero() {
		t.Fatalf("timestamps not populated: %+v", info)
	}
	if len(reg.names) != 1 || reg.names[0] != "lifecycle" {
		t.Fatalf("registered %v", reg.names)
	}
	if _, ok := m.Model(id); !ok {
		t.Fatal("model not retained")
	}
	if infos := m.Jobs(); len(infos) != 1 || infos[0].ID != id {
		t.Fatalf("listing %+v", infos)
	}

	// Eviction: terminal jobs can be deleted, freeing data and model.
	if err := m.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Job(id); ok {
		t.Fatal("deleted job still visible")
	}
	if len(m.Jobs()) != 0 {
		t.Fatal("deleted job still listed")
	}
	if err := m.Delete(id); err == nil {
		t.Fatal("double delete accepted")
	}
}

// TestDeleteNonTerminal ensures running/queued jobs cannot be evicted.
func TestDeleteNonTerminal(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	id, err := m.Submit(smallSpec("busy", 300, 13))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(id); err == nil {
		t.Fatal("delete of non-terminal job accepted")
	}
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(id); err != nil {
		t.Fatalf("delete after cancel: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Close()
	ds := data.SUSYLike(50, 1)
	bad := []Spec{
		{},
		{Config: core.Config{Kernel: kernel.Gaussian{Sigma: 1}}, X: ds.X, Y: ds.Y},            // epochs 0
		{Config: core.Config{Kernel: kernel.Gaussian{Sigma: 1}, Epochs: 1}},                   // nil data
		{Config: core.Config{Kernel: kernel.Gaussian{Sigma: 1}, Epochs: 1}, X: ds.X, Y: ds.X}, // row mismatch is fine (same rows) — use different
	}
	bad[3].Y = data.SUSYLike(30, 1).Y
	for i, s := range bad {
		if _, err := m.Submit(s); err == nil {
			t.Fatalf("spec %d accepted", i)
		}
	}
	if _, ok := m.Job("nope"); ok {
		t.Fatal("unknown job found")
	}
	if err := m.Cancel("nope"); err == nil {
		t.Fatal("cancel of unknown job accepted")
	}
	if err := m.Resume("nope"); err == nil {
		t.Fatal("resume of unknown job accepted")
	}
	if _, err := m.Wait("nope"); err == nil {
		t.Fatal("wait on unknown job accepted")
	}
}

// TestCancelResumeBitIdentical cancels a running job mid-training, resumes
// it, and asserts the final coefficients are bit-identical to a direct
// uninterrupted core.Train with the same seed — checkpoint-on-cancel plus
// resume is exact, not approximate.
func TestCancelResumeBitIdentical(t *testing.T) {
	// Enough epochs that the cancel reliably lands mid-run even on a slow
	// single-core machine.
	spec := smallSpec("exact", 80, 3)
	ref, err := core.Train(spec.Config, spec.X, spec.Y)
	if err != nil {
		t.Fatal(err)
	}

	m := New(Config{Workers: 1})
	defer m.Close()
	id, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel once at least one epoch has completed.
	deadline := time.Now().Add(30 * time.Second)
	for {
		info, _ := m.Job(id)
		if info.Epoch >= 1 {
			break
		}
		if terminal(info.State) || time.Now().After(deadline) {
			t.Fatalf("job never progressed: %+v", info)
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	info, err := m.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCancelled {
		// The job may have finished before the cancel landed; that makes
		// the test vacuous, so fail loudly to re-tune sizes.
		t.Fatalf("state %q, want cancelled", info.State)
	}
	if !info.Checkpointed {
		t.Fatal("cancelled job must hold a checkpoint")
	}
	if info.Epoch >= info.Epochs {
		t.Fatalf("cancelled after all %d epochs", info.Epochs)
	}

	if err := m.Resume(id); err != nil {
		t.Fatal(err)
	}
	info, err = m.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateDone {
		t.Fatalf("resumed job state %q (err %q)", info.State, info.Error)
	}
	if info.Resumes != 1 {
		t.Fatalf("resumes %d", info.Resumes)
	}
	got, ok := m.Model(id)
	if !ok {
		t.Fatal("no model after resume")
	}
	for i, v := range got.Alpha.Data {
		if v != ref.Model.Alpha.Data[i] {
			t.Fatalf("coefficient %d differs after cancel+resume: %v != %v", i, v, ref.Model.Alpha.Data[i])
		}
	}
}

func TestCancelQueuedJob(t *testing.T) {
	// One worker pinned by a long job ⇒ the second job stays queued.
	m := New(Config{Workers: 1})
	defer m.Close()
	long, err := m.Submit(smallSpec("long", 200, 5))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(smallSpec("queued", 2, 6))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	info, _ := m.Job(queued)
	if info.State != StateCancelled {
		t.Fatalf("state %q", info.State)
	}
	if info.Checkpointed {
		t.Fatal("never-started job cannot hold a checkpoint")
	}
	if err := m.Cancel(queued); err == nil {
		t.Fatal("double cancel of terminal job accepted")
	}
	// A cancelled-while-queued job resumes from scratch.
	if err := m.Resume(queued); err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(long); err != nil {
		t.Fatal(err)
	}
	if info, err := m.Wait(queued); err != nil || info.State == StateFailed {
		t.Fatalf("resumed queued job: %+v err %v", info, err)
	}
}

// TestConcurrentSubmitsPastPoolLimit races many submitters against a small
// pool and queue: accepted jobs must all reach a terminal state, rejected
// ones must fail with ErrQueueFull, and nothing may deadlock (run with
// -race).
func TestConcurrentSubmitsPastPoolLimit(t *testing.T) {
	m := New(Config{Workers: 2, QueueDepth: 3})
	defer m.Close()

	const submitters = 12
	var accepted sync.Map
	var rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := m.Submit(smallSpec(fmt.Sprintf("c%d", i), 1, int64(i)))
			if err != nil {
				if err != ErrQueueFull {
					t.Errorf("submit %d: %v", i, err)
				}
				rejected.Add(1)
				return
			}
			accepted.Store(id, true)
		}(i)
	}
	wg.Wait()
	accepted.Range(func(k, _ any) bool {
		info, err := m.Wait(k.(string))
		if err != nil {
			t.Errorf("wait %v: %v", k, err)
			return true
		}
		if info.State != StateDone {
			t.Errorf("job %v state %q (err %q)", k, info.State, info.Error)
		}
		return true
	})
	total := rejected.Load()
	accepted.Range(func(_, _ any) bool { total++; return true })
	if total != submitters {
		t.Fatalf("accounted %d of %d submissions", total, submitters)
	}
}

// TestCancelResumeUnderRace hammers cancel/resume transitions on a running
// job (run with -race). The job must end in a terminal state and the
// manager must survive.
func TestCancelResumeUnderRace(t *testing.T) {
	m := New(Config{Workers: 2})
	defer m.Close()
	id, err := m.Submit(smallSpec("hammer", 100, 7))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				m.Cancel(id)
				m.Resume(id)
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	// Settle: ensure the job ends terminal.
	m.Cancel(id)
	info, err := m.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if !terminal(info.State) {
		t.Fatalf("state %q", info.State)
	}
}

// TestCloseWithJobsInFlight shuts the manager down while jobs are queued
// and running: running jobs checkpoint and park as cancelled, queued jobs
// cancel, and Close returns without deadlock (run with -race).
func TestCloseWithJobsInFlight(t *testing.T) {
	m := New(Config{Workers: 2})
	ids := make([]string, 0, 5)
	for i := 0; i < 5; i++ {
		id, err := m.Submit(smallSpec(fmt.Sprintf("s%d", i), 300, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Let at least one job start.
	deadline := time.Now().Add(30 * time.Second)
	for {
		running := 0
		for _, id := range ids {
			if info, _ := m.Job(id); info.State == StateRunning {
				running++
			}
		}
		if running > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	closed := make(chan struct{})
	go func() {
		m.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(60 * time.Second):
		t.Fatal("Close deadlocked with jobs in flight")
	}
	for _, id := range ids {
		info, _ := m.Job(id)
		if !terminal(info.State) {
			t.Fatalf("job %s left in state %q after Close", id, info.State)
		}
	}
	if _, err := m.Submit(smallSpec("late", 1, 9)); err != ErrClosed {
		t.Fatalf("submit after close: %v", err)
	}
	m.Close() // idempotent
}

// TestAutoRegisterHotSwapDuringPredicts drives continuous predictions
// against a served model while training jobs auto-register new models
// under the same name — the registry hot-swap path exercised by an
// in-flight job registration rather than by the predict path alone (run
// with -race).
func TestAutoRegisterHotSwapDuringPredicts(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2, Timeout: -1})
	defer srv.Close()

	// Seed model so predictions can start before the first job finishes.
	first := smallSpec("hot", 1, 11)
	res, err := core.Train(first.Config, first.X, first.Y)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("hot", res.Model); err != nil {
		t.Fatal(err)
	}

	m := New(Config{Workers: 2, Registrar: srv})
	defer m.Close()

	stop := make(chan struct{})
	var predErr atomic.Value
	var wg sync.WaitGroup
	query := first.X.RowView(0)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := srv.Predict(context.Background(), "hot", query); err != nil {
					predErr.Store(err)
					return
				}
			}
		}()
	}

	// Two sequential jobs hot-swap the served model while predictions are
	// in flight.
	for i := 0; i < 2; i++ {
		id, err := m.Submit(smallSpec("hot", 2, int64(20+i)))
		if err != nil {
			t.Fatal(err)
		}
		info, err := m.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != StateDone || !info.Servable {
			t.Fatalf("job %d: %+v", i, info)
		}
	}
	close(stop)
	wg.Wait()
	if err := predErr.Load(); err != nil {
		t.Fatalf("prediction failed during hot-swap: %v", err)
	}
	// The served model is the last job's, not the seed.
	mdl, ok := srv.Model("hot")
	if !ok {
		t.Fatal("model missing after hot-swaps")
	}
	if mdl == res.Model {
		t.Fatal("registry still serves the seed model")
	}
}
