package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strings"

	"eigenpro/internal/core"
	"eigenpro/internal/data"
	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
	"eigenpro/internal/obs"
	"eigenpro/internal/obs/slo"
)

// NewHandler exposes a Manager over HTTP JSON:
//
//	POST   /train             submit a training job → {"id":"job-1", ...}
//	GET    /jobs              list all jobs with status and metrics
//	GET    /jobs/{id}         one job's status
//	POST   /jobs/{id}/cancel  stop at the next epoch boundary (checkpointing)
//	POST   /jobs/{id}/resume  continue a cancelled job bit-for-bit
//	DELETE /jobs/{id}         evict a terminal job (frees data and model)
//	GET    /metrics           metric exposition (Prometheus text, or OpenMetrics
//	                          under Accept: application/openmetrics-text)
//	GET    /debug/traces      recent job span traces (JSON; ?id= and ?limit=)
//	GET    /debug/events      recent wide events (JSON; ?job=&outcome=&since=&limit=)
//	GET    /debug/slo         SLO objectives, burn rates, budget, alert history (JSON)
//	GET    /debug/flight      flight-recorder snapshots (JSON; ?snapshot= and ?file=)
//	GET    /healthz           liveness
//	GET    /readyz            readiness: 200 while the manager accepts jobs;
//	                          503 "degraded" while an SLO objective is paging
//
// Combined with the serving handler on one mux (eigenpro.NewTrainServeHandler),
// a model trained via POST /train is immediately servable via POST
// /v1/predict under the submitted name — the full train → serve loop over
// one server.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/train", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		handleTrain(m, w, r)
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, map[string]any{"jobs": m.Jobs()})
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		handleJob(m, w, r)
	})
	mux.Handle("/metrics", obs.MetricsHandler(m.Metrics()))
	mux.Handle("/debug/traces", obs.TracesHandler(m.Tracer()))
	mux.Handle("/debug/events", obs.EventsHandler(m.Events()))
	mux.Handle("/debug/slo", slo.Handler(m.SLO()))
	mux.Handle("/debug/flight", obs.FlightHandler(m.Flight()))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !m.Accepting() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready")
			return
		}
		if m.SLO().Paging() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "degraded: slo page")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// trainRequest is the POST /train body. Training data comes either from a
// synthetic dataset preset (dataset + n + data_seed) or inline rows (x with
// one-hot y, or x with labels + classes).
type trainRequest struct {
	// Name is the model name registered on completion (default: job id).
	Name string `json:"name,omitempty"`

	// Dataset preset: mnist, cifar10, svhn, timit, susy, imagenet.
	Dataset  string `json:"dataset,omitempty"`
	N        int    `json:"n,omitempty"`
	DataSeed int64  `json:"data_seed,omitempty"`

	// Inline data (alternative to Dataset).
	X       [][]float64 `json:"x,omitempty"`
	Y       [][]float64 `json:"y,omitempty"`
	Labels  []int       `json:"labels,omitempty"`
	Classes int         `json:"classes,omitempty"`

	// Training configuration; zero values select the paper's automatic
	// choices.
	Kernel       string  `json:"kernel,omitempty"` // gaussian (default), laplacian, cauchy, matern32, matern52
	Sigma        float64 `json:"sigma,omitempty"`  // default 5
	Method       string  `json:"method,omitempty"` // eigenpro2 (default), eigenpro1, sgd
	Epochs       int     `json:"epochs,omitempty"` // default 5
	S            int     `json:"s,omitempty"`
	Q            int     `json:"q,omitempty"`
	Batch        int     `json:"batch,omitempty"`
	Eta          float64 `json:"eta,omitempty"`
	StopTrainMSE float64 `json:"stop_train_mse,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
}

// Bounds on HTTP-submitted workloads: the endpoint materializes synthetic
// datasets server-side, so untrusted sizes must be clamped.
const (
	maxTrainSamples = 100000
	maxTrainEpochs  = 10000
	maxTrainClasses = 10000
	// maxTrainCells bounds the one-hot target allocation rows x classes:
	// the per-field bounds alone would still admit an ~8 GB matrix from a
	// small request.
	maxTrainCells = 10_000_000
	// maxTrainBodyBytes bounds the request body before JSON decoding
	// materializes it.
	maxTrainBodyBytes = 64 << 20
)

// decodeTrainRequest decodes and validates the JSON body without
// materializing any training data (the fuzz harness drives this function).
func decodeTrainRequest(r io.Reader) (trainRequest, error) {
	var req trainRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("bad json: %w", err)
	}
	if req.Epochs == 0 {
		req.Epochs = 5
	}
	if req.Epochs < 1 || req.Epochs > maxTrainEpochs {
		return req, fmt.Errorf("epochs %d out of [1, %d]", req.Epochs, maxTrainEpochs)
	}
	if req.Sigma == 0 {
		req.Sigma = 5
	}
	if req.Sigma < 0 {
		return req, fmt.Errorf("sigma %v must be > 0", req.Sigma)
	}
	if req.Kernel == "" {
		req.Kernel = "gaussian"
	}
	if _, err := kernel.ByName(req.Kernel, req.Sigma); err != nil {
		return req, err
	}
	switch req.Method {
	case "", "eigenpro2", "eigenpro1", "sgd":
	default:
		return req, fmt.Errorf("unknown method %q", req.Method)
	}
	hasInline := len(req.X) > 0
	switch {
	case hasInline && req.Dataset != "":
		return req, errors.New("provide either dataset or inline x, not both")
	case hasInline:
		cols := len(req.X[0])
		if cols == 0 {
			return req, errors.New("inline x rows must be non-empty")
		}
		for i, row := range req.X {
			if len(row) != cols {
				return req, fmt.Errorf("inline x row %d has %d features, row 0 has %d", i, len(row), cols)
			}
		}
		if len(req.X) > maxTrainSamples {
			return req, fmt.Errorf("inline x has %d rows, max %d", len(req.X), maxTrainSamples)
		}
		switch {
		case len(req.Y) > 0:
			if len(req.Y) != len(req.X) {
				return req, fmt.Errorf("%d x rows with %d y rows", len(req.X), len(req.Y))
			}
			lcols := len(req.Y[0])
			if lcols == 0 {
				return req, errors.New("inline y rows must be non-empty")
			}
			for i, row := range req.Y {
				if len(row) != lcols {
					return req, fmt.Errorf("inline y row %d has %d outputs, row 0 has %d", i, len(row), lcols)
				}
			}
		case len(req.Labels) > 0:
			if len(req.Labels) != len(req.X) {
				return req, fmt.Errorf("%d x rows with %d labels", len(req.X), len(req.Labels))
			}
			if req.Classes < 2 || req.Classes > maxTrainClasses {
				// The one-hot target matrix is rows x classes, so an
				// unbounded class count would let a tiny request force a
				// huge allocation.
				return req, fmt.Errorf("labels need classes in [2, %d], got %d", maxTrainClasses, req.Classes)
			}
			if len(req.X)*req.Classes > maxTrainCells {
				return req, fmt.Errorf("%d rows x %d classes exceeds %d one-hot cells", len(req.X), req.Classes, maxTrainCells)
			}
			for i, lbl := range req.Labels {
				if lbl < 0 || lbl >= req.Classes {
					return req, fmt.Errorf("label %d at row %d out of [0, %d)", lbl, i, req.Classes)
				}
			}
		default:
			return req, errors.New("inline x needs y or labels+classes")
		}
	default:
		if req.Dataset == "" {
			return req, errors.New("provide dataset or inline x")
		}
		if !slices.Contains(data.PresetNames(), req.Dataset) {
			return req, fmt.Errorf("unknown dataset %q (valid: %s)", req.Dataset, strings.Join(data.PresetNames(), ", "))
		}
		if req.N == 0 {
			req.N = 1000
		}
		if req.N < 16 || req.N > maxTrainSamples {
			return req, fmt.Errorf("n %d out of [16, %d]", req.N, maxTrainSamples)
		}
	}
	return req, nil
}

// spec materializes the validated request into a job spec (this is where a
// dataset preset is generated).
func (req trainRequest) spec() (Spec, error) {
	k, err := kernel.ByName(req.Kernel, req.Sigma)
	if err != nil {
		return Spec{}, err
	}
	var method core.Method
	switch req.Method {
	case "", "eigenpro2":
		method = core.MethodEigenPro2
	case "eigenpro1":
		method = core.MethodEigenPro1
	case "sgd":
		method = core.MethodSGD
	}

	var x, y *mat.Dense
	if len(req.X) > 0 {
		cols := len(req.X[0])
		x = mat.StackRows(req.X, cols)
		if len(req.Y) > 0 {
			y = mat.StackRows(req.Y, len(req.Y[0]))
		} else {
			y = mat.NewDense(len(req.Labels), req.Classes)
			for i, lbl := range req.Labels {
				y.Set(i, lbl, 1)
			}
		}
	} else {
		ds, err := data.ByName(req.Dataset, req.N, req.DataSeed)
		if err != nil {
			return Spec{}, err
		}
		x, y = ds.X, ds.Y
	}
	return Spec{
		Name: req.Name,
		Config: core.Config{
			Kernel:       k,
			Method:       method,
			Epochs:       req.Epochs,
			S:            req.S,
			Q:            req.Q,
			Batch:        req.Batch,
			Eta:          req.Eta,
			StopTrainMSE: req.StopTrainMSE,
			Seed:         req.Seed,
		},
		X: x,
		Y: y,
	}, nil
}

func handleTrain(m *Manager, w http.ResponseWriter, r *http.Request) {
	req, err := decodeTrainRequest(http.MaxBytesReader(w, r.Body, maxTrainBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, err := req.spec()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := m.Submit(spec)
	if err != nil {
		httpError(w, statusFor(err), "%v", err)
		return
	}
	info, _ := m.Job(id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSONBody(w, info)
}

// handleJob routes /jobs/{id} and /jobs/{id}/(cancel|resume).
func handleJob(m *Manager, w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, action, _ := strings.Cut(rest, "/")
	if id == "" {
		httpError(w, http.StatusBadRequest, "job id required")
		return
	}
	switch action {
	case "":
		switch r.Method {
		case http.MethodGet:
			info, ok := m.Job(id)
			if !ok {
				httpError(w, http.StatusNotFound, "%v: %q", ErrUnknownJob, id)
				return
			}
			writeJSON(w, info)
		case http.MethodDelete:
			if err := m.Delete(id); err != nil {
				httpError(w, statusFor(err), "%v", err)
				return
			}
			writeJSON(w, map[string]string{"deleted": id})
		default:
			httpError(w, http.StatusMethodNotAllowed, "GET or DELETE only")
		}
	case "cancel", "resume":
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var err error
		if action == "cancel" {
			err = m.Cancel(id)
		} else {
			err = m.Resume(id)
		}
		if err != nil {
			httpError(w, statusFor(err), "%v", err)
			return
		}
		info, _ := m.Job(id)
		writeJSON(w, info)
	default:
		httpError(w, http.StatusNotFound, "unknown action %q", action)
	}
}

// statusFor maps lifecycle errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusConflict
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, v)
}

func writeJSONBody(w http.ResponseWriter, v any) {
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing useful left to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
