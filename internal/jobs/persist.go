package jobs

// Persistent mode: with Config.StateDir set, the manager journals every
// lifecycle transition to an append-only checksummed WAL and seals job
// artifacts (spec, trainer checkpoint, finished model) to disk with
// atomic corruption-detected writes, so a kill -9 loses at most the
// epochs since the last checkpoint and a restarted manager resumes
// exactly — bit for bit — where the dead process left off.
//
// State-dir layout:
//
//	<state-dir>/journal.jsonl            lifecycle WAL (durable.Journal)
//	<state-dir>/jobs/<id>/spec.gob       submitted training spec (sealed)
//	<state-dir>/jobs/<id>/checkpoint.gob latest epoch-boundary trainer
//	                                     snapshot (sealed, atomically
//	                                     replaced at each checkpoint)
//	<state-dir>/jobs/<id>/model.gob      finished model (sealed)
//
// Crash-consistency contract: the journal decides each job's *state*;
// the checkpoint file is the trusted *progress*. Because the checkpoint
// is replaced atomically and verified on read, replaying "the last state
// the journal proves" from "the newest checkpoint that verifies" is
// always safe — at worst it redoes work that deterministic training
// reproduces identically. The "done" record is appended only after the
// model is durably sealed, so completion is never claimed for a model
// that cannot be reloaded.
//
// Not persisted (documented limits): Spec.Config.OnEpoch (a function)
// and Spec.Config.Spectrum (recomputed deterministically from Seed; the
// in-flight spectrum rides inside the trainer checkpoint instead).

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/device"
	"eigenpro/internal/durable"
	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
	"eigenpro/internal/obs"
)

// Journal record types, one per lifecycle transition.
const (
	recSubmitted   = "submitted"
	recStarted     = "started"
	recEpoch       = "epoch"
	recCancelled   = "cancelled"
	recInterrupted = "interrupted"
	recResumed     = "resumed"
	recDone        = "done"
	recFailed      = "failed"
	recDeleted     = "deleted"
)

// journalRecord is one JSON line in the WAL.
type journalRecord struct {
	Type string `json:"type"`
	Job  string `json:"job"`
	// Name rides only on "submitted" (immutable afterwards).
	Name string `json:"name,omitempty"`
	// Epoch is the completed-epoch count at the transition.
	Epoch int `json:"epoch,omitempty"`
	// Checkpoint reports that a sealed trainer snapshot accompanied the
	// record.
	Checkpoint bool `json:"checkpoint,omitempty"`
	// Error carries the failure (or checkpoint-failure) text.
	Error string `json:"error,omitempty"`
	// At is the transition wall time.
	At time.Time `json:"at"`
}

// journal appends one record to the WAL; a persistence failure is
// tolerated (the in-memory lifecycle proceeds) but counted and surfaced.
// No-op outside persistent mode, so call sites need no guards.
func (m *Manager) journal(rec journalRecord, id, traceID string) {
	if m.store == nil {
		return
	}
	rec.At = time.Now()
	if err := m.store.record(rec); err != nil {
		m.persistFailure(id, traceID, fmt.Errorf("journal %s: %w", rec.Type, err))
	}
}

// persistFailure counts a tolerated durability failure and emits the
// durable.error wide event. Training availability wins over durability:
// the job keeps running, the operator sees the gap.
func (m *Manager) persistFailure(id, traceID string, err error) {
	m.persistErrors.Inc()
	if m.cfg.Events != nil {
		m.cfg.Events.Emit(obs.Event{
			Level:   obs.LevelError,
			Kind:    obs.KindDurableError,
			Job:     id,
			TraceID: traceID,
			Err:     err.Error(),
		})
	}
}

// Recovered returns how many jobs this manager restored from the journal
// at startup (0 outside persistent mode).
func (m *Manager) Recovered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recoveredN
}

// StateDir returns the durable state directory, or "" outside persistent
// mode.
func (m *Manager) StateDir() string { return m.cfg.StateDir }

// store wraps the state directory: the WAL plus sealed per-job artifact
// files, all through one durable.FS so fault injection covers every
// operation.
type store struct {
	fsys durable.FS
	dir  string

	mu sync.Mutex
	j  *durable.Journal
}

// openStore opens (creating if needed) the state directory and its
// journal, returning the replayed records.
func openStore(fsys durable.FS, dir string) (*store, durable.Replay, error) {
	if fsys == nil {
		fsys = durable.OS{}
	}
	if err := fsys.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, durable.Replay{}, fmt.Errorf("jobs: state dir %s: %w", dir, err)
	}
	j, replay, err := durable.OpenJournal(fsys, filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		return nil, replay, fmt.Errorf("jobs: %w", err)
	}
	return &store{fsys: fsys, dir: dir, j: j}, replay, nil
}

func (s *store) jobDir(id string) string { return filepath.Join(s.dir, "jobs", id) }

func (s *store) record(rec journalRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.j == nil {
		return os.ErrClosed
	}
	return s.j.Append(rec)
}

func (s *store) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.j != nil {
		s.j.Close()
		s.j = nil
	}
}

// specVersion guards the sealed spec.gob layout.
const specVersion = 1

// denseWire is the serializable form of mat.Dense with decode-time shape
// validation (a corrupt-but-checksummed file cannot happen, but a
// version-drifted one can).
type denseWire struct {
	Rows, Cols int
	Data       []float64
}

func wireOf(d *mat.Dense) denseWire {
	if d == nil {
		return denseWire{}
	}
	return denseWire{Rows: d.Rows, Cols: d.Cols, Data: d.Data}
}

func (w denseWire) dense() (*mat.Dense, error) {
	if w.Rows < 0 || w.Cols < 0 || len(w.Data) != w.Rows*w.Cols {
		return nil, fmt.Errorf("jobs: decode matrix: %d elements for %dx%d", len(w.Data), w.Rows, w.Cols)
	}
	if w.Rows == 0 && w.Cols == 0 {
		return mat.NewDense(0, 0), nil
	}
	return mat.NewDenseData(w.Rows, w.Cols, w.Data), nil
}

// specWire is the sealed on-disk layout of a Spec: everything a restart
// needs to reconstruct the identical training run. The kernel is stored
// by (family, sigma) via kernel.Family — the same convention as the
// model gob format — so an unserializable custom kernel is rejected at
// Submit-persist time, not discovered at recovery.
type specWire struct {
	Version      int
	Name         string
	KernelFamily string
	KernelSigma  float64
	HasDevice    bool
	Device       device.Device
	Method       int
	S            int
	QMax         int
	Q            int
	Batch        int
	Eta          float64
	Epochs       int
	MaxIters     int
	StopTrainMSE float64
	Patience     int
	Seed         int64
	X, Y         denseWire
	HasValX      bool
	ValX         denseWire
	ValLabels    []int
}

func (s *store) specPath(id string) string { return filepath.Join(s.jobDir(id), "spec.gob") }
func (s *store) ckptPath(id string) string { return filepath.Join(s.jobDir(id), "checkpoint.gob") }
func (s *store) modelPath(id string) string {
	return filepath.Join(s.jobDir(id), "model.gob")
}

func (s *store) saveSpec(id string, spec Spec) error {
	family, sigma, err := kernel.Family(spec.Config.Kernel)
	if err != nil {
		return err
	}
	w := specWire{
		Version:      specVersion,
		Name:         spec.Name,
		KernelFamily: family,
		KernelSigma:  sigma,
		Method:       int(spec.Config.Method),
		S:            spec.Config.S,
		QMax:         spec.Config.QMax,
		Q:            spec.Config.Q,
		Batch:        spec.Config.Batch,
		Eta:          spec.Config.Eta,
		Epochs:       spec.Config.Epochs,
		MaxIters:     spec.Config.MaxIters,
		StopTrainMSE: spec.Config.StopTrainMSE,
		Patience:     spec.Config.Patience,
		Seed:         spec.Config.Seed,
		X:            wireOf(spec.X),
		Y:            wireOf(spec.Y),
		ValLabels:    spec.Config.ValLabels,
	}
	if spec.Config.Device != nil {
		w.HasDevice, w.Device = true, *spec.Config.Device
	}
	if spec.Config.ValX != nil {
		w.HasValX, w.ValX = true, wireOf(spec.Config.ValX)
	}
	if err := s.fsys.MkdirAll(s.jobDir(id), 0o755); err != nil {
		return err
	}
	return durable.WriteFileWith(s.fsys, s.specPath(id), func(wr io.Writer) error {
		return gob.NewEncoder(wr).Encode(w)
	})
}

func (s *store) loadSpec(id string) (Spec, error) {
	payload, err := durable.ReadFile(s.fsys, s.specPath(id))
	if err != nil {
		return Spec{}, err
	}
	var w specWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&w); err != nil {
		return Spec{}, fmt.Errorf("jobs: decode spec: %w", err)
	}
	if w.Version != specVersion {
		return Spec{}, fmt.Errorf("jobs: spec version %d unsupported", w.Version)
	}
	k, err := kernel.ByName(w.KernelFamily, w.KernelSigma)
	if err != nil {
		return Spec{}, fmt.Errorf("jobs: decode spec: %w", err)
	}
	x, err := w.X.dense()
	if err != nil {
		return Spec{}, err
	}
	y, err := w.Y.dense()
	if err != nil {
		return Spec{}, err
	}
	if x.Rows != y.Rows {
		return Spec{}, fmt.Errorf("jobs: decode spec: %d samples with %d target rows", x.Rows, y.Rows)
	}
	spec := Spec{
		Name: w.Name,
		X:    x,
		Y:    y,
		Config: core.Config{
			Kernel:       k,
			Method:       core.Method(w.Method),
			S:            w.S,
			QMax:         w.QMax,
			Q:            w.Q,
			Batch:        w.Batch,
			Eta:          w.Eta,
			Epochs:       w.Epochs,
			MaxIters:     w.MaxIters,
			StopTrainMSE: w.StopTrainMSE,
			Patience:     w.Patience,
			Seed:         w.Seed,
			ValLabels:    w.ValLabels,
		},
	}
	if w.HasDevice {
		dev := w.Device
		spec.Config.Device = &dev
	}
	if w.HasValX {
		valX, err := w.ValX.dense()
		if err != nil {
			return Spec{}, err
		}
		spec.Config.ValX = valX
	}
	return spec, nil
}

func (s *store) saveCheckpoint(id string, t *core.Trainer) error {
	if err := s.fsys.MkdirAll(s.jobDir(id), 0o755); err != nil {
		return err
	}
	return durable.WriteFileWith(s.fsys, s.ckptPath(id), t.Checkpoint)
}

func (s *store) saveCheckpointBytes(id string, snapshot []byte) error {
	if err := s.fsys.MkdirAll(s.jobDir(id), 0o755); err != nil {
		return err
	}
	return durable.WriteFile(s.fsys, s.ckptPath(id), snapshot)
}

func (s *store) loadCheckpoint(id string) ([]byte, error) {
	return durable.ReadFile(s.fsys, s.ckptPath(id))
}

func (s *store) saveModel(id string, model *core.Model) error {
	if err := s.fsys.MkdirAll(s.jobDir(id), 0o755); err != nil {
		return err
	}
	return durable.WriteFileWith(s.fsys, s.modelPath(id), func(w io.Writer) error {
		return core.SaveModel(w, model)
	})
}

func (s *store) loadModel(id string) (*core.Model, error) {
	payload, err := durable.ReadFile(s.fsys, s.modelPath(id))
	if err != nil {
		return nil, err
	}
	return core.LoadModel(bytes.NewReader(payload))
}

func (s *store) removeJob(id string) error {
	return s.fsys.RemoveAll(s.jobDir(id))
}

// folded is one job's journal history collapsed to what recovery needs.
type folded struct {
	last      journalRecord
	name      string
	epoch     int
	resumes   int
	submitted time.Time
}

// recover rebuilds the job table from the journal replay. It runs from
// Open before the workers start, so re-enqueued jobs sit in the buffered
// queue channel until the pool spins up; no lock ordering issues exist
// yet, but the manager lock is still taken where invariants expect it.
func (m *Manager) recover(replay durable.Replay) {
	tr := m.cfg.Tracer.Start("recovery")
	foldStart := time.Now()
	byJob := make(map[string]*folded)
	var order []string
	for _, raw := range replay.Records {
		var rec journalRecord
		if err := json.Unmarshal(raw, &rec); err != nil || rec.Job == "" {
			// The checksum passed but the payload is not one of ours —
			// a foreign or version-drifted record. Skip, surface.
			m.persistFailure("", tr.ID(), fmt.Errorf("recovery: unintelligible journal record %.80q", raw))
			continue
		}
		f := byJob[rec.Job]
		if f == nil {
			f = &folded{submitted: rec.At}
			byJob[rec.Job] = f
			order = append(order, rec.Job)
		}
		if rec.Name != "" {
			f.name = rec.Name
		}
		if rec.Epoch > f.epoch {
			f.epoch = rec.Epoch
		}
		if rec.Type == recResumed {
			f.resumes++
		}
		f.last = rec
	}
	tr.Span("journal-replay", foldStart, time.Now())
	if replay.Corrupt > 0 || replay.TruncatedTail {
		m.persistFailure("", tr.ID(), fmt.Errorf(
			"recovery: journal damage survived: %d corrupt record(s), truncated tail %v",
			replay.Corrupt, replay.TruncatedTail))
	}
	for _, id := range order {
		f := byJob[id]
		if f.last.Type == recDeleted {
			continue
		}
		if n := idSeq(id); n > m.seq {
			m.seq = n
		}
		m.recoverJob(id, f, tr)
	}
}

// idSeq extracts N from a manager-issued "job-N" id so recovered ids are
// never reissued.
func idSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil {
		return n
	}
	return 0
}

// recoverJob reconstructs one job from its folded journal history:
// terminal states are restored as records (done additionally reloads and
// re-registers its model), anything in flight — submitted, started,
// mid-epoch, interrupted by shutdown — is re-enqueued to continue from
// its newest verified checkpoint.
func (m *Manager) recoverJob(id string, f *folded, rtr *obs.Trace) {
	start := time.Now()
	name := f.name
	if name == "" {
		name = id
	}
	tr := m.cfg.Tracer.Start("job:" + id)
	j := &job{
		tr:       tr,
		cancelCh: make(chan struct{}),
		info: Info{
			ID:        id,
			Name:      name,
			Epoch:     f.epoch,
			Epochs:    f.epoch, // refined from the spec below when loaded
			Submitted: f.submitted,
			Resumes:   f.resumes,
			Recovered: true,
			TraceID:   tr.ID(),
		},
	}
	j.cond = sync.NewCond(&j.mu)

	requeued := false
	switch f.last.Type {
	case recDone:
		model, err := m.store.loadModel(id)
		if err != nil {
			m.recoveryFail(j, fmt.Errorf("recovery: load model: %w", err))
			break
		}
		j.result = &core.Result{Model: model, Epochs: f.epoch}
		j.info.State = StateDone
		j.info.Finished = f.last.At
		if m.cfg.Registrar != nil {
			if err := m.cfg.Registrar.Register(name, model); err != nil {
				m.recoveryFail(j, fmt.Errorf("recovery: register model %q: %w", name, err))
				break
			}
			j.info.Servable = true
		}
	case recFailed:
		j.info.State = StateFailed
		j.info.Error = f.last.Error
		j.info.Finished = f.last.At
	case recCancelled:
		if !m.recoverSpec(j, id) {
			break
		}
		m.recoverCheckpoint(j, id)
		j.info.State = StateCancelled
		if f.last.Error != "" {
			j.info.Error = f.last.Error
		}
	default:
		// submitted | started | epoch | resumed | interrupted: the job was
		// in flight when the process died — put it back to work.
		if !m.recoverSpec(j, id) {
			break
		}
		m.recoverCheckpoint(j, id)
		j.info.State = StateQueued
		j.enq = time.Now()
		select {
		case m.queue <- j:
			j.info.Resumes++
			requeued = true
		default:
			// Queue full (possible only when QueueDepth shrank across the
			// restart): leave the job cancelled-with-checkpoint so a
			// manual resume can still continue it.
			j.info.State = StateCancelled
			m.persistFailure(id, tr.ID(), errors.New("recovery: queue full, job left cancelled"))
		}
	}

	m.mu.Lock()
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.recoveredN++
	m.mu.Unlock()
	m.recovered.Inc()
	snap := j.snapshot()
	if m.cfg.Events != nil {
		m.cfg.Events.Emit(obs.Event{
			Level:   obs.LevelInfo,
			Kind:    obs.KindJobRecovered,
			Job:     id,
			Outcome: string(snap.State),
			TraceID: tr.ID(),
			Epoch:   snap.Epoch,
			Err:     snap.Error,
		})
	}
	if requeued {
		m.journal(journalRecord{Type: recResumed, Job: id, Epoch: snap.Epoch, Checkpoint: snap.Checkpointed}, id, tr.ID())
		m.stateEvent(obs.LevelInfo, id, tr.ID(), StateQueued, "")
	}
	rtr.Span("job:"+id, start, time.Now())
}

// recoverSpec loads the job's sealed spec; on failure the job is marked
// failed with the recovery error and false is returned.
func (m *Manager) recoverSpec(j *job, id string) bool {
	spec, err := m.store.loadSpec(id)
	if err != nil {
		m.recoveryFail(j, fmt.Errorf("recovery: load spec: %w", err))
		return false
	}
	j.spec = spec
	j.info.Epochs = spec.Config.Epochs
	return true
}

// recoverCheckpoint loads the newest verified checkpoint if one exists.
// A corrupt checkpoint is surfaced and skipped — the job restarts from
// scratch (deterministically reaching the same result) rather than ever
// loading torn state.
func (m *Manager) recoverCheckpoint(j *job, id string) {
	snapshot, err := m.store.loadCheckpoint(id)
	switch {
	case err == nil:
		j.checkpoint = snapshot
		j.info.Checkpointed = true
	case os.IsNotExist(err):
		// Never checkpointed; nothing to restore.
	default:
		m.persistFailure(id, j.tr.ID(), fmt.Errorf("recovery: checkpoint discarded: %w", err))
	}
}

// recoveryFail marks a job failed during recovery and surfaces the
// durability error behind it.
func (m *Manager) recoveryFail(j *job, err error) {
	m.failed.Inc()
	j.info.State = StateFailed
	j.info.Error = err.Error()
	j.info.Finished = time.Now()
	m.persistFailure(j.info.ID, j.tr.ID(), err)
}
