package eigen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eigenpro/internal/mat"
)

func randSym(rng *rand.Rand, n int) *mat.Dense {
	a := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func randPSD(rng *rand.Rand, n int) *mat.Dense {
	b := mat.NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	return mat.MulT(b, b)
}

// checkSystem verifies A V = V diag(λ), VᵀV = I and descending order.
func checkSystem(t *testing.T, a *mat.Dense, s *System, tol float64) {
	t.Helper()
	n := a.Rows
	if len(s.Values) != s.Vectors.Cols {
		t.Fatalf("values/vectors count mismatch: %d vs %d", len(s.Values), s.Vectors.Cols)
	}
	for i := 1; i < len(s.Values); i++ {
		if s.Values[i] > s.Values[i-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", s.Values)
		}
	}
	if r := Residual(a, s); r > tol {
		t.Fatalf("residual %g exceeds tol %g (n=%d)", r, tol, n)
	}
	vtv := mat.TMul(s.Vectors, s.Vectors)
	if !mat.Equal(vtv, mat.Eye(s.Vectors.Cols), 1e-8) {
		t.Fatal("eigenvectors not orthonormal")
	}
}

func TestSymDiagonal(t *testing.T) {
	a := mat.NewDense(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 5)
	a.Set(2, 2, 3)
	s, err := Sym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, 1}
	for i, w := range want {
		if math.Abs(s.Values[i]-w) > 1e-12 {
			t.Fatalf("Values = %v, want %v", s.Values, want)
		}
	}
	checkSystem(t, a, s, 1e-12)
}

func TestSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := mat.NewDenseData(2, 2, []float64{2, 1, 1, 2})
	s, err := Sym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Values[0]-3) > 1e-12 || math.Abs(s.Values[1]-1) > 1e-12 {
		t.Fatalf("Values = %v, want [3 1]", s.Values)
	}
	checkSystem(t, a, s, 1e-12)
}

func TestSymRandomSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{1, 2, 3, 5, 10, 30, 80} {
		a := randSym(rng, n)
		s, err := Sym(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkSystem(t, a, s, 1e-8*float64(n))
	}
}

func TestSymTraceAndFrobeniusInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randSym(rng, 25)
	s, err := Sym(a)
	if err != nil {
		t.Fatal(err)
	}
	sumVals, sumSq := 0.0, 0.0
	for _, v := range s.Values {
		sumVals += v
		sumSq += v * v
	}
	if math.Abs(sumVals-a.Trace()) > 1e-9 {
		t.Fatalf("sum of eigenvalues %v != trace %v", sumVals, a.Trace())
	}
	f := a.FrobeniusNorm()
	if math.Abs(sumSq-f*f) > 1e-8*(1+f*f) {
		t.Fatalf("sum λ² %v != ||A||_F² %v", sumSq, f*f)
	}
}

func TestSymNonSquareError(t *testing.T) {
	if _, err := Sym(mat.NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestSymEmpty(t *testing.T) {
	s, err := Sym(mat.NewDense(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != 0 {
		t.Fatal("empty matrix must yield empty system")
	}
}

func TestJacobiMatchesSym(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{2, 5, 12, 40} {
		a := randSym(rng, n)
		s1, err := Sym(a)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Jacobi(a)
		if err != nil {
			t.Fatal(err)
		}
		for i := range s1.Values {
			if math.Abs(s1.Values[i]-s2.Values[i]) > 1e-8 {
				t.Fatalf("n=%d eigenvalue %d: QL %v vs Jacobi %v", n, i, s1.Values[i], s2.Values[i])
			}
		}
		checkSystem(t, a, s2, 1e-8*float64(n))
	}
}

func TestTopQSymMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{10, 40, 120} {
		a := randPSD(rng, n)
		full, err := Sym(a)
		if err != nil {
			t.Fatal(err)
		}
		q := 5
		top, err := TopQSym(a, q, TopQOptions{Iters: 40, Oversample: 15, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if len(top.Values) != q {
			t.Fatalf("got %d values, want %d", len(top.Values), q)
		}
		for i := 0; i < q; i++ {
			rel := math.Abs(top.Values[i]-full.Values[i]) / (1 + math.Abs(full.Values[i]))
			if rel > 1e-5 {
				t.Fatalf("n=%d top eigenvalue %d: %v vs full %v", n, i, top.Values[i], full.Values[i])
			}
		}
		checkSystem(t, a, top, 1e-4*float64(n))
	}
}

func TestTopQSymEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randPSD(rng, 8)
	if _, err := TopQSym(a, 9, TopQOptions{}); err == nil {
		t.Fatal("expected error for q > n")
	}
	s, err := TopQSym(a, 0, TopQOptions{})
	if err != nil || len(s.Values) != 0 {
		t.Fatalf("q=0 should yield empty system, got %v, %v", s, err)
	}
	full, err := TopQSym(a, 8, TopQOptions{Iters: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkSystem(t, a, full, 1e-5)
}

func TestTopQDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	a := randPSD(rng, 20)
	s1, _ := TopQSym(a, 3, TopQOptions{Seed: 42})
	s2, _ := TopQSym(a, 3, TopQOptions{Seed: 42})
	for i := range s1.Values {
		if s1.Values[i] != s2.Values[i] {
			t.Fatal("TopQSym not deterministic for fixed seed")
		}
	}
}

func TestSystemTopQ(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	a := randSym(rng, 10)
	s, err := Sym(a)
	if err != nil {
		t.Fatal(err)
	}
	top := s.TopQ(4)
	if len(top.Values) != 4 || top.Vectors.Cols != 4 {
		t.Fatal("TopQ truncation wrong shape")
	}
	for i := 0; i < 4; i++ {
		if top.Values[i] != s.Values[i] {
			t.Fatal("TopQ must keep leading eigenvalues")
		}
	}
}

// Property: eigendecomposition reconstructs the matrix: V diag(λ) Vᵀ == A.
func TestQuickSymReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		a := randSym(r, n)
		s, err := Sym(a)
		if err != nil {
			return false
		}
		lam := mat.NewDense(n, n)
		for i, v := range s.Values {
			lam.Set(i, i, v)
		}
		recon := mat.Mul(s.Vectors, mat.MulT(lam, s.Vectors))
		return mat.Equal(recon, a, 1e-7*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: PSD matrices have non-negative spectra (within roundoff).
func TestQuickPSDNonNegativeSpectrum(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		a := randPSD(r, n)
		s, err := Sym(a)
		if err != nil {
			return false
		}
		for _, v := range s.Values {
			if v < -1e-8*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
