// Package eigen implements the symmetric eigensolvers required by the
// EigenPro 2.0 reproduction: a full dense solver (Householder
// tridiagonalization followed by implicit-shift QL), a cyclic Jacobi solver
// used as an independent cross-check, and block subspace iteration for
// extracting only the top-q eigenpairs of large positive semi-definite
// matrices such as subsampled kernel matrices.
package eigen

import (
	"fmt"
	"math"
	"sort"

	"eigenpro/internal/mat"
)

// System holds an eigendecomposition with eigenvalues sorted in descending
// order. Vectors stores the corresponding eigenvectors as columns, so
// A * Vectors[:,i] ≈ Values[i] * Vectors[:,i].
type System struct {
	Values  []float64
	Vectors *mat.Dense
}

// TopQ returns a copy of the system truncated to its q leading (largest)
// eigenpairs. It panics if q exceeds the stored count.
func (s *System) TopQ(q int) *System {
	if q > len(s.Values) {
		panic(fmt.Sprintf("eigen: TopQ(%d) with only %d eigenpairs", q, len(s.Values)))
	}
	vals := make([]float64, q)
	copy(vals, s.Values[:q])
	idx := make([]int, q)
	for i := range idx {
		idx[i] = i
	}
	return &System{Values: vals, Vectors: s.Vectors.SelectCols(idx)}
}

// Sym computes the full eigendecomposition of a symmetric matrix using
// Householder tridiagonalization followed by the implicit-shift QL
// algorithm. The result is sorted by descending eigenvalue. Only the lower
// triangle of a is referenced. The input is not modified.
func Sym(a *mat.Dense) (*System, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("eigen: Sym of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	if n == 0 {
		return &System{Values: nil, Vectors: mat.NewDense(0, 0)}, nil
	}
	// Work on a symmetric copy.
	z := a.Clone()
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			z.Set(j, i, z.At(i, j))
		}
	}
	d := make([]float64, n) // diagonal of tridiagonal form
	e := make([]float64, n) // subdiagonal
	tred2(z, d, e)
	if err := tql2(z, d, e); err != nil {
		return nil, err
	}
	// Sort descending, permuting eigenvector columns accordingly.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return d[order[i]] > d[order[j]] })
	vals := make([]float64, n)
	for k, idx := range order {
		vals[k] = d[idx]
	}
	return &System{Values: vals, Vectors: z.SelectCols(order)}, nil
}

// tred2 reduces the symmetric matrix stored in z to tridiagonal form using
// Householder reflections, accumulating the orthogonal transform in z.
// On return d holds the diagonal and e the subdiagonal (e[0] unused).
// Translated from the EISPACK/Numerical-Recipes algorithm.
func tred2(z *mat.Dense, d, e []float64) {
	n := z.Rows
	for i := n - 1; i >= 1; i-- {
		l := i - 1
		h := 0.0
		scale := 0.0
		if l > 0 {
			for k := 0; k <= l; k++ {
				scale += math.Abs(z.At(i, k))
			}
			if scale == 0 {
				e[i] = z.At(i, l)
			} else {
				for k := 0; k <= l; k++ {
					v := z.At(i, k) / scale
					z.Set(i, k, v)
					h += v * v
				}
				f := z.At(i, l)
				g := math.Sqrt(h)
				if f > 0 {
					g = -g
				}
				e[i] = scale * g
				h -= f * g
				z.Set(i, l, f-g)
				f = 0.0
				for j := 0; j <= l; j++ {
					z.Set(j, i, z.At(i, j)/h)
					g = 0.0
					for k := 0; k <= j; k++ {
						g += z.At(j, k) * z.At(i, k)
					}
					for k := j + 1; k <= l; k++ {
						g += z.At(k, j) * z.At(i, k)
					}
					e[j] = g / h
					f += e[j] * z.At(i, j)
				}
				hh := f / (h + h)
				for j := 0; j <= l; j++ {
					f = z.At(i, j)
					g = e[j] - hh*f
					e[j] = g
					for k := 0; k <= j; k++ {
						z.Set(j, k, z.At(j, k)-f*e[k]-g*z.At(i, k))
					}
				}
			}
		} else {
			e[i] = z.At(i, l)
		}
		d[i] = h
	}
	d[0] = 0.0
	e[0] = 0.0
	for i := 0; i < n; i++ {
		l := i - 1
		if d[i] != 0 {
			for j := 0; j <= l; j++ {
				g := 0.0
				for k := 0; k <= l; k++ {
					g += z.At(i, k) * z.At(k, j)
				}
				for k := 0; k <= l; k++ {
					z.Set(k, j, z.At(k, j)-g*z.At(k, i))
				}
			}
		}
		d[i] = z.At(i, i)
		z.Set(i, i, 1.0)
		for j := 0; j <= l; j++ {
			z.Set(j, i, 0.0)
			z.Set(i, j, 0.0)
		}
	}
}

// tql2 computes eigenvalues and eigenvectors of a symmetric tridiagonal
// matrix (diagonal d, subdiagonal e) by the QL algorithm with implicit
// shifts, updating the accumulated transform in z. It returns an error if
// an eigenvalue fails to converge in 50 iterations.
func tql2(z *mat.Dense, d, e []float64) error {
	n := z.Rows
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0.0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			m := l
			for m < n-1 {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= math.SmallestNonzeroFloat64*dd || math.Abs(e[m])/(dd+math.SmallestNonzeroFloat64) < 1e-16 {
					break
				}
				m++
			}
			if m == l {
				break
			}
			iter++
			if iter > 50 {
				return fmt.Errorf("eigen: tql2 failed to converge for eigenvalue %d", l)
			}
			g := (d[l+1] - d[l]) / (2.0 * e[l])
			r := math.Hypot(g, 1.0)
			sgn := r
			if g < 0 {
				sgn = -r
			}
			g = d[m] - d[l] + e[l]/(g+sgn)
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0.0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2.0*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < n; k++ {
					f = z.At(k, i+1)
					z.Set(k, i+1, s*z.At(k, i)+c*f)
					z.Set(k, i, c*z.At(k, i)-s*f)
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0.0
		}
	}
	return nil
}
