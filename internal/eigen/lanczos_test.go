package eigen

import (
	"math"
	"math/rand"
	"testing"

	"eigenpro/internal/mat"
)

func TestLanczosMatchesFullSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for _, n := range []int{10, 40, 100} {
		a := randPSD(rng, n)
		full, err := Sym(a)
		if err != nil {
			t.Fatal(err)
		}
		q := 5
		// Random Wishart spectra have small eigengaps; give the Krylov
		// space room to resolve the 5th Ritz vector.
		lz, err := Lanczos(a, q, LanczosOptions{Seed: 1, Steps: n/2 + 2*q})
		if err != nil {
			t.Fatal(err)
		}
		if len(lz.Values) != q {
			t.Fatalf("got %d values", len(lz.Values))
		}
		for i := 0; i < q; i++ {
			rel := math.Abs(lz.Values[i]-full.Values[i]) / (1 + math.Abs(full.Values[i]))
			if rel > 1e-6 {
				t.Fatalf("n=%d eigenvalue %d: lanczos %v vs full %v", n, i, lz.Values[i], full.Values[i])
			}
		}
		checkSystem(t, a, lz, 1e-4*float64(n))
	}
}

func TestLanczosThreeWayAgreement(t *testing.T) {
	// Sym (QL), TopQSym (subspace iteration) and Lanczos are independent
	// algorithms; all three must agree on the leading spectrum.
	rng := rand.New(rand.NewSource(91))
	a := randPSD(rng, 60)
	q := 4
	s1, err := Sym(a)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := TopQSym(a, q, TopQOptions{Iters: 40, Oversample: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := Lanczos(a, q, LanczosOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < q; i++ {
		ref := s1.Values[i]
		if math.Abs(s2.Values[i]-ref) > 1e-5*(1+ref) || math.Abs(s3.Values[i]-ref) > 1e-5*(1+ref) {
			t.Fatalf("eigenvalue %d disagreement: QL %v, subspace %v, lanczos %v",
				i, ref, s2.Values[i], s3.Values[i])
		}
	}
}

func TestLanczosInvariantSubspaceEarlyStop(t *testing.T) {
	// A rank-2 matrix collapses the Krylov basis after ~2 steps; asking
	// for 2 eigenpairs must still work.
	rng := rand.New(rand.NewSource(92))
	u := mat.NewDense(30, 2)
	for i := range u.Data {
		u.Data[i] = rng.NormFloat64()
	}
	a := mat.MulT(u, u)
	lz, err := Lanczos(a, 2, LanczosOptions{Seed: 4, Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Sym(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if math.Abs(lz.Values[i]-full.Values[i]) > 1e-7*(1+full.Values[i]) {
			t.Fatalf("rank-2 eigenvalue %d: %v vs %v", i, lz.Values[i], full.Values[i])
		}
	}
}

func TestLanczosErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	a := randPSD(rng, 10)
	if _, err := Lanczos(mat.NewDense(2, 3), 1, LanczosOptions{}); err == nil {
		t.Fatal("non-square must error")
	}
	if _, err := Lanczos(a, 0, LanczosOptions{}); err == nil {
		t.Fatal("q=0 must error")
	}
	if _, err := Lanczos(a, 11, LanczosOptions{}); err == nil {
		t.Fatal("q>n must error")
	}
	if _, err := Lanczos(a, 5, LanczosOptions{Steps: 3}); err == nil {
		t.Fatal("steps<q must error")
	}
}

func TestLanczosDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	a := randPSD(rng, 25)
	s1, _ := Lanczos(a, 3, LanczosOptions{Seed: 5})
	s2, _ := Lanczos(a, 3, LanczosOptions{Seed: 5})
	for i := range s1.Values {
		if s1.Values[i] != s2.Values[i] {
			t.Fatal("Lanczos not deterministic for fixed seed")
		}
	}
}
