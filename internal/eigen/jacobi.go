package eigen

import (
	"fmt"
	"math"
	"sort"

	"eigenpro/internal/mat"
)

// Jacobi computes the full eigendecomposition of a symmetric matrix by the
// cyclic Jacobi rotation method. It is slower than Sym but algorithmically
// independent, so the test suite uses it to cross-validate the QL solver.
// The result is sorted by descending eigenvalue. The input is not modified.
func Jacobi(a *mat.Dense) (*System, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("eigen: Jacobi of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	w := a.Clone()
	// Symmetrize from the lower triangle for robustness.
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			w.Set(j, i, w.At(i, j))
		}
	}
	v := mat.Eye(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-28*(1+w.FrobeniusNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := 1.0 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1.0 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation G(p,q,θ) on both sides: W ← GᵀWG.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals := make([]float64, n)
	order := make([]int, n)
	for i := range order {
		vals[i] = w.At(i, i)
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return vals[order[i]] > vals[order[j]] })
	sorted := make([]float64, n)
	for k, idx := range order {
		sorted[k] = vals[idx]
	}
	return &System{Values: sorted, Vectors: v.SelectCols(order)}, nil
}
