package eigen

import (
	"fmt"
	"math/rand"

	"eigenpro/internal/mat"
)

// LanczosOptions configures the Lanczos solver.
type LanczosOptions struct {
	// Steps is the Krylov subspace dimension; values < 1 default to
	// min(2q+20, n).
	Steps int
	// Seed fixes the random starting vector.
	Seed int64
}

// Lanczos computes the q leading eigenpairs of a symmetric matrix with the
// Lanczos iteration and full reorthogonalization, then solves the small
// tridiagonal problem with the QL solver. It is a third, algorithmically
// independent route to the top spectrum (after Sym and TopQSym), used by
// the test suite for triangulated cross-checks and useful on its own when
// only a handful of eigenpairs of a large matrix are needed.
func Lanczos(a *mat.Dense, q int, opt LanczosOptions) (*System, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("eigen: Lanczos of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	if q < 1 || q > n {
		return nil, fmt.Errorf("eigen: Lanczos q=%d out of [1,%d]", q, n)
	}
	steps := opt.Steps
	if steps < 1 {
		steps = 2*q + 20
	}
	if steps > n {
		steps = n
	}
	if steps < q {
		return nil, fmt.Errorf("eigen: Lanczos needs steps >= q (%d < %d)", steps, q)
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	// Krylov basis vectors stored as rows for contiguity.
	v := mat.NewDense(steps, n)
	alpha := make([]float64, steps)
	beta := make([]float64, steps) // beta[j] couples v_j and v_{j+1}

	v0 := v.RowView(0)
	for i := range v0 {
		v0[i] = rng.NormFloat64()
	}
	normalize(v0)

	used := steps
	for j := 0; j < steps; j++ {
		vj := v.RowView(j)
		w := mat.MulVec(a, vj)
		alpha[j] = mat.Dot(vj, w)
		mat.Axpy(-alpha[j], vj, w)
		if j > 0 {
			mat.Axpy(-beta[j-1], v.RowView(j-1), w)
		}
		// Full reorthogonalization: Lanczos without it loses orthogonality
		// as Ritz values converge.
		for pass := 0; pass < 2; pass++ {
			for p := 0; p <= j; p++ {
				vp := v.RowView(p)
				c := mat.Dot(vp, w)
				mat.Axpy(-c, vp, w)
			}
		}
		b := mat.Norm2(w)
		if j+1 < steps {
			if b < 1e-12 {
				// Invariant subspace found early; truncate the basis.
				used = j + 1
				break
			}
			beta[j] = b
			next := v.RowView(j + 1)
			inv := 1 / b
			for i := range next {
				next[i] = w[i] * inv
			}
		}
	}
	if used < q {
		return nil, fmt.Errorf("eigen: Lanczos basis collapsed to %d < q=%d", used, q)
	}

	// Solve the small tridiagonal eigenproblem T = tridiag(beta, alpha,
	// beta) with the dense symmetric solver.
	t := mat.NewDense(used, used)
	for j := 0; j < used; j++ {
		t.Set(j, j, alpha[j])
		if j+1 < used {
			t.Set(j, j+1, beta[j])
			t.Set(j+1, j, beta[j])
		}
	}
	small, err := Sym(t)
	if err != nil {
		return nil, err
	}
	top := small.TopQ(q)
	// Lift Ritz vectors back: x_i = Vᵀ y_i.
	basisIdx := make([]int, used)
	for i := range basisIdx {
		basisIdx[i] = i
	}
	basis := v.SelectRows(basisIdx) // used x n
	vectors := mat.TMul(basis, top.Vectors)
	return &System{Values: top.Values, Vectors: vectors}, nil
}

func normalize(x []float64) {
	n := mat.Norm2(x)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range x {
		x[i] *= inv
	}
}
