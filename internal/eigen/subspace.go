package eigen

import (
	"fmt"
	"math"
	"math/rand"

	"eigenpro/internal/mat"
)

// TopQOptions configures TopQSym block subspace iteration.
type TopQOptions struct {
	// Iters is the number of power iterations; PSD kernel matrices have
	// fast eigendecay, so a handful suffices. Values < 1 default to 8.
	Iters int
	// Oversample adds extra probe directions beyond q for accuracy;
	// values < 0 default to min(10, dim-q).
	Oversample int
	// Seed makes the random probe matrix deterministic.
	Seed int64
}

// TopQSym computes the q leading eigenpairs of a symmetric positive
// semi-definite matrix by randomized block subspace (orthogonal) iteration:
// repeatedly apply A to an orthonormal block, then solve the small projected
// eigenproblem. For the rapidly decaying spectra of kernel matrices this
// costs O(n^2 (q+p) iters) instead of the O(n^3) full solve.
func TopQSym(a *mat.Dense, q int, opt TopQOptions) (*System, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("eigen: TopQSym of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	if q < 0 || q > n {
		return nil, fmt.Errorf("eigen: TopQSym q=%d out of range for n=%d", q, n)
	}
	if q == 0 {
		return &System{Values: nil, Vectors: mat.NewDense(n, 0)}, nil
	}
	iters := opt.Iters
	if iters < 1 {
		iters = 8
	}
	over := opt.Oversample
	if over < 0 {
		over = 10
	}
	if q+over > n {
		over = n - q
	}
	b := q + over

	rng := rand.New(rand.NewSource(opt.Seed))
	probe := mat.NewDense(n, b)
	for i := range probe.Data {
		probe.Data[i] = rng.NormFloat64()
	}
	qblock := mat.Orthonormalize(probe)
	for it := 0; it < iters; it++ {
		qblock = mat.Orthonormalize(mat.Mul(a, qblock))
	}
	// Rayleigh–Ritz: T = Qᵀ A Q, then eigendecompose the small b x b system.
	t := mat.TMul(qblock, mat.Mul(a, qblock))
	small, err := Sym(t)
	if err != nil {
		return nil, err
	}
	topVals := make([]float64, q)
	copy(topVals, small.Values[:q])
	idx := make([]int, q)
	for i := range idx {
		idx[i] = i
	}
	vectors := mat.Mul(qblock, small.Vectors.SelectCols(idx))
	return &System{Values: topVals, Vectors: vectors}, nil
}

// Residual returns max_i ||A v_i - λ_i v_i||_2, a convergence diagnostic
// for an approximate eigensystem.
func Residual(a *mat.Dense, s *System) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	av := mat.Mul(a, s.Vectors)
	worst := 0.0
	for j, lam := range s.Values {
		sum := 0.0
		for i := 0; i < a.Rows; i++ {
			r := av.At(i, j) - lam*s.Vectors.At(i, j)
			sum += r * r
		}
		if sum > worst {
			worst = sum
		}
	}
	return math.Sqrt(worst)
}
