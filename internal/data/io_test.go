package data

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	ds := Generate(GenConfig{Name: "rt", N: 40, Dim: 6, Classes: 3, Seed: 81})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.Dim() != ds.Dim() || back.Classes != ds.Classes {
		t.Fatalf("shape changed: %dx%d/%d vs %dx%d/%d",
			back.N(), back.Dim(), back.Classes, ds.N(), ds.Dim(), ds.Classes)
	}
	for i := 0; i < ds.N(); i++ {
		if back.Labels[i] != ds.Labels[i] {
			t.Fatalf("label %d changed", i)
		}
		for j := 0; j < ds.Dim(); j++ {
			// %g formatting is exact for float64 round trip.
			if back.X.At(i, j) != ds.X.At(i, j) {
				t.Fatalf("value (%d,%d) changed: %v vs %v", i, j, back.X.At(i, j), ds.X.At(i, j))
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"one field":      "1\n",
		"ragged":         "1,2,3\n0,4\n",
		"bad label":      "x,1,2\n",
		"negative label": "-1,1,2\n",
		"bad value":      "1,abc,2\n",
		"single class":   "1,0.5,0.5\n1,0.1,0.2\n",
	}
	for name, text := range cases {
		if _, err := ReadCSV(strings.NewReader(text), "t"); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("0,1.5\n\n1,2.5\n"), "t")
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 {
		t.Fatalf("n = %d, want 2", ds.N())
	}
}

func TestLibSVMRoundTrip(t *testing.T) {
	ds := Generate(GenConfig{Name: "rt", N: 30, Dim: 8, Classes: 2, Seed: 83})
	// Introduce exact zeros to exercise sparsity.
	for i := 0; i < ds.N(); i++ {
		ds.X.Set(i, 3, 0)
	}
	var buf bytes.Buffer
	if err := WriteLibSVM(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLibSVM(&buf, "rt", ds.Dim())
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.Dim() != ds.Dim() {
		t.Fatalf("shape changed: %dx%d", back.N(), back.Dim())
	}
	for i := 0; i < ds.N(); i++ {
		if back.Labels[i] != ds.Labels[i] {
			t.Fatalf("label %d changed", i)
		}
		for j := 0; j < ds.Dim(); j++ {
			if back.X.At(i, j) != ds.X.At(i, j) {
				t.Fatalf("value (%d,%d) changed", i, j)
			}
		}
	}
}

func TestReadLibSVMInfersDim(t *testing.T) {
	text := "0 1:0.5 7:1.25\n1 2:-3\n# comment\n"
	ds, err := ReadLibSVM(strings.NewReader(text), "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dim() != 7 {
		t.Fatalf("dim = %d, want 7", ds.Dim())
	}
	if ds.X.At(0, 6) != 1.25 || ds.X.At(1, 1) != -3 {
		t.Fatal("sparse values misplaced")
	}
	if ds.X.At(0, 1) != 0 {
		t.Fatal("missing entries must be zero")
	}
}

func TestReadLibSVMErrors(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad label": "x 1:2\n",
		"bad pair":  "0 nocolon\n",
		"bad index": "0 0:1\n1 1:2\n",
		"bad value": "0 1:xyz\n1 1:2\n",
	}
	for name, text := range cases {
		if _, err := ReadLibSVM(strings.NewReader(text), "t", 0); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestLabelRemappingIsDense(t *testing.T) {
	// Labels 5 and 9 must remap to 0 and 1 preserving order.
	text := "5 1:1\n9 1:2\n5 1:3\n"
	ds, err := ReadLibSVM(strings.NewReader(text), "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Classes != 2 {
		t.Fatalf("classes = %d", ds.Classes)
	}
	want := []int{0, 1, 0}
	for i, w := range want {
		if ds.Labels[i] != w {
			t.Fatalf("labels = %v, want %v", ds.Labels, want)
		}
	}
}
