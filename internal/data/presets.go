package data

import "fmt"

// Preset generators matched to the datasets in the paper's §5. Each doc
// comment records the original dataset scale; sample counts here are
// arguments so experiments can run at a tractable scale and record it.

// MNISTLike mimics MNIST (paper: 6×10^4 to 6.7×10^6 samples, 784 grayscale
// features in [0,1], 10 classes): 784 dims, 10 classes, image-style [0,1]
// normalization, moderately fast spectral decay.
func MNISTLike(n int, seed int64) *Dataset {
	return Generate(GenConfig{
		Name: "mnist-like", N: n, Dim: 784, Classes: 10,
		LatentDim: 16, ClustersPerClass: 2, ClusterSpread: 0.3,
		Decay: 1.2, Noise: 0.03, Range01: true, Seed: seed,
	})
}

// CIFAR10Like mimics grayscale CIFAR-10 (paper: 5×10^4 samples, 1024
// features in [0,1], 10 classes) with more intra-class variation than
// MNIST.
func CIFAR10Like(n int, seed int64) *Dataset {
	return Generate(GenConfig{
		Name: "cifar10-like", N: n, Dim: 1024, Classes: 10,
		LatentDim: 24, ClustersPerClass: 3, ClusterSpread: 0.55,
		Decay: 0.9, Noise: 0.08, Range01: true, Seed: seed,
	})
}

// SVHNLike mimics grayscale SVHN (paper: 7×10^4 samples, 1024 features in
// [0,1], 10 classes).
func SVHNLike(n int, seed int64) *Dataset {
	return Generate(GenConfig{
		Name: "svhn-like", N: n, Dim: 1024, Classes: 10,
		LatentDim: 20, ClustersPerClass: 2, ClusterSpread: 0.5,
		Decay: 1.0, Noise: 0.06, Range01: true, Seed: seed,
	})
}

// TIMITLike mimics TIMIT frames (paper: 1.1-2×10^6 samples, 440 z-scored
// acoustic features, 144 one-hot phone targets). We keep d=440 and z-score
// normalization but shrink the label space to 48 phone classes (the
// standard folded TIMIT set) to keep one-hot regression tractable.
func TIMITLike(n int, seed int64) *Dataset {
	return Generate(GenConfig{
		Name: "timit-like", N: n, Dim: 440, Classes: 48,
		LatentDim: 32, ClustersPerClass: 2, ClusterSpread: 0.45,
		Decay: 0.8, Noise: 0.1, Range01: false, Seed: seed,
	})
}

// SUSYLike mimics SUSY (paper: 4-6×10^6 samples, 18 physics features,
// binary labels).
func SUSYLike(n int, seed int64) *Dataset {
	return Generate(GenConfig{
		Name: "susy-like", N: n, Dim: 18, Classes: 2,
		LatentDim: 10, ClustersPerClass: 4, ClusterSpread: 0.7,
		Decay: 0.5, Noise: 0.15, Range01: false, Seed: seed,
	})
}

// ImageNetFeaturesLike mimics the paper's ImageNet setup: 1.3×10^6 samples
// of Inception-ResNet-v2 convolutional features reduced to the top
// 500 PCA components, 1000 classes. We generate 256-dim dense features and
// 50 classes, preserving the "well-separated deep features, many classes"
// regime.
func ImageNetFeaturesLike(n int, seed int64) *Dataset {
	return Generate(GenConfig{
		Name: "imagenet-feat-like", N: n, Dim: 256, Classes: 50,
		LatentDim: 40, ClustersPerClass: 1, ClusterSpread: 0.25,
		Decay: 0.7, Noise: 0.05, Range01: false, Seed: seed,
	})
}

// ByName generates the preset dataset with the given name — the one
// mapping shared by the CLI flags and the HTTP training endpoint, so the
// surfaces cannot drift apart. Valid names are listed by PresetNames.
func ByName(name string, n int, seed int64) (*Dataset, error) {
	switch name {
	case "mnist":
		return MNISTLike(n, seed), nil
	case "cifar10":
		return CIFAR10Like(n, seed), nil
	case "svhn":
		return SVHNLike(n, seed), nil
	case "timit":
		return TIMITLike(n, seed), nil
	case "susy":
		return SUSYLike(n, seed), nil
	case "imagenet":
		return ImageNetFeaturesLike(n, seed), nil
	default:
		return nil, fmt.Errorf("data: unknown dataset preset %q", name)
	}
}

// PresetNames lists the names ByName accepts.
func PresetNames() []string {
	return []string{"mnist", "cifar10", "svhn", "timit", "susy", "imagenet"}
}
