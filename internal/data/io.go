package data

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"eigenpro/internal/mat"
)

// This file implements the interchange formats a downstream user needs to
// bring real data to the library: dense CSV (label in the first column)
// and the sparse LibSVM/SVMLight format used by the datasets the paper
// evaluates on (SUSY and friends ship in it).

// WriteCSV writes the dataset as comma-separated rows, label first, one
// sample per line.
func WriteCSV(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < ds.N(); i++ {
		if _, err := fmt.Fprintf(bw, "%d", ds.Labels[i]); err != nil {
			return err
		}
		for _, v := range ds.X.RowView(i) {
			if _, err := fmt.Fprintf(bw, ",%g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses label-first CSV rows into a dataset named name. All rows
// must have the same column count; labels must be non-negative integers.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var rows [][]float64
	var labels []int
	width := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if width == -1 {
			width = len(fields)
			if width < 2 {
				return nil, fmt.Errorf("data: csv line %d: need label plus at least one feature", line)
			}
		} else if len(fields) != width {
			return nil, fmt.Errorf("data: csv line %d: %d fields, want %d", line, len(fields), width)
		}
		label, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil || label < 0 {
			return nil, fmt.Errorf("data: csv line %d: bad label %q", line, fields[0])
		}
		row := make([]float64, width-1)
		for j, f := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("data: csv line %d: bad value %q", line, f)
			}
			row[j] = v
		}
		labels = append(labels, label)
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: csv read: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("data: csv: no rows")
	}
	return fromRows(name, rows, labels)
}

// WriteLibSVM writes the dataset in LibSVM/SVMLight sparse format:
// "label index:value index:value ..." with 1-based feature indices; zero
// features are omitted.
func WriteLibSVM(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < ds.N(); i++ {
		if _, err := fmt.Fprintf(bw, "%d", ds.Labels[i]); err != nil {
			return err
		}
		for j, v := range ds.X.RowView(i) {
			if v == 0 {
				continue
			}
			if _, err := fmt.Fprintf(bw, " %d:%g", j+1, v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLibSVM parses LibSVM/SVMLight sparse rows into a dense dataset named
// name. The feature dimension is the largest index seen (or dim, if
// larger; pass 0 to infer).
func ReadLibSVM(r io.Reader, name string, dim int) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	type sparseRow struct {
		label int
		idx   []int
		val   []float64
	}
	var rows []sparseRow
	maxIdx := dim
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		label, err := strconv.Atoi(fields[0])
		if err != nil || label < 0 {
			return nil, fmt.Errorf("data: libsvm line %d: bad label %q", line, fields[0])
		}
		row := sparseRow{label: label}
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon <= 0 {
				return nil, fmt.Errorf("data: libsvm line %d: bad pair %q", line, f)
			}
			idx, err := strconv.Atoi(f[:colon])
			if err != nil || idx < 1 {
				return nil, fmt.Errorf("data: libsvm line %d: bad index %q", line, f[:colon])
			}
			v, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("data: libsvm line %d: bad value %q", line, f[colon+1:])
			}
			row.idx = append(row.idx, idx)
			row.val = append(row.val, v)
			if idx > maxIdx {
				maxIdx = idx
			}
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: libsvm read: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("data: libsvm: no rows")
	}
	x := mat.NewDense(len(rows), maxIdx)
	labels := make([]int, len(rows))
	for i, row := range rows {
		labels[i] = row.label
		dst := x.RowView(i)
		for k, idx := range row.idx {
			dst[idx-1] = row.val[k]
		}
	}
	return fromDense(name, x, labels)
}

// fromRows assembles a dataset from parsed dense rows.
func fromRows(name string, rows [][]float64, labels []int) (*Dataset, error) {
	x := mat.NewDense(len(rows), len(rows[0]))
	for i, row := range rows {
		copy(x.RowView(i), row)
	}
	return fromDense(name, x, labels)
}

// fromDense assembles a dataset, remapping labels to a dense 0..C-1 range
// while preserving order.
func fromDense(name string, x *mat.Dense, labels []int) (*Dataset, error) {
	distinct := map[int]bool{}
	for _, l := range labels {
		distinct[l] = true
	}
	if len(distinct) < 2 {
		return nil, fmt.Errorf("data: dataset %q has %d distinct labels, need >= 2", name, len(distinct))
	}
	ordered := make([]int, 0, len(distinct))
	for l := range distinct {
		ordered = append(ordered, l)
	}
	sort.Ints(ordered)
	remap := make(map[int]int, len(ordered))
	for i, l := range ordered {
		remap[l] = i
	}
	mapped := make([]int, len(labels))
	for i, l := range labels {
		mapped[i] = remap[l]
	}
	return &Dataset{
		Name:    name,
		X:       x,
		Labels:  mapped,
		Classes: len(ordered),
		Y:       OneHot(mapped, len(ordered)),
	}, nil
}
