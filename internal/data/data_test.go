package data

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateShapes(t *testing.T) {
	d := Generate(GenConfig{Name: "t", N: 120, Dim: 30, Classes: 4, Seed: 1})
	if d.N() != 120 || d.Dim() != 30 || d.Classes != 4 || d.LabelDim() != 4 {
		t.Fatalf("shapes: n=%d dim=%d classes=%d l=%d", d.N(), d.Dim(), d.Classes, d.LabelDim())
	}
	if len(d.Labels) != 120 {
		t.Fatalf("labels len %d", len(d.Labels))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Name: "t", N: 50, Dim: 10, Classes: 3, Seed: 7})
	b := Generate(GenConfig{Name: "t", N: 50, Dim: 10, Classes: 3, Seed: 7})
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed must give identical data")
		}
	}
	c := Generate(GenConfig{Name: "t", N: 50, Dim: 10, Classes: 3, Seed: 8})
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different data")
	}
}

func TestGenerateAllClassesPresent(t *testing.T) {
	d := Generate(GenConfig{Name: "t", N: 40, Dim: 8, Classes: 5, Seed: 2})
	seen := make(map[int]int)
	for _, c := range d.Labels {
		seen[c]++
	}
	if len(seen) != 5 {
		t.Fatalf("only %d classes present, want 5", len(seen))
	}
	// Round-robin assignment keeps classes balanced within 1.
	for c, cnt := range seen {
		if cnt < 40/5 {
			t.Fatalf("class %d has %d samples", c, cnt)
		}
	}
}

func TestRange01Normalization(t *testing.T) {
	d := Generate(GenConfig{Name: "t", N: 200, Dim: 12, Classes: 2, Range01: true, Seed: 3})
	for _, v := range d.X.Data {
		if v < 0 || v > 1 {
			t.Fatalf("feature %v outside [0,1]", v)
		}
	}
}

func TestZScoreNormalization(t *testing.T) {
	d := Generate(GenConfig{Name: "t", N: 500, Dim: 6, Classes: 2, Seed: 4})
	for j := 0; j < 6; j++ {
		mean, sq := 0.0, 0.0
		for i := 0; i < 500; i++ {
			v := d.X.At(i, j)
			mean += v
			sq += v * v
		}
		mean /= 500
		sq /= 500
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("column %d mean %v, want ~0", j, mean)
		}
		if math.Abs(sq-mean*mean-1) > 1e-9 {
			t.Fatalf("column %d variance %v, want ~1", j, sq-mean*mean)
		}
	}
}

func TestOneHot(t *testing.T) {
	y := OneHot([]int{0, 2, 1}, 3)
	want := [][]float64{{1, 0, 0}, {0, 0, 1}, {0, 1, 0}}
	for i := range want {
		for j := range want[i] {
			if y.At(i, j) != want[i][j] {
				t.Fatalf("OneHot[%d][%d] = %v", i, j, y.At(i, j))
			}
		}
	}
}

func TestOneHotOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OneHot([]int{3}, 3)
}

func TestSubset(t *testing.T) {
	d := Generate(GenConfig{Name: "t", N: 20, Dim: 4, Classes: 2, Seed: 5})
	s := d.Subset([]int{3, 7, 11})
	if s.N() != 3 {
		t.Fatalf("subset n = %d", s.N())
	}
	for k, i := range []int{3, 7, 11} {
		if s.Labels[k] != d.Labels[i] {
			t.Fatal("subset labels wrong")
		}
		for j := 0; j < 4; j++ {
			if s.X.At(k, j) != d.X.At(i, j) {
				t.Fatal("subset features wrong")
			}
		}
	}
}

func TestSplitPartition(t *testing.T) {
	d := Generate(GenConfig{Name: "t", N: 100, Dim: 5, Classes: 2, Seed: 6})
	train, test := d.Split(0.8, 9)
	if train.N() != 80 || test.N() != 20 {
		t.Fatalf("split sizes %d/%d", train.N(), test.N())
	}
	// Same seed: deterministic.
	train2, _ := d.Split(0.8, 9)
	for i := range train.X.Data {
		if train.X.Data[i] != train2.X.Data[i] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestSplitBadFractionPanics(t *testing.T) {
	d := Generate(GenConfig{Name: "t", N: 10, Dim: 2, Classes: 2, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Split(0, 1)
}

func TestPresetsShapes(t *testing.T) {
	cases := []struct {
		d       *Dataset
		dim, cl int
		range01 bool
	}{
		{MNISTLike(30, 1), 784, 10, true},
		{CIFAR10Like(30, 1), 1024, 10, true},
		{SVHNLike(30, 1), 1024, 10, true},
		{TIMITLike(96, 1), 440, 48, false},
		{SUSYLike(30, 1), 18, 2, false},
		{ImageNetFeaturesLike(100, 1), 256, 50, false},
	}
	for _, c := range cases {
		if c.d.Dim() != c.dim || c.d.Classes != c.cl {
			t.Fatalf("%s: dim=%d classes=%d, want %d/%d", c.d.Name, c.d.Dim(), c.d.Classes, c.dim, c.cl)
		}
		if c.range01 {
			for _, v := range c.d.X.Data {
				if v < 0 || v > 1 {
					t.Fatalf("%s: feature %v outside [0,1]", c.d.Name, v)
				}
			}
		}
	}
}

// Property: one-hot rows sum to exactly 1.
func TestQuickOneHotRowSums(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		classes := 5
		labels := make([]int, len(raw))
		for i, r := range raw {
			labels[i] = int(r) % classes
		}
		y := OneHot(labels, classes)
		for i := 0; i < y.Rows; i++ {
			s := 0.0
			for _, v := range y.RowView(i) {
				s += v
			}
			if s != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
