// Package data provides deterministic synthetic dataset generators standing
// in for the paper's benchmark datasets (MNIST, CIFAR-10, SVHN, TIMIT, SUSY,
// and ImageNet convolutional features), which are unavailable offline.
//
// Each generator matches its namesake's feature dimension, number of
// classes, and value normalization, and produces class structure (Gaussian
// clusters on a low-dimensional latent manifold embedded with decaying
// spectrum) so that kernel spectra decay rapidly — the property that makes
// m*(k) small and drives the paper's results. Sample counts are scaled down
// so pure-Go linear algebra remains tractable; every experiment records the
// scale it ran at.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"eigenpro/internal/mat"
)

// Dataset is a labeled collection of samples.
type Dataset struct {
	// Name identifies the dataset in reports.
	Name string
	// X holds one sample per row (n x d).
	X *mat.Dense
	// Labels holds the class index of each sample.
	Labels []int
	// Classes is the number of distinct classes.
	Classes int
	// Y is the one-hot (n x Classes) encoding of Labels with values {0,1};
	// multiclass problems are reduced to multiple binary regressions as in
	// the paper (§5 "We reduce multiclass labels to multiple binary
	// labels").
	Y *mat.Dense
}

// N returns the number of samples.
func (d *Dataset) N() int { return d.X.Rows }

// Dim returns the feature dimension.
func (d *Dataset) Dim() int { return d.X.Cols }

// LabelDim returns the output dimension l (the one-hot width).
func (d *Dataset) LabelDim() int { return d.Y.Cols }

// Subset returns a new dataset with the given sample indices (copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	labels := make([]int, len(idx))
	for k, i := range idx {
		labels[k] = d.Labels[i]
	}
	return &Dataset{
		Name:    d.Name,
		X:       d.X.SelectRows(idx),
		Labels:  labels,
		Classes: d.Classes,
		Y:       d.Y.SelectRows(idx),
	}
}

// Split partitions the dataset into a training set with trainFrac of the
// samples and a test set with the remainder, after a deterministic shuffle
// with the given seed.
func (d *Dataset) Split(trainFrac float64, seed int64) (train, test *Dataset) {
	if trainFrac <= 0 || trainFrac > 1 {
		panic(fmt.Sprintf("data: Split fraction %v out of (0,1]", trainFrac))
	}
	n := d.N()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	cut := int(math.Round(trainFrac * float64(n)))
	if cut < 1 {
		cut = 1
	}
	if cut > n {
		cut = n
	}
	return d.Subset(perm[:cut]), d.Subset(perm[cut:])
}

// OneHot encodes class labels into an n x classes matrix with 1 at the
// label column and 0 elsewhere.
func OneHot(labels []int, classes int) *mat.Dense {
	y := mat.NewDense(len(labels), classes)
	for i, c := range labels {
		if c < 0 || c >= classes {
			panic(fmt.Sprintf("data: label %d out of range [0,%d)", c, classes))
		}
		y.Set(i, c, 1)
	}
	return y
}

// GenConfig controls synthetic dataset generation.
type GenConfig struct {
	// Name labels the generated dataset.
	Name string
	// N is the number of samples.
	N int
	// Dim is the ambient feature dimension.
	Dim int
	// Classes is the number of classes (>= 2).
	Classes int
	// LatentDim is the dimension of the class-structure manifold; the
	// ambient embedding has singular values decaying as j^(-Decay), which
	// shapes the kernel spectrum. Defaults to min(Dim, 20) when 0.
	LatentDim int
	// ClustersPerClass controls multi-modal classes (default 1).
	ClustersPerClass int
	// ClusterSpread is the intra-cluster standard deviation in latent
	// space (default 0.35).
	ClusterSpread float64
	// Decay is the embedding spectral decay exponent (default 1.0).
	Decay float64
	// Noise is isotropic ambient noise added after embedding
	// (default 0.05).
	Noise float64
	// Range01 rescales every feature into [0,1] (image-style preprocessing
	// in the paper); otherwise features are z-scored (TIMIT-style).
	Range01 bool
	// Seed fixes the generator.
	Seed int64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.LatentDim == 0 {
		c.LatentDim = c.Dim
		if c.LatentDim > 20 {
			c.LatentDim = 20
		}
	}
	if c.ClustersPerClass == 0 {
		c.ClustersPerClass = 1
	}
	if c.ClusterSpread == 0 {
		c.ClusterSpread = 0.35
	}
	if c.Decay == 0 {
		c.Decay = 1.0
	}
	if c.Noise == 0 {
		c.Noise = 0.05
	}
	return c
}

// Generate builds a synthetic classification dataset per the config.
// Samples are drawn from ClustersPerClass Gaussian clusters per class in a
// LatentDim-dimensional space, pushed through a random linear embedding
// with power-law singular value decay plus a tanh warp, and finally
// normalized (min-max or z-score).
func Generate(cfg GenConfig) *Dataset {
	cfg = cfg.withDefaults()
	if cfg.N < 1 || cfg.Dim < 1 || cfg.Classes < 2 {
		panic(fmt.Sprintf("data: invalid GenConfig n=%d dim=%d classes=%d", cfg.N, cfg.Dim, cfg.Classes))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Cluster centers, separated in latent space.
	nClusters := cfg.Classes * cfg.ClustersPerClass
	centers := mat.NewDense(nClusters, cfg.LatentDim)
	for i := range centers.Data {
		centers.Data[i] = rng.NormFloat64() * 1.5
	}

	// Random embedding with decaying spectrum: E = G * diag(j^-Decay),
	// applied as latent -> ambient.
	embed := mat.NewDense(cfg.LatentDim, cfg.Dim)
	for i := 0; i < cfg.LatentDim; i++ {
		scale := math.Pow(float64(i+1), -cfg.Decay)
		row := embed.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64() * scale / math.Sqrt(float64(cfg.LatentDim))
		}
	}

	latent := mat.NewDense(cfg.N, cfg.LatentDim)
	labels := make([]int, cfg.N)
	for i := 0; i < cfg.N; i++ {
		class := i % cfg.Classes
		cluster := class*cfg.ClustersPerClass + rng.Intn(cfg.ClustersPerClass)
		labels[i] = class
		c := centers.RowView(cluster)
		row := latent.RowView(i)
		for j := range row {
			row[j] = c[j] + rng.NormFloat64()*cfg.ClusterSpread
		}
	}

	x := mat.Mul(latent, embed)
	// Mild nonlinearity so the problem is not exactly linear in features.
	mat.ApplyInPlace(x, math.Tanh)
	for i := range x.Data {
		x.Data[i] += rng.NormFloat64() * cfg.Noise
	}

	if cfg.Range01 {
		rescale01(x)
	} else {
		zscore(x)
	}

	return &Dataset{
		Name:    cfg.Name,
		X:       x,
		Labels:  labels,
		Classes: cfg.Classes,
		Y:       OneHot(labels, cfg.Classes),
	}
}

// rescale01 maps each feature column into [0,1]; constant columns become 0.
func rescale01(x *mat.Dense) {
	for j := 0; j < x.Cols; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < x.Rows; i++ {
			v := x.At(i, j)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		span := hi - lo
		for i := 0; i < x.Rows; i++ {
			if span == 0 {
				x.Set(i, j, 0)
			} else {
				x.Set(i, j, (x.At(i, j)-lo)/span)
			}
		}
	}
}

// zscore standardizes each feature column to zero mean, unit variance;
// zero-variance columns become 0.
func zscore(x *mat.Dense) {
	means := mat.ColMeans(x)
	stds := mat.ColStds(x, means)
	for i := 0; i < x.Rows; i++ {
		row := x.RowView(i)
		for j := range row {
			if stds[j] == 0 {
				row[j] = 0
			} else {
				row[j] = (row[j] - means[j]) / stds[j]
			}
		}
	}
}
