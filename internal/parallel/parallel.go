// Package parallel implements synchronous data-parallel EigenPro 2.0
// training across a group of devices — the multi-GPU direction the paper's
// §6 names as the next natural step for kernel methods.
//
// The kernel centers (and their coefficient rows) are partitioned into one
// shard per worker. Every iteration:
//
//  1. the mini-batch is broadcast to all workers;
//  2. worker w computes its partial predictions f_w = K(batch, X_w)·α_w;
//  3. an allreduce sums the partials into f = Σ_w f_w (this is the
//     synchronization the device group's SyncOverhead models);
//  4. each worker applies the SGD update to the batch coordinates it owns
//     and the EigenPro correction to its share of the fixed block.
//
// Because every floating-point quantity is reduced deterministically
// (shards summed in worker order), the result matches single-device
// training up to roundoff reassociation — an invariant the test suite
// enforces.
package parallel

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/device"
	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
)

// Config controls sharded training. Zero values select the same automatic
// choices as core.Config.
type Config struct {
	// Kernel is required.
	Kernel kernel.Func
	// Workers is the number of shards (required >= 1).
	Workers int
	// Device is the aggregate resource (typically device.NewGroup);
	// defaults to device.SimTitanXp().
	Device *device.Device
	// S, QMax, Q, Batch, Eta, Epochs, StopTrainMSE, Seed mirror
	// core.Config.
	S, QMax, Q, Batch int
	Eta               float64
	Epochs            int
	StopTrainMSE      float64
	Seed              int64
}

// Result reports a sharded training run.
type Result struct {
	// Model is the trained predictor (coefficients assembled across
	// shards).
	Model *core.Model
	// Params are the automatically selected parameters.
	Params core.Params
	// Epochs, Iters, SimTime, WallTime, FinalTrainMSE, Converged mirror
	// core.Result.
	Epochs, Iters     int
	SimTime, WallTime time.Duration
	FinalTrainMSE     float64
	Converged         bool
}

// shard is one worker's slice of the center set.
type shard struct {
	lo, hi int // owned rows [lo, hi) of x and alpha
}

// Train fits a kernel machine with the center set partitioned across
// cfg.Workers shards. It is NewTrainer followed by Step until completion —
// use the Trainer directly for progress-monitored, cancellable, or
// checkpointed sharded training.
func Train(cfg Config, x, y *mat.Dense) (*Result, error) {
	t, err := NewTrainer(cfg, x, y)
	if err != nil {
		return nil, err
	}
	for !t.Done() {
		if _, err := t.Step(); err != nil {
			return nil, err
		}
	}
	return t.Result(), nil
}

// Trainer is the interruptible state machine behind Train, mirroring
// core.Trainer for the sharded path: one Step per epoch, Checkpoint between
// steps, ResumeTrainer to continue bit-for-bit. Not safe for concurrent use.
type Trainer struct {
	cfg    Config
	x, y   *mat.Dense
	sp     *core.Spectrum
	params core.Params

	n, d, l, s int
	lambdaTop  float64
	vq         *mat.Dense
	dDiag      []float64
	shards     []shard
	partial    []*mat.Dense

	model *core.Model
	clock *device.Clock
	rng   *rand.Rand
	res   *Result

	epoch int
	done  bool
	wall  time.Duration
}

// NewTrainer validates the configuration, estimates the spectrum, selects
// the analytic parameters, and returns a Trainer positioned before epoch 1.
func NewTrainer(cfg Config, x, y *mat.Dense) (*Trainer, error) {
	return newTrainer(cfg, x, y, nil)
}

// newTrainer adopts a precomputed spectrum when sp is non-nil (the resume
// path, where re-estimation would be wasted work).
func newTrainer(cfg Config, x, y *mat.Dense, sp *core.Spectrum) (*Trainer, error) {
	if cfg.Kernel == nil {
		return nil, fmt.Errorf("parallel: Config.Kernel is required")
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("parallel: Workers must be >= 1, got %d", cfg.Workers)
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("parallel: Epochs must be >= 1, got %d", cfg.Epochs)
	}
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("parallel: %d samples with %d target rows", x.Rows, y.Rows)
	}
	n, d, l := x.Rows, x.Cols, y.Cols
	if cfg.Workers > n {
		return nil, fmt.Errorf("parallel: %d workers for %d samples", cfg.Workers, n)
	}
	dev := cfg.Device
	if dev == nil {
		dev = device.SimTitanXp()
	}

	s := cfg.S
	if s == 0 {
		s = core.SubsampleSize(n)
	}
	if s > n {
		s = n
	}
	qmax := cfg.QMax
	if qmax == 0 {
		qmax = s / 4
		if qmax > 256 {
			qmax = 256
		}
		if qmax < 1 {
			qmax = 1
		}
	}
	if qmax >= s {
		qmax = s - 1
	}
	if sp == nil {
		var err error
		sp, err = core.EstimateSpectrum(cfg.Kernel, x, s, qmax, cfg.Seed)
		if err != nil {
			return nil, err
		}
	} else {
		s = sp.S()
		// A decoded checkpoint spectrum indexes the training rows through
		// SubIdx; entries outside [0, n) would panic in ownerOf.
		for _, idx := range sp.SubIdx {
			if idx < 0 || idx >= n {
				return nil, fmt.Errorf("parallel: spectrum subsample index %d outside %d training rows", idx, n)
			}
		}
	}
	params := core.SelectParams(sp, dev, n, d, l)
	if cfg.Q > 0 {
		if cfg.Q > sp.QMax() {
			return nil, fmt.Errorf("parallel: Q=%d exceeds available eigenpairs %d", cfg.Q, sp.QMax())
		}
		params.QAdjusted = cfg.Q
		params.BetaAdapted = core.BetaPrecond(sp, cfg.Q)
	}
	if cfg.Batch > 0 {
		params.Batch = cfg.Batch
	}
	if params.Batch > n {
		params.Batch = n
	}
	q := params.QAdjusted
	if q > 0 {
		probeN := 2000
		if probeN > n {
			probeN = n
		}
		probeIdx := rand.New(rand.NewSource(cfg.Seed + 2)).Perm(n)[:probeN]
		if b := core.BetaPrecondAt(sp, q, x.SelectRows(probeIdx)); b > params.BetaAdapted {
			params.BetaAdapted = b
		}
	}
	lambdaTop := sp.Lambda(1)
	if q > 0 {
		lambdaTop = sp.Lambda(q)
	}
	params.Eta = core.StepSize(params.Batch, params.BetaAdapted, lambdaTop)
	if cfg.Eta > 0 {
		params.Eta = cfg.Eta
	}

	// Preconditioner pieces (shared, read-only across workers).
	var vq *mat.Dense
	var dDiag []float64
	if q > 0 {
		idx := make([]int, q)
		for i := range idx {
			idx[i] = i
		}
		vq = sp.V.SelectCols(idx)
		dDiag = make([]float64, q)
		sigQ := sp.Sigma[q-1]
		for i := 0; i < q; i++ {
			if sp.Sigma[i] > 0 {
				dDiag[i] = (1 - sigQ/sp.Sigma[i]) / sp.Sigma[i]
			}
		}
	}

	// Contiguous shards.
	shards := make([]shard, cfg.Workers)
	per := n / cfg.Workers
	extra := n % cfg.Workers
	lo := 0
	for w := range shards {
		hi := lo + per
		if w < extra {
			hi++
		}
		shards[w] = shard{lo: lo, hi: hi}
		lo = hi
	}

	model := core.NewModel(cfg.Kernel, x, l)
	t := &Trainer{
		cfg: cfg, x: x, y: y, sp: sp, params: params,
		n: n, d: d, l: l, s: s,
		lambdaTop: lambdaTop, vq: vq, dDiag: dDiag,
		shards:  shards,
		partial: make([]*mat.Dense, cfg.Workers),
		model:   model,
		clock:   device.NewClock(dev),
		rng:     rand.New(rand.NewSource(cfg.Seed + 1)),
		res:     &Result{Model: model, Params: params},
	}
	return t, nil
}

// Done reports whether training has finished.
func (t *Trainer) Done() bool { return t.done }

// Epoch returns the number of completed epochs.
func (t *Trainer) Epoch() int { return t.epoch }

// Result returns the result accumulated so far; SimTime and WallTime
// reflect the work done up to now.
func (t *Trainer) Result() *Result {
	t.res.SimTime = t.clock.Elapsed()
	t.res.WallTime = t.wall
	return t.res
}

// Step runs one epoch across the shards and returns its statistics
// (ValError is always NaN: the sharded path has no validation hook). After
// the final epoch Done reports true and further Steps return
// core.ErrTrainingComplete.
func (t *Trainer) Step() (core.EpochStats, error) {
	if t.done {
		return core.EpochStats{}, core.ErrTrainingComplete
	}
	start := time.Now()
	defer func() { t.wall += time.Since(start) }()

	cfg, params, sp, res := t.cfg, t.params, t.sp, t.res
	x, y := t.x, t.y
	n, d, l, s := t.n, t.d, t.l, t.s
	q := params.QAdjusted
	alpha := t.model.Alpha
	m := params.Batch
	epoch := t.epoch + 1

	perm := t.rng.Perm(n)
	sumSq, count := 0.0, 0
	for bLo := 0; bLo < n; bLo += m {
		bHi := bLo + m
		if bHi > n {
			bHi = n
		}
		batch := perm[bLo:bHi]
		mt := len(batch)
		etaT := params.Eta
		if mt != m && cfg.Eta == 0 {
			etaT = core.StepSize(mt, params.BetaAdapted, t.lambdaTop)
		} else if mt != m {
			etaT = cfg.Eta * float64(mt) / float64(m)
		}
		xb := x.SelectRows(batch)

		// Workers compute partial predictions over their shards.
		var wg sync.WaitGroup
		kbs := make([]*mat.Dense, cfg.Workers)
		for w, sh := range t.shards {
			wg.Add(1)
			go func(w int, sh shard) {
				defer wg.Done()
				xw := x.SliceRows(sh.lo, sh.hi)
				kb := kernel.Matrix(cfg.Kernel, xb, xw) // m x n_w
				aw := alpha.SliceRows(sh.lo, sh.hi)
				t.partial[w] = mat.Mul(kb, aw)
				kbs[w] = kb
			}(w, sh)
		}
		wg.Wait()
		// Deterministic allreduce in worker order.
		f := t.partial[0].Clone()
		for w := 1; w < cfg.Workers; w++ {
			mat.AddInPlace(f, t.partial[w])
		}
		// Residual and loss.
		r := f
		for i, row := range batch {
			yRow := y.RowView(row)
			rRow := r.RowView(i)
			for j := range rRow {
				rRow[j] -= yRow[j]
				sumSq += rRow[j] * rRow[j]
			}
		}
		count += mt * l
		if math.IsNaN(sumSq) || math.IsInf(sumSq, 0) {
			t.done = true
			return core.EpochStats{}, fmt.Errorf("parallel: training diverged at epoch %d", epoch)
		}
		scale := etaT * 2 / float64(mt)

		// Correction on the fixed block (computed once, applied by
		// owners). Φ r = Σ_w Φ_w-part; the subsample columns of the
		// batch kernel rows live in the shard kernels.
		var t3 *mat.Dense
		if q > 0 {
			phiR := mat.NewDense(s, l)
			for j, rowIdx := range sp.SubIdx {
				w := ownerOf(t.shards, rowIdx)
				col := rowIdx - t.shards[w].lo
				kb := kbs[w]
				dst := phiR.RowView(j)
				for i := 0; i < mt; i++ {
					kv := kb.At(i, col)
					if kv == 0 {
						continue
					}
					mat.Axpy(kv, r.RowView(i), dst)
				}
			}
			t2 := mat.TMul(t.vq, phiR) // q x l
			for i := 0; i < t2.Rows; i++ {
				di := t.dDiag[i]
				row := t2.RowView(i)
				for j := range row {
					row[j] *= di
				}
			}
			t3 = mat.Mul(t.vq, t2) // s x l
		}

		// Owners apply updates to their coordinate blocks in parallel.
		for w := range t.shards {
			wg.Add(1)
			go func(w int, sh shard) {
				defer wg.Done()
				for i, rowIdx := range batch {
					if rowIdx >= sh.lo && rowIdx < sh.hi {
						mat.Axpy(-scale, r.RowView(i), alpha.RowView(rowIdx))
					}
				}
				if t3 != nil {
					for j, rowIdx := range sp.SubIdx {
						if rowIdx >= sh.lo && rowIdx < sh.hi {
							mat.Axpy(scale, t3.RowView(j), alpha.RowView(rowIdx))
						}
					}
				}
			}(w, t.shards[w])
		}
		wg.Wait()

		t.clock.Charge(core.ImprovedEigenProIterOps(n, mt, d, l, s, q))
		res.Iters++
	}
	res.Epochs = epoch
	res.FinalTrainMSE = sumSq / float64(count)
	t.epoch = epoch
	if cfg.StopTrainMSE > 0 && res.FinalTrainMSE < cfg.StopTrainMSE {
		res.Converged = true
		t.done = true
	}
	if epoch >= cfg.Epochs {
		t.done = true
	}
	return core.EpochStats{
		Epoch:    epoch,
		TrainMSE: res.FinalTrainMSE,
		ValError: math.NaN(),
		SimTime:  t.clock.Elapsed(),
		Wall:     t.wall + time.Since(start),
		Iters:    res.Iters,
	}, nil
}

// ownerOf returns the index of the shard owning global row idx.
func ownerOf(shards []shard, idx int) int {
	for w, sh := range shards {
		if idx >= sh.lo && idx < sh.hi {
			return w
		}
	}
	panic(fmt.Sprintf("parallel: row %d outside all shards", idx))
}
