// Package parallel implements synchronous data-parallel EigenPro 2.0
// training across a group of devices — the multi-GPU direction the paper's
// §6 names as the next natural step for kernel methods.
//
// The kernel centers (and their coefficient rows) are partitioned into one
// shard per worker. Every iteration:
//
//  1. the mini-batch is broadcast to all workers;
//  2. worker w computes its partial predictions f_w = K(batch, X_w)·α_w;
//  3. an allreduce sums the partials into f = Σ_w f_w (this is the
//     synchronization the device group's SyncOverhead models);
//  4. each worker applies the SGD update to the batch coordinates it owns
//     and the EigenPro correction to its share of the fixed block.
//
// Because every floating-point quantity is reduced deterministically
// (shards summed in worker order), the result matches single-device
// training up to roundoff reassociation — an invariant the test suite
// enforces.
package parallel

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/device"
	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
)

// Config controls sharded training. Zero values select the same automatic
// choices as core.Config.
type Config struct {
	// Kernel is required.
	Kernel kernel.Func
	// Workers is the number of shards (required >= 1).
	Workers int
	// Device is the aggregate resource (typically device.NewGroup);
	// defaults to device.SimTitanXp().
	Device *device.Device
	// S, QMax, Q, Batch, Eta, Epochs, StopTrainMSE, Seed mirror
	// core.Config.
	S, QMax, Q, Batch int
	Eta               float64
	Epochs            int
	StopTrainMSE      float64
	Seed              int64
}

// Result reports a sharded training run.
type Result struct {
	// Model is the trained predictor (coefficients assembled across
	// shards).
	Model *core.Model
	// Params are the automatically selected parameters.
	Params core.Params
	// Epochs, Iters, SimTime, WallTime, FinalTrainMSE, Converged mirror
	// core.Result.
	Epochs, Iters     int
	SimTime, WallTime time.Duration
	FinalTrainMSE     float64
	Converged         bool
}

// shard is one worker's slice of the center set.
type shard struct {
	lo, hi int // owned rows [lo, hi) of x and alpha
}

// Train fits a kernel machine with the center set partitioned across
// cfg.Workers shards.
func Train(cfg Config, x, y *mat.Dense) (*Result, error) {
	if cfg.Kernel == nil {
		return nil, fmt.Errorf("parallel: Config.Kernel is required")
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("parallel: Workers must be >= 1, got %d", cfg.Workers)
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("parallel: Epochs must be >= 1, got %d", cfg.Epochs)
	}
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("parallel: %d samples with %d target rows", x.Rows, y.Rows)
	}
	n, d, l := x.Rows, x.Cols, y.Cols
	if cfg.Workers > n {
		return nil, fmt.Errorf("parallel: %d workers for %d samples", cfg.Workers, n)
	}
	dev := cfg.Device
	if dev == nil {
		dev = device.SimTitanXp()
	}

	s := cfg.S
	if s == 0 {
		s = core.SubsampleSize(n)
	}
	if s > n {
		s = n
	}
	qmax := cfg.QMax
	if qmax == 0 {
		qmax = s / 4
		if qmax > 256 {
			qmax = 256
		}
		if qmax < 1 {
			qmax = 1
		}
	}
	if qmax >= s {
		qmax = s - 1
	}
	sp, err := core.EstimateSpectrum(cfg.Kernel, x, s, qmax, cfg.Seed)
	if err != nil {
		return nil, err
	}
	params := core.SelectParams(sp, dev, n, d, l)
	if cfg.Q > 0 {
		if cfg.Q > sp.QMax() {
			return nil, fmt.Errorf("parallel: Q=%d exceeds available eigenpairs %d", cfg.Q, sp.QMax())
		}
		params.QAdjusted = cfg.Q
		params.BetaAdapted = core.BetaPrecond(sp, cfg.Q)
	}
	if cfg.Batch > 0 {
		params.Batch = cfg.Batch
	}
	if params.Batch > n {
		params.Batch = n
	}
	q := params.QAdjusted
	if q > 0 {
		probeN := 2000
		if probeN > n {
			probeN = n
		}
		probeIdx := rand.New(rand.NewSource(cfg.Seed + 2)).Perm(n)[:probeN]
		if b := core.BetaPrecondAt(sp, q, x.SelectRows(probeIdx)); b > params.BetaAdapted {
			params.BetaAdapted = b
		}
	}
	lambdaTop := sp.Lambda(1)
	if q > 0 {
		lambdaTop = sp.Lambda(q)
	}
	params.Eta = core.StepSize(params.Batch, params.BetaAdapted, lambdaTop)
	if cfg.Eta > 0 {
		params.Eta = cfg.Eta
	}

	// Preconditioner pieces (shared, read-only across workers).
	var vq *mat.Dense
	var dDiag []float64
	if q > 0 {
		idx := make([]int, q)
		for i := range idx {
			idx[i] = i
		}
		vq = sp.V.SelectCols(idx)
		dDiag = make([]float64, q)
		sigQ := sp.Sigma[q-1]
		for i := 0; i < q; i++ {
			if sp.Sigma[i] > 0 {
				dDiag[i] = (1 - sigQ/sp.Sigma[i]) / sp.Sigma[i]
			}
		}
	}

	// Contiguous shards.
	shards := make([]shard, cfg.Workers)
	per := n / cfg.Workers
	extra := n % cfg.Workers
	lo := 0
	for w := range shards {
		hi := lo + per
		if w < extra {
			hi++
		}
		shards[w] = shard{lo: lo, hi: hi}
		lo = hi
	}

	model := core.NewModel(cfg.Kernel, x, l)
	alpha := model.Alpha
	clock := device.NewClock(dev)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	res := &Result{Model: model, Params: params}
	m := params.Batch
	start := time.Now()

	partial := make([]*mat.Dense, cfg.Workers)
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		perm := rng.Perm(n)
		sumSq, count := 0.0, 0
		for bLo := 0; bLo < n; bLo += m {
			bHi := bLo + m
			if bHi > n {
				bHi = n
			}
			batch := perm[bLo:bHi]
			mt := len(batch)
			etaT := params.Eta
			if mt != m && cfg.Eta == 0 {
				etaT = core.StepSize(mt, params.BetaAdapted, lambdaTop)
			} else if mt != m {
				etaT = cfg.Eta * float64(mt) / float64(m)
			}
			xb := x.SelectRows(batch)

			// Workers compute partial predictions over their shards.
			var wg sync.WaitGroup
			kbs := make([]*mat.Dense, cfg.Workers)
			for w, sh := range shards {
				wg.Add(1)
				go func(w int, sh shard) {
					defer wg.Done()
					xw := x.SliceRows(sh.lo, sh.hi)
					kb := kernel.Matrix(cfg.Kernel, xb, xw) // m x n_w
					aw := alpha.SliceRows(sh.lo, sh.hi)
					partial[w] = mat.Mul(kb, aw)
					kbs[w] = kb
				}(w, sh)
			}
			wg.Wait()
			// Deterministic allreduce in worker order.
			f := partial[0].Clone()
			for w := 1; w < cfg.Workers; w++ {
				mat.AddInPlace(f, partial[w])
			}
			// Residual and loss.
			r := f
			for t, row := range batch {
				yRow := y.RowView(row)
				rRow := r.RowView(t)
				for j := range rRow {
					rRow[j] -= yRow[j]
					sumSq += rRow[j] * rRow[j]
				}
			}
			count += mt * l
			if math.IsNaN(sumSq) || math.IsInf(sumSq, 0) {
				return nil, fmt.Errorf("parallel: training diverged at epoch %d", epoch)
			}
			scale := etaT * 2 / float64(mt)

			// Correction on the fixed block (computed once, applied by
			// owners). Φ r = Σ_w Φ_w-part; the subsample columns of the
			// batch kernel rows live in the shard kernels.
			var t3 *mat.Dense
			if q > 0 {
				phiR := mat.NewDense(s, l)
				for j, rowIdx := range sp.SubIdx {
					w := ownerOf(shards, rowIdx)
					col := rowIdx - shards[w].lo
					kb := kbs[w]
					dst := phiR.RowView(j)
					for t := 0; t < mt; t++ {
						kv := kb.At(t, col)
						if kv == 0 {
							continue
						}
						mat.Axpy(kv, r.RowView(t), dst)
					}
				}
				t2 := mat.TMul(vq, phiR) // q x l
				for i := 0; i < t2.Rows; i++ {
					di := dDiag[i]
					row := t2.RowView(i)
					for j := range row {
						row[j] *= di
					}
				}
				t3 = mat.Mul(vq, t2) // s x l
			}

			// Owners apply updates to their coordinate blocks in parallel.
			for w := range shards {
				wg.Add(1)
				go func(w int, sh shard) {
					defer wg.Done()
					for t, rowIdx := range batch {
						if rowIdx >= sh.lo && rowIdx < sh.hi {
							mat.Axpy(-scale, r.RowView(t), alpha.RowView(rowIdx))
						}
					}
					if t3 != nil {
						for j, rowIdx := range sp.SubIdx {
							if rowIdx >= sh.lo && rowIdx < sh.hi {
								mat.Axpy(scale, t3.RowView(j), alpha.RowView(rowIdx))
							}
						}
					}
				}(w, shards[w])
			}
			wg.Wait()

			clock.Charge(core.ImprovedEigenProIterOps(n, mt, d, l, s, q))
			res.Iters++
		}
		res.Epochs = epoch
		res.FinalTrainMSE = sumSq / float64(count)
		if cfg.StopTrainMSE > 0 && res.FinalTrainMSE < cfg.StopTrainMSE {
			res.Converged = true
			break
		}
	}
	res.SimTime = clock.Elapsed()
	res.WallTime = time.Since(start)
	return res, nil
}

// ownerOf returns the index of the shard owning global row idx.
func ownerOf(shards []shard, idx int) int {
	for w, sh := range shards {
		if idx >= sh.lo && idx < sh.hi {
			return w
		}
	}
	panic(fmt.Sprintf("parallel: row %d outside all shards", idx))
}
