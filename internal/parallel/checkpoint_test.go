package parallel

import (
	"bytes"
	"testing"

	"eigenpro/internal/data"
	"eigenpro/internal/kernel"
)

func shardedCheckpointCfg() Config {
	return Config{
		Kernel:  kernel.Gaussian{Sigma: 5},
		Workers: 3,
		Epochs:  3,
		S:       100,
		Seed:    5,
	}
}

// TestShardedCheckpointResumeBitIdentical checkpoints the sharded trainer
// at every epoch boundary, resumes, and asserts the final coefficients are
// bit-identical to an uninterrupted run with the same seed — the same
// equivalence the single-device trainer guarantees.
func TestShardedCheckpointResumeBitIdentical(t *testing.T) {
	cfg := shardedCheckpointCfg()
	ds := data.MNISTLike(240, 21)

	ref, err := Train(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}

	for stop := 0; stop <= cfg.Epochs; stop++ {
		tr, err := NewTrainer(cfg, ds.X, ds.Y)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < stop && !tr.Done(); e++ {
			if _, err := tr.Step(); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := tr.Checkpoint(&buf); err != nil {
			t.Fatalf("stop %d: checkpoint: %v", stop, err)
		}
		res, err := ResumeTrainer(&buf, ds.X, ds.Y)
		if err != nil {
			t.Fatalf("stop %d: resume: %v", stop, err)
		}
		for !res.Done() {
			if _, err := res.Step(); err != nil {
				t.Fatal(err)
			}
		}
		got := res.Result()
		if got.Epochs != ref.Epochs || got.Iters != ref.Iters {
			t.Fatalf("stop %d: epochs/iters %d/%d, want %d/%d", stop, got.Epochs, got.Iters, ref.Epochs, ref.Iters)
		}
		for i, v := range got.Model.Alpha.Data {
			if v != ref.Model.Alpha.Data[i] {
				t.Fatalf("stop %d: coefficient %d differs: %v != %v (bit-exactness violated)",
					stop, i, v, ref.Model.Alpha.Data[i])
			}
		}
		if got.SimTime != ref.SimTime {
			t.Fatalf("stop %d: sim time %v != %v", stop, got.SimTime, ref.SimTime)
		}
		if got.FinalTrainMSE != ref.FinalTrainMSE {
			t.Fatalf("stop %d: final mse %v != %v", stop, got.FinalTrainMSE, ref.FinalTrainMSE)
		}
	}
}

// TestShardedResumeValidation exercises the resume error paths.
func TestShardedResumeValidation(t *testing.T) {
	cfg := shardedCheckpointCfg()
	ds := data.MNISTLike(200, 23)
	tr, err := NewTrainer(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	other := data.MNISTLike(120, 23)
	if _, err := ResumeTrainer(bytes.NewReader(snap), other.X, other.Y); err == nil {
		t.Fatal("mismatched data shape must fail")
	}
	if _, err := ResumeTrainer(bytes.NewReader(snap[:len(snap)/2]), ds.X, ds.Y); err == nil {
		t.Fatal("truncated checkpoint must fail")
	}
}
