package parallel

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/device"
	"eigenpro/internal/mat"
)

// Checkpointing mirrors core.Trainer's: a snapshot at an epoch boundary
// carries the config scalars, the device model, the Nyström spectrum, and
// the mutable state (coefficients, counters, clock); everything analytic is
// recomputed deterministically on resume, and the shuffling RNG is
// reproduced by replaying the consumed per-epoch permutations. The caller
// re-supplies the training data. Because every floating-point reduction in
// the sharded path is deterministic (shards summed in worker order), a
// resumed run reproduces the uninterrupted run bit for bit.

const checkpointVersion = 1

// checkpointWire is the on-wire layout of a sharded-trainer snapshot.
type checkpointWire struct {
	Version int

	Workers      int
	S, QMax, Q   int
	Batch        int
	Eta          float64
	Epochs       int
	StopTrainMSE float64
	Seed         int64

	Device  device.Device
	N, D, L int

	// Spectrum is a core.SaveSpectrum encoding.
	Spectrum []byte

	AlphaRows, AlphaCols int
	AlphaData            []float64

	Epoch         int
	Iters         int
	ClockElapsed  int64 // time.Duration
	ClockOps      float64
	ClockIters    int64
	Wall          int64 // time.Duration
	FinalTrainMSE float64
	Converged     bool
	Done          bool
}

// Checkpoint writes a resumable snapshot of the sharded trainer to w. Call
// it between steps.
func (t *Trainer) Checkpoint(w io.Writer) error {
	var spBuf bytes.Buffer
	if err := core.SaveSpectrum(&spBuf, t.sp); err != nil {
		return fmt.Errorf("parallel: Checkpoint: %w", err)
	}
	dev := t.cfg.Device
	if dev == nil {
		dev = device.SimTitanXp()
	}
	wire := checkpointWire{
		Version:       checkpointVersion,
		Workers:       t.cfg.Workers,
		S:             t.cfg.S,
		QMax:          t.cfg.QMax,
		Q:             t.cfg.Q,
		Batch:         t.cfg.Batch,
		Eta:           t.cfg.Eta,
		Epochs:        t.cfg.Epochs,
		StopTrainMSE:  t.cfg.StopTrainMSE,
		Seed:          t.cfg.Seed,
		Device:        *dev,
		N:             t.n,
		D:             t.d,
		L:             t.l,
		Spectrum:      spBuf.Bytes(),
		AlphaRows:     t.model.Alpha.Rows,
		AlphaCols:     t.model.Alpha.Cols,
		AlphaData:     t.model.Alpha.Data,
		Epoch:         t.epoch,
		Iters:         t.res.Iters,
		ClockElapsed:  int64(t.clock.Elapsed()),
		ClockOps:      t.clock.Ops(),
		ClockIters:    t.clock.Iterations(),
		Wall:          int64(t.wall),
		FinalTrainMSE: t.res.FinalTrainMSE,
		Converged:     t.res.Converged,
		Done:          t.done,
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("parallel: Checkpoint: %w", err)
	}
	return nil
}

// ResumeTrainer reconstructs a sharded Trainer from a checkpoint written by
// Trainer.Checkpoint. x and y must be the same matrices the original run
// trained on. Stepping the returned trainer to completion produces
// coefficients bit-identical to the uninterrupted run with the same seed.
func ResumeTrainer(r io.Reader, x, y *mat.Dense) (*Trainer, error) {
	var w checkpointWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("parallel: ResumeTrainer: %w", err)
	}
	if w.Version != checkpointVersion {
		return nil, fmt.Errorf("parallel: ResumeTrainer: unsupported version %d", w.Version)
	}
	if x == nil || y == nil {
		return nil, fmt.Errorf("parallel: ResumeTrainer: training data is required")
	}
	if x.Rows != w.N || x.Cols != w.D || y.Rows != w.N || y.Cols != w.L {
		return nil, fmt.Errorf("parallel: ResumeTrainer: data %dx%d/%dx%d does not match checkpointed %dx%d/%dx%d",
			x.Rows, x.Cols, y.Rows, y.Cols, w.N, w.D, w.N, w.L)
	}
	sp, err := core.LoadSpectrum(bytes.NewReader(w.Spectrum))
	if err != nil {
		return nil, fmt.Errorf("parallel: ResumeTrainer: %w", err)
	}
	dev := w.Device
	cfg := Config{
		Kernel:       sp.Kern,
		Workers:      w.Workers,
		Device:       &dev,
		S:            w.S,
		QMax:         w.QMax,
		Q:            w.Q,
		Batch:        w.Batch,
		Eta:          w.Eta,
		Epochs:       w.Epochs,
		StopTrainMSE: w.StopTrainMSE,
		Seed:         w.Seed,
	}
	t, err := newTrainer(cfg, x, y, sp)
	if err != nil {
		return nil, fmt.Errorf("parallel: ResumeTrainer: %w", err)
	}
	if w.AlphaRows != t.model.Alpha.Rows || w.AlphaCols != t.model.Alpha.Cols ||
		len(w.AlphaData) != w.AlphaRows*w.AlphaCols {
		return nil, fmt.Errorf("parallel: ResumeTrainer: coefficients %dx%d (%d values), model wants %dx%d",
			w.AlphaRows, w.AlphaCols, len(w.AlphaData), t.model.Alpha.Rows, t.model.Alpha.Cols)
	}
	if w.Epoch < 0 || w.Epoch > w.Epochs || math.IsNaN(w.ClockOps) {
		// The epoch bound also caps the RNG replay below: a corrupt epoch
		// count must error, not spin.
		return nil, fmt.Errorf("parallel: ResumeTrainer: corrupt counters")
	}
	copy(t.model.Alpha.Data, w.AlphaData)
	t.epoch = w.Epoch
	t.done = w.Done
	t.wall = time.Duration(w.Wall)
	t.clock.Restore(time.Duration(w.ClockElapsed), w.ClockOps, w.ClockIters)
	t.res.Iters = w.Iters
	t.res.Epochs = w.Epoch
	t.res.FinalTrainMSE = w.FinalTrainMSE
	t.res.Converged = w.Converged
	for i := 0; i < w.Epoch; i++ {
		t.rng.Perm(x.Rows)
	}
	return t, nil
}
