package parallel

import (
	"math"
	"testing"

	"eigenpro/internal/core"
	"eigenpro/internal/data"
	"eigenpro/internal/device"
	"eigenpro/internal/kernel"
	"eigenpro/internal/metrics"
)

func testDataset(n int) *data.Dataset {
	return data.Generate(data.GenConfig{
		Name: "test", N: n, Dim: 20, Classes: 4, LatentDim: 6, Seed: 99,
	})
}

func shardedConfig(workers int) Config {
	return Config{
		Kernel:  kernel.Gaussian{Sigma: 4},
		Workers: workers,
		Epochs:  4,
		Seed:    5,
	}
}

func TestTrainErrors(t *testing.T) {
	ds := testDataset(50)
	if _, err := Train(Config{Workers: 1, Epochs: 1}, ds.X, ds.Y); err == nil {
		t.Fatal("missing kernel must error")
	}
	cfg := shardedConfig(0)
	if _, err := Train(cfg, ds.X, ds.Y); err == nil {
		t.Fatal("workers=0 must error")
	}
	cfg = shardedConfig(2)
	cfg.Epochs = 0
	if _, err := Train(cfg, ds.X, ds.Y); err == nil {
		t.Fatal("epochs=0 must error")
	}
	cfg = shardedConfig(100)
	if _, err := Train(cfg, ds.X, ds.Y); err == nil {
		t.Fatal("more workers than samples must error")
	}
}

// The headline invariant: sharded training reproduces single-device
// core.Train (same seeds, same analytic parameters) up to floating-point
// reassociation in the allreduce.
func TestShardedMatchesSingleDevice(t *testing.T) {
	ds := testDataset(240)
	ref, err := core.Train(core.Config{
		Kernel: kernel.Gaussian{Sigma: 4},
		Method: core.MethodEigenPro2,
		Epochs: 4,
		Seed:   5,
	}, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 5} {
		res, err := Train(shardedConfig(workers), ds.X, ds.Y)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Params.Batch != ref.Params.Batch || res.Params.QAdjusted != ref.Params.QAdjusted {
			t.Fatalf("workers=%d: params diverged: %+v vs %+v", workers, res.Params, ref.Params)
		}
		maxDiff := 0.0
		for i := range res.Model.Alpha.Data {
			d := math.Abs(res.Model.Alpha.Data[i] - ref.Model.Alpha.Data[i])
			if d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > 1e-6 {
			t.Fatalf("workers=%d: coefficient gap %v vs single-device", workers, maxDiff)
		}
	}
}

func TestShardedDeterministic(t *testing.T) {
	ds := testDataset(120)
	a, err := Train(shardedConfig(3), ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(shardedConfig(3), ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Model.Alpha.Data {
		if a.Model.Alpha.Data[i] != b.Model.Alpha.Data[i] {
			t.Fatal("sharded training not deterministic")
		}
	}
}

func TestShardedConvergesAndClassifies(t *testing.T) {
	ds := testDataset(400)
	train, test := ds.Split(0.8, 1)
	cfg := shardedConfig(4)
	cfg.Epochs = 100
	cfg.StopTrainMSE = 2e-3
	res, err := Train(cfg, train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: mse %v", res.FinalTrainMSE)
	}
	errRate := metrics.ClassificationError(res.Model.Predict(test.X), test.Labels)
	if errRate > 0.1 {
		t.Fatalf("test error %v too high", errRate)
	}
}

func TestShardedWithDeviceGroup(t *testing.T) {
	ds := testDataset(200)
	base := device.SimTitanXp()
	grp, err := device.NewGroup(base, 4, device.GroupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := shardedConfig(4)
	cfg.Device = grp
	res, err := Train(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimTime <= 0 {
		t.Fatal("group device time not charged")
	}
	// The group's larger m_max must not shrink the selected batch.
	single, err := Train(shardedConfig(4), ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Params.MMax < single.Params.MMax {
		t.Fatalf("group m_max %d below single %d", res.Params.MMax, single.Params.MMax)
	}
}

func TestShardedDivergenceDetected(t *testing.T) {
	ds := testDataset(60)
	cfg := shardedConfig(2)
	cfg.Eta = 1e9
	cfg.Epochs = 100
	if _, err := Train(cfg, ds.X, ds.Y); err == nil {
		t.Fatal("divergence must error")
	}
}
