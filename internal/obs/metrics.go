// Package obs is the unified observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms with
// quantile estimation) with Prometheus-text exposition, plus a bounded
// in-memory tracer that assigns an ID per request and records spans.
//
// The serving path (internal/serve), the training-job manager
// (internal/jobs), and the trainer telemetry hook (core.ObserveTraining)
// all register into one Registry, so a single GET /metrics exposes
// request rates, micro-batch occupancy, device-clock utilization, queue
// depths, and per-job training progress — the Monitor stage any future
// auto-tuning of batch or pool sizes builds on.
//
// Everything is safe for concurrent use: counters and gauges are single
// atomics, histogram buckets are per-bucket atomics, and exposition never
// blocks a writer, so scraping /metrics cannot contend with a hot path.
package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension.
type Label struct{ Key, Value string }

// L is shorthand for Label{k, v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// metricName validates metric and label names (the Prometheus charset).
var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// atomicFloat is a float64 with atomic Add/Set/Load via bit casting.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Add(d float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be >= 0; negative deltas are ignored).
func (c *Counter) Add(d float64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d float64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// series is one labeled instance of a metric family; exactly one of the
// value fields is in use, per the family's type.
type series struct {
	labels []Label // sorted by key
	key    string  // rendered label signature

	ctr    *Counter
	gge    *Gauge
	fn     func() float64 // func-backed counter or gauge
	hist   *Histogram
	histFn func() HistogramSnapshot // func-backed histogram
}

// family is all series sharing one metric name.
type family struct {
	name, help string
	typ        string    // "counter", "gauge", "histogram"
	bounds     []float64 // histogram families only
	funcBacked bool

	mu     sync.Mutex
	series map[string]*series
	order  []string
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is get-or-create: registering the same
// name and label set again returns the existing metric, so subsystems
// sharing a registry (or a resumed job re-registering its gauges) compose
// without bookkeeping. The zero Registry is not usable; call NewRegistry.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family returns (creating if needed) the family for name, panicking on a
// type or bucket mismatch — re-registering a name as a different kind of
// metric is a programming error, not a runtime condition.
func (r *Registry) family(name, help, typ string, bounds []float64, funcBacked bool) *family {
	if !metricName.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{
			name: name, help: help, typ: typ,
			bounds: bounds, funcBacked: funcBacked,
			series: make(map[string]*series),
		}
		r.fams[name] = f
		return f
	}
	if f.typ != typ || f.funcBacked != funcBacked {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	if typ == "histogram" && !equalBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
	}
	return f
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get returns (creating via mk if needed) the series for the label set.
func (f *family) get(labels []Label, mk func(ls []Label, key string) *series) *series {
	ls := normalizeLabels(labels)
	key := labelKey(ls)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = mk(ls, key)
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// normalizeLabels validates and sorts a copy of the label set.
func normalizeLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	for _, l := range ls {
		if !metricName.MatchString(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// labelKey renders the sorted label set as its exposition signature,
// e.g. `{model="mnist",state="queued"}`, or "" for no labels.
func labelKey(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// Counter returns the counter for name and labels, registering it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, "counter", nil, false)
	s := f.get(labels, func(ls []Label, key string) *series {
		return &series{labels: ls, key: key, ctr: &Counter{}}
	})
	return s.ctr
}

// CounterFunc registers a counter whose value is read from f at
// exposition time (e.g. cumulative simulated-device busy seconds read
// from a clock). Re-registration keeps the first function.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	fam := r.family(name, help, "counter", nil, true)
	fam.get(labels, func(ls []Label, key string) *series {
		return &series{labels: ls, key: key, fn: fn}
	})
}

// Gauge returns the gauge for name and labels, registering it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, "gauge", nil, false)
	s := f.get(labels, func(ls []Label, key string) *series {
		return &series{labels: ls, key: key, gge: &Gauge{}}
	})
	return s.gge
}

// GaugeFunc registers a gauge whose value is read from f at exposition
// time (e.g. a queue depth read from len(chan)). Re-registration keeps
// the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	fam := r.family(name, help, "gauge", nil, true)
	fam.get(labels, func(ls []Label, key string) *series {
		return &series{labels: ls, key: key, fn: fn}
	})
}

// Histogram returns the histogram for name and labels, registering it on
// first use with the given bucket upper bounds (sorted ascending, all
// finite; an overflow +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic(fmt.Sprintf("obs: histogram %q bucket %d is not finite", name, i))
		}
		if i > 0 && bounds[i-1] >= b {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing", name))
		}
	}
	bounds = append([]float64(nil), bounds...)
	f := r.family(name, help, "histogram", bounds, false)
	s := f.get(labels, func(ls []Label, key string) *series {
		return &series{labels: ls, key: key, hist: newHistogram(bounds)}
	})
	return s.hist
}

// HistogramFunc registers a histogram whose snapshot is read from fn at
// exposition time (e.g. the Go runtime's GC-pause distribution read from
// runtime/metrics). The snapshot's bucket layout may differ between
// scrapes; Re-registration keeps the first function.
func (r *Registry) HistogramFunc(name, help string, fn func() HistogramSnapshot, labels ...Label) {
	fam := r.family(name, help, "histogram", nil, true)
	fam.get(labels, func(ls []Label, key string) *series {
		return &series{labels: ls, key: key, histFn: fn}
	})
}

// Remove deletes the series with the exact label set from the family, so
// per-entity gauges (per-job epoch progress) can be evicted with their
// entity. Removing an absent series is a no-op.
func (r *Registry) Remove(name string, labels ...Label) {
	r.mu.RLock()
	f, ok := r.fams[name]
	r.mu.RUnlock()
	if !ok {
		return
	}
	key := labelKey(normalizeLabels(labels))
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.series[key]; !ok {
		return
	}
	delete(f.series, key)
	for i, k := range f.order {
		if k == key {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}

// lookup returns the series with the exact label set, or nil.
func (r *Registry) lookup(name string, labels []Label) *series {
	r.mu.RLock()
	f, ok := r.fams[name]
	r.mu.RUnlock()
	if !ok {
		return nil
	}
	key := labelKey(normalizeLabels(labels))
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.series[key]
}

// Value reads the current value of the counter or gauge series with the
// exact label set (func-backed series are invoked). It is the read side a
// derived consumer — the SLO burn-rate evaluator — samples cumulative
// counters through, without holding any handle into the owning subsystem.
// The second return is false when no such scalar series exists.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	s := r.lookup(name, labels)
	if s == nil {
		return 0, false
	}
	switch {
	case s.fn != nil:
		return s.fn(), true
	case s.ctr != nil:
		return s.ctr.Value(), true
	case s.gge != nil:
		return s.gge.Value(), true
	}
	return 0, false
}

// SampleHistogram reads a point-in-time snapshot of the histogram series
// with the exact label set; false when no such histogram exists.
func (r *Registry) SampleHistogram(name string, labels ...Label) (HistogramSnapshot, bool) {
	s := r.lookup(name, labels)
	if s == nil {
		return HistogramSnapshot{}, false
	}
	switch {
	case s.hist != nil:
		return s.hist.Snapshot(), true
	case s.histFn != nil:
		return s.histFn(), true
	}
	return HistogramSnapshot{}, false
}

// NumSeries returns the number of registered series across all families
// (histograms count once) — the "registry non-empty" readiness signal.
func (r *Registry) NumSeries() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, f := range r.fams {
		f.mu.Lock()
		n += len(f.series)
		f.mu.Unlock()
	}
	return n
}

// WritePrometheus renders every family in Prometheus text exposition
// format (families sorted by name, series in registration order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.write(w, false)
}

// write renders every family in the requested exposition dialect.
func (r *Registry) write(w io.Writer, om bool) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.RUnlock()
	for _, f := range fams {
		if err := f.write(w, om); err != nil {
			return err
		}
	}
	return nil
}

// write renders one family.
func (f *family) write(w io.Writer, om bool) error {
	f.mu.Lock()
	ss := make([]*series, 0, len(f.order))
	for _, key := range f.order {
		ss = append(ss, f.series[key])
	}
	f.mu.Unlock()
	if len(ss) == 0 {
		return nil
	}
	famName := f.name
	if om {
		famName = omFamilyName(f.name, f.typ)
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", famName, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", famName, f.typ); err != nil {
		return err
	}
	for _, s := range ss {
		if err := s.write(w, f, om); err != nil {
			return err
		}
	}
	return nil
}

// write renders one series.
func (s *series) write(w io.Writer, f *family, om bool) error {
	switch {
	case s.hist != nil:
		return s.hist.write(w, f.name, s.labels, om)
	case s.histFn != nil:
		return renderHistogram(w, f.name, s.labels, s.histFn(), nil, om)
	case s.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.key, formatFloat(s.fn()))
		return err
	case s.ctr != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.key, formatFloat(s.ctr.Value()))
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.key, formatFloat(s.gge.Value()))
		return err
	}
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ExpBuckets returns n bucket upper bounds starting at start and growing
// by factor: start, start·factor, start·factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
