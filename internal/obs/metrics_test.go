package obs

import (
	"bytes"
	"io"
	"math"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}

	g := r.Gauge("test_gauge", "a gauge", L("k", "v"))
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	if r.Gauge("test_gauge", "a gauge", L("k", "v2")) == g {
		t.Fatal("different label values shared a series")
	}

	r.GaugeFunc("test_fn", "func gauge", func() float64 { return 7 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_total counter",
		"test_total 3.5",
		"# TYPE test_gauge gauge",
		`test_gauge{k="v"} 2.5`,
		`test_gauge{k="v2"} 0`,
		"test_fn 7",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_use", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("dual_use", "")
}

func TestRegistryRemove(t *testing.T) {
	r := NewRegistry()
	r.Gauge("per_job", "", L("job", "job-1"))
	r.Gauge("per_job", "", L("job", "job-2"))
	if n := r.NumSeries(); n != 2 {
		t.Fatalf("NumSeries = %d, want 2", n)
	}
	r.Remove("per_job", L("job", "job-1"))
	r.Remove("per_job", L("job", "absent")) // no-op
	r.Remove("no_such_family")              // no-op
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	if strings.Contains(buf.String(), `job="job-1"`) {
		t.Fatalf("removed series still exposed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `job="job-2"`) {
		t.Fatalf("surviving series missing:\n%s", buf.String())
	}
}

// TestConcurrentWritesDuringExposition hammers every metric kind from many
// goroutines while other goroutines continuously render the exposition —
// the -race check that scraping /metrics cannot corrupt hot-path writers.
func TestConcurrentWritesDuringExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "")
	h := r.Histogram("hot_hist", "", ExpBuckets(0.001, 2, 10))
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			g := r.Gauge("hot_gauge", "", L("worker", string(rune('a'+i))))
			for j := 0; j < 2000; j++ {
				c.Inc()
				g.Set(float64(j))
				h.Observe(float64(j) * 0.0007)
				if j%100 == 0 {
					// Registration races exposition too.
					r.Counter("late_total", "", L("w", string(rune('a'+i))))
				}
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r.WritePrometheus(io.Discard)
					h.Quantile(0.99)
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

// expositionLine matches one Prometheus text-format sample line.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)

func TestExpositionLineFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("fmt_total", "help text").Add(12)
	r.Gauge("fmt_gauge", "", L("model", `we"ird\na"me`)).Set(-1.25e-7)
	r.Histogram("fmt_hist", "h", []float64{0.5, 1}).Observe(0.75)
	srv := httptest.NewServer(MetricsHandler(r, r, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	n := 0
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
		// Runtime telemetry (go_*) is appended to every exposition; its
		// lines must be well-formed but its series count varies by Go
		// version, so only the registry's own series are counted exactly.
		if strings.HasPrefix(line, "go_") {
			continue
		}
		n++
	}
	// One counter + one gauge + histogram (3 buckets + sum + count); the
	// duplicate registry pointer must not double the series.
	if want := 2 + 5; n != want {
		t.Fatalf("%d sample lines, want %d:\n%s", n, want, body)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()

	// Empty histogram: quantiles are 0.
	h := r.Histogram("q_empty", "", []float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	if h.Mean() != 0 || h.Count() != 0 {
		t.Fatalf("empty mean/count = %v/%d", h.Mean(), h.Count())
	}

	// Single-bucket histogram: every in-range observation reports that
	// bucket's bound.
	one := r.Histogram("q_one", "", []float64{10})
	one.Observe(3)
	one.Observe(7)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 10 {
			t.Fatalf("single-bucket q%v = %v, want 10", q, got)
		}
	}

	// Overflow bucket: ranks landing beyond the last finite bound
	// saturate at it instead of reporting +Inf.
	over := r.Histogram("q_over", "", []float64{1, 2})
	over.Observe(0.5)
	over.Observe(100)
	over.Observe(200)
	if got := over.Quantile(0.99); got != 2 {
		t.Fatalf("overflow q99 = %v, want saturation at 2", got)
	}
	if got := over.Quantile(0.01); got != 1 {
		t.Fatalf("q01 = %v, want 1", got)
	}

	// No finite buckets at all: NaN (nothing meaningful to report).
	none := r.Histogram("q_none", "", nil)
	none.Observe(5)
	if got := none.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("no-bucket quantile = %v, want NaN", got)
	}

	// Nearest-rank semantics: p99 of 10 samples is the 10th.
	nr := r.Histogram("q_rank", "", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	for i := 1; i <= 10; i++ {
		nr.Observe(float64(i))
	}
	if got := nr.Quantile(0.99); got != 10 {
		t.Fatalf("nearest-rank p99 = %v, want 10", got)
	}
	if got := nr.Quantile(0.5); got != 5 {
		t.Fatalf("nearest-rank p50 = %v, want 5", got)
	}

	// Snapshot carries per-bucket (non-cumulative) counts.
	s := over.Snapshot()
	if len(s.Counts) != 3 || s.Counts[0] != 1 || s.Counts[1] != 0 || s.Counts[2] != 2 {
		t.Fatalf("snapshot counts = %v", s.Counts)
	}
	if s.Count != 3 || s.Sum != 300.5 {
		t.Fatalf("snapshot sum/count = %v/%d", s.Sum, s.Count)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(50e-6, 2, 4)
	want := []float64{50e-6, 100e-6, 200e-6, 400e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
}
