package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Exemplar is one concrete observation attached to a histogram bucket: the
// observed value, the trace that produced it, and when. Exposed only in
// the OpenMetrics exposition (`_bucket ... # {trace_id="..."} v ts`), it
// is the metrics→traces link: a p99 spike in a bucket names a trace whose
// span breakdown at /debug/traces (and wide event at /debug/events)
// explains it.
type Exemplar struct {
	// Value is the observed value (e.g. the request latency in seconds).
	Value float64
	// TraceID names the span trace that produced the observation.
	TraceID string
	// Time is when the observation happened.
	Time time.Time
}

// exposition renders the exemplar as its OpenMetrics bucket-line suffix:
// ` # {trace_id="..."} value timestamp`.
func (e *Exemplar) exposition() string {
	return fmt.Sprintf(" # {trace_id=\"%s\"} %s %s",
		escapeLabel(e.TraceID), formatFloat(e.Value), formatTimestamp(e.Time))
}

// formatTimestamp renders a Unix timestamp with millisecond precision, the
// way OpenMetrics clients commonly do.
func formatTimestamp(t time.Time) string {
	return fmt.Sprintf("%.3f", float64(t.UnixMilli())/1e3)
}

// openMetricsContentType is the content type the OpenMetrics exposition is
// served under (content-negotiated by MetricsHandler via the Accept
// header).
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// AcceptsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics exposition format.
func AcceptsOpenMetrics(accept string) bool {
	return strings.Contains(accept, "application/openmetrics-text")
}

// WriteOpenMetrics renders every family in OpenMetrics text format:
// counter families drop their `_total` suffix in metadata (samples keep
// it), histogram bucket lines carry their exemplars, and the exposition is
// terminated by `# EOF`. Like WritePrometheus it never blocks a writer.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.write(w, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// omFamilyName returns the OpenMetrics metric-family name: counters are
// named without the `_total` suffix their samples carry.
func omFamilyName(name, typ string) string {
	if typ == "counter" {
		return strings.TrimSuffix(name, "_total")
	}
	return name
}
