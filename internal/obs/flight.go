package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eigenpro/internal/durable"
)

// Flight-recorder defaults.
const (
	// DefaultFlightMax is the snapshot disk-ring size: when a capture
	// would exceed it, the oldest snapshot directory is deleted.
	DefaultFlightMax = 8
	// DefaultFlightMinInterval spaces captures: a trigger arriving sooner
	// after the previous accepted capture is counted and dropped, so a
	// flapping alert cannot fill the disk or keep a CPU profile running.
	DefaultFlightMinInterval = 5 * time.Minute
	// DefaultFlightCPUProfile is the CPU-profile length per snapshot.
	DefaultFlightCPUProfile = 5 * time.Second
	// DefaultFlightEvents is how many of the newest wide events a
	// snapshot preserves.
	DefaultFlightEvents = 512
)

// FlightConfig configures NewFlightRecorder; zero values select the
// defaults above.
type FlightConfig struct {
	// Dir is the directory snapshots are written under (one subdirectory
	// per capture). Empty selects <os.TempDir()>/eigenpro-flight.
	Dir string
	// MaxSnapshots bounds the on-disk snapshot ring; <= 0 selects
	// DefaultFlightMax.
	MaxSnapshots int
	// MinInterval rate-limits captures; <= 0 selects
	// DefaultFlightMinInterval.
	MinInterval time.Duration
	// CPUProfile is how long the snapshot's CPU profile runs; 0 selects
	// DefaultFlightCPUProfile, < 0 disables the CPU profile (the capture
	// then completes near-instantly — useful in tests).
	CPUProfile time.Duration
	// EventCount is how many of the newest wide events to preserve;
	// <= 0 selects DefaultFlightEvents.
	EventCount int
	// Events is the wide-event log snapshots read from (and the log the
	// recorder emits its own flight.snapshot record into); nil skips the
	// events file.
	Events *EventLog
	// Tracers are the span rings whose retained traces land in the
	// snapshot.
	Tracers []*Tracer
	// Registries are rendered into the snapshot's metrics expositions
	// (Go runtime telemetry rides along, as on /metrics).
	Registries []*Registry
}

// FlightRecorder captures debugging snapshots on demand — typically armed
// under an SLO burn-rate evaluator so every page ships with the evidence
// needed to diagnose it. One snapshot is a directory containing a CPU
// profile, a heap profile, a goroutine dump, the newest wide events, the
// retained span traces, both metrics expositions, and a meta.json trailer
// (written last, so its presence marks the snapshot complete).
//
// Capture is asynchronous and rate-limited: the trigger path (an SLO
// evaluator tick) only performs two atomic checks before handing the slow
// work (a multi-second CPU profile) to a goroutine. A nil *FlightRecorder
// is valid and disables capturing; every method is a nil-safe no-op.
type FlightRecorder struct {
	cfg FlightConfig

	last     atomic.Int64 // unix nanos of the last accepted capture
	busy     atomic.Bool  // a capture goroutine is in flight
	captures atomic.Uint64
	skipped  atomic.Uint64
	wg       sync.WaitGroup
}

// NewFlightRecorder returns a recorder writing snapshots under cfg.Dir,
// creating the directory if needed.
func NewFlightRecorder(cfg FlightConfig) (*FlightRecorder, error) {
	if cfg.Dir == "" {
		cfg.Dir = filepath.Join(os.TempDir(), "eigenpro-flight")
	}
	if cfg.MaxSnapshots <= 0 {
		cfg.MaxSnapshots = DefaultFlightMax
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = DefaultFlightMinInterval
	}
	if cfg.CPUProfile == 0 {
		cfg.CPUProfile = DefaultFlightCPUProfile
	}
	if cfg.EventCount <= 0 {
		cfg.EventCount = DefaultFlightEvents
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: flight dir: %w", err)
	}
	return &FlightRecorder{cfg: cfg}, nil
}

// Dir returns the snapshot directory ("" for a nil recorder).
func (f *FlightRecorder) Dir() string {
	if f == nil {
		return ""
	}
	return f.cfg.Dir
}

// Captures returns how many snapshots were accepted; Skipped how many
// triggers the rate limit (or an in-flight capture) dropped.
func (f *FlightRecorder) Captures() uint64 {
	if f == nil {
		return 0
	}
	return f.captures.Load()
}

// Skipped returns how many capture triggers were dropped.
func (f *FlightRecorder) Skipped() uint64 {
	if f == nil {
		return 0
	}
	return f.skipped.Load()
}

// Wait blocks until any in-flight capture finishes (tests and shutdown).
func (f *FlightRecorder) Wait() {
	if f == nil {
		return
	}
	f.wg.Wait()
}

// slugRe strips anything that would not survive as a directory-name
// component.
var slugRe = regexp.MustCompile(`[^a-zA-Z0-9_.-]+`)

// Capture triggers one snapshot for the given reason (e.g. the breaching
// SLO objective's name), with meta merged into the snapshot's meta.json.
// It returns the snapshot directory and true when accepted, or "" and
// false when rate-limited, already capturing, or the recorder is nil. The
// snapshot is written asynchronously; meta.json appears last.
func (f *FlightRecorder) Capture(reason string, meta map[string]any) (string, bool) {
	if f == nil {
		return "", false
	}
	now := time.Now()
	last := f.last.Load()
	if last != 0 && now.Sub(time.Unix(0, last)) < f.cfg.MinInterval {
		f.skipped.Add(1)
		return "", false
	}
	if !f.last.CompareAndSwap(last, now.UnixNano()) {
		f.skipped.Add(1) // lost the race to a concurrent trigger
		return "", false
	}
	if !f.busy.CompareAndSwap(false, true) {
		f.skipped.Add(1)
		return "", false
	}
	slug := slugRe.ReplaceAllString(reason, "-")
	if slug == "" {
		slug = "manual"
	}
	dir := filepath.Join(f.cfg.Dir, now.UTC().Format("20060102T150405.000")+"-"+slug)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		defer f.busy.Store(false)
		f.write(dir, reason, now, meta)
	}()
	return dir, true
}

// write produces one snapshot directory. Errors are per-file: a file that
// cannot be produced (e.g. a CPU profile already running under pprof
// HTTP) is noted in meta.json instead of aborting the capture.
func (f *FlightRecorder) write(dir, reason string, at time.Time, meta map[string]any) {
	problems := map[string]string{}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}

	// CPU profile first: it is the only time-extended part, and everything
	// captured after it reflects the state the profile just explained.
	if f.cfg.CPUProfile > 0 {
		if err := writeFileWith(filepath.Join(dir, "cpu.pprof"), func(w io.Writer) error {
			if err := pprof.StartCPUProfile(w); err != nil {
				return err
			}
			time.Sleep(f.cfg.CPUProfile)
			pprof.StopCPUProfile()
			return nil
		}); err != nil {
			problems["cpu.pprof"] = err.Error()
		}
	}
	if err := writeFileWith(filepath.Join(dir, "heap.pprof"), func(w io.Writer) error {
		return pprof.Lookup("heap").WriteTo(w, 0)
	}); err != nil {
		problems["heap.pprof"] = err.Error()
	}
	if err := writeFileWith(filepath.Join(dir, "goroutines.txt"), func(w io.Writer) error {
		return pprof.Lookup("goroutine").WriteTo(w, 2)
	}); err != nil {
		problems["goroutines.txt"] = err.Error()
	}
	if f.cfg.Events != nil {
		if err := writeFileWith(filepath.Join(dir, "events.jsonl"), func(w io.Writer) error {
			enc := json.NewEncoder(w)
			for _, ev := range f.cfg.Events.Query(EventQuery{Limit: f.cfg.EventCount}) {
				if err := enc.Encode(ev); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			problems["events.jsonl"] = err.Error()
		}
	}
	if err := writeFileWith(filepath.Join(dir, "traces.json"), func(w io.Writer) error {
		all := []TraceSnapshot{}
		for _, t := range f.cfg.Tracers {
			all = append(all, t.Snapshot()...)
		}
		return json.NewEncoder(w).Encode(map[string]any{"traces": all})
	}); err != nil {
		problems["traces.json"] = err.Error()
	}
	regs := dedupRegistries(append(append([]*Registry(nil), f.cfg.Registries...), RuntimeMetrics()))
	if err := writeFileWith(filepath.Join(dir, "metrics.prom"), func(w io.Writer) error {
		for _, r := range regs {
			if err := r.WritePrometheus(w); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		problems["metrics.prom"] = err.Error()
	}
	if err := writeFileWith(filepath.Join(dir, "metrics.om"), func(w io.Writer) error {
		for _, r := range regs {
			if err := r.write(w, true); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "# EOF\n")
		return err
	}); err != nil {
		problems["metrics.om"] = err.Error()
	}

	// meta.json last: its presence marks the snapshot complete.
	m := map[string]any{"time": at.UTC(), "reason": reason}
	for k, v := range meta {
		m[k] = v
	}
	if len(problems) > 0 {
		m["problems"] = problems
	}
	writeFileWith(filepath.Join(dir, "meta.json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
	f.captures.Add(1)
	f.prune()
	f.cfg.Events.Emit(Event{
		Level:     LevelWarn,
		Kind:      KindFlight,
		Objective: reason,
		Outcome:   "captured",
		Path:      dir,
	})
}

// writeFileWith writes one snapshot file atomically (temp file + fsync +
// rename via the durability layer) so a crash mid-capture can never leave a
// torn half-file that looks like evidence. The raw (no-trailer) variant
// keeps the files readable by external tools: go tool pprof must open
// cpu.pprof as-is.
func writeFileWith(path string, fill func(io.Writer) error) error {
	return durable.WriteRaw(durable.OS{}, path, fill)
}

// prune deletes the oldest snapshot directories beyond MaxSnapshots.
// Directory names start with a UTC timestamp, so lexicographic order is
// chronological.
func (f *FlightRecorder) prune() {
	names, err := f.snapshotNames()
	if err != nil {
		return
	}
	for len(names) > f.cfg.MaxSnapshots {
		os.RemoveAll(filepath.Join(f.cfg.Dir, names[0]))
		names = names[1:]
	}
}

// snapshotNames lists snapshot directory names, oldest first.
func (f *FlightRecorder) snapshotNames() ([]string, error) {
	entries, err := os.ReadDir(f.cfg.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// FlightFile is one file of a snapshot.
type FlightFile struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
}

// FlightSnapshot describes one captured snapshot for /debug/flight.
type FlightSnapshot struct {
	// Name is the snapshot directory name (timestamp + reason slug).
	Name string `json:"name"`
	// Reason is the trigger that captured it (from meta.json).
	Reason string `json:"reason,omitempty"`
	// Time is the capture instant (from meta.json).
	Time time.Time `json:"time,omitempty"`
	// Complete reports whether meta.json is present — it is written last,
	// so false means the capture is still in flight (or died mid-write).
	Complete bool `json:"complete"`
	// Files lists the snapshot's contents.
	Files []FlightFile `json:"files"`
}

// Snapshots lists the retained snapshots, newest first.
func (f *FlightRecorder) Snapshots() ([]FlightSnapshot, error) {
	if f == nil {
		return nil, nil
	}
	names, err := f.snapshotNames()
	if err != nil {
		return nil, err
	}
	out := make([]FlightSnapshot, 0, len(names))
	for i := len(names) - 1; i >= 0; i-- {
		out = append(out, f.describe(names[i]))
	}
	return out, nil
}

func (f *FlightRecorder) describe(name string) FlightSnapshot {
	snap := FlightSnapshot{Name: name}
	dir := filepath.Join(f.cfg.Dir, name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return snap
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		snap.Files = append(snap.Files, FlightFile{Name: e.Name(), Bytes: info.Size()})
		if e.Name() == "meta.json" {
			snap.Complete = true
		}
	}
	var meta struct {
		Time   time.Time `json:"time"`
		Reason string    `json:"reason"`
	}
	if raw, err := os.ReadFile(filepath.Join(dir, "meta.json")); err == nil {
		if json.Unmarshal(raw, &meta) == nil {
			snap.Time, snap.Reason = meta.Time, meta.Reason
		}
	}
	return snap
}

// Open returns a reader over one file of one snapshot. Both names must be
// plain path components (no separators), so the handler cannot be walked
// out of the snapshot directory.
func (f *FlightRecorder) Open(snapshot, file string) (io.ReadCloser, error) {
	if f == nil {
		return nil, os.ErrNotExist
	}
	for _, name := range []string{snapshot, file} {
		if name == "" || name != filepath.Base(name) || strings.ContainsAny(name, `/\`) || name == ".." || name == "." {
			return nil, fmt.Errorf("obs: bad flight path component %q", name)
		}
	}
	return os.Open(filepath.Join(f.cfg.Dir, snapshot, file))
}

// FlightHandler serves a recorder's snapshots:
//
//	GET /debug/flight                                  list snapshots (JSON)
//	GET /debug/flight?snapshot=NAME                    one snapshot's listing
//	GET /debug/flight?snapshot=NAME&file=FILE          raw file contents
//
// A nil recorder serves an empty listing, so the endpoint is safe to
// mount unconditionally.
func FlightHandler(f *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		snap, file := q.Get("snapshot"), q.Get("file")
		switch {
		case snap != "" && file != "":
			rc, err := f.Open(snap, file)
			if err != nil {
				writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
				return
			}
			defer rc.Close()
			switch {
			case strings.HasSuffix(file, ".json"):
				w.Header().Set("Content-Type", "application/json")
			case strings.HasSuffix(file, ".pprof"):
				w.Header().Set("Content-Type", "application/octet-stream")
			default:
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			}
			io.Copy(w, rc)
		case snap != "":
			snaps, err := f.Snapshots()
			if err != nil {
				writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
				return
			}
			for _, s := range snaps {
				if s.Name == snap {
					writeJSON(w, http.StatusOK, s)
					return
				}
			}
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown snapshot " + snap})
		default:
			snaps, err := f.Snapshots()
			if err != nil && f != nil {
				writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
				return
			}
			if snaps == nil {
				snaps = []FlightSnapshot{}
			}
			writeJSON(w, http.StatusOK, map[string]any{
				"dir":       f.Dir(),
				"snapshots": snaps,
				"captures":  f.Captures(),
				"skipped":   f.Skipped(),
			})
		}
	})
}
