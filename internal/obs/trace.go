package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity is the trace-ring size when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 256

// Span is one named interval inside a trace.
type Span struct {
	// Name identifies the stage, e.g. "batch-wait" or "epoch[3]".
	Name string `json:"name"`
	// Start is the span's wall-clock start.
	Start time.Time `json:"start"`
	// Duration is the span's length.
	Duration time.Duration `json:"duration_ns"`
}

// Trace is one request's (or job's) recorded lifetime: an ID, a name,
// and an append-only list of spans. All methods are nil-safe no-ops, so
// instrumentation sites never branch on whether tracing is enabled.
type Trace struct {
	id    string
	name  string
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// ID returns the trace's hex ID ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Span records a completed interval.
func (t *Trace) Span(name string, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, Duration: end.Sub(start)})
	t.mu.Unlock()
}

// StartSpan opens an interval now and returns the closer that records it.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Span(name, start, time.Now()) }
}

// TraceSnapshot is a point-in-time copy of one trace for /debug/traces.
type TraceSnapshot struct {
	ID    string    `json:"id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	Spans []Span    `json:"spans"`
}

// Tracer hands out traces and retains the most recent ones in a bounded
// ring: the newest Cap() traces are readable, older ones are overwritten.
// A nil Tracer is valid and disables tracing (Start returns nil).
type Tracer struct {
	mu   sync.Mutex
	ring []*Trace
	next int // ring write index
	n    int // live entries (ring warm-up)
}

// NewTracer returns a tracer retaining the last capacity traces
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]*Trace, capacity)}
}

// traceSeq and traceSalt make IDs unique across tracers within a process
// and unlikely to collide across processes.
var (
	traceSeq  atomic.Uint64
	traceSalt = uint64(time.Now().UnixNano())
)

// newTraceID returns a 16-hex-digit ID (splitmix64 over a process-salted
// sequence — unique in-process, no locks).
func newTraceID() string {
	z := traceSeq.Add(1)*0x9e3779b97f4a7c15 ^ traceSalt
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return fmt.Sprintf("%016x", z^(z>>31))
}

// Start creates a trace, inserts it into the ring (possibly overwriting
// the oldest), and returns it. Start on a nil tracer returns nil, which
// every Trace method tolerates.
func (t *Tracer) Start(name string) *Trace {
	tr := t.Prepare(name)
	t.Commit(tr)
	return tr
}

// Prepare creates a trace that records spans but is NOT yet retained by
// the ring; pass it to Commit once the traced operation is known to be
// worth keeping. The split lets an admission path avoid burning a ring
// slot on every rejected request — rejections cluster during incidents,
// exactly when the retained traces matter most. Prepare on a nil tracer
// returns nil.
func (t *Tracer) Prepare(name string) *Trace {
	if t == nil {
		return nil
	}
	return &Trace{id: newTraceID(), name: name, start: time.Now()}
}

// Commit inserts a prepared trace into the ring (possibly overwriting the
// oldest). Committing nil, or on a nil tracer, is a no-op. A trace that is
// never committed is simply garbage collected with its spans.
func (t *Tracer) Commit(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Cap returns the ring capacity (0 for a nil tracer).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Len returns the number of retained traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Snapshot copies the retained traces, newest first.
func (t *Tracer) Snapshot() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	live := make([]*Trace, 0, t.n)
	for i := 1; i <= t.n; i++ {
		live = append(live, t.ring[(t.next-i+len(t.ring))%len(t.ring)])
	}
	t.mu.Unlock()
	out := make([]TraceSnapshot, len(live))
	for i, tr := range live {
		out[i] = tr.snapshot()
	}
	return out
}

// Find returns the retained trace with the given ID.
func (t *Tracer) Find(id string) (TraceSnapshot, bool) {
	if t == nil {
		return TraceSnapshot{}, false
	}
	t.mu.Lock()
	var found *Trace
	for i := 1; i <= t.n; i++ {
		if tr := t.ring[(t.next-i+len(t.ring))%len(t.ring)]; tr.id == id {
			found = tr
			break
		}
	}
	t.mu.Unlock()
	if found == nil {
		return TraceSnapshot{}, false
	}
	return found.snapshot(), true
}

func (tr *Trace) snapshot() TraceSnapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return TraceSnapshot{
		ID:    tr.id,
		Name:  tr.name,
		Start: tr.start,
		Spans: append([]Span(nil), tr.spans...),
	}
}

// ctxKey keys the trace stored in a context.
type ctxKey struct{}

// NewContext returns ctx carrying tr, so a handler-started trace collects
// the spans of everything downstream (the batcher, the device execution).
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
