package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventLogEmitAndQuery(t *testing.T) {
	l := NewEventLog(8)
	l.Emit(Event{Kind: KindServeRequest, Model: "a", Outcome: "ok", TraceID: "t1"})
	l.Emit(Event{Kind: KindServeRequest, Model: "b", Outcome: "shed", Level: LevelWarn})
	l.Emit(Event{Kind: KindTrainEpoch, Job: "j1", Epoch: 3, MSE: 0.25})
	l.Emit(Event{Kind: KindJobState, Job: "j1", Outcome: "done"})

	if got := l.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := l.Emitted(); got != 4 {
		t.Fatalf("Emitted = %d, want 4", got)
	}

	all := l.Query(EventQuery{})
	if len(all) != 4 {
		t.Fatalf("unfiltered query returned %d events, want 4", len(all))
	}
	// Newest first.
	if all[0].Kind != KindJobState || all[3].Kind != KindServeRequest {
		t.Fatalf("query not newest-first: %+v", all)
	}
	for _, ev := range all {
		if ev.Time.IsZero() {
			t.Fatalf("Emit did not stamp Time: %+v", ev)
		}
	}

	cases := []struct {
		q    EventQuery
		want int
	}{
		{EventQuery{Kind: KindServeRequest}, 2},
		{EventQuery{Model: "a"}, 1},
		{EventQuery{Outcome: "shed"}, 1},
		{EventQuery{Job: "j1"}, 2},
		{EventQuery{MinLevel: LevelWarn}, 1},
		{EventQuery{Kind: KindServeRequest, Model: "b"}, 1},
		{EventQuery{Kind: KindServeRequest, Model: "b", Outcome: "ok"}, 0},
		{EventQuery{Limit: 2}, 2},
		{EventQuery{Since: time.Now().Add(time.Hour)}, 0},
	}
	for _, c := range cases {
		if got := len(l.Query(c.q)); got != c.want {
			t.Errorf("Query(%+v) returned %d events, want %d", c.q, got, c.want)
		}
	}
}

func TestEventLogWraparound(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Emit(Event{Kind: KindServeRequest, Outcome: "ok", BatchID: uint64(i + 1)})
	}
	if got := l.Len(); got != 4 {
		t.Fatalf("Len = %d after wraparound, want capacity 4", got)
	}
	if got := l.Emitted(); got != 10 {
		t.Fatalf("Emitted = %d, want 10 (overwritten events still count)", got)
	}
	got := l.Query(EventQuery{})
	if len(got) != 4 {
		t.Fatalf("query returned %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := uint64(10 - i); ev.BatchID != want {
			t.Fatalf("event %d has BatchID %d, want %d (newest four, newest first)", i, ev.BatchID, want)
		}
	}
}

func TestEventLogSampling(t *testing.T) {
	l := NewEventLog(64)
	l.SetSampleEvery(4)
	for i := 0; i < 40; i++ {
		l.Emit(Event{Kind: KindServeRequest, Outcome: "ok"})
	}
	if got := l.Emitted(); got != 10 {
		t.Fatalf("Emitted = %d, want 10 (1-in-4 of 40)", got)
	}
	if got := l.Dropped(); got != 30 {
		t.Fatalf("Dropped = %d, want 30", got)
	}

	// Head+tail: warn/error and non-ok outcomes are never sampled out, and
	// info events without an "ok" outcome (epoch records) are kept too.
	before := l.Emitted()
	l.Emit(Event{Kind: KindServeRequest, Outcome: "shed", Level: LevelWarn})
	l.Emit(Event{Kind: KindServeRequest, Outcome: "rejected", Level: LevelWarn})
	l.Emit(Event{Kind: KindJobState, Outcome: "failed", Level: LevelError})
	l.Emit(Event{Kind: KindTrainEpoch, Epoch: 1})
	if got := l.Emitted() - before; got != 4 {
		t.Fatalf("non-ok emissions kept %d of 4; sampling must not touch warnings, errors, or epoch records", got)
	}

	// n <= 1 disables sampling.
	l.SetSampleEvery(0)
	before = l.Emitted()
	for i := 0; i < 5; i++ {
		l.Emit(Event{Kind: KindServeRequest, Outcome: "ok"})
	}
	if got := l.Emitted() - before; got != 5 {
		t.Fatalf("SetSampleEvery(0) kept %d of 5, want all", got)
	}
}

func TestEventLogSinkJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(8)
	l.SetSink(&buf, LevelWarn)
	l.Emit(Event{Kind: KindServeRequest, Model: "m", Outcome: "ok", TraceID: "t-ok"})
	l.Emit(Event{Kind: KindServeRequest, Model: "m", Outcome: "expired", Level: LevelWarn, TraceID: "t-exp"})
	l.Emit(Event{Kind: KindJobState, Job: "j", Outcome: "failed", Level: LevelError, Err: "boom"})

	sc := bufio.NewScanner(&buf)
	var lines []Event
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("sink line is not valid JSON: %v\n%s", err, sc.Text())
		}
		lines = append(lines, ev)
	}
	if len(lines) != 2 {
		t.Fatalf("sink received %d lines, want 2 (min level warn filters the ok)", len(lines))
	}
	if lines[0].Outcome != "expired" || lines[0].Level != LevelWarn {
		t.Fatalf("first sink line: %+v", lines[0])
	}
	if lines[1].Err != "boom" || lines[1].Level != LevelError {
		t.Fatalf("second sink line: %+v", lines[1])
	}

	// Detach: further events don't write.
	l.SetSink(nil, LevelInfo)
	l.Emit(Event{Kind: KindServeRequest, Outcome: "shed", Level: LevelWarn})
	if buf.Len() != 0 {
		t.Fatalf("detached sink still received %q", buf.String())
	}
}

func TestEventLevelJSONRoundTrip(t *testing.T) {
	for _, l := range []Level{LevelInfo, LevelWarn, LevelError} {
		b, err := json.Marshal(l)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("%q", l.String()); string(b) != want {
			t.Fatalf("Marshal(%v) = %s, want %s", l, b, want)
		}
		var back Level
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != l {
			t.Fatalf("round trip %v -> %v", l, back)
		}
	}
	if ParseLevel("warning") != LevelWarn {
		t.Fatal(`ParseLevel("warning") != warn`)
	}
	if ParseLevel("nonsense") != LevelInfo {
		t.Fatal("unknown level must parse as info")
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Emit(Event{Kind: KindServeRequest, Outcome: "ok"})
	l.SetSampleEvery(4)
	l.SetSink(&bytes.Buffer{}, LevelInfo)
	if l.Cap() != 0 || l.Len() != 0 || l.Emitted() != 0 || l.Dropped() != 0 {
		t.Fatal("nil log counters must be zero")
	}
	if got := l.Query(EventQuery{}); got != nil {
		t.Fatalf("nil log Query = %v, want nil", got)
	}
}

// TestEventLogConcurrent hammers a small ring with concurrent emitters,
// queries, and sink writes under -race: Emit's slot claim plus atomic
// store must never tear an event, and Query must tolerate racing
// wraparound.
func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog(32)
	l.SetSampleEvery(2)
	l.SetSink(&bytes.Buffer{}, LevelError)

	const emitters, perEmitter = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ev := range l.Query(EventQuery{Kind: KindServeRequest}) {
					// Every observed event must be fully formed: the model
					// string and outcome were stored together.
					if !strings.HasPrefix(ev.Model, "m") || ev.Outcome == "" {
						t.Errorf("torn event observed: %+v", ev)
						return
					}
				}
			}
		}()
	}
	for e := 0; e < emitters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			model := fmt.Sprintf("m%d", e)
			for i := 0; i < perEmitter; i++ {
				out := "ok"
				lv := LevelInfo
				if i%7 == 0 {
					out, lv = "shed", LevelWarn
				}
				l.Emit(Event{Kind: KindServeRequest, Model: model, Outcome: out, Level: lv})
			}
		}(e)
	}
	// Wait for emitters only, then stop the queriers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if l.Emitted()+l.Dropped() >= emitters*perEmitter {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	if got := l.Emitted() + l.Dropped(); got != emitters*perEmitter {
		t.Fatalf("emitted %d + dropped %d = %d, want %d",
			l.Emitted(), l.Dropped(), got, emitters*perEmitter)
	}
	if l.Dropped() == 0 {
		t.Fatal("sampling dropped nothing with SetSampleEvery(2)")
	}
	if got := l.Len(); got != 32 {
		t.Fatalf("Len = %d after heavy wraparound, want capacity 32", got)
	}
}
