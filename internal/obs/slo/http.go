package slo

import (
	"encoding/json"
	"net/http"
	"time"
)

// Handler serves GET /debug/slo as JSON: the union of the given
// evaluators' objectives (with burn rates, error-budget remaining, and
// alert state), the merged transition history (newest first), and the
// evaluation-cost counters. Nil evaluators are skipped, so the endpoint
// is safe to mount unconditionally; with none live the payload is empty.
func Handler(evs ...*Evaluator) http.Handler {
	uniq := dedup(evs)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		objectives := []ObjectiveStatus{}
		history := []Transition{}
		var ticks uint64
		var cost time.Duration
		for _, e := range uniq {
			st := e.Status()
			objectives = append(objectives, st.Objectives...)
			history = append(history, st.History...)
			ticks += st.Ticks
			cost += st.EvalCost
		}
		sortTransitionsNewestFirst(history)
		payload := map[string]any{
			"objectives":   objectives,
			"history":      history,
			"ticks":        ticks,
			"eval_cost_ns": cost,
			"paging":       anyPaging(uniq),
		}
		if ticks > 0 {
			payload["eval_per_tick_ns"] = int64(cost) / int64(ticks)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(payload)
	})
}

// AnyPaging reports whether any of the evaluators has an objective in
// StatePage — the combined-handler form of Evaluator.Paging.
func AnyPaging(evs ...*Evaluator) bool { return anyPaging(dedup(evs)) }

func anyPaging(evs []*Evaluator) bool {
	for _, e := range evs {
		if e.Paging() {
			return true
		}
	}
	return false
}

func dedup(evs []*Evaluator) []*Evaluator {
	seen := make(map[*Evaluator]bool, len(evs))
	out := make([]*Evaluator, 0, len(evs))
	for _, e := range evs {
		if e == nil || seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	return out
}

// sortTransitionsNewestFirst orders merged histories newest first
// (insertion sort; histories are short and mostly ordered).
func sortTransitionsNewestFirst(ts []Transition) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Time.After(ts[j-1].Time); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
