package slo

import (
	"sync"
	"testing"
	"time"
)

// at returns a synthetic instant n seconds past a fixed base.
func at(n int) time.Time {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return base.Add(time.Duration(n) * time.Second)
}

// TestRingSumWindows checks bucket placement and window clamping: counts
// land in per-second buckets and a sum covers exactly the requested
// window ending at now.
func TestRingSumWindows(t *testing.T) {
	r := newRing(time.Second, 10*time.Second)
	for i := 0; i < 5; i++ {
		r.add(at(i).UnixNano(), 10, 1)
	}
	good, bad := r.sum(at(4).UnixNano(), 10*time.Second)
	if good != 50 || bad != 5 {
		t.Fatalf("full-window sum = %d/%d, want 50/5", good, bad)
	}
	// A 2s window ending at t=4 covers only seconds 3 and 4.
	good, bad = r.sum(at(4).UnixNano(), 2*time.Second)
	if good != 20 || bad != 2 {
		t.Fatalf("2s-window sum = %d/%d, want 20/2", good, bad)
	}
	// A sub-bucket window still counts the current bucket.
	good, _ = r.sum(at(4).UnixNano(), time.Millisecond)
	if good != 10 {
		t.Fatalf("sub-bucket window sum = %d, want 10", good)
	}
	// An empty window (the future) sums to zero without dividing.
	good, bad = r.sum(at(100).UnixNano(), 10*time.Second)
	if good != 0 || bad != 0 {
		t.Fatalf("empty-window sum = %d/%d, want 0/0", good, bad)
	}
}

// TestRingForwardClockJump checks that a wall-clock jump far past the
// ring's span cannot smear old counts into new windows: stale buckets
// stop matching their period stamp and are excluded.
func TestRingForwardClockJump(t *testing.T) {
	r := newRing(time.Second, 10*time.Second)
	r.add(at(0).UnixNano(), 100, 100)
	// Jump 1000s forward — every retained bucket is now stale.
	jump := at(1000)
	if good, bad := r.sum(jump.UnixNano(), 10*time.Second); good != 0 || bad != 0 {
		t.Fatalf("sum after forward jump = %d/%d, want 0/0", good, bad)
	}
	r.add(jump.UnixNano(), 7, 3)
	if good, bad := r.sum(jump.UnixNano(), 10*time.Second); good != 7 || bad != 3 {
		t.Fatalf("sum after re-add = %d/%d, want 7/3", good, bad)
	}
}

// TestRingBackwardClockJump checks the documented drop semantics: an add
// whose period is older than the slot's current bucket (the clock stepped
// backward a full ring length) is discarded rather than corrupting the
// newer bucket, and a sum at the old instant excludes the newer bucket.
func TestRingBackwardClockJump(t *testing.T) {
	r := newRing(time.Second, 10*time.Second)
	n := len(r.slots)
	newer := at(5 * n)
	older := newer.Add(-time.Duration(n) * time.Second) // same slot, older period
	r.add(newer.UnixNano(), 10, 10)
	r.add(older.UnixNano(), 5, 5) // dropped: slot holds a newer period
	if good, bad := r.sum(older.UnixNano(), 10*time.Second); good != 0 || bad != 0 {
		t.Fatalf("backward-jump sum = %d/%d, want 0/0 (newer bucket excluded, old add dropped)", good, bad)
	}
	if good, _ := r.sum(newer.UnixNano(), 10*time.Second); good != 10 {
		t.Fatalf("newer bucket lost its counts: good = %d, want 10", good)
	}
}

// TestAccumulatorResolutionSelection checks that sums come from the fine
// ring while the window fits it and from the coarse ring beyond.
func TestAccumulatorResolutionSelection(t *testing.T) {
	// Fine: 1s buckets over 10s; coarse: 6s buckets over 60s.
	a := newAccumulator(time.Second, 10*time.Second, 60*time.Second)
	for i := 0; i < 30; i++ {
		a.add(at(i), 1, 0)
	}
	if good, _ := a.sum(at(29), 10*time.Second); good != 10 {
		t.Fatalf("fine sum = %d, want 10", good)
	}
	good, _ := a.sum(at(29), 60*time.Second)
	if good != 30 {
		t.Fatalf("coarse sum = %d, want all 30", good)
	}
	// Zero-count adds are dropped entirely (no bucket churn).
	a.add(at(29), 0, 0)
	if good, _ := a.sum(at(29), 10*time.Second); good != 10 {
		t.Fatalf("zero add changed the sum: %d", good)
	}
}

// TestWindowConcurrentAddSum races concurrent recording against window
// sums and bucket rotation — the lock-free contract the evaluator's
// "no new locks on the hot path" claim rests on. Run with -race.
func TestWindowConcurrentAddSum(t *testing.T) {
	a := newAccumulator(10*time.Millisecond, 100*time.Millisecond, 600*time.Millisecond)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Spread adds across bucket periods so rotation happens
				// while sums are in flight.
				a.add(at(0).Add(time.Duration(i%50)*10*time.Millisecond), 1, 1)
				i++
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				now := at(0).Add(time.Duration(i%60) * 10 * time.Millisecond)
				g1, b1 := a.sum(now, 100*time.Millisecond)
				g2, b2 := a.sum(now, 600*time.Millisecond)
				_ = g1 + g2
				_ = b1 + b2
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
