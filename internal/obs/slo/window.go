package slo

import (
	"sync/atomic"
	"time"
)

// bucket accumulates good/bad counts for one time period. The period
// stamp is immutable after construction; the counts are atomics, so
// concurrent adds into the same period and concurrent sums never lock.
type bucket struct {
	period    int64 // time.UnixNano / ring width
	good, bad atomic.Uint64
}

// ring is a fixed ring of time buckets, one slot per period modulo the
// ring length. Rotation is stamp-checked: a slot is reused only by
// CAS-installing a bucket for the current period, so a wall-clock jump
// (forward or backward) can never smear counts across periods — a stale
// slot simply stops matching and is excluded from sums. An add that loses
// the install race retries against the winner's bucket; an add whose
// period is already older than the slot's (clock stepped backward) is
// dropped, a bounded, race-detector-clean loss documented here rather
// than papered over with a lock.
type ring struct {
	width int64 // bucket width, nanoseconds
	span  time.Duration
	slots []atomic.Pointer[bucket]
}

func newRing(width, span time.Duration) *ring {
	if width <= 0 {
		width = time.Second
	}
	n := int(span/width) + 2 // +1 to cover span fully, +1 for the partial current bucket
	return &ring{width: int64(width), span: span, slots: make([]atomic.Pointer[bucket], n)}
}

// add folds good/bad counts into the bucket for now.
func (r *ring) add(nowNS int64, good, bad uint64) {
	p := nowNS / r.width
	slot := &r.slots[int(uint64(p)%uint64(len(r.slots)))]
	for {
		b := slot.Load()
		if b != nil && b.period == p {
			b.good.Add(good)
			b.bad.Add(bad)
			return
		}
		if b != nil && b.period > p {
			return // clock stepped backward past this slot; drop
		}
		nb := &bucket{period: p}
		nb.good.Store(good)
		nb.bad.Store(bad)
		if slot.CompareAndSwap(b, nb) {
			return
		}
	}
}

// sum totals the buckets covering the window ending at now. An empty
// window returns zeros; callers guard the division.
func (r *ring) sum(nowNS int64, window time.Duration) (good, bad uint64) {
	p := nowNS / r.width
	n := int64(window) / r.width
	if n < 1 {
		n = 1
	}
	if n > int64(len(r.slots)) {
		n = int64(len(r.slots))
	}
	min := p - n + 1
	for i := range r.slots {
		b := r.slots[i].Load()
		if b == nil || b.period < min || b.period > p {
			continue
		}
		good += b.good.Load()
		bad += b.bad.Load()
	}
	return good, bad
}

// accumulator is the multi-resolution sliding window: a fine ring of
// Resolution-wide buckets covering the mid (fast-rule) window, and a
// coarse ring whose wider buckets stretch the same slot count across the
// long (slow-rule) window. Sums pick whichever ring covers the requested
// window at the finest resolution.
type accumulator struct {
	fine   *ring
	coarse *ring
}

func newAccumulator(res, mid, long time.Duration) *accumulator {
	coarseWidth := time.Duration(int64(long) / (int64(mid) / int64(res)))
	if coarseWidth < res {
		coarseWidth = res
	}
	return &accumulator{
		fine:   newRing(res, mid),
		coarse: newRing(coarseWidth, long),
	}
}

// add records good/bad observations at now into both resolutions.
func (a *accumulator) add(now time.Time, good, bad uint64) {
	if good == 0 && bad == 0 {
		return
	}
	ns := now.UnixNano()
	a.fine.add(ns, good, bad)
	a.coarse.add(ns, good, bad)
}

// sum totals the window ending at now from the finest ring that covers it.
func (a *accumulator) sum(now time.Time, window time.Duration) (good, bad uint64) {
	ns := now.UnixNano()
	if window <= a.fine.span {
		return a.fine.sum(ns, window)
	}
	return a.coarse.sum(ns, window)
}
