package slo

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"eigenpro/internal/obs"
)

// availFixture is a Manual availability evaluator fed by two private
// counters, so tests drive traffic and the clock explicitly.
type availFixture struct {
	reg       *obs.Registry
	good, bad *obs.Counter
	log       *obs.EventLog
	ev        *Evaluator
}

// newAvailFixture builds the fixture: Window 12s at 1s resolution gives
// shortFast = 1s (this tick's traffic alone confirms the fast rule) and
// PageAfter = 2s (two ticks of sustained fast burn escalate warn to page).
func newAvailFixture(t *testing.T, fr *obs.FlightRecorder) *availFixture {
	t.Helper()
	f := &availFixture{reg: obs.NewRegistry(), log: obs.NewEventLog(256)}
	f.good = f.reg.Counter("test_good_total", "good requests")
	f.bad = f.reg.Counter("test_bad_total", "bad requests")
	ev, err := New(Config{
		Objectives: []Objective{{
			Kind:       Availability,
			Name:       "avail",
			Target:     0.99,
			GoodMetric: "test_good_total",
			BadMetrics: []string{"test_bad_total"},
		}},
		Window:     12 * time.Second,
		Resolution: time.Second,
		Source:     f.reg,
		Events:     f.log,
		Flight:     fr,
		Manual:     true,
		Now:        func() time.Time { return at(0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	f.ev = ev
	return f
}

func (f *availFixture) state(t *testing.T) string {
	t.Helper()
	st := f.ev.Status()
	if len(st.Objectives) != 1 {
		t.Fatalf("want 1 objective, got %d", len(st.Objectives))
	}
	return st.Objectives[0].State
}

// TestHysteresisOkWarnPageOk walks the full alert lifecycle: all-bad
// traffic confirms the fast rule (warn), sustains it past PageAfter
// (page), trips the flight recorder exactly once, and all-good traffic
// recovers through warn (slow rule still burning) back to ok.
func TestHysteresisOkWarnPageOk(t *testing.T) {
	fr, err := obs.NewFlightRecorder(obs.FlightConfig{
		Dir:        t.TempDir(),
		CPUProfile: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := newAvailFixture(t, fr)

	f.ev.Tick(at(0)) // baseline tick seeds the poll cursor
	f.good.Add(10)
	f.ev.Tick(at(1))
	if s := f.state(t); s != "ok" {
		t.Fatalf("healthy traffic: state %q, want ok", s)
	}

	// Tick 2: 10/10 bad this second. Burn over both the fast window
	// (10 bad / 20 total / 0.01 = 50) and its 1s confirmation window
	// (100) exceed FastBurn => warn immediately.
	f.bad.Add(10)
	f.ev.Tick(at(2))
	if s := f.state(t); s != "warn" {
		t.Fatalf("after 1 bad tick: state %q, want warn", s)
	}
	// Tick 3: fast rule held 1s < PageAfter (2s) — still warn.
	f.bad.Add(10)
	f.ev.Tick(at(3))
	if s := f.state(t); s != "warn" {
		t.Fatalf("fast rule held 1s: state %q, want warn (PageAfter not reached)", s)
	}
	// Tick 4: held 2s >= PageAfter — page, readiness degrades, flight fires.
	f.bad.Add(10)
	f.ev.Tick(at(4))
	if s := f.state(t); s != "page" {
		t.Fatalf("fast rule held 2s: state %q, want page", s)
	}
	if !f.ev.Paging() {
		t.Fatal("Paging() false while an objective pages")
	}
	fr.Wait()
	if got := fr.Captures(); got != 1 {
		t.Fatalf("flight captures = %d, want exactly 1", got)
	}

	// Recovery: good-only traffic. The 1s confirmation window clears the
	// fast rule on the first good tick (page exits), but the 6s slow
	// confirmation window still holds the bad run => warn, not ok.
	f.good.Add(10)
	f.ev.Tick(at(5))
	if s := f.state(t); s != "warn" {
		t.Fatalf("first good tick: state %q, want warn (slow budget still burning)", s)
	}
	if f.ev.Paging() {
		t.Fatal("Paging() still true after page exited")
	}
	// Keep serving good traffic until the bad run rolls out of the 6s
	// confirmation window; by t=10 the slow rule clears and state is ok.
	for i := 6; i <= 10; i++ {
		f.good.Add(10)
		f.ev.Tick(at(i))
	}
	if s := f.state(t); s != "ok" {
		t.Fatalf("after recovery: state %q, want ok", s)
	}

	// The transition history tells the same story, oldest first, and the
	// page transition carries its flight-snapshot directory.
	st := f.ev.Status()
	var path []string
	for _, tr := range st.History {
		path = append(path, tr.From+">"+tr.To)
		if tr.To == "page" && tr.Snapshot == "" {
			t.Fatal("page transition has no flight snapshot attached")
		}
	}
	want := "ok>warn warn>page page>warn warn>ok"
	if got := strings.Join(path, " "); got != want {
		t.Fatalf("transition history = %q, want %q", got, want)
	}
	if _, err := os.Stat(filepath.Join(st.History[1].Snapshot, "meta.json")); err != nil {
		t.Fatalf("flight snapshot incomplete: %v", err)
	}

	// Every transition was also emitted as a wide slo.state event, at
	// escalating levels (page => error).
	evs := f.log.Query(obs.EventQuery{Kind: obs.KindSLOState})
	if len(evs) != 4 {
		t.Fatalf("want 4 slo.state events, got %d", len(evs))
	}
	for _, ev := range evs { // newest first
		if ev.Objective != "avail" {
			t.Fatalf("slo.state event missing objective: %+v", ev)
		}
	}
	if evs[2].Outcome != "page" || evs[2].Level != obs.LevelError {
		t.Fatalf("page event = %+v, want outcome page at error level", evs[2])
	}
}

// TestHysteresisNoFlapping alternates all-bad and all-good seconds: the
// fast rule enters and exits each second but never survives PageAfter, and
// the slow rule's hysteresis holds the state at warn throughout — exactly
// one transition total, no ok/warn flapping.
func TestHysteresisNoFlapping(t *testing.T) {
	f := newAvailFixture(t, nil)
	f.ev.Tick(at(0))
	for i := 1; i <= 20; i++ {
		if i%2 == 1 {
			f.bad.Add(10)
		} else {
			f.good.Add(10)
		}
		f.ev.Tick(at(i))
		if s := f.state(t); s == "page" {
			t.Fatalf("flapping input paged at tick %d", i)
		}
	}
	st := f.ev.Status()
	if len(st.History) != 1 || st.History[0].To != "warn" {
		t.Fatalf("flapping produced %d transitions (%+v), want exactly ok>warn", len(st.History), st.History)
	}
	if s := f.state(t); s != "warn" {
		t.Fatalf("state under flapping input = %q, want warn held by hysteresis", s)
	}
}

// TestEmptyWindowNoTraffic checks the division guards: an evaluator over
// absent metrics and zero traffic stays ok with a full error budget.
func TestEmptyWindowNoTraffic(t *testing.T) {
	f := newAvailFixture(t, nil)
	for i := 0; i < 5; i++ {
		f.ev.Tick(at(i))
	}
	st := f.ev.Status().Objectives[0]
	if st.State != "ok" || st.ErrorBudgetRemaining != 1 || st.BurnFast != 0 {
		t.Fatalf("no-traffic status = %+v, want ok with full budget", st)
	}
	// Same for an objective whose metrics never registered at all.
	ev, err := New(Config{
		Objectives: []Objective{{Kind: Availability, GoodMetric: "absent_total"}},
		Window:     12 * time.Second,
		Resolution: time.Second,
		Source:     obs.NewRegistry(),
		Manual:     true,
		Now:        func() time.Time { return at(0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ev.Tick(at(0))
	ev.Tick(at(1))
	if st := ev.Status().Objectives[0]; st.State != "ok" || st.ErrorBudgetRemaining != 1 {
		t.Fatalf("absent-metric status = %+v, want ok with full budget", st)
	}
}

// TestLatencyObjective feeds a private histogram: observations landing in
// buckets at or under LatencyP99 are good, the rest bad, and an all-slow
// burst walks the same warn->page path as availability.
func TestLatencyObjective(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("test_latency_seconds", "latency", []float64{0.005, 0.05, 0.5})
	ev, err := New(Config{
		Objectives: []Objective{{
			Kind:          Latency,
			Name:          "lat",
			Target:        0.99,
			LatencyP99:    50 * time.Millisecond,
			LatencyMetric: "test_latency_seconds",
		}},
		Window:     12 * time.Second,
		Resolution: time.Second,
		Source:     reg,
		Manual:     true,
		Now:        func() time.Time { return at(0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ev.Tick(at(0)) // baseline snapshot

	// Fast requests: both the 5ms and 50ms buckets are within LatencyP99.
	for i := 0; i < 8; i++ {
		h.Observe(0.001)
	}
	h.Observe(0.04)
	ev.Tick(at(1))
	st := ev.Status().Objectives[0]
	if st.State != "ok" || st.Good != 9 || st.Bad != 0 {
		t.Fatalf("fast traffic: %+v, want ok with 9 good", st)
	}
	if st.LatencyP99 != 50*time.Millisecond {
		t.Fatalf("status LatencyP99 = %v, want 50ms", st.LatencyP99)
	}

	// Slow requests: the 0.5 bucket and +Inf overflow both breach 50ms.
	for _, v := range []float64{0.2, 0.2, 0.3, 2.0} {
		h.Observe(v)
	}
	ev.Tick(at(2))
	if s := ev.Status().Objectives[0].State; s != "warn" {
		t.Fatalf("after slow burst: state %q, want warn", s)
	}
	for i := 3; i <= 4; i++ {
		h.Observe(1.0)
		ev.Tick(at(i))
	}
	if s := ev.Status().Objectives[0].State; s != "page" {
		t.Fatalf("sustained slow traffic: state %q, want page", s)
	}
}

// TestTrainingProgressObjective drives train.epoch wide events through
// the cursor: steady epochs are good, a stretched epoch and a
// validation-error regression are bad, and epochs emitted before the
// evaluator existed are ignored.
func TestTrainingProgressObjective(t *testing.T) {
	log := obs.NewEventLog(256)
	// Pre-existing history the evaluator must not count.
	log.Emit(obs.Event{Kind: obs.KindTrainEpoch, Job: "old", Wall: time.Second})

	ev, err := New(Config{
		Objectives: []Objective{{Kind: TrainingProgress, Name: "train"}},
		Window:     12 * time.Second,
		Resolution: time.Second,
		Events:     log,
		Manual:     true,
		Now:        func() time.Time { return at(0) },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Four steady epochs establish the wall-time baseline.
	for i := 0; i < 4; i++ {
		log.Emit(obs.Event{Kind: obs.KindTrainEpoch, Job: "j", Wall: time.Second})
	}
	ev.Tick(at(1))
	st := ev.Status().Objectives[0]
	if st.Good != 4 || st.Bad != 0 {
		t.Fatalf("steady epochs: good/bad = %d/%d, want 4/0", st.Good, st.Bad)
	}

	// An epoch stretched past MaxEpochStretch x the smoothed wall is bad.
	log.Emit(obs.Event{Kind: obs.KindTrainEpoch, Job: "j", Wall: 10 * time.Second})
	ev.Tick(at(2))
	if st := ev.Status().Objectives[0]; st.Bad != 1 {
		t.Fatalf("stretched epoch: bad = %d, want 1", st.Bad)
	}

	// Validation error: 0.10 sets the best; 0.14 > best + margin regresses.
	log.Emit(obs.Event{Kind: obs.KindTrainEpoch, Job: "j", Wall: time.Second, ValError: 0.10})
	ev.Tick(at(3))
	log.Emit(obs.Event{Kind: obs.KindTrainEpoch, Job: "j", Wall: time.Second, ValError: 0.14})
	ev.Tick(at(4))
	st = ev.Status().Objectives[0]
	if st.Good != 5 || st.Bad != 2 {
		t.Fatalf("after regression: good/bad = %d/%d, want 5/2", st.Good, st.Bad)
	}
}

// TestNewValidation checks New's config rejection paths.
func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no objectives", Config{}},
		{"unknown kind", Config{Objectives: []Objective{{Kind: "bogus"}}}},
		{"target out of range", Config{Objectives: []Objective{{Kind: Availability, Target: 1.5}}}},
		{"duplicate names", Config{Objectives: []Objective{
			{Kind: Availability, Name: "x"}, {Kind: Latency, Name: "x"},
		}}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", c.name)
		}
	}
}

// TestSLOGauges checks the eigenpro_slo_* series land in the metrics
// registry with per-objective labels.
func TestSLOGauges(t *testing.T) {
	f := newAvailFixture(t, nil)
	f.ev.Tick(at(0))
	f.good.Add(10)
	f.ev.Tick(at(1))
	var sb strings.Builder
	if err := f.reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`eigenpro_slo_error_budget_remaining{objective="avail"} 1`,
		`eigenpro_slo_state{objective="avail"} 0`,
		`eigenpro_slo_burn_rate{objective="avail",rule="fast"}`,
		"eigenpro_slo_evaluations_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestNilEvaluator checks the nil-receiver contract the handler wiring
// relies on.
func TestNilEvaluator(t *testing.T) {
	var ev *Evaluator
	ev.Tick(at(0))
	ev.Close()
	if ev.Paging() || ev.Ticks() != 0 || ev.EvalCost() != 0 || ev.Window() != 0 {
		t.Fatal("nil evaluator reported activity")
	}
	if st := ev.Status(); len(st.Objectives) != 0 {
		t.Fatal("nil evaluator reported objectives")
	}
	if AnyPaging(nil, nil) {
		t.Fatal("AnyPaging(nil, nil) = true")
	}
}

// TestConcurrentTickStatus races Tick, Status, Paging, and counter traffic
// under -race.
func TestConcurrentTickStatus(t *testing.T) {
	f := newAvailFixture(t, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			f.good.Inc()
			if i%7 == 0 {
				f.bad.Inc()
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			f.ev.Tick(at(i % 30))
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			_ = f.ev.Status()
			_ = f.ev.Paging()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if f.ev.Ticks() != 300 {
		t.Fatalf("ticks = %d, want 300", f.ev.Ticks())
	}
}

// TestHandler checks the /debug/slo payload shape: objectives from every
// evaluator, merged history newest first, tick/cost counters, and the
// paging flag; non-GET methods are rejected and nil evaluators skipped.
func TestHandler(t *testing.T) {
	f := newAvailFixture(t, nil)
	f.ev.Tick(at(0))
	f.bad.Add(10)
	f.ev.Tick(at(1))
	h := Handler(f.ev, nil, f.ev) // nils skipped, duplicates deduped

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /debug/slo = %d", rr.Code)
	}
	var payload struct {
		Objectives []ObjectiveStatus `json:"objectives"`
		History    []Transition      `json:"history"`
		Ticks      uint64            `json:"ticks"`
		EvalPer    int64             `json:"eval_per_tick_ns"`
		Paging     bool              `json:"paging"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Objectives) != 1 || payload.Objectives[0].Name != "avail" {
		t.Fatalf("payload objectives = %+v (duplicate evaluator not deduped?)", payload.Objectives)
	}
	if payload.Ticks != 2 || payload.EvalPer <= 0 {
		t.Fatalf("payload ticks/eval_per_tick = %d/%d", payload.Ticks, payload.EvalPer)
	}
	if len(payload.History) != 1 || payload.History[0].To != "warn" {
		t.Fatalf("payload history = %+v", payload.History)
	}
	if payload.Paging {
		t.Fatalf("payload paging = %v, want false", payload.Paging)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/debug/slo", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/slo = %d, want 405", rr.Code)
	}

	// An empty handler (all nil) serves an empty, valid payload.
	rr = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/slo", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), `"objectives":[]`) {
		t.Fatalf("nil handler: %d %s", rr.Code, rr.Body.String())
	}
}

// TestBackgroundLoop covers the non-Manual path: the ticker drives Tick
// until Close.
func TestBackgroundLoop(t *testing.T) {
	ev, err := New(Config{
		Objectives: []Objective{{Kind: Availability}},
		Window:     time.Second,
		Resolution: time.Millisecond,
		Source:     obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ev.Ticks() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ev.Close()
	ev.Close() // idempotent
	if ev.Ticks() == 0 {
		t.Fatal("background loop never ticked")
	}
}
