// Package slo evaluates declarative service-level objectives against the
// telemetry the rest of the system already emits — the obs.Registry's
// counters and histograms and the obs.EventLog's wide events — and drives
// Google-SRE-style multi-window burn-rate alerting from them.
//
// The evaluator POLLS: once per Resolution it samples cumulative counter
// and histogram values, converts them to per-tick good/bad deltas, and
// folds the deltas into a lock-free multi-resolution sliding window (a
// fine ring of per-second buckets covering the fast window, a coarse ring
// covering the slow window). The serving and training hot paths are
// untouched — no new locks, no new instrumentation; the cost of SLO
// evaluation is one reader-side pass per tick, measurable via EvalCost.
//
// Alerting follows the SRE workbook's two-rule shape: a fast rule
// (burn ≥ 14.4 over the fast window AND its short confirmation window)
// that pages, and a slow rule (burn ≥ 6 over the slow window AND its
// confirmation window) that warns. Both rules carry hysteresis — once
// active, a rule stays active until its confirmation window's burn drops
// below threshold × 0.8 — so a flapping input cannot flap the alert
// state. Every ok|warn|page transition is emitted as a wide slo.state
// event, and a warn→page transition triggers the armed
// obs.FlightRecorder, so each page ships with its diagnosis bundle.
package slo

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eigenpro/internal/obs"
)

// Kind selects what an Objective measures.
type Kind string

// Objective kinds.
const (
	// Availability measures the non-ok outcome ratio over served
	// requests: good = completed predictions, bad = rejected + expired +
	// abandoned + shed, polled from the serving counters.
	Availability Kind = "availability"
	// Latency measures the fraction of requests completing under
	// LatencyP99, from the serving latency histogram's bucket deltas.
	Latency Kind = "latency"
	// TrainingProgress measures per-job training health from train.epoch
	// wide events: an epoch is bad when its wall time stretches beyond
	// MaxEpochStretch × the job's smoothed epoch time, or its validation
	// error regresses past the job's best by ValErrorMargin.
	TrainingProgress Kind = "training_progress"
)

// Serving metric names the default objectives poll. Literal duplicates of
// the constants in internal/serve/stats.go (importing serve here would
// cycle: serve carries an *slo.Evaluator in its Config); a mismatch shows
// up immediately as an objective that never observes traffic.
const (
	defaultGoodMetric    = "eigenpro_serve_requests_total"
	defaultLatencyMetric = "eigenpro_serve_latency_seconds"
)

// defaultBadMetrics are the serving failure counters (same caveat).
var defaultBadMetrics = []string{
	"eigenpro_serve_rejected_total",
	"eigenpro_serve_expired_total",
	"eigenpro_serve_abandoned_total",
	"eigenpro_serve_shed_total",
}

// SRE-workbook burn-rate thresholds and the hysteresis exit factor.
const (
	// FastBurn pages: at this burn rate a Window-long error budget is
	// exhausted in Window/14.4.
	FastBurn = 14.4
	// SlowBurn warns: sustained budget spend worth looking at.
	SlowBurn = 6.0
	// hysteresisExit deactivates a rule only when its confirmation
	// window's burn drops below threshold × this factor.
	hysteresisExit = 0.8
)

// Objective declares one SLO. Zero optional fields select defaults.
type Objective struct {
	// Name identifies the objective in gauges, events, and /debug/slo;
	// empty defaults to the Kind.
	Name string `json:"name"`
	// Kind selects the measurement (Availability, Latency,
	// TrainingProgress).
	Kind Kind `json:"kind"`
	// Target is the required good fraction, in (0, 1); 0 defaults to
	// 0.99.
	Target float64 `json:"target"`

	// LatencyP99 is the Latency objective's threshold: a request
	// completing within it is good. 0 defaults to 250ms.
	LatencyP99 time.Duration `json:"latency_p99_ns,omitempty"`

	// GoodMetric, BadMetrics, and LatencyMetric override the polled
	// series (defaults are the serving metrics above) — the hook tests
	// and non-serve deployments use.
	GoodMetric    string   `json:"-"`
	BadMetrics    []string `json:"-"`
	LatencyMetric string   `json:"-"`

	// MaxEpochStretch flags a training epoch bad when its wall time
	// exceeds this multiple of the job's smoothed epoch time (default 2).
	MaxEpochStretch float64 `json:"max_epoch_stretch,omitempty"`
	// ValErrorMargin flags an epoch bad when its validation error
	// exceeds the job's best seen plus this margin (default 0.02).
	ValErrorMargin float64 `json:"val_error_margin,omitempty"`
}

// Config configures New.
type Config struct {
	// Objectives to evaluate; at least one is required.
	Objectives []Objective
	// Window is the fast-rule (mid) burn window; the slow window is 6 ×
	// Window and the confirmation windows are Window/12 and Window/2.
	// Default 5m.
	Window time.Duration
	// Resolution is the evaluation period and the fine bucket width;
	// default 1s (sub-second is allowed, for tests and benchmarks).
	Resolution time.Duration
	// PageAfter is how long the fast rule must stay active before warn
	// escalates to page — the pause that makes the ok→warn→page
	// progression observable and absorbs one-tick spikes. Default
	// Window/20, floored at 2 × Resolution.
	PageAfter time.Duration

	// Source is the registry the counter/histogram objectives poll.
	Source *obs.Registry
	// Events supplies train.epoch records (via a sequence cursor) and
	// receives slo.state transition events; nil disables both.
	Events *obs.EventLog
	// Metrics is where the eigenpro_slo_* gauges register; nil defaults
	// to Source.
	Metrics *obs.Registry
	// Flight, when non-nil, is triggered on each warn→page transition.
	Flight *obs.FlightRecorder

	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
	// Manual suppresses the background evaluation goroutine; the caller
	// drives Tick explicitly (tests, benchmarks).
	Manual bool
	// HistoryCap bounds the retained transition history; 0 defaults
	// to 64.
	HistoryCap int
}

// State is an objective's alert state.
type State int

// Alert states, ordered by severity.
const (
	StateOK State = iota
	StateWarn
	StatePage
)

// String returns the state's lowercase name.
func (s State) String() string {
	switch s {
	case StateWarn:
		return "warn"
	case StatePage:
		return "page"
	default:
		return "ok"
	}
}

// ParseState maps a state name to its State (unknown names map to ok).
func ParseState(s string) State {
	switch s {
	case "warn":
		return StateWarn
	case "page":
		return StatePage
	default:
		return StateOK
	}
}

// jobProgress tracks one training job's health baseline.
type jobProgress struct {
	ewmaWall float64 // smoothed epoch wall seconds
	epochs   int
	bestVal  float64
	haveVal  bool
	lastSeen time.Time
}

// objective is one Objective's runtime state. All mutable fields are
// guarded by the Evaluator's mutex; the accumulator is internally
// lock-free.
type objective struct {
	obj Objective
	acc *accumulator

	// Poller cursors: previous cumulative values, so each tick feeds only
	// the delta into the window.
	prevGood, prevBad float64
	prevHist          obs.HistogramSnapshot
	havePrev          bool
	jobs              map[string]*jobProgress

	// Rule activations (with hysteresis) and the page-escalation timer.
	fastActive, slowActive bool
	fastSince              time.Time

	state State
	since time.Time

	// Last computed burn rates, for gauges and /debug/slo.
	burnFast, burnFastShort float64
	burnSlow, burnSlowShort float64
	budget                  float64
	good, bad               uint64

	gBurnFast, gBurnSlow, gBudget, gState *obs.Gauge
	transitions                           *obs.Counter
}

// Evaluator evaluates a set of objectives on a fixed cadence. Create with
// New; a nil *Evaluator is valid everywhere and reports every objective
// healthy, so wiring can pass one through unconditionally.
type Evaluator struct {
	cfg     Config
	now     func() time.Time
	windows struct{ shortFast, fast, shortSlow, slow time.Duration }

	mu      sync.Mutex
	objs    []*objective
	cursor  uint64 // train.epoch event cursor (EventLog sequence)
	history []Transition

	paging    atomic.Int64 // count of objectives in StatePage
	ticks     atomic.Uint64
	evalNanos atomic.Int64

	evals    *obs.Counter
	evalCost *obs.Counter
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// New validates cfg, registers the eigenpro_slo_* gauges, and (unless
// cfg.Manual) starts the evaluation goroutine. Close releases it.
func New(cfg Config) (*Evaluator, error) {
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("slo: no objectives")
	}
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Minute
	}
	if cfg.Resolution <= 0 {
		cfg.Resolution = time.Second
	}
	if cfg.PageAfter <= 0 {
		cfg.PageAfter = cfg.Window / 20
	}
	if min := 2 * cfg.Resolution; cfg.PageAfter < min {
		cfg.PageAfter = min
	}
	if cfg.Metrics == nil {
		cfg.Metrics = cfg.Source
	}
	if cfg.HistoryCap <= 0 {
		cfg.HistoryCap = 64
	}
	e := &Evaluator{cfg: cfg, now: cfg.Now}
	if e.now == nil {
		e.now = time.Now
	}
	e.windows.fast = cfg.Window
	e.windows.shortFast = cfg.Window / 12
	if e.windows.shortFast < cfg.Resolution {
		e.windows.shortFast = cfg.Resolution
	}
	e.windows.slow = 6 * cfg.Window
	e.windows.shortSlow = cfg.Window / 2

	names := map[string]bool{}
	for _, o := range cfg.Objectives {
		if o.Name == "" {
			o.Name = string(o.Kind)
		}
		switch o.Kind {
		case Availability, Latency, TrainingProgress:
		default:
			return nil, fmt.Errorf("slo: objective %q has unknown kind %q", o.Name, o.Kind)
		}
		if o.Target == 0 {
			o.Target = 0.99
		}
		if o.Target <= 0 || o.Target >= 1 {
			return nil, fmt.Errorf("slo: objective %q target %v outside (0, 1)", o.Name, o.Target)
		}
		if names[o.Name] {
			return nil, fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		names[o.Name] = true
		if o.LatencyP99 <= 0 {
			o.LatencyP99 = 250 * time.Millisecond
		}
		if o.GoodMetric == "" {
			o.GoodMetric = defaultGoodMetric
		}
		if len(o.BadMetrics) == 0 {
			o.BadMetrics = defaultBadMetrics
		}
		if o.LatencyMetric == "" {
			o.LatencyMetric = defaultLatencyMetric
		}
		if o.MaxEpochStretch <= 1 {
			o.MaxEpochStretch = 2
		}
		if o.ValErrorMargin <= 0 {
			o.ValErrorMargin = 0.02
		}
		st := &objective{
			obj:    o,
			acc:    newAccumulator(cfg.Resolution, e.windows.fast, e.windows.slow),
			jobs:   map[string]*jobProgress{},
			budget: 1,
			since:  e.now(),
		}
		if m := cfg.Metrics; m != nil {
			lbl := obs.L("objective", o.Name)
			st.gBurnFast = m.Gauge("eigenpro_slo_burn_rate",
				"Error-budget burn rate per alert rule (1 = spending exactly the budget).",
				lbl, obs.L("rule", "fast"))
			st.gBurnSlow = m.Gauge("eigenpro_slo_burn_rate",
				"Error-budget burn rate per alert rule (1 = spending exactly the budget).",
				lbl, obs.L("rule", "slow"))
			st.gBudget = m.Gauge("eigenpro_slo_error_budget_remaining",
				"Fraction of the slow-window error budget left (1 = untouched, negative = overspent).",
				lbl)
			st.gBudget.Set(1)
			st.gState = m.Gauge("eigenpro_slo_state",
				"Objective alert state: 0 ok, 1 warn, 2 page.", lbl)
			st.transitions = m.Counter("eigenpro_slo_transitions_total",
				"SLO alert-state transitions.", lbl)
		}
		e.objs = append(e.objs, st)
	}
	if cfg.Events != nil {
		// Start the cursor at the log's current head: pre-existing epochs
		// belong to history, not to this evaluator's windows.
		e.cursor = cfg.Events.LastSeq()
	}
	if m := cfg.Metrics; m != nil {
		e.evals = m.Counter("eigenpro_slo_evaluations_total", "SLO evaluation ticks.")
		e.evalCost = m.Counter("eigenpro_slo_evaluation_seconds_total",
			"Wall time spent evaluating SLOs.")
	}
	if !cfg.Manual {
		e.stop = make(chan struct{})
		e.done = make(chan struct{})
		go e.run()
	}
	return e, nil
}

// run is the background evaluation loop.
func (e *Evaluator) run() {
	defer close(e.done)
	t := time.NewTicker(e.cfg.Resolution)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case now := <-t.C:
			e.Tick(now)
		}
	}
}

// Close stops the background loop (no-op for Manual or nil evaluators).
func (e *Evaluator) Close() {
	if e == nil || e.stop == nil {
		return
	}
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.done
}

// Window returns the configured fast-rule window (0 for nil).
func (e *Evaluator) Window() time.Duration {
	if e == nil {
		return 0
	}
	return e.cfg.Window
}

// Paging reports whether any objective is currently in StatePage — the
// signal /readyz degrades on.
func (e *Evaluator) Paging() bool {
	return e != nil && e.paging.Load() > 0
}

// Ticks returns how many evaluation passes have run.
func (e *Evaluator) Ticks() uint64 {
	if e == nil {
		return 0
	}
	return e.ticks.Load()
}

// EvalCost returns the cumulative wall time spent inside Tick — the
// observability-overhead number the bench study reports per tick.
func (e *Evaluator) EvalCost() time.Duration {
	if e == nil {
		return 0
	}
	return time.Duration(e.evalNanos.Load())
}

// Tick runs one evaluation pass at the given instant (zero means now).
// Safe to call concurrently with Status and with itself, though the
// background loop is normally the only caller.
func (e *Evaluator) Tick(now time.Time) {
	if e == nil {
		return
	}
	if now.IsZero() {
		now = e.now()
	}
	start := time.Now()
	e.mu.Lock()
	epochs := e.drainEpochs()
	for _, o := range e.objs {
		e.observe(o, now, epochs)
		e.evaluate(o, now)
	}
	e.mu.Unlock()
	d := time.Since(start)
	e.ticks.Add(1)
	e.evalNanos.Add(int64(d))
	if e.evals != nil {
		e.evals.Inc()
		e.evalCost.Add(d.Seconds())
	}
}

// drainEpochs reads train.epoch events emitted since the last tick,
// oldest first. Epoch events carry no Outcome, so the log's 1-in-N ok
// sampling never drops them out from under the cursor.
func (e *Evaluator) drainEpochs() []obs.Event {
	if e.cfg.Events == nil {
		return nil
	}
	hasTraining := false
	for _, o := range e.objs {
		if o.obj.Kind == TrainingProgress {
			hasTraining = true
			break
		}
	}
	if !hasTraining {
		return nil
	}
	evs := e.cfg.Events.Query(obs.EventQuery{Kind: obs.KindTrainEpoch, SinceSeq: e.cursor})
	for _, ev := range evs {
		if ev.Seq > e.cursor {
			e.cursor = ev.Seq
		}
	}
	// Query returns newest first; baselines must update oldest first.
	for i, j := 0, len(evs)-1; i < j; i, j = i+1, j-1 {
		evs[i], evs[j] = evs[j], evs[i]
	}
	return evs
}

// observe polls the objective's source and folds this tick's good/bad
// delta into its sliding window.
func (e *Evaluator) observe(o *objective, now time.Time, epochs []obs.Event) {
	switch o.obj.Kind {
	case Availability:
		e.observeAvailability(o, now)
	case Latency:
		e.observeLatency(o, now)
	case TrainingProgress:
		e.observeTraining(o, now, epochs)
	}
}

func (e *Evaluator) observeAvailability(o *objective, now time.Time) {
	reg := e.cfg.Source
	if reg == nil {
		return
	}
	good, ok := reg.Value(o.obj.GoodMetric)
	if !ok {
		return
	}
	var bad float64
	for _, m := range o.obj.BadMetrics {
		if v, ok := reg.Value(m); ok {
			bad += v
		}
	}
	if !o.havePrev {
		o.prevGood, o.prevBad, o.havePrev = good, bad, true
		return
	}
	dg, db := good-o.prevGood, bad-o.prevBad
	o.prevGood, o.prevBad = good, bad
	if dg < 0 {
		dg = 0 // counter reset (registry swapped); restart the baseline
	}
	if db < 0 {
		db = 0
	}
	o.acc.add(now, uint64(dg), uint64(db))
}

func (e *Evaluator) observeLatency(o *objective, now time.Time) {
	reg := e.cfg.Source
	if reg == nil {
		return
	}
	snap, ok := reg.SampleHistogram(o.obj.LatencyMetric)
	if !ok {
		return
	}
	prev := o.prevHist
	o.prevHist = snap
	if !o.havePrev || len(prev.Counts) != len(snap.Counts) {
		o.havePrev = true
		return
	}
	threshold := o.obj.LatencyP99.Seconds()
	var good, bad uint64
	for i, c := range snap.Counts {
		d := c - prev.Counts[i]
		if c < prev.Counts[i] {
			d = 0
		}
		if i < len(snap.Bounds) && snap.Bounds[i] <= threshold {
			good += d
		} else {
			bad += d
		}
	}
	o.acc.add(now, good, bad)
}

func (e *Evaluator) observeTraining(o *objective, now time.Time, epochs []obs.Event) {
	var good, bad uint64
	for i := range epochs {
		ev := &epochs[i]
		jp := o.jobs[ev.Job]
		if jp == nil {
			jp = &jobProgress{}
			o.jobs[ev.Job] = jp
		}
		jp.lastSeen = now
		wall := ev.Wall.Seconds()
		healthy := true
		// Need a few epochs of baseline before a stretch is meaningful.
		if jp.epochs >= 3 && jp.ewmaWall > 0 && wall > o.obj.MaxEpochStretch*jp.ewmaWall {
			healthy = false
		}
		if jp.haveVal && ev.ValError > jp.bestVal+o.obj.ValErrorMargin {
			healthy = false
		}
		if jp.epochs == 0 {
			jp.ewmaWall = wall
		} else {
			jp.ewmaWall = 0.7*jp.ewmaWall + 0.3*wall
		}
		jp.epochs++
		if ev.ValError > 0 && (!jp.haveVal || ev.ValError < jp.bestVal) {
			jp.bestVal, jp.haveVal = ev.ValError, true
		}
		if healthy {
			good++
		} else {
			bad++
		}
	}
	o.acc.add(now, good, bad)
	// Evict jobs idle past the slow window: their baselines are stale and
	// the map must not grow with job churn.
	for name, jp := range o.jobs {
		if now.Sub(jp.lastSeen) > e.windows.slow {
			delete(o.jobs, name)
		}
	}
}

// burn returns the error-budget burn rate over the window ending at now:
// (bad ratio) / (1 - target). An empty window burns nothing.
func (o *objective) burn(now time.Time, window time.Duration) float64 {
	good, bad := o.acc.sum(now, window)
	total := good + bad
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / (1 - o.obj.Target)
}

// evaluate recomputes the objective's burn rates and advances its alert
// state machine, emitting transition events and arming the flight
// recorder on escalation to page.
func (e *Evaluator) evaluate(o *objective, now time.Time) {
	o.burnFast = o.burn(now, e.windows.fast)
	o.burnFastShort = o.burn(now, e.windows.shortFast)
	o.burnSlow = o.burn(now, e.windows.slow)
	o.burnSlowShort = o.burn(now, e.windows.shortSlow)
	o.good, o.bad = o.acc.sum(now, e.windows.slow)
	if total := o.good + o.bad; total > 0 {
		badRatio := float64(o.bad) / float64(total)
		o.budget = 1 - badRatio/(1-o.obj.Target)
	} else {
		o.budget = 1
	}

	// Rule activation with hysteresis: enter on both windows breaching,
	// leave only when the short (confirmation) window clears well below
	// the threshold — the short window recovers first, so recovery is
	// prompt without flapping.
	if o.fastActive {
		o.fastActive = o.burnFastShort >= FastBurn*hysteresisExit
	} else {
		o.fastActive = o.burnFast >= FastBurn && o.burnFastShort >= FastBurn
	}
	if o.slowActive {
		o.slowActive = o.burnSlowShort >= SlowBurn*hysteresisExit
	} else {
		o.slowActive = o.burnSlow >= SlowBurn && o.burnSlowShort >= SlowBurn
	}
	if o.fastActive {
		if o.fastSince.IsZero() {
			o.fastSince = now
		}
	} else {
		o.fastSince = time.Time{}
	}

	next := o.state
	switch o.state {
	case StateOK:
		if o.fastActive || o.slowActive {
			next = StateWarn
		}
	case StateWarn:
		switch {
		case o.fastActive && now.Sub(o.fastSince) >= e.cfg.PageAfter:
			next = StatePage
		case !o.fastActive && !o.slowActive:
			next = StateOK
		}
	case StatePage:
		if !o.fastActive {
			if o.slowActive {
				next = StateWarn
			} else {
				next = StateOK
			}
		}
	}
	if next != o.state {
		e.transition(o, now, next)
	}
	if o.gBurnFast != nil {
		o.gBurnFast.Set(o.burnFast)
		o.gBurnSlow.Set(o.burnSlow)
		o.gBudget.Set(o.budget)
		o.gState.Set(float64(o.state))
	}
}

// transition moves the objective to next, maintaining the paging count,
// the bounded history, the transition event, and — on escalation to page
// — the flight recorder.
func (e *Evaluator) transition(o *objective, now time.Time, next State) {
	prev := o.state
	o.state = next
	o.since = now
	if prev == StatePage {
		e.paging.Add(-1)
	}
	if next == StatePage {
		e.paging.Add(1)
	}
	if o.transitions != nil {
		o.transitions.Inc()
	}
	tr := Transition{
		Objective: o.obj.Name,
		From:      prev.String(),
		To:        next.String(),
		Time:      now,
		BurnFast:  o.burnFast,
		BurnSlow:  o.burnSlow,
	}
	e.history = append(e.history, tr)
	if len(e.history) > e.cfg.HistoryCap {
		e.history = e.history[len(e.history)-e.cfg.HistoryCap:]
	}
	level := obs.LevelInfo
	switch next {
	case StateWarn:
		level = obs.LevelWarn
	case StatePage:
		level = obs.LevelError
	}
	e.cfg.Events.Emit(obs.Event{
		Time:      now,
		Level:     level,
		Kind:      obs.KindSLOState,
		Objective: o.obj.Name,
		Outcome:   next.String(),
	})
	if next == StatePage {
		if dir, ok := e.cfg.Flight.Capture(o.obj.Name, map[string]any{
			"burn_fast": o.burnFast,
			"burn_slow": o.burnSlow,
			"from":      prev.String(),
			"to":        next.String(),
		}); ok {
			e.history[len(e.history)-1].Snapshot = dir
		}
	}
}

// Transition is one alert-state change, retained in the bounded history.
type Transition struct {
	Objective string    `json:"objective"`
	From      string    `json:"from"`
	To        string    `json:"to"`
	Time      time.Time `json:"time"`
	BurnFast  float64   `json:"burn_fast"`
	BurnSlow  float64   `json:"burn_slow"`
	// Snapshot is the flight-recorder directory this transition captured,
	// when it escalated to page and the recorder accepted the trigger.
	Snapshot string `json:"snapshot,omitempty"`
}

// ObjectiveStatus is one objective's current standing, as served by
// /debug/slo.
type ObjectiveStatus struct {
	Name   string  `json:"name"`
	Kind   Kind    `json:"kind"`
	Target float64 `json:"target"`
	// LatencyP99 is the latency objective's good/bad threshold.
	LatencyP99 time.Duration `json:"latency_p99_ns,omitempty"`
	// State is the alert state ("ok", "warn", "page"); Since is when it
	// was entered.
	State string    `json:"state"`
	Since time.Time `json:"since"`
	// BurnFast/BurnSlow are the burn rates over the fast and slow
	// windows; the Short variants are the confirmation windows.
	BurnFast      float64 `json:"burn_fast"`
	BurnFastShort float64 `json:"burn_fast_short"`
	BurnSlow      float64 `json:"burn_slow"`
	BurnSlowShort float64 `json:"burn_slow_short"`
	// ErrorBudgetRemaining is the unspent fraction of the slow-window
	// budget (negative = overspent).
	ErrorBudgetRemaining float64 `json:"error_budget_remaining"`
	// Good/Bad are the slow-window observation counts.
	Good uint64 `json:"good"`
	Bad  uint64 `json:"bad"`
	// Window is the objective's fast-rule window.
	Window time.Duration `json:"window_ns"`
}

// Status is the full /debug/slo payload for one evaluator.
type Status struct {
	Objectives []ObjectiveStatus `json:"objectives"`
	// History is the bounded alert-transition log, oldest first.
	History []Transition `json:"history"`
	// Ticks counts evaluation passes; EvalCost is their cumulative wall
	// time (the per-tick division is the overhead number).
	Ticks    uint64        `json:"ticks"`
	EvalCost time.Duration `json:"eval_cost_ns"`
}

// Status snapshots every objective (empty for a nil evaluator).
func (e *Evaluator) Status() Status {
	if e == nil {
		return Status{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Status{
		Ticks:    e.ticks.Load(),
		EvalCost: time.Duration(e.evalNanos.Load()),
		History:  append([]Transition(nil), e.history...),
	}
	for _, o := range e.objs {
		os := ObjectiveStatus{
			Name:                 o.obj.Name,
			Kind:                 o.obj.Kind,
			Target:               o.obj.Target,
			State:                o.state.String(),
			Since:                o.since,
			BurnFast:             o.burnFast,
			BurnFastShort:        o.burnFastShort,
			BurnSlow:             o.burnSlow,
			BurnSlowShort:        o.burnSlowShort,
			ErrorBudgetRemaining: o.budget,
			Good:                 o.good,
			Bad:                  o.bad,
			Window:               e.cfg.Window,
		}
		if o.obj.Kind == Latency {
			os.LatencyP99 = o.obj.LatencyP99
		}
		st.Objectives = append(st.Objectives, os)
	}
	return st
}
