package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// MetricsHandler serves the union of the given registries — plus the
// process-wide Go runtime registry (RuntimeMetrics) — at any path it is
// mounted on. The format is content-negotiated: an Accept header naming
// application/openmetrics-text selects the OpenMetrics exposition (with
// histogram exemplars and a trailing `# EOF`), anything else the
// Prometheus text format 0.0.4. Duplicate registry pointers are written
// once, so a combined handler whose subsystems share one registry exposes
// each series exactly once.
func MetricsHandler(regs ...*Registry) http.Handler {
	uniq := dedupRegistries(append(append([]*Registry(nil), regs...), RuntimeMetrics()))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		om := AcceptsOpenMetrics(r.Header.Get("Accept"))
		if om {
			w.Header().Set("Content-Type", openMetricsContentType)
		} else {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		}
		for _, reg := range uniq {
			if err := reg.write(w, om); err != nil {
				return
			}
		}
		if om {
			io.WriteString(w, "# EOF\n")
		}
	})
}

func dedupRegistries(regs []*Registry) []*Registry {
	seen := make(map[*Registry]bool, len(regs))
	out := make([]*Registry, 0, len(regs))
	for _, r := range regs {
		if r == nil || seen[r] {
			continue
		}
		seen[r] = true
		out = append(out, r)
	}
	return out
}

// TracesHandler serves the union of the given tracers' rings as JSON
// ({"traces": [...]}, newest first, duplicate tracers written once).
// Query parameters:
//
//	?id=<trace_id>  return just that trace (404 when not retained)
//	?limit=N        return at most the N newest traces
func TracesHandler(tracers ...*Tracer) http.Handler {
	seen := make(map[*Tracer]bool, len(tracers))
	uniq := make([]*Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t == nil || seen[t] {
			continue
		}
		seen[t] = true
		uniq = append(uniq, t)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		q := r.URL.Query()
		if id := q.Get("id"); id != "" {
			for _, t := range uniq {
				if snap, ok := t.Find(id); ok {
					writeJSON(w, http.StatusOK, map[string]any{"traces": []TraceSnapshot{snap}})
					return
				}
			}
			writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown trace id " + id})
			return
		}
		all := []TraceSnapshot{}
		for _, t := range uniq {
			all = append(all, t.Snapshot()...)
		}
		// Each ring is newest-first; merging several needs a global sort to
		// keep the limit meaningful.
		if len(uniq) > 1 {
			sortTracesNewestFirst(all)
		}
		if limit, err := strconv.Atoi(q.Get("limit")); err == nil && limit >= 0 && limit < len(all) {
			all = all[:limit]
		}
		writeJSON(w, http.StatusOK, map[string]any{"traces": all})
	})
}

// sortTracesNewestFirst orders snapshots by start time, newest first
// (insertion sort: rings are small and mostly ordered already).
func sortTracesNewestFirst(ts []TraceSnapshot) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Start.After(ts[j-1].Start); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// EventsHandler serves the union of the given event logs as JSON:
//
//	{"events": [...], "emitted": N, "dropped": N}
//
// newest first, filtered by query parameters:
//
//	?kind=      event family ("serve.request", "train.epoch", "job.state")
//	?model=     serving model name
//	?outcome=   request outcome or job state ("ok", "shed", "failed", ...)
//	?job=       training job id
//	?level=     minimum severity ("info", "warn", "error")
//	?since=     an integer event sequence number (events after that cursor),
//	            an RFC 3339 instant, or a Go duration meaning "this long ago"
//	?limit=     at most N events (default 256)
//
// Nil logs are skipped; with no live logs the payload is empty, so the
// endpoint is safe to mount unconditionally.
func EventsHandler(logs ...*EventLog) http.Handler {
	seen := make(map[*EventLog]bool, len(logs))
	uniq := make([]*EventLog, 0, len(logs))
	for _, l := range logs {
		if l == nil || seen[l] {
			continue
		}
		seen[l] = true
		uniq = append(uniq, l)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		q, err := parseEventQuery(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
		events := []Event{}
		var emitted, dropped uint64
		for _, l := range uniq {
			events = append(events, l.Query(q)...)
			emitted += l.Emitted()
			dropped += l.Dropped()
		}
		if len(uniq) > 1 {
			sortEventsNewestFirst(events)
			if q.Limit > 0 && len(events) > q.Limit {
				events = events[:q.Limit]
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"events": events, "emitted": emitted, "dropped": dropped,
		})
	})
}

// defaultEventLimit bounds /debug/events responses with no explicit
// ?limit.
const defaultEventLimit = 256

// parseEventQuery builds an EventQuery from request parameters.
func parseEventQuery(r *http.Request) (EventQuery, error) {
	v := r.URL.Query()
	q := EventQuery{
		Kind:    v.Get("kind"),
		Model:   v.Get("model"),
		Outcome: v.Get("outcome"),
		Job:     v.Get("job"),
		Limit:   defaultEventLimit,
	}
	if lv := v.Get("level"); lv != "" {
		q.MinLevel = ParseLevel(lv)
	}
	if s := v.Get("since"); s != "" {
		if seq, err := strconv.ParseUint(s, 10, 64); err == nil {
			q.SinceSeq = seq
		} else if t, err := time.Parse(time.RFC3339, s); err == nil {
			q.Since = t
		} else if d, err := time.ParseDuration(s); err == nil && d >= 0 {
			q.Since = time.Now().Add(-d)
		} else {
			return q, &badParamError{param: "since", value: s,
				forms: `an integer event sequence number (as in each event's "seq" field; returns events after that cursor), an RFC 3339 timestamp, or a non-negative Go duration meaning "this long ago"`}
		}
	}
	if l := v.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			return q, &badParamError{param: "limit", value: l, forms: "a non-negative integer"}
		}
		q.Limit = n
	}
	return q, nil
}

// badParamError reports an unparseable query parameter, documenting the
// accepted forms in the 400 body.
type badParamError struct{ param, value, forms string }

func (e *badParamError) Error() string {
	return "bad " + e.param + " parameter " + strconv.Quote(e.value) + " (want " + e.forms + ")"
}

// sortEventsNewestFirst orders events by time, newest first (insertion
// sort: per-log slices arrive mostly ordered).
func sortEventsNewestFirst(evs []Event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].Time.After(evs[j-1].Time); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing useful left to do.
		_ = err
	}
}

// PprofHandler serves the standard net/http/pprof endpoints under
// /debug/pprof/ without touching http.DefaultServeMux, so profiling is
// exposed only where it is explicitly mounted (behind the CLI's -pprof
// flag).
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
