package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the union of the given registries in Prometheus
// text exposition format at any path it is mounted on. Duplicate
// registry pointers are written once, so a combined handler whose
// subsystems share one registry exposes each series exactly once.
func MetricsHandler(regs ...*Registry) http.Handler {
	uniq := dedupRegistries(regs)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, reg := range uniq {
			if err := reg.WritePrometheus(w); err != nil {
				return
			}
		}
	})
}

func dedupRegistries(regs []*Registry) []*Registry {
	seen := make(map[*Registry]bool, len(regs))
	out := make([]*Registry, 0, len(regs))
	for _, r := range regs {
		if r == nil || seen[r] {
			continue
		}
		seen[r] = true
		out = append(out, r)
	}
	return out
}

// TracesHandler serves the union of the given tracers' rings as JSON
// ({"traces": [...]}, newest first per tracer, duplicates written once).
func TracesHandler(tracers ...*Tracer) http.Handler {
	seen := make(map[*Tracer]bool, len(tracers))
	uniq := make([]*Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t == nil || seen[t] {
			continue
		}
		seen[t] = true
		uniq = append(uniq, t)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		all := []TraceSnapshot{}
		for _, t := range uniq {
			all = append(all, t.Snapshot()...)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		if err := enc.Encode(map[string]any{"traces": all}); err != nil {
			// Headers are already out; nothing useful left to do.
			_ = err
		}
	})
}

// PprofHandler serves the standard net/http/pprof endpoints under
// /debug/pprof/ without touching http.DefaultServeMux, so profiling is
// exposed only where it is explicitly mounted (behind the CLI's -pprof
// flag).
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
