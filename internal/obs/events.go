package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultEventCapacity is the event-ring size when NewEventLog is given a
// non-positive capacity.
const DefaultEventCapacity = 4096

// Level is an event severity.
type Level int8

// Severities, ordered: sinks and queries can filter on "at least warn".
const (
	LevelInfo Level = iota
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "info"
	}
}

// MarshalJSON renders the level as its name, so JSON-lines sinks and the
// /debug/events payload stay greppable.
func (l Level) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// UnmarshalJSON parses a level name (unknown names parse as info).
func (l *Level) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	*l = ParseLevel(s)
	return nil
}

// ParseLevel maps a level name to its Level (unknown names map to info).
func ParseLevel(s string) Level {
	switch s {
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Event kinds: the families emitted by the serving and training
// subsystems.
const (
	// KindServeRequest is one wide record per served request.
	KindServeRequest = "serve.request"
	// KindTrainEpoch is one record per completed training epoch.
	KindTrainEpoch = "train.epoch"
	// KindJobState is one record per training-job lifecycle transition.
	KindJobState = "job.state"
	// KindSLOState is one record per SLO alert-state transition
	// (ok|warn|page), emitted by the burn-rate evaluator.
	KindSLOState = "slo.state"
	// KindFlight is one record per captured flight-recorder snapshot.
	KindFlight = "flight.snapshot"
	// KindJobRecovered is one record per job restored from the durable
	// journal after a restart.
	KindJobRecovered = "job.recovered"
	// KindServerDrain is one record per graceful-drain phase transition
	// (begin, drained, timeout).
	KindServerDrain = "server.draining"
	// KindDurableError is one record per persistence failure or corrupt
	// artifact the durability layer detected and survived.
	KindDurableError = "durable.error"
)

// Event is one wide, structured record of something the system did: a
// served request, a training epoch, a job state transition. One event
// carries every dimension a diagnosis might group or filter by, so "what
// exactly happened to request X?" is answered by one record instead of a
// join across log lines.
type Event struct {
	// Seq is the event's position in its log's emission order (1-based,
	// assigned by Emit) — a resumable cursor for pollers:
	// /debug/events?since=<seq> returns only events emitted after it.
	Seq uint64 `json:"seq,omitempty"`
	// Time is when the event was emitted.
	Time time.Time `json:"time"`
	// Level is the severity (info, warn, error).
	Level Level `json:"level"`
	// Kind names the event family: "serve.request", "train.epoch",
	// "job.state", "slo.state", "flight.snapshot".
	Kind string `json:"kind"`

	// Model is the serving model name (serve.request events).
	Model string `json:"model,omitempty"`
	// Job is the training job id (train.epoch and job.state events).
	Job string `json:"job,omitempty"`
	// Outcome is the terminal disposition: ok, rejected, shed, expired, or
	// abandoned for requests; the new lifecycle state for job transitions.
	Outcome string `json:"outcome,omitempty"`
	// TraceID links the event to its span trace at /debug/traces and to
	// the latency exemplar at /metrics ("" when the request was unsampled).
	TraceID string `json:"trace_id,omitempty"`

	// Rows is the number of data rows the request carried.
	Rows int `json:"rows,omitempty"`
	// BatchID identifies the dispatched micro-batch that executed the
	// request; requests sharing a BatchID rode the same device wave.
	BatchID uint64 `json:"batch_id,omitempty"`
	// Occupancy is how many requests that micro-batch carried.
	Occupancy int `json:"occupancy,omitempty"`
	// QueueWait is enqueue → device-dispatch (or → terminal outcome for
	// requests that never reached the device).
	QueueWait time.Duration `json:"queue_wait_ns,omitempty"`
	// DeviceTime is the wall time of the device execution that carried the
	// request.
	DeviceTime time.Duration `json:"device_time_ns,omitempty"`

	// Epoch, MSE, ValError, Wall, and DeviceBusy describe one training
	// epoch: the 1-based epoch, its ending train MSE, the validation
	// classification error (0 when no validation set is attached), and the
	// epoch's wall-clock and simulated-device-busy durations (deltas, not
	// cumulative).
	Epoch      int           `json:"epoch,omitempty"`
	MSE        float64       `json:"mse,omitempty"`
	ValError   float64       `json:"val_error,omitempty"`
	Wall       time.Duration `json:"wall_ns,omitempty"`
	DeviceBusy time.Duration `json:"device_busy_ns,omitempty"`

	// Objective names the SLO objective a slo.state transition or a flight
	// snapshot is about.
	Objective string `json:"objective,omitempty"`
	// Path is the on-disk snapshot directory of a flight.snapshot event.
	Path string `json:"path,omitempty"`

	// Err carries the error text for failure events.
	Err string `json:"error,omitempty"`
}

// EventLog retains the newest events in a lock-free bounded ring and
// optionally mirrors them to a JSON-lines sink. Emit is an atomic sequence
// claim plus an atomic pointer store, so logging a wide event per served
// request cannot contend with the hot path or with concurrent queries.
//
// Sampling keeps the ring and sink useful under load: events whose Outcome
// is "ok" at LevelInfo are kept 1-in-N (SetSampleEvery) while warnings and
// errors — rejections, sheds, expiries, failures — are always kept, the
// head+tail discipline that preserves exactly the records an incident
// post-mortem needs. A nil *EventLog is valid and disables logging; every
// method is a nil-safe no-op.
type EventLog struct {
	ring []atomic.Pointer[Event]
	seq  atomic.Uint64 // next ring slot (total events retained-or-overwritten)

	sampleEvery atomic.Int64 // keep 1-in-N ok events; <= 1 keeps all
	okSeq       atomic.Uint64
	dropped     atomic.Uint64 // ok events discarded by sampling
	emitted     atomic.Uint64 // events accepted into the ring

	sinkMu   sync.Mutex
	sink     io.Writer
	sinkMin  Level
	sinkErrs atomic.Uint64
}

// NewEventLog returns an event log retaining the newest capacity events
// (DefaultEventCapacity when capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	l := &EventLog{ring: make([]atomic.Pointer[Event], capacity)}
	l.sampleEvery.Store(1)
	return l
}

// SetSampleEvery keeps 1-in-n LevelInfo events with Outcome "ok" (the
// steady-state success records); n <= 1 keeps all. Warnings and errors are
// never sampled out. Dropped events are counted (Dropped).
func (l *EventLog) SetSampleEvery(n int) {
	if l == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	l.sampleEvery.Store(int64(n))
}

// SetSink mirrors every kept event at or above min to w as one JSON line
// per event. Pass nil to detach. The sink write happens under a mutex off
// the ring's lock-free path; a slow sink slows only emitters that pass the
// sampling gate.
func (l *EventLog) SetSink(w io.Writer, min Level) {
	if l == nil {
		return
	}
	l.sinkMu.Lock()
	l.sink = w
	l.sinkMin = min
	l.sinkMu.Unlock()
}

// Emit records one event, stamping Time if unset. Sampled-out events are
// counted and discarded; everything else lands in the ring (possibly
// overwriting the oldest event) and, when a sink is attached, on the sink.
func (l *EventLog) Emit(ev Event) {
	if l == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	if ev.Level == LevelInfo && ev.Outcome == "ok" {
		if n := l.sampleEvery.Load(); n > 1 && l.okSeq.Add(1)%uint64(n) != 1 {
			l.dropped.Add(1)
			return
		}
	}
	l.emitted.Add(1)
	slot := l.seq.Add(1) - 1
	ev.Seq = slot + 1
	l.ring[slot%uint64(len(l.ring))].Store(&ev)
	l.sinkTo(&ev)
}

// sinkTo writes one event to the attached sink, if any.
func (l *EventLog) sinkTo(ev *Event) {
	l.sinkMu.Lock()
	defer l.sinkMu.Unlock()
	if l.sink == nil || ev.Level < l.sinkMin {
		return
	}
	if err := json.NewEncoder(l.sink).Encode(ev); err != nil {
		l.sinkErrs.Add(1)
	}
}

// Cap returns the ring capacity (0 for a nil log).
func (l *EventLog) Cap() int {
	if l == nil {
		return 0
	}
	return len(l.ring)
}

// Len returns the number of events currently retained.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	if n := l.seq.Load(); n < uint64(len(l.ring)) {
		return int(n)
	}
	return len(l.ring)
}

// Emitted returns how many events were accepted (ring-bound), including
// ones since overwritten.
func (l *EventLog) Emitted() uint64 {
	if l == nil {
		return 0
	}
	return l.emitted.Load()
}

// LastSeq returns the sequence number of the newest kept event (0 when
// none) — the starting cursor for incremental Query via SinceSeq.
func (l *EventLog) LastSeq() uint64 {
	if l == nil {
		return 0
	}
	return l.seq.Load()
}

// Dropped returns how many ok events sampling discarded.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// EventQuery filters a Query. Zero fields match everything.
type EventQuery struct {
	// Kind, Model, Outcome, and Job match the corresponding event fields
	// exactly when non-empty.
	Kind, Model, Outcome, Job string
	// MinLevel keeps only events at or above this severity.
	MinLevel Level
	// Since keeps only events at or after this instant.
	Since time.Time
	// SinceSeq keeps only events whose Seq is strictly greater — the
	// resumable-cursor form of Since.
	SinceSeq uint64
	// Limit bounds the result count; <= 0 returns every match retained.
	Limit int
}

// matches reports whether ev passes the filter.
func (q EventQuery) matches(ev *Event) bool {
	if q.Kind != "" && ev.Kind != q.Kind {
		return false
	}
	if q.Model != "" && ev.Model != q.Model {
		return false
	}
	if q.Outcome != "" && ev.Outcome != q.Outcome {
		return false
	}
	if q.Job != "" && ev.Job != q.Job {
		return false
	}
	if ev.Level < q.MinLevel {
		return false
	}
	if !q.Since.IsZero() && ev.Time.Before(q.Since) {
		return false
	}
	if q.SinceSeq > 0 && ev.Seq <= q.SinceSeq {
		return false
	}
	return true
}

// Query returns the retained events matching q, newest first. It takes no
// lock: slots are read with atomic loads, so a query racing emitters may
// see an event twice or observe a slightly torn window, never a partial
// event.
func (l *EventLog) Query(q EventQuery) []Event {
	if l == nil {
		return nil
	}
	seq := l.seq.Load()
	n := uint64(len(l.ring))
	if seq < n {
		n = seq
	}
	var out []Event
	for i := uint64(0); i < n; i++ {
		ev := l.ring[(seq-1-i)%uint64(len(l.ring))].Load()
		if ev == nil || !q.matches(ev) {
			continue
		}
		out = append(out, *ev)
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
	}
	return out
}
