package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsHandlerContentNegotiation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{1})
	h.ObserveEx(0.5, "trace-x")
	srv := httptest.NewServer(MetricsHandler(r))
	defer srv.Close()

	get := func(accept string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.Header.Get("Content-Type")
	}

	plain, ct := get("")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("default content type %q", ct)
	}
	if strings.Contains(plain, "# EOF") || strings.Contains(plain, "trace_id=") {
		t.Fatalf("plain exposition leaked OpenMetrics syntax:\n%s", plain)
	}

	om, ct := get("application/openmetrics-text; version=1.0.0")
	if !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("OpenMetrics content type %q", ct)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Fatalf("OpenMetrics exposition missing # EOF:\n%s", om)
	}
	if strings.Count(om, "# EOF") != 1 {
		t.Fatalf("exactly one # EOF expected:\n%s", om)
	}
	if !strings.Contains(om, `trace_id="trace-x"`) {
		t.Fatalf("OpenMetrics exposition missing exemplar:\n%s", om)
	}
}

func TestMetricsHandlerIncludesRuntimeTelemetryOnce(t *testing.T) {
	// Two distinct registries plus a duplicate: runtime go_* series must
	// appear exactly once in the merged exposition.
	a, b := NewRegistry(), NewRegistry()
	a.Counter("a_total", "a").Inc()
	b.Counter("b_total", "b").Inc()
	srv := httptest.NewServer(MetricsHandler(a, b, a))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, name := range []string{MetricGoGoroutines, MetricGoGomaxprocs, MetricGoGCCycles} {
		if n := strings.Count(out, "# TYPE "+name+" "); n != 1 {
			t.Errorf("series %s appears %d times, want 1\n%s", name, n, out)
		}
	}
	if !strings.Contains(out, "a_total 1") || !strings.Contains(out, "b_total 1") {
		t.Fatalf("merged exposition missing subsystem series:\n%s", out)
	}
	// go_goroutines must report a live, positive value.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, MetricGoGoroutines+" ") {
			if strings.TrimPrefix(line, MetricGoGoroutines+" ") == "0" {
				t.Fatalf("go_goroutines reported 0: %q", line)
			}
			return
		}
	}
	t.Fatalf("no %s sample in exposition:\n%s", MetricGoGoroutines, out)
}

func TestRuntimeHistogramBuckets(t *testing.T) {
	snap := runtimeHistogram("/sched/latencies:seconds")()
	if len(snap.Bounds) == 0 {
		t.Skip("runtime does not expose /sched/latencies:seconds")
	}
	if len(snap.Bounds) > maxRuntimeBuckets {
		t.Fatalf("runtime histogram has %d buckets, want <= %d", len(snap.Bounds), maxRuntimeBuckets)
	}
	if len(snap.Counts) != len(snap.Bounds)+1 {
		t.Fatalf("counts %d != bounds %d + 1", len(snap.Counts), len(snap.Bounds))
	}
	for i := 1; i < len(snap.Bounds); i++ {
		if snap.Bounds[i] <= snap.Bounds[i-1] {
			t.Fatalf("bounds not ascending: %v", snap.Bounds)
		}
	}
}

func TestTracesHandlerByID(t *testing.T) {
	tc := NewTracer(4)
	tr := tc.Start("http.predict")
	tr.StartSpan("queue-wait")()
	for i := 0; i < 3; i++ {
		tc.Start("filler")
	}
	srv := httptest.NewServer(TracesHandler(tc))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "?id=" + tr.ID())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("?id= lookup status %d", resp.StatusCode)
	}
	var body struct {
		Traces []TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Traces) != 1 || body.Traces[0].ID != tr.ID() {
		t.Fatalf("?id= returned %+v", body.Traces)
	}

	resp404, err := srv.Client().Get(srv.URL + "?id=no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp404.Body.Close()
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status %d, want 404", resp404.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp404.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "no-such-trace") {
		t.Fatalf("404 body %+v should name the id", e)
	}
}

func TestTracesHandlerLimit(t *testing.T) {
	tc := NewTracer(8)
	for i := 0; i < 5; i++ {
		tc.Start("t")
	}
	srv := httptest.NewServer(TracesHandler(tc))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "?limit=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Traces []TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Traces) != 2 {
		t.Fatalf("?limit=2 returned %d traces", len(body.Traces))
	}
}

func TestTracesHandlerMergesTracers(t *testing.T) {
	a, b := NewTracer(4), NewTracer(4)
	a.Start("old-a")
	b.Start("old-b")
	newest := a.Start("newest")
	srv := httptest.NewServer(TracesHandler(a, b))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "?limit=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Traces []TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Traces) != 1 || body.Traces[0].ID != newest.ID() {
		t.Fatalf("cross-tracer merge with limit=1 returned %+v, want the newest trace", body.Traces)
	}
}

func TestEventsHandler(t *testing.T) {
	serveLog := NewEventLog(16)
	jobLog := NewEventLog(16)
	serveLog.Emit(Event{Kind: KindServeRequest, Model: "a", Outcome: "ok", TraceID: "t1"})
	serveLog.Emit(Event{Kind: KindServeRequest, Model: "a", Outcome: "shed", Level: LevelWarn})
	serveLog.Emit(Event{Kind: KindServeRequest, Model: "b", Outcome: "ok"})
	jobLog.Emit(Event{Kind: KindJobState, Job: "j1", Outcome: "running"})
	jobLog.Emit(Event{Kind: KindTrainEpoch, Job: "j1", Epoch: 1, MSE: 0.5})

	srv := httptest.NewServer(EventsHandler(serveLog, jobLog, serveLog, nil))
	defer srv.Close()

	query := func(params string) (int, struct {
		Events  []Event `json:"events"`
		Emitted uint64  `json:"emitted"`
		Dropped uint64  `json:"dropped"`
	}) {
		resp, err := srv.Client().Get(srv.URL + params)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Events  []Event `json:"events"`
			Emitted uint64  `json:"emitted"`
			Dropped uint64  `json:"dropped"`
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, body
	}

	code, all := query("")
	if code != http.StatusOK || len(all.Events) != 5 {
		t.Fatalf("unfiltered: status %d, %d events (want 5 across both logs)", code, len(all.Events))
	}
	if all.Emitted != 5 {
		t.Fatalf("emitted = %d, want 5 (dedup of duplicate log pointer)", all.Emitted)
	}
	// Cross-log merge is newest first.
	for i := 1; i < len(all.Events); i++ {
		if all.Events[i].Time.After(all.Events[i-1].Time) {
			t.Fatalf("events out of order at %d: %+v", i, all.Events)
		}
	}

	if _, r := query("?model=a"); len(r.Events) != 2 {
		t.Fatalf("?model=a returned %d events, want 2", len(r.Events))
	}
	if _, r := query("?outcome=ok"); len(r.Events) != 2 {
		t.Fatalf("?outcome=ok returned %d events, want 2", len(r.Events))
	}
	if _, r := query("?job=j1"); len(r.Events) != 2 {
		t.Fatalf("?job=j1 returned %d events, want 2", len(r.Events))
	}
	if _, r := query("?kind=" + KindTrainEpoch); len(r.Events) != 1 || r.Events[0].MSE != 0.5 {
		t.Fatalf("?kind=train.epoch returned %+v", r.Events)
	}
	if _, r := query("?level=warn"); len(r.Events) != 1 || r.Events[0].Outcome != "shed" {
		t.Fatalf("?level=warn returned %+v", r.Events)
	}
	if _, r := query("?limit=3"); len(r.Events) != 3 {
		t.Fatalf("?limit=3 returned %d events", len(r.Events))
	}
	if _, r := query("?since=" + time.Now().Add(time.Hour).UTC().Format(time.RFC3339)); len(r.Events) != 0 {
		t.Fatalf("future ?since returned %d events", len(r.Events))
	}
	if _, r := query("?since=1h"); len(r.Events) != 5 {
		t.Fatalf("?since=1h returned %d events, want 5", len(r.Events))
	}
	// An integer ?since is a per-log sequence cursor: strictly after it.
	// serveLog holds seqs 1-3 and jobLog 1-2, so ?since=2 returns only
	// serveLog's third event.
	if _, r := query("?since=2"); len(r.Events) != 1 || r.Events[0].Model != "b" {
		t.Fatalf("?since=2 returned %+v, want only serveLog seq 3", r.Events)
	}
	if _, r := query("?since=0"); len(r.Events) != 5 {
		t.Fatalf("?since=0 returned %d events, want all 5", len(r.Events))
	}

	for _, bad := range []string{"?since=yesterday", "?limit=-1", "?limit=x"} {
		if code, _ := query(bad); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, code)
		}
	}
	// The 400 body documents every accepted ?since form.
	resp400, err := srv.Client().Get(srv.URL + "?since=yesterday")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp400.Body)
	resp400.Body.Close()
	for _, want := range []string{"sequence number", "RFC 3339", "duration"} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("400 body %q does not document %q", raw, want)
		}
	}

	resp, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", resp.StatusCode)
	}
}

func TestEventsHandlerEmpty(t *testing.T) {
	srv := httptest.NewServer(EventsHandler(nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), `"events":[]`) {
		t.Fatalf("empty handler body %q should carry an empty array, not null", b)
	}
}
