package obs

import (
	"math"
	"runtime"
	rtm "runtime/metrics"
	"sync"
)

// Go runtime telemetry series names (the conventional go_ prefix, so
// standard dashboards pick them up).
const (
	MetricGoGoroutines       = "go_goroutines"
	MetricGoGomaxprocs       = "go_gomaxprocs"
	MetricGoHeapObjectsBytes = "go_heap_objects_bytes"
	MetricGoMemTotalBytes    = "go_mem_total_bytes"
	MetricGoGCCycles         = "go_gc_cycles_total"
	MetricGoGCPauses         = "go_gc_pauses_seconds"
	MetricGoSchedLatencies   = "go_sched_latencies_seconds"
)

// maxRuntimeBuckets bounds the bucket count of exposed runtime
// histograms: runtime/metrics distributions carry hundreds of buckets,
// which would dominate every scrape; adjacent buckets are merged to at
// most this many.
const maxRuntimeBuckets = 32

// RegisterRuntimeMetrics registers Go runtime telemetry into reg:
// goroutine and GOMAXPROCS gauges, heap/total memory gauges, a GC-cycle
// counter, and GC-pause and scheduler-latency histograms, all read from
// runtime/metrics at exposition time (a scrape is the only cost; nothing
// runs between scrapes). Registration is idempotent.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc(MetricGoGoroutines, "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc(MetricGoGomaxprocs, "GOMAXPROCS: OS threads executing Go code simultaneously.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	reg.GaugeFunc(MetricGoHeapObjectsBytes, "Bytes of live heap objects.",
		runtimeGauge("/memory/classes/heap/objects:bytes"))
	reg.GaugeFunc(MetricGoMemTotalBytes, "Total bytes of memory mapped by the Go runtime.",
		runtimeGauge("/memory/classes/total:bytes"))
	reg.CounterFunc(MetricGoGCCycles, "Completed garbage-collection cycles.",
		runtimeGauge("/gc/cycles/total:gc-cycles"))
	reg.HistogramFunc(MetricGoGCPauses, "Stop-the-world GC pause latency (bucket-merged runtime/metrics distribution; sum approximated from bucket bounds).",
		runtimeHistogram("/gc/pauses:seconds"))
	reg.HistogramFunc(MetricGoSchedLatencies, "Goroutine time runnable-but-not-running (bucket-merged runtime/metrics distribution; sum approximated from bucket bounds).",
		runtimeHistogram("/sched/latencies:seconds"))
}

var (
	runtimeOnce sync.Once
	runtimeReg  *Registry
)

// RuntimeMetrics returns the process-wide registry carrying the Go
// runtime series, created on first use. MetricsHandler appends it to
// every exposition, so both the serving handler and the combined
// train-serve handler expose runtime telemetry exactly once no matter how
// their subsystem registries are shared.
func RuntimeMetrics() *Registry {
	runtimeOnce.Do(func() {
		runtimeReg = NewRegistry()
		RegisterRuntimeMetrics(runtimeReg)
	})
	return runtimeReg
}

// runtimeGauge returns an exposition-time reader for one scalar
// runtime/metrics sample (0 when the metric is unsupported).
func runtimeGauge(name string) func() float64 {
	return func() float64 {
		s := []rtm.Sample{{Name: name}}
		rtm.Read(s)
		switch s[0].Value.Kind() {
		case rtm.KindUint64:
			return float64(s[0].Value.Uint64())
		case rtm.KindFloat64:
			return s[0].Value.Float64()
		default:
			return 0
		}
	}
}

// runtimeHistogram returns an exposition-time snapshot reader for one
// runtime/metrics distribution (empty when unsupported).
func runtimeHistogram(name string) func() HistogramSnapshot {
	return func() HistogramSnapshot {
		s := []rtm.Sample{{Name: name}}
		rtm.Read(s)
		if s[0].Value.Kind() != rtm.KindFloat64Histogram {
			return HistogramSnapshot{}
		}
		return snapshotFromRuntime(s[0].Value.Float64Histogram())
	}
}

// snapshotFromRuntime converts a runtime/metrics histogram (bucket i
// counts observations in [Buckets[i], Buckets[i+1]); the boundary slice
// may open with -Inf and close with +Inf) into a HistogramSnapshot,
// merging adjacent buckets down to maxRuntimeBuckets. Sum is approximated
// as Σ count·upper-bound, since the runtime does not track it.
func snapshotFromRuntime(h *rtm.Float64Histogram) HistogramSnapshot {
	if h == nil || len(h.Counts) == 0 || len(h.Buckets) != len(h.Counts)+1 {
		return HistogramSnapshot{}
	}
	type bucket struct {
		bound float64
		count uint64
	}
	finite := make([]bucket, 0, len(h.Counts))
	var overflow uint64
	for i, c := range h.Counts {
		ub := h.Buckets[i+1]
		if math.IsInf(ub, 1) {
			overflow += c
			continue
		}
		finite = append(finite, bucket{bound: ub, count: c})
	}
	stride := (len(finite) + maxRuntimeBuckets - 1) / maxRuntimeBuckets
	if stride < 1 {
		stride = 1
	}
	var snap HistogramSnapshot
	for i := 0; i < len(finite); i += stride {
		end := i + stride
		if end > len(finite) {
			end = len(finite)
		}
		var c uint64
		for _, b := range finite[i:end] {
			c += b.count
		}
		snap.Bounds = append(snap.Bounds, finite[end-1].bound)
		snap.Counts = append(snap.Counts, c)
	}
	snap.Counts = append(snap.Counts, overflow)
	for i, c := range snap.Counts {
		snap.Count += c
		switch {
		case i < len(snap.Bounds):
			snap.Sum += float64(c) * snap.Bounds[i]
		case len(snap.Bounds) > 0:
			snap.Sum += float64(c) * snap.Bounds[len(snap.Bounds)-1]
		}
	}
	return snap
}
