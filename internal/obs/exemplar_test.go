package obs

import (
	"bytes"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestAcceptsOpenMetrics(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"text/plain", false},
		{"application/openmetrics-text", true},
		{"application/openmetrics-text; version=1.0.0; charset=utf-8", true},
		{"application/openmetrics-text;version=1.0.0,text/plain;q=0.5", true},
	}
	for _, c := range cases {
		if got := AcceptsOpenMetrics(c.accept); got != c.want {
			t.Errorf("AcceptsOpenMetrics(%q) = %v, want %v", c.accept, got, c.want)
		}
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests").Add(3)
	r.Gauge("depth", "queue depth", Label{Key: "model", Value: "m"}).Set(2)
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1})
	h.ObserveEx(0.05, "trace-abc")
	h.Observe(0.5)

	var om bytes.Buffer
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()

	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("OpenMetrics exposition missing # EOF terminator:\n%s", out)
	}
	// Counter metadata drops _total; the sample keeps it.
	if !strings.Contains(out, "# TYPE reqs counter") {
		t.Fatalf("counter family metadata should drop _total:\n%s", out)
	}
	if !strings.Contains(out, "reqs_total 3") {
		t.Fatalf("counter sample should keep _total:\n%s", out)
	}
	// Exemplar on the bucket that received the ObserveEx.
	exLine := regexp.MustCompile(`(?m)^lat_seconds_bucket\{le="0\.1"\} 1 # \{trace_id="trace-abc"\} 0\.05 \d+\.\d{3}$`)
	if !exLine.MatchString(out) {
		t.Fatalf("bucket exemplar missing or malformed:\n%s", out)
	}
	// The bucket that only saw plain Observe carries no exemplar.
	if !regexp.MustCompile(`(?m)^lat_seconds_bucket\{le="1"\} 2$`).MatchString(out) {
		t.Fatalf("un-exemplared bucket line malformed:\n%s", out)
	}

	// The plain Prometheus exposition stays exemplar-free and keeps _total
	// metadata (older scrapers reject the OpenMetrics extensions).
	var plain bytes.Buffer
	if err := r.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	p := plain.String()
	if strings.Contains(p, "# {") || strings.Contains(p, "# EOF") {
		t.Fatalf("plain exposition leaked OpenMetrics syntax:\n%s", p)
	}
	if !strings.Contains(p, "# TYPE reqs_total counter") {
		t.Fatalf("plain exposition should keep _total in metadata:\n%s", p)
	}
}

func TestObserveExNewestWins(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h", []float64{1})
	h.ObserveEx(0.5, "first")
	h.ObserveEx(0.7, "second")
	h.ObserveEx(0.9, "") // empty trace id must not clobber the exemplar

	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `trace_id="first"`) {
		t.Fatalf("older exemplar survived a newer one:\n%s", out)
	}
	if !strings.Contains(out, `trace_id="second"`) {
		t.Fatalf("newest exemplar missing:\n%s", out)
	}
}

// TestExemplarConcurrentExposition races ObserveEx against
// WriteOpenMetrics under -race: the per-bucket pointer swap and the
// exposition's snapshot loads must not conflict.
func TestExemplarConcurrentExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.001, 0.01, 0.1, 1})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.ObserveEx(float64(i%5)/4, fmt.Sprintf("t-%d-%d", w, i))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WriteOpenMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.Contains(line, "#") && strings.Contains(line, "trace_id") {
				if !regexp.MustCompile(`# \{trace_id="t-\d+-\d+"\} \d`).MatchString(line) {
					t.Fatalf("torn exemplar line: %q", line)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}
