package obs

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// flightFixture builds a recorder over a temp dir with an event log and a
// tracer carrying known content, so snapshot files can be checked.
func flightFixture(t *testing.T, cfg FlightConfig) (*FlightRecorder, *EventLog) {
	t.Helper()
	log := NewEventLog(64)
	log.Emit(Event{Kind: KindServeRequest, Model: "m", Outcome: "ok"})
	tr := NewTracer(8)
	tr.Start("flight-test-op")
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	cfg.Events = log
	cfg.Tracers = []*Tracer{tr}
	cfg.Registries = []*Registry{NewRegistry()}
	f, err := NewFlightRecorder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, log
}

// TestFlightCaptureContents captures one snapshot (with a real, short CPU
// profile) and checks the full file set, with meta.json present as the
// completeness marker and the trigger metadata merged in.
func TestFlightCaptureContents(t *testing.T) {
	f, log := flightFixture(t, FlightConfig{CPUProfile: 50 * time.Millisecond})
	dir, ok := f.Capture("latency breach", map[string]any{"burn_fast": 20.5})
	if !ok {
		t.Fatal("capture rejected")
	}
	if filepath.Dir(dir) != f.Dir() || !strings.HasSuffix(dir, "-latency-breach") {
		t.Fatalf("snapshot dir %q not under %q with slugged reason", dir, f.Dir())
	}
	f.Wait()
	if f.Captures() != 1 || f.Skipped() != 0 {
		t.Fatalf("captures/skipped = %d/%d, want 1/0", f.Captures(), f.Skipped())
	}
	for _, name := range []string{
		"cpu.pprof", "heap.pprof", "goroutines.txt",
		"events.jsonl", "traces.json", "metrics.prom", "metrics.om", "meta.json",
	} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("snapshot missing %s: %v", name, err)
		}
		if info.Size() == 0 && name != "events.jsonl" {
			t.Fatalf("snapshot %s is empty", name)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	var meta map[string]any
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	if meta["reason"] != "latency breach" || meta["burn_fast"] != 20.5 {
		t.Fatalf("meta.json = %v, want reason and trigger metadata", meta)
	}
	if _, hasProblems := meta["problems"]; hasProblems {
		t.Fatalf("capture reported problems: %v", meta["problems"])
	}
	ev, err := os.ReadFile(filepath.Join(dir, "events.jsonl"))
	if err != nil || !strings.Contains(string(ev), KindServeRequest) {
		t.Fatalf("events.jsonl missing the wide event: %v %q", err, ev)
	}
	tr, err := os.ReadFile(filepath.Join(dir, "traces.json"))
	if err != nil || !strings.Contains(string(tr), "flight-test-op") {
		t.Fatalf("traces.json missing the retained trace: %v %q", err, tr)
	}
	om, err := os.ReadFile(filepath.Join(dir, "metrics.om"))
	if err != nil || !strings.HasSuffix(string(om), "# EOF\n") {
		t.Fatalf("metrics.om not OpenMetrics-terminated: %v", err)
	}

	// The capture announced itself as a wide event.
	evs := log.Query(EventQuery{Kind: KindFlight})
	if len(evs) != 1 || evs[0].Path != dir || evs[0].Level != LevelWarn {
		t.Fatalf("flight.snapshot event = %+v", evs)
	}
}

// TestFlightRateLimit checks the two drop paths: a trigger inside
// MinInterval and a trigger while a capture is in flight.
func TestFlightRateLimit(t *testing.T) {
	f, _ := flightFixture(t, FlightConfig{CPUProfile: -1, MinInterval: time.Hour})
	if _, ok := f.Capture("first", nil); !ok {
		t.Fatal("first capture rejected")
	}
	f.Wait()
	if _, ok := f.Capture("second", nil); ok {
		t.Fatal("second capture accepted inside MinInterval")
	}
	if f.Captures() != 1 || f.Skipped() != 1 {
		t.Fatalf("captures/skipped = %d/%d, want 1/1", f.Captures(), f.Skipped())
	}
}

// TestFlightPrune checks the disk ring: captures beyond MaxSnapshots
// delete the oldest directories.
func TestFlightPrune(t *testing.T) {
	f, _ := flightFixture(t, FlightConfig{CPUProfile: -1, MinInterval: time.Nanosecond, MaxSnapshots: 2})
	for i, reason := range []string{"one", "two", "three"} {
		if _, ok := f.Capture(reason, nil); !ok {
			t.Fatalf("capture %d rejected", i)
		}
		f.Wait() // dir timestamps have millisecond precision; serialize
		time.Sleep(2 * time.Millisecond)
	}
	snaps, err := f.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("retained %d snapshots, want 2", len(snaps))
	}
	// Newest first, oldest pruned.
	if !strings.HasSuffix(snaps[0].Name, "-three") || !strings.HasSuffix(snaps[1].Name, "-two") {
		t.Fatalf("retained %q %q, want three,two", snaps[0].Name, snaps[1].Name)
	}
	for _, s := range snaps {
		if !s.Complete || s.Reason == "" || len(s.Files) == 0 {
			t.Fatalf("snapshot listing incomplete: %+v", s)
		}
	}
}

// TestFlightOpenRejectsTraversal checks the path-component guard.
func TestFlightOpenRejectsTraversal(t *testing.T) {
	f, _ := flightFixture(t, FlightConfig{CPUProfile: -1})
	for _, bad := range [][2]string{
		{"..", "meta.json"}, {"snap", ".."}, {"a/b", "meta.json"},
		{`a\b`, "meta.json"}, {"", "meta.json"}, {"snap", "."},
	} {
		if _, err := f.Open(bad[0], bad[1]); err == nil {
			t.Fatalf("Open(%q, %q) accepted a bad component", bad[0], bad[1])
		}
	}
}

// TestFlightHandler drives the /debug/flight surface: the listing, a
// single snapshot's listing, raw file fetch, 404s, method filtering, and
// the nil-recorder empty listing.
func TestFlightHandler(t *testing.T) {
	f, _ := flightFixture(t, FlightConfig{CPUProfile: -1})
	dir, ok := f.Capture("demo", nil)
	if !ok {
		t.Fatal("capture rejected")
	}
	f.Wait()
	name := filepath.Base(dir)
	h := FlightHandler(f)

	get := func(url string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		return rr
	}

	rr := get("/debug/flight")
	var list struct {
		Dir       string           `json:"dir"`
		Snapshots []FlightSnapshot `json:"snapshots"`
		Captures  uint64           `json:"captures"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Dir != f.Dir() || list.Captures != 1 || len(list.Snapshots) != 1 {
		t.Fatalf("listing = %+v", list)
	}
	if list.Snapshots[0].Name != name || !list.Snapshots[0].Complete {
		t.Fatalf("snapshot entry = %+v", list.Snapshots[0])
	}

	rr = get("/debug/flight?snapshot=" + name)
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "meta.json") {
		t.Fatalf("snapshot listing: %d %s", rr.Code, rr.Body.String())
	}

	rr = get("/debug/flight?snapshot=" + name + "&file=meta.json")
	if rr.Code != 200 || rr.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("file fetch: %d %q", rr.Code, rr.Header().Get("Content-Type"))
	}
	if !strings.Contains(rr.Body.String(), `"reason": "demo"`) {
		t.Fatalf("meta.json body: %s", rr.Body.String())
	}

	if rr = get("/debug/flight?snapshot=absent"); rr.Code != 404 {
		t.Fatalf("unknown snapshot: %d", rr.Code)
	}
	if rr = get("/debug/flight?snapshot=" + name + "&file=absent"); rr.Code != 404 {
		t.Fatalf("unknown file: %d", rr.Code)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/debug/flight", nil))
	if rr.Code != 405 {
		t.Fatalf("POST: %d, want 405", rr.Code)
	}

	rr = httptest.NewRecorder()
	FlightHandler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), `"snapshots":[]`) {
		t.Fatalf("nil recorder listing: %d %s", rr.Code, rr.Body.String())
	}
}

// TestFlightNilRecorder checks the nil-receiver contract.
func TestFlightNilRecorder(t *testing.T) {
	var f *FlightRecorder
	if _, ok := f.Capture("x", nil); ok {
		t.Fatal("nil recorder accepted a capture")
	}
	f.Wait()
	if f.Dir() != "" || f.Captures() != 0 || f.Skipped() != 0 {
		t.Fatal("nil recorder reported state")
	}
	if snaps, err := f.Snapshots(); err != nil || snaps != nil {
		t.Fatal("nil recorder listed snapshots")
	}
	if _, err := f.Open("a", "b"); err == nil {
		t.Fatal("nil recorder opened a file")
	}
}
