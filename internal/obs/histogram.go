package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// Histogram counts observations into fixed buckets (upper-bound
// inclusive) plus an implicit +Inf overflow bucket, and tracks the sum
// and count for mean derivation. All operations are lock-free: Observe is
// two atomic adds, so instrumenting a hot path cannot contend with
// exposition.
type Histogram struct {
	bounds []float64       // finite upper bounds, ascending
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	// exemplars holds the most recent trace-linked observation per bucket
	// (nil pointers until ObserveEx lands one); rendered only in the
	// OpenMetrics exposition.
	exemplars []atomic.Pointer[Exemplar]
	sum       atomicFloat
	count     atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucket(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveEx records one value and, when traceID is non-empty, attaches it
// to the value's bucket as an OpenMetrics exemplar — the link that lets a
// latency bucket answer "show me one trace that landed here". The store is
// a single atomic pointer swap; the newest exemplar per bucket wins.
func (h *Histogram) ObserveEx(v float64, traceID string) {
	i := h.bucket(v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Value: v, TraceID: traceID, Time: time.Now()})
	}
}

// exemplarSnapshot copies the per-bucket exemplar pointers.
func (h *Histogram) exemplarSnapshot() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// bucket returns the index of the first bucket whose bound is >= v
// (binary search), or the overflow index.
func (h *Histogram) bucket(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Mean returns Sum/Count, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / float64(n)
}

// Quantile estimates the q-quantile as the upper bound of the bucket
// holding the nearest-rank observation (rank = ceil(q·n), so the p99 of
// 10 samples is the 10th, not the 9th). With no observations it returns
// 0; a rank falling in the overflow bucket returns the largest finite
// bound (the estimate saturates rather than reporting +Inf); a histogram
// with no finite buckets returns NaN for any observation.
func (h *Histogram) Quantile(q float64) float64 {
	// Snapshot the buckets once; concurrent Observes may make the view
	// slightly torn, which only perturbs the estimate by a sample.
	var total uint64
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			// Overflow bucket: saturate at the largest finite bound.
			if len(h.bounds) > 0 {
				return h.bounds[len(h.bounds)-1]
			}
			return math.NaN()
		}
	}
	// Unreachable: cum == total >= rank by the loop's end.
	return math.NaN()
}

// HistogramSnapshot is a point-in-time copy of a histogram's buckets.
type HistogramSnapshot struct {
	// Bounds are the finite bucket upper bounds.
	Bounds []float64
	// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
	// Counts are per-bucket (not cumulative).
	Counts []uint64
	// Sum and Count aggregate all observations.
	Sum   float64
	Count uint64
}

// Snapshot copies the current bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// write renders the histogram in exposition format: cumulative
// name_bucket{le="..."} series, then name_sum and name_count. In
// OpenMetrics mode each bucket line additionally carries its exemplar.
func (h *Histogram) write(w io.Writer, name string, labels []Label, om bool) error {
	var ex []*Exemplar
	if om {
		ex = h.exemplarSnapshot()
	}
	return renderHistogram(w, name, labels, h.Snapshot(), ex, om)
}

// renderHistogram writes one histogram series from a snapshot, shared by
// atomic-backed and func-backed histograms. ex (optional, len(Counts))
// attaches OpenMetrics exemplars to bucket lines when om is set.
func renderHistogram(w io.Writer, name string, labels []Label, s HistogramSnapshot, ex []*Exemplar, om bool) error {
	var cum uint64
	for i := 0; i <= len(s.Bounds) && i < len(s.Counts); i++ {
		cum += s.Counts[i]
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatFloat(s.Bounds[i])
		}
		key := labelKey(append(append([]Label(nil), labels...), Label{Key: "le", Value: le}))
		suffix := ""
		if om && i < len(ex) && ex[i] != nil {
			suffix = ex[i].exposition()
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, key, cum, suffix); err != nil {
			return err
		}
	}
	key := labelKey(labels)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, key, formatFloat(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, key, s.Count)
	return err
}
