package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestTraceBasics(t *testing.T) {
	tc := NewTracer(8)
	tr := tc.Start("predict")
	if tr.ID() == "" {
		t.Fatal("empty trace ID")
	}
	start := time.Now()
	tr.Span("enqueue", start, start.Add(time.Microsecond))
	done := tr.StartSpan("device-execute")
	done()
	snap, ok := tc.Find(tr.ID())
	if !ok {
		t.Fatalf("trace %s not found in ring", tr.ID())
	}
	if len(snap.Spans) != 2 || snap.Spans[0].Name != "enqueue" || snap.Spans[1].Name != "device-execute" {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	if snap.Spans[0].Duration != time.Microsecond {
		t.Fatalf("span duration = %v", snap.Spans[0].Duration)
	}

	if tc2 := NewTracer(4); tc2.Start("a").ID() == tc2.Start("a").ID() {
		t.Fatal("trace IDs collide")
	}
}

func TestNilTracerAndTraceAreNoOps(t *testing.T) {
	var tc *Tracer
	tr := tc.Start("x")
	if tr != nil {
		t.Fatal("nil tracer returned a trace")
	}
	// All of these must be safe on a nil trace.
	if tr.ID() != "" {
		t.Fatal("nil trace has an ID")
	}
	tr.Span("s", time.Now(), time.Now())
	tr.StartSpan("s")()
	if tc.Len() != 0 || tc.Cap() != 0 || tc.Snapshot() != nil {
		t.Fatal("nil tracer not empty")
	}
	if _, ok := tc.Find("abc"); ok {
		t.Fatal("nil tracer found a trace")
	}
}

// TestTraceRingWraparound fills the ring past capacity and checks that
// exactly the newest Cap() traces survive, newest first.
func TestTraceRingWraparound(t *testing.T) {
	tc := NewTracer(4)
	var ids []string
	for i := 0; i < 10; i++ {
		ids = append(ids, tc.Start(fmt.Sprintf("t%d", i)).ID())
	}
	if tc.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", tc.Len())
	}
	snap := tc.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for i, s := range snap {
		// Newest first: t9, t8, t7, t6.
		if want := fmt.Sprintf("t%d", 9-i); s.Name != want {
			t.Fatalf("snapshot[%d] = %s, want %s", i, s.Name, want)
		}
	}
	// Overwritten traces are gone; retained ones are findable.
	if _, ok := tc.Find(ids[0]); ok {
		t.Fatal("overwritten trace still findable")
	}
	if _, ok := tc.Find(ids[9]); !ok {
		t.Fatal("newest trace not findable")
	}

	// Partial ring (no wraparound yet) snapshots only what exists.
	small := NewTracer(8)
	small.Start("only")
	if snap := small.Snapshot(); len(snap) != 1 || snap[0].Name != "only" {
		t.Fatalf("partial snapshot = %+v", snap)
	}
}

// TestTraceRingConcurrent races Start/Span against Snapshot/Find under
// -race: wraparound must not tear snapshots.
func TestTraceRingConcurrent(t *testing.T) {
	tc := NewTracer(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr := tc.Start("req")
				tr.StartSpan("work")()
			}
		}()
	}
	var readers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, s := range tc.Snapshot() {
						tc.Find(s.ID)
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if tc.Len() != 16 {
		t.Fatalf("ring len = %d, want 16", tc.Len())
	}
}

func TestTraceContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context carried a trace")
	}
	if ctx := NewContext(context.Background(), nil); FromContext(ctx) != nil {
		t.Fatal("nil trace stored in context")
	}
	tr := NewTracer(1).Start("x")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace not carried through context")
	}
}

func TestTracesHandler(t *testing.T) {
	tc := NewTracer(4)
	tr := tc.Start("http.predict")
	tr.StartSpan("device-execute")()
	srv := httptest.NewServer(TracesHandler(tc, tc, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Traces []TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Traces) != 1 {
		t.Fatalf("traces = %d, want 1 (dedup of identical tracers)", len(body.Traces))
	}
	if body.Traces[0].ID != tr.ID() || len(body.Traces[0].Spans) != 1 {
		t.Fatalf("trace = %+v", body.Traces[0])
	}
}

func TestPprofHandler(t *testing.T) {
	srv := httptest.NewServer(PprofHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
}

// TestPrepareCommit pins the two-phase trace lifecycle: a prepared trace
// records spans but occupies no ring slot until committed, so traces of
// rejected requests never evict retained ones.
func TestPrepareCommit(t *testing.T) {
	tr := NewTracer(4)
	committed := tr.Start("kept")
	committed.Span("work", time.Now(), time.Now())

	for i := 0; i < 100; i++ {
		p := tr.Prepare("rejected")
		p.Span("rejected", time.Now(), time.Now())
		// Never committed: must not touch the ring.
	}
	if got := tr.Len(); got != 1 {
		t.Fatalf("ring holds %d traces after 100 uncommitted prepares, want 1", got)
	}
	if snap := tr.Snapshot(); len(snap) != 1 || snap[0].Name != "kept" {
		t.Fatalf("snapshot = %+v, want the committed trace only", snap)
	}

	p := tr.Prepare("late")
	if p == nil || p.ID() == "" {
		t.Fatal("prepared trace is unusable before commit")
	}
	tr.Commit(p)
	if got := tr.Len(); got != 2 {
		t.Fatalf("ring holds %d traces after commit, want 2", got)
	}

	// Nil safety mirrors the rest of the package.
	var nilT *Tracer
	nilT.Commit(nilT.Prepare("x"))
}
