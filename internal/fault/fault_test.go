package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"eigenpro/internal/durable"
)

func TestDeterministicSchedule(t *testing.T) {
	// Same seed → identical fault sequence across runs.
	run := func() []bool {
		fs := Wrap(durable.OS{}, Config{Seed: 7, FailRate: 0.3})
		dir := t.TempDir()
		var failed []bool
		for i := 0; i < 40; i++ {
			err := fs.MkdirAll(filepath.Join(dir, "d"), 0o755)
			failed = append(failed, err != nil)
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d: unexpected error %v", i, err)
			}
		}
		return failed
	}
	a, b := run(), run()
	any := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d", i)
		}
		any = any || a[i]
	}
	if !any {
		t.Fatal("FailRate 0.3 over 40 ops injected nothing")
	}
}

func TestFailEvery(t *testing.T) {
	fs := Wrap(durable.OS{}, Config{FailEvery: 3})
	dir := t.TempDir()
	var errs int
	for i := 0; i < 9; i++ {
		if err := fs.MkdirAll(dir, 0o755); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("want ErrInjected, got %v", err)
			}
			errs++
		}
	}
	if errs != 3 {
		t.Fatalf("9 ops with FailEvery=3 injected %d errors, want 3", errs)
	}
}

func TestCrashTearsWriteAndKillsFS(t *testing.T) {
	dir := t.TempDir()
	inner := durable.OS{}
	// Crash on the 3rd operation: OpenFile (1), Write (2)... so set the
	// crash inside the write path of a sealed WriteFile.
	fs := Wrap(inner, Config{Seed: 42, CrashAfter: 2})
	path := filepath.Join(dir, "blob.bin")
	err := durable.WriteFile(fs, path, []byte("this payload will be torn mid-write"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("crash point did not latch")
	}
	// Everything after the crash fails.
	if err := fs.MkdirAll(dir, 0o755); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op: %v", err)
	}
	if _, err := fs.Stat(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash stat: %v", err)
	}
	// The final path never appeared (the rename never ran); at worst a
	// torn temp file remains — which the sealed reader must reject.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("crash published the final file: %v", err)
	}
	if fi, err := os.Stat(path + ".tmp"); err == nil && fi.Size() > 0 {
		if _, rerr := durable.ReadFile(durable.OS{}, path+".tmp"); !errors.Is(rerr, durable.ErrCorrupt) {
			t.Fatalf("torn temp file passed verification: %v", rerr)
		}
	}
}

func TestManualCrash(t *testing.T) {
	fs := Wrap(durable.OS{}, Config{})
	dir := t.TempDir()
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("pre-crash op failed: %v", err)
	}
	fs.Crash()
	if err := fs.MkdirAll(dir, 0o755); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if fs.Ops() == 0 {
		t.Fatal("op counter never advanced")
	}
}

func TestPassThroughWhenQuiet(t *testing.T) {
	// A zero config must behave exactly like the inner FS.
	fs := Wrap(durable.OS{}, Config{})
	dir := t.TempDir()
	path := filepath.Join(dir, "ok.bin")
	if err := durable.WriteFile(fs, path, []byte("payload")); err != nil {
		t.Fatalf("quiet write: %v", err)
	}
	got, err := durable.ReadFile(fs, path)
	if err != nil {
		t.Fatalf("quiet read: %v", err)
	}
	if string(got) != "payload" {
		t.Fatalf("payload = %q", got)
	}
}

func TestJournalSurvivesCrashPoint(t *testing.T) {
	// Append records through a fault FS until the crash point tears one,
	// then reopen through a clean FS: every record appended before the
	// crash replays intact, the torn tail is detected and repaired.
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	for crashAt := int64(3); crashAt < 24; crashAt += 4 {
		os.Remove(path)
		fs := Wrap(durable.OS{}, Config{Seed: crashAt, CrashAfter: crashAt})
		j, _, err := durable.OpenJournal(fs, path)
		if err != nil {
			// The crash landed inside OpenJournal itself; nothing durable
			// was promised, so a clean reopen must still work.
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("crashAt=%d open: %v", crashAt, err)
			}
			continue
		}
		acked := 0
		for i := 0; i < 50; i++ {
			if err := j.Append(map[string]int{"n": i}); err != nil {
				if !errors.Is(err, ErrCrashed) {
					t.Fatalf("crashAt=%d append %d: %v", crashAt, i, err)
				}
				break
			}
			acked++
		}
		_, rep, err := durable.OpenJournal(durable.OS{}, path)
		if err != nil {
			t.Fatalf("crashAt=%d reopen: %v", crashAt, err)
		}
		if len(rep.Records) < acked {
			t.Fatalf("crashAt=%d: %d acked appends but only %d replayed",
				crashAt, acked, len(rep.Records))
		}
	}
}
