// Package fault is a deterministic fault-injection harness for the
// durability layer: it wraps a durable.FS and injects errors, latency,
// and crash points into filesystem operations on a seeded schedule, so
// chaos tests can kill the job manager at arbitrary (but reproducible)
// moments and assert that recovery never loads corrupt state and never
// loses completed work.
//
// The injected crash mimics what a real kill -9 leaves on disk: the
// write that trips the crash point persists only a random prefix of its
// bytes (a torn write), and every operation after the crash fails — the
// process is "dead" as far as the wrapped filesystem is concerned. The
// test then reopens the state directory through a clean FS, exactly like
// a restarted process would.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"eigenpro/internal/durable"
)

// ErrInjected is the error returned by operations that the schedule
// chose to fail.
var ErrInjected = errors.New("fault: injected error")

// ErrCrashed is returned by every operation after the crash point has
// tripped: the simulated process is dead.
var ErrCrashed = errors.New("fault: crashed")

// Config selects the fault schedule. The zero value injects nothing.
type Config struct {
	// Seed makes the schedule reproducible; same seed, same faults.
	Seed int64
	// FailEvery fails every Nth operation with ErrInjected (0 disables).
	FailEvery int
	// FailRate fails each operation with this probability (0 disables).
	FailRate float64
	// CrashAfter trips the crash point on the Nth operation (0 disables):
	// a write in flight is torn, and all later operations return
	// ErrCrashed.
	CrashAfter int64
	// MaxLatency sleeps each operation a seeded-random duration in
	// [0, MaxLatency) (0 disables).
	MaxLatency time.Duration
}

// FS wraps an inner durable.FS with the fault schedule.
type FS struct {
	inner durable.FS
	cfg   Config

	mu      sync.Mutex
	rng     *rand.Rand
	ops     int64
	crashed bool
}

// Wrap builds a fault-injecting filesystem around inner.
func Wrap(inner durable.FS, cfg Config) *FS {
	return &FS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Ops returns how many operations have been issued (including failed
// ones).
func (f *FS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash point has tripped.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Crash trips the crash point manually: every subsequent operation
// returns ErrCrashed.
func (f *FS) Crash() {
	f.mu.Lock()
	f.crashed = true
	f.mu.Unlock()
}

// step advances the operation counter and decides this operation's fate:
// error to inject (nil = proceed), and whether this very operation is the
// crash point (its write should tear).
func (f *FS) step() (err error, crashing bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed, false
	}
	f.ops++
	if d := f.cfg.MaxLatency; d > 0 {
		sleep := time.Duration(f.rng.Int63n(int64(d)))
		f.mu.Unlock()
		time.Sleep(sleep)
		f.mu.Lock()
	}
	if f.cfg.CrashAfter > 0 && f.ops >= f.cfg.CrashAfter {
		f.crashed = true
		return nil, true
	}
	if f.cfg.FailEvery > 0 && f.ops%int64(f.cfg.FailEvery) == 0 {
		return fmt.Errorf("%w (op %d)", ErrInjected, f.ops), false
	}
	if f.cfg.FailRate > 0 && f.rng.Float64() < f.cfg.FailRate {
		return fmt.Errorf("%w (op %d)", ErrInjected, f.ops), false
	}
	return nil, false
}

// tearFraction picks how much of a crash-point write survives.
func (f *FS) tearFraction() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64()
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (durable.File, error) {
	err, crashing := f.step()
	if err != nil {
		return nil, err
	}
	inner, ierr := f.inner.OpenFile(name, flag, perm)
	if ierr != nil {
		return nil, ierr
	}
	return &file{fs: f, inner: inner, crashNext: crashing}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	err, crashing := f.step()
	if err != nil {
		return err
	}
	if crashing {
		// The crash landed between the temp write and the rename: the
		// rename never happens.
		return ErrCrashed
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	err, crashing := f.step()
	if err != nil {
		return err
	}
	if crashing {
		return ErrCrashed
	}
	return f.inner.Remove(name)
}

func (f *FS) RemoveAll(path string) error {
	err, crashing := f.step()
	if err != nil {
		return err
	}
	if crashing {
		return ErrCrashed
	}
	return f.inner.RemoveAll(path)
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	err, crashing := f.step()
	if err != nil {
		return err
	}
	if crashing {
		return ErrCrashed
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FS) ReadDir(name string) ([]os.DirEntry, error) {
	err, crashing := f.step()
	if err != nil || crashing {
		if err == nil {
			err = ErrCrashed
		}
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FS) Stat(name string) (os.FileInfo, error) {
	err, crashing := f.step()
	if err != nil || crashing {
		if err == nil {
			err = ErrCrashed
		}
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *FS) Truncate(name string, size int64) error {
	err, crashing := f.step()
	if err != nil {
		return err
	}
	if crashing {
		return ErrCrashed
	}
	return f.inner.Truncate(name, size)
}

// file wraps an open handle; its Write/Sync/Close also count as
// operations and respect the schedule, and a crash point trips a torn
// write: only a seeded-random prefix of the buffer reaches the inner
// file before the error.
type file struct {
	fs        *FS
	inner     durable.File
	crashNext bool
}

func (h *file) Read(p []byte) (int, error) {
	if err, crashing := h.fs.step(); err != nil || crashing {
		if err == nil {
			err = ErrCrashed
		}
		return 0, err
	}
	return h.inner.Read(p)
}

func (h *file) Write(p []byte) (int, error) {
	err, crashing := h.fs.step()
	if h.crashNext {
		crashing, err = true, nil
		h.fs.Crash()
	}
	if err != nil {
		return 0, err
	}
	if crashing {
		// Torn write: a random prefix lands, then the "process dies".
		n := int(float64(len(p)) * h.fs.tearFraction())
		h.inner.Write(p[:n])
		h.inner.Sync()
		return n, ErrCrashed
	}
	return h.inner.Write(p)
}

func (h *file) Sync() error {
	err, crashing := h.fs.step()
	if err != nil {
		return err
	}
	if crashing {
		return ErrCrashed
	}
	return h.inner.Sync()
}

func (h *file) Close() error {
	// Close always reaches the inner file so handles are not leaked, but
	// still reports the scheduled fault.
	err, crashing := h.fs.step()
	cerr := h.inner.Close()
	if err != nil {
		return err
	}
	if crashing {
		return ErrCrashed
	}
	return cerr
}
