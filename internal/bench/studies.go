package bench

import (
	"fmt"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/data"
	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
	"eigenpro/internal/metrics"
	"eigenpro/internal/preprocess"
)

// PCAStudy regenerates the paper's §5.5 dimensionality-reduction result:
// training on PCA-reduced features cuts the per-epoch cost roughly in
// proportion to (d+l) while barely moving the test error (the paper's
// ImageNet example: 1536 → 500 components costs < 0.2% accuracy).
func PCAStudy(scale Scale) (*Report, error) {
	dev := experimentDevice()
	n := scale.pick(500, 1200, 3000)
	ds := data.ImageNetFeaturesLike(n, 51)
	kern := kernel.Gaussian{Sigma: 8}
	train, test := ds.Split(0.8, 53)
	epochs := scale.pick(3, 4, 6)
	sub := scale.pick(200, 350, 800)

	rep := &Report{
		ID:     "pca",
		Title:  "PCA dimensionality reduction: error vs per-epoch cost (ImageNet-features-like)",
		Header: []string{"features", "test error", "ops/iter", "sim time/epoch", "wall time/epoch"},
	}
	run := func(name string, trX, teX *mat.Dense) error {
		res, err := core.Train(core.Config{
			Kernel: kern, Device: dev, Method: core.MethodEigenPro2,
			S: sub, Epochs: epochs, Seed: 59,
		}, trX, train.Y)
		if err != nil {
			return err
		}
		errRate := metrics.ClassificationError(res.Model.Predict(teX), test.Labels)
		rep.AddRow(name, fmtPct(errRate), fmt.Sprintf("%.3g", res.OpsPerIter),
			fmtDur(res.SimTime/time.Duration(res.Epochs)),
			fmtDur(res.WallTime/time.Duration(res.Epochs)))
		return nil
	}
	if err := run(fmt.Sprintf("full d=%d", ds.Dim()), train.X, test.X); err != nil {
		return nil, fmt.Errorf("bench: pca full: %w", err)
	}
	k := ds.Dim() / 4
	pca, err := preprocess.FitPCA(train.X, k)
	if err != nil {
		return nil, fmt.Errorf("bench: pca fit: %w", err)
	}
	if err := run(fmt.Sprintf("pca d=%d", k), pca.Transform(train.X), pca.Transform(test.X)); err != nil {
		return nil, fmt.Errorf("bench: pca reduced: %w", err)
	}
	rep.AddNote("operation count scales with (d+l); at small scale both workloads fit in one device wave, so the saving shows in ops and wall time")
	return rep, nil
}

// KernelRobustness regenerates the paper's §5.5 kernel-choice observations:
// across a bandwidth sweep the Laplacian kernel's test error varies less
// than the Gaussian's, and its critical batch size m* is typically larger
// (better parallelization).
func KernelRobustness(scale Scale) (*Report, error) {
	dev := experimentDevice()
	n := scale.pick(500, 1200, 3000)
	// Overlapping clusters and heavier noise so that test error is
	// sensitive to the bandwidth choice.
	ds := data.Generate(data.GenConfig{
		Name: "noisy-image-like", N: n, Dim: 48, Classes: 10,
		LatentDim: 12, ClustersPerClass: 3, ClusterSpread: 0.9,
		Decay: 1.0, Noise: 0.25, Range01: true, Seed: 61,
	})
	train, test := ds.Split(0.8, 63)
	epochs := scale.pick(4, 6, 8)
	sub := scale.pick(200, 350, 800)

	rep := &Report{
		ID:     "robustness",
		Title:  "bandwidth robustness and m*: Laplacian vs Gaussian (§5.5)",
		Header: []string{"sigma scale", "gaussian err", "gaussian m*", "laplacian err", "laplacian m*"},
	}
	base := 1.2
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		row := []string{fmt.Sprintf("%.2fx", mult)}
		for _, mk := range []func(float64) kernel.Func{
			func(s float64) kernel.Func { return kernel.Gaussian{Sigma: s} },
			// For matched effective widths, σ_laplace ≈ 1.5·σ_gauss
			// (distance vs squared-distance argument).
			func(s float64) kernel.Func { return kernel.Laplacian{Sigma: s * 1.5} },
		} {
			kern := mk(base * mult)
			sp, err := core.EstimateSpectrum(kern, train.X, sub, 32, 67)
			if err != nil {
				return nil, fmt.Errorf("bench: robustness: %w", err)
			}
			res, err := core.Train(core.Config{
				Kernel: kern, Device: dev, Method: core.MethodEigenPro2,
				S: sub, Epochs: epochs, Seed: 67, Spectrum: sp,
			}, train.X, train.Y)
			if err != nil {
				return nil, fmt.Errorf("bench: robustness %s: %w", kern.Name(), err)
			}
			errRate := metrics.ClassificationError(res.Model.Predict(test.X), test.Labels)
			row = append(row, fmtPct(errRate), fmt.Sprintf("%.1f", core.MStar(sp)))
		}
		rep.AddRow(row...)
	}
	rep.AddNote("Laplacian bandwidths are scaled ×1.5 relative to Gaussian (distance vs squared-distance argument)")
	return rep, nil
}

// All runs every table and figure runner at the given scale, in paper
// order.
func All(scale Scale) ([]*Report, error) {
	var out []*Report
	fig2, err := Figure2(scale)
	if err != nil {
		return nil, err
	}
	out = append(out, fig2...)
	out = append(out, Figure3a(scale), Figure3b(scale))
	for _, f := range []func(Scale) (*Report, error){
		Table1, Table2, Table3, Table4, Acceleration, PCAStudy, KernelRobustness,
		AblationQ, AblationS, MultiGPU, ServingThroughput, OverloadServing,
		TrainingJobs, ObsOverhead,
	} {
		r, err := f(scale)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
