package bench

import (
	"strings"
	"testing"
)

// Smoke tests for every remaining runner at Small scale: each must produce
// a non-empty, renderable report. Gated behind -short for quick edit
// cycles.

func runReport(t *testing.T, name string, f func(Scale) (*Report, error), minRows int) {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := f(Small)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(rep.Rows) < minRows {
		t.Fatalf("%s: only %d rows", name, len(rep.Rows))
	}
	if !strings.Contains(rep.String(), rep.ID) {
		t.Fatalf("%s: rendering missing id", name)
	}
}

func TestTable3Runs(t *testing.T)       { runReport(t, "table3", Table3, 4) }
func TestAccelerationRuns(t *testing.T) { runReport(t, "acceleration", Acceleration, 2) }
func TestPCAStudyRuns(t *testing.T)     { runReport(t, "pca", PCAStudy, 2) }
func TestRobustnessRuns(t *testing.T)   { runReport(t, "robustness", KernelRobustness, 5) }
func TestAblationQRuns(t *testing.T)    { runReport(t, "ablation-q", AblationQ, 2) }
func TestAblationSRuns(t *testing.T)    { runReport(t, "ablation-s", AblationS, 3) }
func TestMultiGPURuns(t *testing.T)     { runReport(t, "multigpu", MultiGPU, 4) }

func TestAblationQShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := AblationQ(Small)
	if err != nil {
		t.Fatal(err)
	}
	// Every depth at or above Eq. 7's choice must converge.
	for _, row := range rep.Rows[1:] {
		if row[3] != "true" {
			t.Fatalf("depth %s did not converge", row[0])
		}
	}
}

func TestMultiGPUShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := MultiGPU(Small)
	if err != nil {
		t.Fatal(err)
	}
	// m_max must be non-decreasing in device count.
	prev := ""
	for _, row := range rep.Rows {
		if prev != "" && len(row[1]) < len(prev) {
			t.Fatalf("m_max shrank: %s -> %s", prev, row[1])
		}
		prev = row[1]
	}
}
