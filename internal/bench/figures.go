package bench

import (
	"fmt"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/device"
)

// batchSweep returns a geometric batch-size ladder 1,2,4,... capped at and
// including mmax.
func batchSweep(mmax int) []int {
	var out []int
	for m := 1; m < mmax; m *= 4 {
		out = append(out, m)
	}
	return append(out, mmax)
}

// Figure2 regenerates the paper's Figure 2 (and the schematic Figure 1):
// simulated GPU time to reach a fixed train-MSE threshold as a function of
// batch size, for plain SGD, original EigenPro, and EigenPro 2.0, on
// MNIST-like and TIMIT-like workloads. The expected shape: SGD and
// EigenPro 1.0 stop improving beyond the small critical batch m*(k), while
// EigenPro 2.0 keeps accelerating up to m_max.
func Figure2(scale Scale) ([]*Report, error) {
	dev := experimentDevice()
	epochCap := scale.pick(40, 60, 80)
	sub := scale.pick(256, 400, 800)
	var reports []*Report
	for _, wl := range figure2Workloads(scale) {
		n, d, l := wl.ds.N(), wl.ds.Dim(), wl.ds.LabelDim()
		mmax := dev.MaxBatch(n, d, l)
		threshold := 2e-3

		sp, err := core.EstimateSpectrum(wl.kern, wl.ds.X, sub, 64, 7)
		if err != nil {
			return nil, fmt.Errorf("bench: figure2 %s: %w", wl.name, err)
		}
		rep := &Report{
			ID:     "figure2",
			Title:  fmt.Sprintf("time to train mse < %g vs batch size (%s, n=%d)", threshold, wl.name, n),
			Header: []string{"batch", "sgd time", "sgd epochs", "eigenpro1 time", "ep1 epochs", "eigenpro2 time", "ep2 epochs"},
		}
		rep.AddNote("kernel %s; m*(k) = %.1f; m_max = %d; epoch cap %d",
			wl.kern.Name(), core.MStar(sp), mmax, epochCap)

		for _, m := range batchSweep(mmax) {
			row := []string{fmt.Sprintf("%d", m)}
			for _, method := range []core.Method{core.MethodSGD, core.MethodEigenPro1, core.MethodEigenPro2} {
				res, err := core.Train(core.Config{
					Kernel: wl.kern, Device: dev, Method: method,
					S: sub, QMax: 64, Batch: m,
					Epochs: epochCap, StopTrainMSE: threshold,
					Seed: 11, Spectrum: sp,
				}, wl.ds.X, wl.ds.Y)
				if err != nil {
					return nil, fmt.Errorf("bench: figure2 %s %v m=%d: %w", wl.name, method, m, err)
				}
				if res.Converged {
					row = append(row, fmtDur(res.SimTime), fmt.Sprintf("%d", res.Epochs))
				} else {
					row = append(row, ">"+fmtDur(res.SimTime), fmt.Sprintf(">%d", res.Epochs))
				}
			}
			rep.AddRow(row...)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// Figure3a regenerates the paper's Figure 3a: simulated time per training
// iteration versus batch size on the actual (parallel) device, an ideal
// infinitely-parallel device, and a sequential device, for a TIMIT-shaped
// workload. The parallel curve is flat until the wave capacity is reached
// (near m ≈ 1000 for this device/workload pairing) and linear afterwards.
func Figure3a(scale Scale) *Report {
	// Pure device-model experiment: n can stay at paper scale.
	n, d, l := 100000, 440, 48
	dev := &device.Device{
		Name:           "sim-gpu-large",
		ParallelOps:    5e10,
		MemoryFloats:   2e9,
		WaveTime:       2 * time.Millisecond,
		LaunchOverhead: 150 * time.Microsecond,
	}
	rep := &Report{
		ID:     "figure3a",
		Title:  fmt.Sprintf("time per iteration vs batch size (TIMIT-shaped, n=%d, d=%d)", n, d),
		Header: []string{"batch", "parallel (actual)", "ideal", "sequential"},
	}
	knee := dev.BatchCompute(n, d, l)
	rep.AddNote("device capacity C_G = %.2g ops/wave; compute-saturating batch m_C = %d", dev.ParallelOps, knee)
	ideal := dev.WithMode(device.Ideal)
	seq := dev.WithMode(device.Sequential)
	for m := 1; m <= 16384; m *= 2 {
		ops := core.SGDIterOps(n, m, d, l)
		rep.AddRow(
			fmt.Sprintf("%d", m),
			fmtDur(dev.IterationTime(ops)),
			fmtDur(ideal.IterationTime(ops)),
			fmtDur(seq.IterationTime(ops)),
		)
	}
	_ = scale
	return rep
}

// Figure3b regenerates the paper's Figure 3b: simulated GPU time per
// training epoch as a function of batch size, for several model/train-set
// sizes n. Larger batches amortize per-iteration launch overhead (Amdahl's
// law) until the device saturates; the speedup is consistent across n.
func Figure3b(scale Scale) *Report {
	d, l := 440, 48
	dev := &device.Device{
		Name:           "sim-gpu-large",
		ParallelOps:    5e10,
		MemoryFloats:   4e9,
		WaveTime:       2 * time.Millisecond,
		LaunchOverhead: 150 * time.Microsecond,
	}
	sizes := []int{25000, 50000, 100000, 200000}
	rep := &Report{
		ID:     "figure3b",
		Title:  "GPU time per epoch vs batch size across model sizes n",
		Header: []string{"batch"},
	}
	for _, n := range sizes {
		rep.Header = append(rep.Header, fmt.Sprintf("n=%d", n))
	}
	for m := 16; m <= 16384; m *= 2 {
		row := []string{fmt.Sprintf("%d", m)}
		for _, n := range sizes {
			iters := (n + m - 1) / m
			perIter := dev.IterationTime(core.SGDIterOps(n, m, d, l))
			row = append(row, fmtDur(time.Duration(iters)*perIter))
		}
		rep.AddRow(row...)
	}
	rep.AddNote("epoch time = ceil(n/m) × per-iteration time; flattening marks full device utilization")
	_ = scale
	return rep
}
