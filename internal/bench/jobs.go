package bench

import (
	"context"
	"fmt"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/data"
	"eigenpro/internal/jobs"
	"eigenpro/internal/kernel"
	"eigenpro/internal/serve"
)

// TrainingJobsPoint is one measured cell of the training-jobs study: a
// fixed batch of submitted jobs run under one worker-pool size.
type TrainingJobsPoint struct {
	// Workers is the job-manager pool size.
	Workers int
	// Jobs is the number of submitted training jobs.
	Jobs int
	// Wall is the submit-to-all-done wall time.
	Wall time.Duration
	// JobsPerSec is Jobs / Wall.
	JobsPerSec float64
	// MeanTimeToServable / MaxTimeToServable measure submit → registered
	// (the moment the model answers predictions) per job.
	MeanTimeToServable time.Duration
	MaxTimeToServable  time.Duration
}

// trainingJobsPoint submits count identical-shape jobs against a manager
// with the given pool size and waits for all of them to become servable.
func trainingJobsPoint(workers, count, n, epochs, sub int) (TrainingJobsPoint, error) {
	srv := serve.New(serve.Config{Workers: 1, Timeout: -1})
	defer srv.Close()
	mgr := jobs.New(jobs.Config{Workers: workers, QueueDepth: count + 1, Registrar: srv})
	defer mgr.Close()

	start := time.Now()
	ids := make([]string, 0, count)
	for i := 0; i < count; i++ {
		ds := data.SUSYLike(n, int64(40+i))
		id, err := mgr.Submit(jobs.Spec{
			Name: fmt.Sprintf("m%d", i),
			Config: core.Config{
				Kernel: kernel.Gaussian{Sigma: 3},
				Epochs: epochs,
				S:      sub,
				Seed:   int64(40 + i),
			},
			X: ds.X,
			Y: ds.Y,
		})
		if err != nil {
			return TrainingJobsPoint{}, err
		}
		ids = append(ids, id)
	}
	p := TrainingJobsPoint{Workers: workers, Jobs: count}
	var totalServable time.Duration
	for _, id := range ids {
		info, err := mgr.Wait(id)
		if err != nil {
			return TrainingJobsPoint{}, err
		}
		if info.State != jobs.StateDone || !info.Servable {
			return TrainingJobsPoint{}, fmt.Errorf("bench: job %s ended %q (%s)", id, info.State, info.Error)
		}
		ts := info.Finished.Sub(info.Submitted)
		totalServable += ts
		if ts > p.MaxTimeToServable {
			p.MaxTimeToServable = ts
		}
	}
	p.Wall = time.Since(start)
	p.MeanTimeToServable = totalServable / time.Duration(count)
	if s := p.Wall.Seconds(); s > 0 {
		p.JobsPerSec = float64(count) / s
	}
	// The loop's closing guarantee: every trained model answers a
	// prediction with no manual registration step.
	query := data.SUSYLike(4, 99).X.RowView(0)
	for i := range ids {
		if _, err := srv.Predict(context.Background(), fmt.Sprintf("m%d", i), query); err != nil {
			return TrainingJobsPoint{}, fmt.Errorf("bench: trained model m%d not servable: %w", i, err)
		}
	}
	return p, nil
}

// TrainingJobsStudy measures training-job throughput and time-to-servable
// across worker-pool sizes: the same batch of jobs, pools of 1, 2, and 4
// workers.
func TrainingJobsStudy(scale Scale) ([]TrainingJobsPoint, error) {
	count := scale.pick(4, 6, 8)
	n := scale.pick(200, 400, 800)
	epochs := scale.pick(2, 3, 4)
	sub := scale.pick(48, 64, 128)
	var out []TrainingJobsPoint
	for _, workers := range []int{1, 2, 4} {
		p, err := trainingJobsPoint(workers, count, n, epochs, sub)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// TrainingJobs renders TrainingJobsStudy as a report: jobs/sec and
// submit-to-servable latency per worker-pool size, with the throughput
// speedup over the single-worker pool.
func TrainingJobs(scale Scale) (*Report, error) {
	points, err := TrainingJobsStudy(scale)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "jobs",
		Title: "async training jobs: throughput and time-to-servable vs worker-pool size",
		Header: []string{"workers", "jobs", "wall", "jobs/s",
			"mean t-to-servable", "max t-to-servable", "speedup"},
	}
	base := points[0].JobsPerSec
	for _, p := range points {
		speedup := 0.0
		if base > 0 {
			speedup = p.JobsPerSec / base
		}
		rep.AddRow(fmt.Sprint(p.Workers), fmt.Sprint(p.Jobs), fmtDur(p.Wall),
			fmt.Sprintf("%.2f", p.JobsPerSec), fmtDur(p.MeanTimeToServable),
			fmtDur(p.MaxTimeToServable), fmt.Sprintf("%.2fx", speedup))
	}
	rep.AddNote("each job trains a SUSY-like workload and auto-registers into the serving registry; " +
		"time-to-servable is submit → model answering predictions, no manual deployment step")
	rep.AddNote("training itself parallelizes across cores, so job-level workers mainly overlap " +
		"the serial sections (spectrum estimation, tail batches) and queueing delay")
	return rep, nil
}
