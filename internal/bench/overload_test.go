package bench

import "testing"

// TestOverloadServingRuns checks the overload study end to end and the
// PR's acceptance criterion: under 2x saturation with 25% client
// cancellation, mean batch occupancy stays at or above 0.8*m_max and
// canceled requests charge zero device ops (every executed row was a
// delivered response).
func TestOverloadServingRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	points, err := OverloadStudy(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("want 3 points, got %d", len(points))
	}

	var canceled *OverloadPoint
	for i := range points {
		if points[i].CancelPct == 25 && !points[i].Shed {
			canceled = &points[i]
		}
	}
	if canceled == nil {
		t.Fatalf("missing the 25%%-cancellation point: %+v", points)
	}
	if canceled.Abandoned == 0 {
		t.Fatal("no requests were abandoned at 25% client cancellation")
	}
	if canceled.Delivered == 0 || canceled.Goodput <= 0 {
		t.Fatalf("no goodput under overload: %+v", *canceled)
	}
	// The paper's m_max argument under overload: saturation must produce
	// full waves even while the queue carries canceled corpses.
	if floor := 0.8 * float64(canceled.MaxBatch); canceled.MeanOccupancy < floor {
		t.Fatalf("mean occupancy %.1f below 0.8*m_max = %.1f at 2x saturation with cancellation",
			canceled.MeanOccupancy, floor)
	}
	// Cancellation propagation: a canceled request must never reach the
	// device, so the rows executed (occupancy histogram mass) are exactly
	// the delivered responses — zero device ops charged to canceled work.
	if canceled.ExecutedRows != canceled.Delivered {
		t.Fatalf("executed %d rows but delivered %d responses: canceled requests reached the device",
			canceled.ExecutedRows, canceled.Delivered)
	}

	// The clean baseline must not be worse.
	if base := points[0]; base.MeanOccupancy < 0.8*float64(base.MaxBatch) {
		t.Fatalf("baseline occupancy %.1f below 0.8*m_max", base.MeanOccupancy)
	}

	rep, err := OverloadServing(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("report rows = %d, want 3", len(rep.Rows))
	}
}
