package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/data"
	"eigenpro/internal/obs"
	"eigenpro/internal/obs/slo"
	"eigenpro/internal/serve"
)

// obsSampleEvery is the instrumented mode's wide-event sampling rate:
// 1-in-N ok events are kept, matching a production head+tail-sampling
// deployment while still exercising the emit path on every request.
const obsSampleEvery = 8

// ObsOverheadPoint is one measured cell of the observability-overhead
// study: the serving hot path driven with instrumentation minimized or
// maximized.
type ObsOverheadPoint struct {
	// Instrumented is false for the baseline (tracing disabled, events
	// disabled, no concurrent scrapes) and true for the worst case (every
	// request traced with a latency exemplar, a wide event emitted per
	// request into a sinked log, /metrics rendered continuously in
	// OpenMetrics form during the load).
	Instrumented bool
	// Requests is the number of completed predictions.
	Requests int64
	// WallThroughput is requests per wall-clock second.
	WallThroughput float64
	// Scrapes counts /metrics expositions rendered during the run (0 for
	// the baseline).
	Scrapes int64
	// EventsEmitted and EventsDropped count the wide events kept in (and
	// sampled out of) the event ring (0 for the baseline).
	EventsEmitted, EventsDropped uint64
	// SLOTicks counts burn-rate evaluation passes run during the load and
	// SLOEvalCost their cumulative wall time (0 for the baseline, whose
	// evaluator is absent); SLOEvalCost/SLOTicks is the per-tick cost of
	// the judgment layer.
	SLOTicks    uint64
	SLOEvalCost time.Duration
}

// runObsPoint drives the serving hot path once. Instrumented mode traces
// every request (landing per-bucket latency exemplars), emits a wide
// event per request into a log sampling ok outcomes 1-in-obsSampleEvery
// with a JSON-lines sink attached, renders the OpenMetrics exposition
// (exemplars included) every millisecond for the duration — orders of
// magnitude more often than any real scraper, but still paced: an unpaced
// busy loop would measure CPU theft by the scraper goroutine, not
// instrumentation cost on the request path — and runs a live SLO
// burn-rate evaluator (availability + latency objectives polling the
// serving registry every 10ms, 100x a production cadence) with an armed
// flight recorder behind it. The baseline disables tracing and event
// logging (the metric counters themselves are always on: they are single
// atomics and cannot be unwired).
func runObsPoint(m *core.Model, clients, perClient int, instrumented bool) (ObsOverheadPoint, error) {
	cfg := serve.Config{
		QueueDepth: clients*perClient + 1,
		Workers:    1,
		MaxLatency: time.Millisecond,
		Timeout:    -1,
		TraceEvery: -1,
	}
	if instrumented {
		cfg.TraceEvery = 1
		cfg.Events = obs.NewEventLog(0)
		cfg.Events.SetSampleEvery(obsSampleEvery)
		cfg.Events.SetSink(io.Discard, obs.LevelInfo)
	}
	s := serve.New(cfg)
	defer s.Close()
	if err := s.Register("m", m); err != nil {
		return ObsOverheadPoint{}, err
	}

	// The judgment layer rides along in instrumented mode: objectives are
	// generous enough that healthy serving never breaches them, so the
	// recorder stays armed (the trigger path is two atomic loads inside the
	// evaluator, zero on the request path) without a capture perturbing the
	// measurement mid-run.
	var ev *slo.Evaluator
	if instrumented {
		dir, err := os.MkdirTemp("", "eigenpro-bench-flight")
		if err != nil {
			return ObsOverheadPoint{}, err
		}
		defer os.RemoveAll(dir)
		fr, err := obs.NewFlightRecorder(obs.FlightConfig{
			Dir:        dir,
			CPUProfile: -1, // a capture mid-bench must not sleep 5s inside the measurement
			Events:     cfg.Events,
			Registries: []*obs.Registry{s.Metrics()},
		})
		if err != nil {
			return ObsOverheadPoint{}, err
		}
		ev, err = slo.New(slo.Config{
			Objectives: []slo.Objective{
				{Kind: slo.Availability, Target: 0.999},
				{Kind: slo.Latency, Target: 0.99, LatencyP99: time.Minute},
			},
			Window:     5 * time.Second,
			Resolution: 10 * time.Millisecond,
			Source:     s.Metrics(),
			Events:     cfg.Events,
			Flight:     fr,
		})
		if err != nil {
			return ObsOverheadPoint{}, err
		}
		defer ev.Close()
	}

	var scrapes int64
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	if instrumented {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopScrape:
					return
				case <-tick.C:
					s.Metrics().WriteOpenMetrics(io.Discard)
					scrapes++
				}
			}
		}()
	}

	queries := data.MNISTLike(256, 53).X
	start := time.Now()
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				row := queries.RowView((c*perClient + i) % queries.Rows)
				if _, err := s.Predict(context.Background(), "m", row); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	close(stopScrape)
	scrapeWG.Wait()
	for _, err := range errs {
		if err != nil {
			return ObsOverheadPoint{}, err
		}
	}
	st := s.Stats()
	p := ObsOverheadPoint{
		Instrumented:  instrumented,
		Requests:      st.Requests,
		Scrapes:       scrapes,
		EventsEmitted: cfg.Events.Emitted(),
		EventsDropped: cfg.Events.Dropped(),
		SLOTicks:      ev.Ticks(),
		SLOEvalCost:   ev.EvalCost(),
	}
	if sec := wall.Seconds(); sec > 0 {
		p.WallThroughput = float64(st.Requests) / sec
	}
	return p, nil
}

// ObsOverheadStudy measures the serving hot path with instrumentation
// minimized vs maximized. Points come in (baseline, instrumented) pairs;
// attempts controls how many pairs are measured (overhead this small is
// noise-dominated, so consumers should take the best pair).
func ObsOverheadStudy(scale Scale, attempts int) ([]ObsOverheadPoint, error) {
	centers := scale.pick(300, 800, 2000)
	perClient := scale.pick(12, 24, 48)
	clients := 64
	m := servingModel(centers)
	var out []ObsOverheadPoint
	for a := 0; a < attempts; a++ {
		for _, instrumented := range []bool{false, true} {
			p, err := runObsPoint(m, clients, perClient, instrumented)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// OverheadFraction returns the relative throughput cost of instrumentation
// for a (baseline, instrumented) pair: 0.05 means the instrumented run was
// 5% slower. Negative values (noise) mean it measured faster.
func OverheadFraction(base, inst ObsOverheadPoint) float64 {
	if base.WallThroughput <= 0 {
		return 0
	}
	return (base.WallThroughput - inst.WallThroughput) / base.WallThroughput
}

// ObsOverhead renders ObsOverheadStudy as a report: the serving hot path
// with tracing and event logging off vs every request traced (with
// latency exemplars), a wide event per request, continuous OpenMetrics
// scraping, and a live SLO burn-rate evaluator with an armed flight
// recorder.
func ObsOverhead(scale Scale) (*Report, error) {
	points, err := ObsOverheadStudy(scale, 3)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "obs-overhead",
		Title:  "observability overhead on the serving hot path (tracing + exemplars + wide events + continuous OpenMetrics scraping + SLO evaluation with an armed flight recorder)",
		Header: []string{"attempt", "mode", "requests", "wall req/s", "scrapes", "events", "dropped", "slo eval/tick", "overhead"},
	}
	best := 1.0
	for i := 0; i+1 < len(points); i += 2 {
		base, inst := points[i], points[i+1]
		ov := OverheadFraction(base, inst)
		if ov < best {
			best = ov
		}
		rep.AddRow(fmt.Sprint(i/2+1), "baseline", fmt.Sprint(base.Requests),
			fmt.Sprintf("%.0f", base.WallThroughput), "0", "0", "0", "", "")
		rep.AddRow(fmt.Sprint(i/2+1), "instrumented", fmt.Sprint(inst.Requests),
			fmt.Sprintf("%.0f", inst.WallThroughput), fmt.Sprint(inst.Scrapes),
			fmt.Sprint(inst.EventsEmitted), fmt.Sprint(inst.EventsDropped),
			fmtEvalPerTick(inst), fmtPct(ov))
	}
	rep.AddNote("best-of-%d overhead: %s (acceptance bound: < 5%%)", len(points)/2, fmtPct(best))
	rep.AddNote("baseline disables tracing and event logging; counters/histograms are lock-free atomics and always on")
	rep.AddNote("instrumented mode samples ok events 1-in-%d (head+tail: warn/error always kept); dropped counts the sampled-out", obsSampleEvery)
	rep.AddNote("slo eval/tick is the wall cost of one burn-rate pass (availability + latency objectives at a 10ms cadence, 100x production)")
	return rep, nil
}

// fmtEvalPerTick renders the per-tick SLO evaluation cost of an
// instrumented point ("" when the evaluator never ticked).
func fmtEvalPerTick(p ObsOverheadPoint) string {
	if p.SLOTicks == 0 {
		return ""
	}
	return (p.SLOEvalCost / time.Duration(p.SLOTicks)).Round(100 * time.Nanosecond).String()
}
