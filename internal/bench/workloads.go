package bench

import (
	"eigenpro/internal/data"
	"eigenpro/internal/device"
	"eigenpro/internal/kernel"
)

// workload bundles a dataset with the kernel the experiments use on it
// (the analogue of the paper's per-dataset kernel/bandwidth selection in
// Table 4, chosen once by small-scale cross-validation on the synthetic
// generators).
type workload struct {
	name   string
	ds     *data.Dataset
	kern   kernel.Func
	epochs int // paper-style small epoch budget for Table 2
}

// table2Workloads returns the scaled stand-ins for the paper's Table 2
// datasets (MNIST, TIMIT, ImageNet features, SUSY).
func table2Workloads(scale Scale) []workload {
	n := scale.pick(400, 1200, 4000)
	return []workload{
		{"mnist-like", data.MNISTLike(n, 21), kernel.Gaussian{Sigma: 5}, 4},
		{"timit-like", data.TIMITLike(n, 22), kernel.Laplacian{Sigma: 15}, 3},
		{"imagenet-feat-like", data.ImageNetFeaturesLike(n, 23), kernel.Gaussian{Sigma: 8}, 2},
		{"susy-like", data.SUSYLike(n, 24), kernel.Gaussian{Sigma: 4}, 2},
	}
}

// table3Workloads returns the scaled stand-ins for the paper's Table 3
// ("interactive training") datasets.
func table3Workloads(scale Scale) []workload {
	n := scale.pick(300, 700, 2000)
	return []workload{
		{"timit-like", data.TIMITLike(n, 31), kernel.Laplacian{Sigma: 15}, 6},
		{"svhn-like", data.SVHNLike(n, 32), kernel.Gaussian{Sigma: 6}, 6},
		{"mnist-like", data.MNISTLike(n, 33), kernel.Gaussian{Sigma: 5}, 6},
		{"cifar10-like", data.CIFAR10Like(n, 34), kernel.Gaussian{Sigma: 6}, 6},
	}
}

// figure2Workloads returns reduced-dimension convergence workloads for the
// batch-size sweeps of Figure 2. Dimension is shrunk (shape of the sweep
// depends only on the kernel spectrum, not on d) so the sweep finishes on
// one CPU core.
func figure2Workloads(scale Scale) []workload {
	n := scale.pick(500, 1200, 3000)
	mnist := data.Generate(data.GenConfig{
		Name: "mnist-like-reduced", N: n, Dim: 48, Classes: 10,
		LatentDim: 12, ClustersPerClass: 2, ClusterSpread: 0.3,
		Decay: 1.2, Noise: 0.03, Range01: true, Seed: 41,
	})
	timit := data.Generate(data.GenConfig{
		Name: "timit-like-reduced", N: n, Dim: 64, Classes: 12,
		LatentDim: 16, ClustersPerClass: 2, ClusterSpread: 0.45,
		Decay: 0.8, Noise: 0.1, Range01: false, Seed: 42,
	})
	return []workload{
		{"mnist-like", mnist, kernel.Gaussian{Sigma: 1.2}, 0},
		{"timit-like", timit, kernel.Laplacian{Sigma: 12}, 0},
	}
}

// experimentDevice returns the simulated GPU every training experiment
// charges against.
func experimentDevice() *device.Device { return device.SimTitanXp() }
