package bench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/data"
	"eigenpro/internal/serve"
)

// OverloadPoint is one measured cell of the overload-serving study: a
// fixed 2x-saturation closed-loop client population against one server
// configuration, with a fraction of the clients canceling their requests.
type OverloadPoint struct {
	// Clients is the closed-loop client count; saturation is defined as
	// MaxBatch concurrent clients (every device wave full with no queue
	// growth), so Clients = 2*MaxBatch is 2x saturation.
	Clients int
	// MaxBatch is the configured micro-batch bound m_max.
	MaxBatch int
	// CancelPct is the percentage of requests whose client cancels.
	CancelPct int
	// Shed reports whether deadline-aware admission control was on.
	Shed bool
	// Delivered counts responses that reached their caller; Abandoned,
	// Rejected, Expired, and ShedCount are the loss buckets.
	Delivered, Abandoned, Rejected, Expired, ShedCount int64
	// Batches counts dispatched micro-batches; MeanOccupancy is executed
	// rows per batch and OccupancyFrac is MeanOccupancy/MaxBatch — the
	// paper's wave-utilization argument under overload.
	Batches       int64
	MeanOccupancy float64
	OccupancyFrac float64
	// ExecutedRows is the total rows that reached the device (from the
	// occupancy histogram). Canceled requests charging zero device ops
	// means ExecutedRows == Delivered.
	ExecutedRows int64
	// Goodput is delivered responses per wall second.
	Goodput float64
	// P99 is the delivered-response enqueue-to-completion p99.
	P99 time.Duration
	// SimOps is the total simulated device operations charged.
	SimOps float64
}

// runOverloadPoint drives clients closed-loop clients, each issuing
// perClient sequential requests, canceling every cancelEvery-th request
// (0 disables cancellation). Canceled clients cancel their context before
// the call returns, modeling a client that gives up while its request is
// queued: the request still enters the queue as a corpse the batcher must
// reap without diluting occupancy or charging device time.
func runOverloadPoint(m *core.Model, mmax, clients, perClient, cancelEvery int, shed bool, timeout time.Duration) (OverloadPoint, error) {
	s := serve.New(serve.Config{
		MaxBatch: mmax,
		// One worker models one device, as in the serving study.
		Workers:    1,
		MaxLatency: time.Millisecond,
		QueueDepth: 4 * clients,
		Timeout:    timeout,
		Shed:       shed,
		TraceEvery: -1,
	})
	defer s.Close()
	if err := s.Register("m", m); err != nil {
		return OverloadPoint{}, err
	}

	queries := data.MNISTLike(256, 52).X
	start := time.Now()
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				seq := c*perClient + i
				ctx := context.Background()
				canceled := cancelEvery > 0 && seq%cancelEvery == 0
				if canceled {
					cctx, cancel := context.WithCancel(ctx)
					cancel()
					ctx = cctx
				}
				_, err := s.Predict(ctx, "m", queries.RowView(seq%queries.Rows))
				switch {
				case err == nil:
				case canceled && errors.Is(err, context.Canceled):
					// The modeled client gave up; the server must reap it.
				case errors.Is(err, serve.ErrShed),
					errors.Is(err, serve.ErrOverloaded),
					errors.Is(err, serve.ErrDeadlineExceeded):
					// Overload losses are the subject of the study.
				default:
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return OverloadPoint{}, err
		}
	}

	st := s.Stats()
	p := OverloadPoint{
		Clients:       clients,
		MaxBatch:      mmax,
		Shed:          shed,
		Delivered:     st.Requests,
		Abandoned:     st.Abandoned,
		Rejected:      st.Rejected,
		Expired:       st.Expired,
		ShedCount:     st.Shed,
		Batches:       st.Batches,
		MeanOccupancy: st.MeanOccupancy,
		ExecutedRows:  int64(st.MeanOccupancy*float64(st.Batches) + 0.5),
		P99:           st.P99,
		SimOps:        st.SimOps,
	}
	if cancelEvery > 0 {
		p.CancelPct = 100 / cancelEvery
	}
	if mmax > 0 {
		p.OccupancyFrac = st.MeanOccupancy / float64(mmax)
	}
	if sec := wall.Seconds(); sec > 0 {
		p.Goodput = float64(st.Requests) / sec
	}
	return p, nil
}

// OverloadStudy measures batch occupancy and goodput at 2x saturation:
// a clean overload baseline, the same overload with 25% client
// cancellation, and the canceled overload with deadline-aware shedding
// under a tight request deadline.
func OverloadStudy(scale Scale) ([]OverloadPoint, error) {
	points, _, err := overloadStudy(scale)
	return points, err
}

func overloadStudy(scale Scale) ([]OverloadPoint, *core.Model, error) {
	const mmax = 32
	centers := scale.pick(300, 800, 2000)
	perClient := scale.pick(24, 48, 96)
	clients := 2 * mmax // 2x saturation: twice the concurrency one wave absorbs
	m := servingModel(centers)
	var out []OverloadPoint
	for _, cell := range []struct {
		cancelEvery int
		shed        bool
		timeout     time.Duration
	}{
		{0, false, -1},
		{4, false, -1},
		{4, true, 25 * time.Millisecond},
	} {
		p, err := runOverloadPoint(m, mmax, clients, perClient, cell.cancelEvery, cell.shed, cell.timeout)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, p)
	}
	return out, m, nil
}

// OverloadServing renders OverloadStudy as a report: how occupancy,
// goodput, and the loss buckets hold up at 2x saturation with client
// cancellation, and what deadline-aware shedding changes.
func OverloadServing(scale Scale) (*Report, error) {
	points, mdl, err := overloadStudy(scale)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "overload",
		Title: "overload serving: occupancy and goodput at 2x saturation with client cancellation",
		Header: []string{"clients", "cancel", "shed", "delivered", "abandoned", "shed reqs",
			"expired", "mean occ", "occ/m_max", "goodput req/s", "p99"},
	}
	for _, p := range points {
		shedMode := "off"
		if p.Shed {
			shedMode = "on"
		}
		rep.AddRow(fmt.Sprint(p.Clients), fmt.Sprintf("%d%%", p.CancelPct), shedMode,
			fmt.Sprint(p.Delivered), fmt.Sprint(p.Abandoned), fmt.Sprint(p.ShedCount),
			fmt.Sprint(p.Expired), fmt.Sprintf("%.1f", p.MeanOccupancy),
			fmt.Sprintf("%.2f", p.OccupancyFrac), fmt.Sprintf("%.0f", p.Goodput),
			fmtDur(p.P99))
	}
	rep.AddNote("model: %d MNIST-like centers; m_max=%d, 1 worker; saturation = m_max concurrent clients, so %d clients is 2x",
		mdl.X.Rows, points[0].MaxBatch, points[0].Clients)
	rep.AddNote("canceled requests enter the queue and are reaped by the batcher: they charge zero device ops " +
		"and the greedy drain backfills their batch slots, so occupancy holds near m_max")
	return rep, nil
}
