package bench

import "testing"

// TestObsOverheadUnder5Percent checks the PR's acceptance criterion: full
// instrumentation (every request traced with exemplars, a wide event per
// request, OpenMetrics scraped continuously, SLO burn rates evaluated at
// a 10ms cadence with an armed flight recorder) must cost the serving hot
// path less than 5% wall throughput. Wall-clock noise dwarfs an overhead
// this small, so the study measures several (baseline, instrumented)
// pairs and the best pair decides — a systematic regression past 5%
// fails every pair, while scheduler jitter does not.
func TestObsOverheadUnder5Percent(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	points, err := ObsOverheadStudy(Small, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("want 6 points (3 attempts x 2 modes), got %d", len(points))
	}
	best := 1.0
	for i := 0; i+1 < len(points); i += 2 {
		base, inst := points[i], points[i+1]
		if base.Instrumented || !inst.Instrumented {
			t.Fatalf("point pair %d out of order: %+v %+v", i/2, base, inst)
		}
		if base.Requests == 0 || inst.Requests == 0 {
			t.Fatalf("empty run: %+v %+v", base, inst)
		}
		if inst.Scrapes == 0 {
			t.Fatalf("instrumented run never scraped /metrics")
		}
		if base.EventsEmitted != 0 || base.EventsDropped != 0 {
			t.Fatalf("baseline run emitted events: %+v", base)
		}
		if inst.EventsEmitted == 0 {
			t.Fatalf("instrumented run kept no wide events: %+v", inst)
		}
		if inst.EventsDropped == 0 {
			t.Fatalf("instrumented run dropped no events: 1-in-%d ok sampling inactive: %+v",
				obsSampleEvery, inst)
		}
		if base.SLOTicks != 0 {
			t.Fatalf("baseline run evaluated SLOs: %+v", base)
		}
		if inst.SLOTicks == 0 {
			t.Fatalf("instrumented run never evaluated SLOs: %+v", inst)
		}
		if inst.SLOEvalCost <= 0 {
			t.Fatalf("instrumented run reports no SLO evaluation cost: %+v", inst)
		}
		if ov := OverheadFraction(base, inst); ov < best {
			best = ov
		}
	}
	t.Logf("best-of-3 instrumentation overhead: %.2f%%", 100*best)
	if best >= 0.05 {
		t.Fatalf("instrumentation overhead %.2f%% >= 5%%", 100*best)
	}
}
