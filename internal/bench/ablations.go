package bench

import (
	"fmt"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/device"
)

// AblationQ probes the paper's Remark 3.1: any preconditioning depth
// p ≥ q (Eq. 7) yields the same acceleration at batch m_max provided the
// step size is chosen accordingly, while p larger only adds setup cost;
// p below q forfeits acceleration. The runner trains EigenPro 2.0 at
// m_max with forced depths around the Eq. 7 choice.
func AblationQ(scale Scale) (*Report, error) {
	dev := experimentDevice()
	wl := figure2Workloads(scale)[0]
	sub := scale.pick(256, 400, 800)
	threshold := 2e-3
	epochCap := scale.pick(60, 80, 120)

	sp, err := core.EstimateSpectrum(wl.kern, wl.ds.X, sub, sub/4, 71)
	if err != nil {
		return nil, fmt.Errorf("bench: ablation-q: %w", err)
	}
	p := core.SelectParams(sp, dev, wl.ds.N(), wl.ds.Dim(), wl.ds.LabelDim())
	qEq7 := p.Q
	if qEq7 < 4 {
		qEq7 = 4
	}
	rep := &Report{
		ID:     "ablation-q",
		Title:  fmt.Sprintf("Remark 3.1: preconditioning depth vs convergence (%s, Eq.7 q=%d, m=%d)", wl.name, p.Q, p.MMax),
		Header: []string{"depth p", "epochs", "sim time", "converged"},
	}
	depths := []int{qEq7 / 4, qEq7 / 2, qEq7, qEq7 * 2}
	for _, depth := range depths {
		if depth < 1 || depth > sp.QMax() {
			continue
		}
		res, err := core.Train(core.Config{
			Kernel: wl.kern, Device: dev, Method: core.MethodEigenPro2,
			S: sub, Q: depth, Spectrum: sp,
			Epochs: epochCap, StopTrainMSE: threshold, Seed: 71,
		}, wl.ds.X, wl.ds.Y)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation-q depth %d: %w", depth, err)
		}
		rep.AddRow(fmt.Sprintf("%d", depth), fmt.Sprintf("%d", res.Epochs),
			fmtDur(res.SimTime), fmt.Sprintf("%v", res.Converged))
	}
	rep.AddNote("depths ≥ the Eq. 7 choice should converge in comparably few epochs; shallower depths degrade toward plain SGD")
	return rep, nil
}

// AblationS probes the fixed-coordinate-block size: the paper fixes
// s = 2·10³ (n ≤ 10⁵) / 1.2·10⁴ by rule (§5). Smaller s cheapens the
// Nyström setup but noisier eigen-estimates can misjudge q and η; larger s
// adds setup cost with diminishing returns. The runner sweeps s and
// reports both the spectrum quality (λ₁ estimate) and end-to-end training.
func AblationS(scale Scale) (*Report, error) {
	dev := experimentDevice()
	wl := figure2Workloads(scale)[1]
	threshold := 2e-3
	epochCap := scale.pick(60, 80, 120)
	n := wl.ds.N()

	rep := &Report{
		ID:     "ablation-s",
		Title:  fmt.Sprintf("fixed coordinate block size s (%s, n=%d)", wl.name, n),
		Header: []string{"s", "lambda1 est", "m*(k) est", "setup wall", "epochs", "sim time", "converged"},
	}
	sweep := []int{n / 16, n / 8, n / 4, n / 2}
	for _, s := range sweep {
		if s < 16 {
			continue
		}
		qmax := s / 4
		if qmax > 64 {
			qmax = 64
		}
		t0 := time.Now()
		sp, err := core.EstimateSpectrum(wl.kern, wl.ds.X, s, qmax, 73)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation-s s=%d: %w", s, err)
		}
		setup := time.Since(t0)
		res, err := core.Train(core.Config{
			Kernel: wl.kern, Device: dev, Method: core.MethodEigenPro2,
			S: s, Spectrum: sp,
			Epochs: epochCap, StopTrainMSE: threshold, Seed: 73,
		}, wl.ds.X, wl.ds.Y)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation-s train s=%d: %w", s, err)
		}
		rep.AddRow(fmt.Sprintf("%d", s),
			fmt.Sprintf("%.4f", sp.Lambda(1)),
			fmt.Sprintf("%.1f", core.MStar(sp)),
			fmtDur(setup),
			fmt.Sprintf("%d", res.Epochs), fmtDur(res.SimTime),
			fmt.Sprintf("%v", res.Converged))
	}
	rep.AddNote("λ₁ estimates should agree across s (σ_i/s normalization); setup cost grows superlinearly in s")
	return rep, nil
}

// MultiGPU explores the paper's §6 future-work direction with the
// data-parallel device group: as the device count grows, m_max grows, the
// automatic q deepens, and time-to-converge keeps dropping until the batch
// is capped by the dataset itself.
func MultiGPU(scale Scale) (*Report, error) {
	base := experimentDevice()
	wl := figure2Workloads(scale)[0]
	sub := scale.pick(256, 400, 800)
	threshold := 2e-3
	epochCap := scale.pick(60, 80, 120)
	n := wl.ds.N()

	// Shrink the base device so a single unit does not already saturate
	// the scaled dataset; the sweep then shows adaptation across counts.
	small := *base
	small.ParallelOps = base.ParallelOps / 64
	small.Name = "sim-gpu-small"

	sp, err := core.EstimateSpectrum(wl.kern, wl.ds.X, sub, sub/4, 79)
	if err != nil {
		return nil, fmt.Errorf("bench: multigpu: %w", err)
	}
	rep := &Report{
		ID:     "multigpu",
		Title:  fmt.Sprintf("§6 multi-device scaling (%s, n=%d)", wl.name, n),
		Header: []string{"devices", "m_max", "auto q", "epochs", "sim time", "converged"},
	}
	for _, count := range []int{1, 2, 4, 8} {
		grp, err := device.NewGroup(&small, count, device.GroupOptions{
			SyncOverhead:      50 * time.Microsecond,
			ScalingEfficiency: 0.9,
		})
		if err != nil {
			return nil, err
		}
		res, err := core.Train(core.Config{
			Kernel: wl.kern, Device: grp, Method: core.MethodEigenPro2,
			S: sub, Spectrum: sp,
			Epochs: epochCap, StopTrainMSE: threshold, Seed: 79,
		}, wl.ds.X, wl.ds.Y)
		if err != nil {
			return nil, fmt.Errorf("bench: multigpu x%d: %w", count, err)
		}
		rep.AddRow(fmt.Sprintf("%d", count),
			fmt.Sprintf("%d", res.Params.MMax), fmt.Sprintf("%d", res.Params.QAdjusted),
			fmt.Sprintf("%d", res.Epochs), fmtDur(res.SimTime),
			fmt.Sprintf("%v", res.Converged))
	}
	rep.AddNote("group capacity scales at 90%% efficiency with 50µs sync per iteration; the adaptive kernel re-tunes q to each aggregate m_max")
	return rep, nil
}
