package bench

import "testing"

// TestTrainingJobsRuns checks the training-jobs study end to end: every
// submitted job completes servable at every pool size, and the report
// renders one row per worker count.
func TestTrainingJobsRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	points, err := TrainingJobsStudy(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("want 3 points (pool sizes 1, 2, 4), got %d", len(points))
	}
	for _, p := range points {
		if p.JobsPerSec <= 0 {
			t.Fatalf("workers %d: zero throughput: %+v", p.Workers, p)
		}
		if p.MeanTimeToServable <= 0 || p.MaxTimeToServable < p.MeanTimeToServable {
			t.Fatalf("workers %d: implausible time-to-servable: %+v", p.Workers, p)
		}
		if p.Wall < p.MaxTimeToServable {
			t.Fatalf("workers %d: wall %v below max time-to-servable %v", p.Workers, p.Wall, p.MaxTimeToServable)
		}
	}

	rep, err := TrainingJobs(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("report rows = %d, want 3", len(rep.Rows))
	}
}
