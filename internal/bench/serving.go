package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/data"
	"eigenpro/internal/kernel"
	"eigenpro/internal/serve"
)

// ServingPoint is one measured cell of the serving study: a client count ×
// batching mode combination.
type ServingPoint struct {
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// Batched is false for the unbatched baseline (micro-batch forced
	// to 1).
	Batched bool
	// Requests is the number of completed predictions.
	Requests int64
	// WallThroughput is requests per wall-clock second.
	WallThroughput float64
	// SimThroughput is requests per simulated device second — the paper's
	// utilization argument measured on the serving path.
	SimThroughput float64
	// MeanOccupancy is the average micro-batch fill.
	MeanOccupancy float64
	// P99 is the enqueue-to-completion p99 latency.
	P99 time.Duration
}

// servingModel builds a prediction-only model over MNIST-shaped centers;
// serving throughput does not depend on the coefficient values, so the
// expensive training step is skipped.
func servingModel(centers int) *core.Model {
	ds := data.MNISTLike(centers, 51)
	m := core.NewModel(kernel.Gaussian{Sigma: 5}, ds.X, ds.Y.Cols)
	copy(m.Alpha.Data, ds.Y.Data)
	return m
}

// runServingPoint drives clients closed-loop clients, each issuing
// perClient sequential predictions, against one server configuration.
func runServingPoint(m *core.Model, clients, perClient int, batched bool) (ServingPoint, error) {
	cfg := serve.Config{
		// The queue never rejects in this study: the comparison is about
		// device efficiency, so both modes must complete every request.
		QueueDepth: clients*perClient + 1,
		// One worker models one device: predictions serialize on it in
		// both modes, exactly like kernel launches on a single GPU.
		Workers:    1,
		MaxLatency: time.Millisecond,
		Timeout:    -1,
	}
	if !batched {
		cfg.MaxBatch = 1
	}
	s := serve.New(cfg)
	defer s.Close()
	if err := s.Register("m", m); err != nil {
		return ServingPoint{}, err
	}

	queries := data.MNISTLike(256, 52).X
	start := time.Now()
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				row := queries.RowView((c*perClient + i) % queries.Rows)
				if _, err := s.Predict(context.Background(), "m", row); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ServingPoint{}, err
		}
	}
	st := s.Stats()
	want := int64(clients * perClient)
	if st.Requests != want {
		return ServingPoint{}, fmt.Errorf("bench: served %d of %d requests", st.Requests, want)
	}
	p := ServingPoint{
		Clients:       clients,
		Batched:       batched,
		Requests:      st.Requests,
		MeanOccupancy: st.MeanOccupancy,
		P99:           st.P99,
	}
	if s := wall.Seconds(); s > 0 {
		p.WallThroughput = float64(st.Requests) / s
	}
	if s := st.SimTime.Seconds(); s > 0 {
		p.SimThroughput = float64(st.Requests) / s
	}
	return p, nil
}

// ServingStudy measures batched vs unbatched serving throughput across
// client counts on the simulated Titan Xp. Points come in
// (unbatched, batched) pairs per client count.
func ServingStudy(scale Scale) ([]ServingPoint, error) {
	points, _, err := servingStudy(scale)
	return points, err
}

// servingStudy also returns the model so report rendering can describe it
// without rebuilding the dataset.
func servingStudy(scale Scale) ([]ServingPoint, *core.Model, error) {
	centers := scale.pick(300, 800, 2000)
	perClient := scale.pick(12, 24, 48)
	m := servingModel(centers)
	var out []ServingPoint
	for _, clients := range []int{1, 8, 64} {
		for _, batched := range []bool{false, true} {
			p, err := runServingPoint(m, clients, perClient, batched)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, p)
		}
	}
	return out, m, nil
}

// ServingThroughput renders ServingStudy as a report: requests/sec vs
// concurrent clients, batched vs unbatched, with the simulated-device
// speedup of coalescing.
func ServingThroughput(scale Scale) (*Report, error) {
	points, mdl, err := servingStudy(scale)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "serving",
		Title: "batched vs unbatched serving throughput (micro-batches sized to device m_max)",
		Header: []string{"clients", "mode", "requests", "wall req/s", "device req/s",
			"mean batch", "p99", "device speedup"},
	}
	for i := 0; i+1 < len(points); i += 2 {
		un, ba := points[i], points[i+1]
		speedup := 0.0
		if un.SimThroughput > 0 {
			speedup = ba.SimThroughput / un.SimThroughput
		}
		rep.AddRow(fmt.Sprint(un.Clients), "unbatched", fmt.Sprint(un.Requests),
			fmt.Sprintf("%.0f", un.WallThroughput), fmt.Sprintf("%.0f", un.SimThroughput),
			fmt.Sprintf("%.1f", un.MeanOccupancy), fmtDur(un.P99), "")
		rep.AddRow(fmt.Sprint(ba.Clients), "batched", fmt.Sprint(ba.Requests),
			fmt.Sprintf("%.0f", ba.WallThroughput), fmt.Sprintf("%.0f", ba.SimThroughput),
			fmt.Sprintf("%.1f", ba.MeanOccupancy), fmtDur(ba.P99),
			fmt.Sprintf("%.1fx", speedup))
	}
	rep.AddNote("model: %d MNIST-like centers, d=%d, l=%d; device %s, micro-batch m_max=%d",
		mdl.X.Rows, mdl.X.Cols, mdl.Alpha.Cols, experimentDevice().Name,
		experimentDevice().ServeBatch(mdl.X.Rows, mdl.X.Cols, mdl.Alpha.Cols))
	rep.AddNote("device req/s charges each micro-batch n·m·(d+l) ops on the simulated device; " +
		"coalescing amortizes the launch overhead and fills the execution wave")
	return rep, nil
}
