package bench

import (
	"strings"
	"testing"
	"time"
)

func TestReportRendering(t *testing.T) {
	r := &Report{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bbbb"},
	}
	r.AddRow("1", "2")
	r.AddNote("scale %s", Small)
	s := r.String()
	if !strings.Contains(s, "== x: demo ==") || !strings.Contains(s, "note: scale small") {
		t.Fatalf("rendering wrong:\n%s", s)
	}
}

func TestScaleString(t *testing.T) {
	if Small.String() != "small" || Medium.String() != "medium" || Large.String() != "large" {
		t.Fatal("scale names wrong")
	}
	if Scale(9).String() != "Scale(9)" {
		t.Fatal("unknown scale formatting")
	}
	if Small.pick(1, 2, 3) != 1 || Medium.pick(1, 2, 3) != 2 || Large.pick(1, 2, 3) != 3 {
		t.Fatal("pick wrong")
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtDur(90 * time.Second); got != "1.5m" {
		t.Fatalf("fmtDur minute = %q", got)
	}
	if got := fmtDur(1500 * time.Millisecond); got != "1.50s" {
		t.Fatalf("fmtDur second = %q", got)
	}
	if got := fmtDur(2500 * time.Microsecond); got != "2.50ms" {
		t.Fatalf("fmtDur ms = %q", got)
	}
	if got := fmtDur(12 * time.Microsecond); got != "12µs" {
		t.Fatalf("fmtDur µs = %q", got)
	}
	if got := fmtPct(0.123); got != "12.3%" {
		t.Fatalf("fmtPct = %q", got)
	}
}

func TestBatchSweep(t *testing.T) {
	got := batchSweep(100)
	if got[0] != 1 || got[len(got)-1] != 100 {
		t.Fatalf("sweep = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("sweep not increasing: %v", got)
		}
	}
	if got := batchSweep(1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("sweep(1) = %v", got)
	}
}

func TestLabelError(t *testing.T) {
	if got := labelError([]int{1, 2, 3}, []int{1, 0, 3}); got != 1.0/3 {
		t.Fatalf("labelError = %v", got)
	}
	if got := labelError(nil, nil); got != 0 {
		t.Fatalf("labelError empty = %v", got)
	}
}

func TestFigure3aShape(t *testing.T) {
	rep := Figure3a(Small)
	if rep.ID != "figure3a" || len(rep.Rows) == 0 {
		t.Fatal("empty report")
	}
	// Parallel curve: first two rows (tiny batches) identical time; last
	// rows strictly larger than the flat region.
	if rep.Rows[0][1] != rep.Rows[1][1] {
		t.Fatalf("sub-capacity parallel times differ: %v vs %v", rep.Rows[0][1], rep.Rows[1][1])
	}
	// Ideal stays flat across the whole sweep.
	first := rep.Rows[0][2]
	last := rep.Rows[len(rep.Rows)-1][2]
	if first != last {
		t.Fatalf("ideal curve not flat: %v vs %v", first, last)
	}
}

func TestFigure3bShape(t *testing.T) {
	rep := Figure3b(Small)
	if len(rep.Rows) == 0 || len(rep.Header) != 5 {
		t.Fatalf("unexpected report shape: header %v", rep.Header)
	}
}

func TestTable1Formulas(t *testing.T) {
	rep, err := Table1(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("want 3 method rows, got %d", len(rep.Rows))
	}
	// Improved overhead must be sub-1% at paper scale.
	if rep.Rows[0][2] != "0.1%" {
		t.Fatalf("improved overhead cell = %q, want 0.1%%", rep.Rows[0][2])
	}
	// Original EigenPro's overhead is two orders of magnitude larger.
	if rep.Rows[1][2] != "9.1%" {
		t.Fatalf("original overhead cell = %q, want 9.1%%", rep.Rows[1][2])
	}
}

func TestTable4Runs(t *testing.T) {
	rep, err := Table4(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("want 4 dataset rows, got %d", len(rep.Rows))
	}
}

func TestTable2Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := Table2(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 12 { // 4 datasets x 3 methods
		t.Fatalf("want 12 rows, got %d", len(rep.Rows))
	}
}

func TestFigure2Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	reps, err := Figure2(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("want 2 figure2 reports, got %d", len(reps))
	}
	for _, r := range reps {
		if len(r.Rows) < 3 {
			t.Fatalf("%s: too few batch rows", r.Title)
		}
	}
}
