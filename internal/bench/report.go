// Package bench contains one runner per table and figure of the paper's
// evaluation (§5 and appendices). Each runner builds its workload, executes
// the relevant methods, and returns a Report whose rows mirror the rows or
// series of the original table/figure.
//
// Absolute numbers differ from the paper — the substrate is a simulated
// device and the datasets are scaled-down synthetics (see DESIGN.md §2) —
// but the comparisons the paper draws (who wins, by what factor, where the
// curves bend) are reproduced. EXPERIMENTS.md records paper-vs-measured for
// every report.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Scale selects the workload size of every runner.
type Scale int

const (
	// Small finishes within seconds per runner (used by tests and
	// benchmarks).
	Small Scale = iota
	// Medium is the default for cmd/experiments (tens of seconds per
	// runner on one core).
	Medium
	// Large approaches the limits of pure-Go linear algebra on one host.
	Large
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// pick returns the value for the receiver scale.
func (s Scale) pick(small, medium, large int) int {
	switch s {
	case Medium:
		return medium
	case Large:
		return large
	default:
		return small
	}
}

// Report is one regenerated table or figure.
type Report struct {
	// ID matches the paper artifact, e.g. "table2", "figure3a".
	ID string
	// Title describes the content.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the data.
	Rows [][]string
	// Notes records scale, substitutions, and observations.
	Notes []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a formatted note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fmtDur renders a duration with ~3 significant figures.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// fmtPct renders a fraction as a percentage.
func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
