package bench

import "testing"

// TestServingThroughputRuns checks the serving study end to end and the
// PR's acceptance criterion: batched serving must deliver at least 3x the
// unbatched single-request throughput (in simulated device time) at 64
// concurrent clients on the simulated Titan Xp.
func TestServingThroughputRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	points, err := ServingStudy(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("want 6 points (3 client counts x 2 modes), got %d", len(points))
	}
	var un, ba *ServingPoint
	for i := range points {
		p := &points[i]
		if p.Clients == 64 {
			if p.Batched {
				ba = p
			} else {
				un = p
			}
		}
	}
	if un == nil || ba == nil {
		t.Fatalf("missing 64-client points: %+v", points)
	}
	if un.MeanOccupancy != 1 {
		t.Fatalf("unbatched baseline coalesced: mean occupancy %.1f", un.MeanOccupancy)
	}
	if ba.MeanOccupancy <= 1 {
		t.Fatalf("batched mode never coalesced: mean occupancy %.1f", ba.MeanOccupancy)
	}
	speedup := ba.SimThroughput / un.SimThroughput
	if speedup < 3 {
		t.Fatalf("batched/unbatched device throughput = %.2fx at 64 clients, want >= 3x "+
			"(batched %.0f req/s, unbatched %.0f req/s)",
			speedup, ba.SimThroughput, un.SimThroughput)
	}

	rep, err := ServingThroughput(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("report rows = %d, want 6", len(rep.Rows))
	}
}
