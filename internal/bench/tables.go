package bench

import (
	"fmt"
	"math"

	"eigenpro/internal/core"
	"eigenpro/internal/falkon"
	"eigenpro/internal/metrics"
	"eigenpro/internal/svm"
)

// Table1 regenerates the paper's Table 1: per-iteration computation and
// memory of improved EigenPro vs original EigenPro vs SGD, first with the
// analytic formulas at the paper's production scale, then with measured
// wall-clock per-iteration times at repo scale.
func Table1(scale Scale) (*Report, error) {
	rep := &Report{
		ID:     "table1",
		Title:  "per-iteration cost: improved EigenPro vs original EigenPro vs SGD",
		Header: []string{"method", "compute (ops)", "overhead", "memory (floats)", "mem overhead"},
	}
	// Paper-scale parameters (§4): n=10⁶, s=10⁴, d,m ~ 10³, q,l ~ 10².
	n, m, d, l, s, q := 1000000, 1000, 1000, 100, 10000, 100
	sgdOps := core.SGDIterOps(n, m, d, l)
	impOps := core.ImprovedEigenProIterOps(n, m, d, l, s, q)
	origOps := core.OriginalEigenProIterOps(n, m, d, l, q)
	sgdMem := core.SGDMemoryFloats(n, m, d, l)
	impMem := core.ImprovedEigenProMemoryFloats(n, m, d, l, s, q)
	origMem := core.OriginalEigenProMemoryFloats(n, m, d, l, q)
	rep.AddRow("improved EigenPro", fmt.Sprintf("%.3g", impOps), fmtPct(core.OverheadRatio(impOps, sgdOps)),
		fmt.Sprintf("%d", impMem), fmtPct(float64(impMem-sgdMem)/float64(sgdMem)))
	rep.AddRow("original EigenPro", fmt.Sprintf("%.3g", origOps), fmtPct(core.OverheadRatio(origOps, sgdOps)),
		fmt.Sprintf("%d", origMem), fmtPct(float64(origMem-sgdMem)/float64(sgdMem)))
	rep.AddRow("SGD", fmt.Sprintf("%.3g", sgdOps), "0.0%", fmt.Sprintf("%d", sgdMem), "0.0%")
	rep.AddNote("formulas at paper scale n=10⁶ s=10⁴ d=m=10³ q=l=10²; improved overhead < 1%% as claimed")

	// Measured wall-clock per-iteration overhead at repo scale.
	wls := figure2Workloads(scale)
	wl := wls[0]
	sub := scale.pick(256, 400, 800)
	batch := 64
	var perIter [3]float64
	for i, method := range []core.Method{core.MethodEigenPro2, core.MethodEigenPro1, core.MethodSGD} {
		res, err := core.Train(core.Config{
			Kernel: wl.kern, Device: experimentDevice(), Method: method,
			S: sub, QMax: 64, Batch: batch, Epochs: 3, Seed: 13,
		}, wl.ds.X, wl.ds.Y)
		if err != nil {
			return nil, fmt.Errorf("bench: table1: %w", err)
		}
		perIter[i] = float64(res.WallTime.Nanoseconds()) / float64(res.Iters)
	}
	rep.AddNote("measured wall/iter on %s (n=%d, s=%d, m=%d): improved %.2fµs (+%.1f%% vs SGD), original %.2fµs (+%.1f%%)",
		wl.name, wl.ds.N(), sub, batch,
		perIter[0]/1e3, 100*(perIter[0]-perIter[2])/perIter[2],
		perIter[1]/1e3, 100*(perIter[1]-perIter[2])/perIter[2])
	return rep, nil
}

// Table2 regenerates the paper's Table 2: classification error and
// (simulated) GPU time of EigenPro 2.0 against EigenPro 1.0 and FALKON on
// MNIST/TIMIT/ImageNet/SUSY-shaped workloads. The expected shape: similar
// errors, with EigenPro 2.0 several times faster.
func Table2(scale Scale) (*Report, error) {
	dev := experimentDevice()
	rep := &Report{
		ID:     "table2",
		Title:  "EigenPro 2.0 vs EigenPro 1.0 vs FALKON: error and resource time",
		Header: []string{"dataset", "method", "test error", "sim GPU time", "wall time", "config"},
	}
	for _, wl := range table2Workloads(scale) {
		train, test := wl.ds.Split(0.8, 17)
		n := train.N()
		sub := scale.pick(200, 400, 1000)

		// EigenPro 2.0: fully automatic parameters.
		ep2, err := core.Train(core.Config{
			Kernel: wl.kern, Device: dev, Method: core.MethodEigenPro2,
			S: sub, Epochs: wl.epochs, Seed: 29,
		}, train.X, train.Y)
		if err != nil {
			return nil, fmt.Errorf("bench: table2 %s ep2: %w", wl.name, err)
		}
		errEP2 := metrics.ClassificationError(ep2.Model.Predict(test.X), test.Labels)
		rep.AddRow(wl.name, "eigenpro2.0", fmtPct(errEP2), fmtDur(ep2.SimTime), fmtDur(ep2.WallTime),
			fmt.Sprintf("q=%d m=%d η=%.1f", ep2.Params.QAdjusted, ep2.Params.Batch, ep2.Params.Eta))

		// EigenPro 1.0: historical batch size 256, n-scaled overhead.
		batch1 := 256
		if batch1 > n {
			batch1 = n / 2
		}
		ep1, err := core.Train(core.Config{
			Kernel: wl.kern, Device: dev, Method: core.MethodEigenPro1,
			S: sub, Batch: batch1, Epochs: wl.epochs, Seed: 29,
		}, train.X, train.Y)
		if err != nil {
			return nil, fmt.Errorf("bench: table2 %s ep1: %w", wl.name, err)
		}
		errEP1 := metrics.ClassificationError(ep1.Model.Predict(test.X), test.Labels)
		rep.AddRow(wl.name, "eigenpro1.0", fmtPct(errEP1), fmtDur(ep1.SimTime), fmtDur(ep1.WallTime),
			fmt.Sprintf("q=%d m=%d", ep1.Params.QAdjusted, ep1.Params.Batch))

		// FALKON.
		centers := scale.pick(200, 400, 1000)
		if centers > n {
			centers = n
		}
		fk, err := falkon.Fit(falkon.Config{
			Kernel: wl.kern, Centers: centers, Lambda: 1e-7, Iters: 20,
			Seed: 29, Device: dev,
		}, train.X, train.Y)
		if err != nil {
			return nil, fmt.Errorf("bench: table2 %s falkon: %w", wl.name, err)
		}
		errFK := metrics.ClassificationError(fk.Model.Predict(test.X), test.Labels)
		rep.AddRow(wl.name, "falkon", fmtPct(errFK), fmtDur(fk.SimTime), fmtDur(fk.WallTime),
			fmt.Sprintf("M=%d iters=%d", centers, fk.Iters))
	}
	rep.AddNote("datasets are scaled synthetics (%s scale); see DESIGN.md §2", scale)
	return rep, nil
}

// Table3 regenerates the paper's Table 3 ("interactive training"): wall
// time of EigenPro 2.0 versus the ThunderSVM-like parallel SMO and the
// LibSVM-like sequential SMO, where EigenPro stops as soon as its test
// accuracy matches the SVM's (the paper's protocol).
func Table3(scale Scale) (*Report, error) {
	dev := experimentDevice()
	rep := &Report{
		ID:     "table3",
		Title:  "interactive training: EigenPro 2.0 vs ThunderSVM-like vs LibSVM-like",
		Header: []string{"dataset", "n", "eigenpro", "thundersvm-like", "libsvm-like", "svm err", "eigenpro err"},
	}
	for _, wl := range table3Workloads(scale) {
		train, test := wl.ds.Split(0.8, 19)
		svmCfg := svm.Config{Kernel: wl.kern, C: 10, Seed: 23}

		seq, err := svm.Train(svmCfg, train.X, train.Labels, train.Classes)
		if err != nil {
			return nil, fmt.Errorf("bench: table3 %s svm: %w", wl.name, err)
		}
		svmErr := labelError(seq.Model.PredictLabels(test.X), test.Labels)

		parCfg := svmCfg
		parCfg.Parallel = true
		par, err := svm.Train(parCfg, train.X, train.Labels, train.Classes)
		if err != nil {
			return nil, fmt.Errorf("bench: table3 %s parallel svm: %w", wl.name, err)
		}

		// EigenPro: epoch-by-epoch until test error matches the SVM's.
		sub := scale.pick(200, 350, 800)
		var epTime, epErr = math.Inf(1), math.Inf(1)
		res, err := core.Train(core.Config{
			Kernel: wl.kern, Device: dev, Method: core.MethodEigenPro2,
			S: sub, Epochs: 30, Seed: 23,
			ValX: test.X, ValLabels: test.Labels, Patience: 30,
		}, train.X, train.Y)
		if err != nil {
			return nil, fmt.Errorf("bench: table3 %s eigenpro: %w", wl.name, err)
		}
		// Find the first epoch whose recorded validation error matches the
		// SVM, charging only the wall time up to that epoch.
		for _, st := range res.History {
			if st.ValError <= svmErr || st.Epoch == len(res.History) {
				frac := float64(st.Epoch) / float64(res.Epochs)
				epTime = res.WallTime.Seconds() * frac
				epErr = st.ValError
				break
			}
		}
		rep.AddRow(wl.name, fmt.Sprintf("%d", train.N()),
			fmt.Sprintf("%.2fs", epTime), fmtDur(par.WallTime), fmtDur(seq.WallTime),
			fmtPct(svmErr), fmtPct(epErr))
	}
	rep.AddNote("single-core host: the ThunderSVM-like driver cannot show parallel speedup here; on multi-core hosts it runs one one-vs-rest problem per core")
	rep.AddNote("eigenpro time = wall time to first epoch matching SVM accuracy (paper's protocol)")
	return rep, nil
}

// labelError returns the misclassification rate between predicted and true
// label slices.
func labelError(pred, truth []int) float64 {
	if len(pred) == 0 {
		return 0
	}
	wrong := 0
	for i, p := range pred {
		if p != truth[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(pred))
}

// Table4 regenerates the paper's Table 4: the kernel/bandwidth chosen per
// dataset and the automatically calculated optimization parameters
// (q from Eq. 7, the adjusted q actually used, m = m_G, and η).
func Table4(scale Scale) (*Report, error) {
	dev := experimentDevice()
	rep := &Report{
		ID:     "table4",
		Title:  "automatically calculated parameters per dataset",
		Header: []string{"dataset", "n", "kernel", "m*(k)", "q", "adjusted q", "m = m_G", "eta", "m/eta"},
	}
	for _, wl := range table2Workloads(scale) {
		n, d, l := wl.ds.N(), wl.ds.Dim(), wl.ds.LabelDim()
		sub := scale.pick(200, 400, 1000)
		sp, err := core.EstimateSpectrum(wl.kern, wl.ds.X, sub, sub/4, 37)
		if err != nil {
			return nil, fmt.Errorf("bench: table4 %s: %w", wl.name, err)
		}
		p := core.SelectParams(sp, dev, n, d, l)
		rep.AddRow(wl.name, fmt.Sprintf("%d", n), wl.kern.Name(),
			fmt.Sprintf("%.1f", p.MStarOriginal),
			fmt.Sprintf("%d", p.Q), fmt.Sprintf("%d", p.QAdjusted),
			fmt.Sprintf("%d", p.Batch), fmt.Sprintf("%.1f", p.Eta),
			fmt.Sprintf("%.2f", float64(p.Batch)/p.Eta))
	}
	rep.AddNote("paper's Table 4 shows m/η ≈ 2 when β(K_G) ≈ 1; exact relation is m/η = 2(β_G + (m−1)λ_q)")
	return rep, nil
}

// Acceleration verifies the paper's §3 claim: the predicted speedup
// a = (β(K)/β(K_G))·(m_max/m*(k)) against the measured ratio of simulated
// times to reach the same training loss.
func Acceleration(scale Scale) (*Report, error) {
	dev := experimentDevice()
	rep := &Report{
		ID:     "acceleration",
		Title:  "predicted vs measured acceleration of the adaptive kernel",
		Header: []string{"dataset", "m*(k)", "m_max", "predicted a", "measured", "sgd time", "ep2 time"},
	}
	sub := scale.pick(256, 400, 800)
	epochCap := scale.pick(150, 250, 400)
	for _, wl := range figure2Workloads(scale) {
		threshold := 5e-3
		sp, err := core.EstimateSpectrum(wl.kern, wl.ds.X, sub, 64, 43)
		if err != nil {
			return nil, fmt.Errorf("bench: acceleration %s: %w", wl.name, err)
		}
		n, d, l := wl.ds.N(), wl.ds.Dim(), wl.ds.LabelDim()
		p := core.SelectParams(sp, dev, n, d, l)

		mStar := int(math.Max(1, math.Round(p.MStarOriginal)))
		sgd, err := core.Train(core.Config{
			Kernel: wl.kern, Device: dev, Method: core.MethodSGD,
			S: sub, Batch: mStar, Epochs: epochCap, StopTrainMSE: threshold,
			Seed: 47, Spectrum: sp,
		}, wl.ds.X, wl.ds.Y)
		if err != nil {
			return nil, fmt.Errorf("bench: acceleration %s sgd: %w", wl.name, err)
		}
		ep2, err := core.Train(core.Config{
			Kernel: wl.kern, Device: dev, Method: core.MethodEigenPro2,
			S: sub, Epochs: epochCap, StopTrainMSE: threshold,
			Seed: 47, Spectrum: sp,
		}, wl.ds.X, wl.ds.Y)
		if err != nil {
			return nil, fmt.Errorf("bench: acceleration %s ep2: %w", wl.name, err)
		}
		measured := "n/a"
		if sgd.Converged && ep2.Converged && ep2.SimTime > 0 {
			measured = fmt.Sprintf("%.1fx", float64(sgd.SimTime)/float64(ep2.SimTime))
		} else if !sgd.Converged && ep2.Converged {
			measured = fmt.Sprintf(">%.1fx", float64(sgd.SimTime)/float64(ep2.SimTime))
		}
		// Predict from the trained run's parameters: training refines
		// β(K_G) with a probe over extra points, and the prediction should
		// use the β the step size actually used.
		predicted := (ep2.Params.BetaOriginal / ep2.Params.BetaAdapted) *
			float64(ep2.Params.MMax) / ep2.Params.MStarOriginal
		rep.AddRow(wl.name,
			fmt.Sprintf("%.1f", p.MStarOriginal), fmt.Sprintf("%d", p.MMax),
			fmt.Sprintf("%.1fx", predicted), measured,
			fmtDur(sgd.SimTime), fmtDur(ep2.SimTime))
	}
	rep.AddNote("SGD runs at its own optimal batch m*(k); EigenPro 2.0 at m_max; both stop at train mse < 5e-3")
	return rep, nil
}
