// Package kernel provides the positive definite kernel functions used by
// the EigenPro 2.0 reproduction (Gaussian, Laplacian, Cauchy) and fast
// vectorized kernel-matrix construction built on the pairwise-distance GEMM
// identity ||x-z||² = ||x||² + ||z||² − 2⟨x,z⟩.
package kernel

import (
	"fmt"
	"math"

	"eigenpro/internal/mat"
)

// Func is a positive definite kernel k(x, z).
type Func interface {
	// Eval returns k(x, z) for two feature vectors of equal length.
	Eval(x, z []float64) float64
	// Name identifies the kernel family and bandwidth, e.g. "gaussian(σ=5)".
	Name() string
}

// Radial is implemented by shift-invariant kernels whose value depends only
// on the squared Euclidean distance between inputs. Kernel-matrix
// construction uses this for the vectorized GEMM path, and such kernels are
// normalized: OfSqDist(0) == 1, so β(K) = max_i k(x_i,x_i) = 1 (paper §2).
type Radial interface {
	Func
	// OfSqDist maps a squared distance to the kernel value.
	OfSqDist(d2 float64) float64
}

// Gaussian is the Gaussian (RBF) kernel k(x,z) = exp(−||x−z||²/(2σ²)).
type Gaussian struct {
	// Sigma is the bandwidth σ > 0.
	Sigma float64
}

// Eval implements Func.
func (g Gaussian) Eval(x, z []float64) float64 { return g.OfSqDist(mat.SqDist(x, z)) }

// OfSqDist implements Radial.
func (g Gaussian) OfSqDist(d2 float64) float64 { return math.Exp(-d2 / (2 * g.Sigma * g.Sigma)) }

// Name implements Func.
func (g Gaussian) Name() string { return fmt.Sprintf("gaussian(σ=%g)", g.Sigma) }

// Laplacian is the Laplace (exponential) kernel k(x,z) = exp(−||x−z||/σ).
// The paper (§5.5) highlights it for requiring fewer epochs, having larger
// m*, and being more robust to the bandwidth choice than the Gaussian.
type Laplacian struct {
	// Sigma is the bandwidth σ > 0.
	Sigma float64
}

// Eval implements Func.
func (l Laplacian) Eval(x, z []float64) float64 { return l.OfSqDist(mat.SqDist(x, z)) }

// OfSqDist implements Radial.
func (l Laplacian) OfSqDist(d2 float64) float64 {
	if d2 <= 0 {
		return 1
	}
	return math.Exp(-math.Sqrt(d2) / l.Sigma)
}

// Name implements Func.
func (l Laplacian) Name() string { return fmt.Sprintf("laplacian(σ=%g)", l.Sigma) }

// Cauchy is the Cauchy kernel k(x,z) = 1/(1 + ||x−z||²/σ²), a heavy-tailed
// positive definite alternative with slower eigendecay.
type Cauchy struct {
	// Sigma is the bandwidth σ > 0.
	Sigma float64
}

// Eval implements Func.
func (c Cauchy) Eval(x, z []float64) float64 { return c.OfSqDist(mat.SqDist(x, z)) }

// OfSqDist implements Radial.
func (c Cauchy) OfSqDist(d2 float64) float64 { return 1 / (1 + d2/(c.Sigma*c.Sigma)) }

// Name implements Func.
func (c Cauchy) Name() string { return fmt.Sprintf("cauchy(σ=%g)", c.Sigma) }

// ByName constructs a kernel from its family name and bandwidth — the one
// mapping shared by the CLI flags, the HTTP training endpoint, and the gob
// serialization format, so the three surfaces cannot drift apart.
func ByName(family string, sigma float64) (Func, error) {
	switch family {
	case "gaussian":
		return Gaussian{Sigma: sigma}, nil
	case "laplacian":
		return Laplacian{Sigma: sigma}, nil
	case "cauchy":
		return Cauchy{Sigma: sigma}, nil
	case "matern32":
		return Matern32{Sigma: sigma}, nil
	case "matern52":
		return Matern52{Sigma: sigma}, nil
	default:
		return nil, fmt.Errorf("kernel: unknown family %q", family)
	}
}

// Families lists the family names ByName accepts.
func Families() []string {
	return []string{"gaussian", "laplacian", "cauchy", "matern32", "matern52"}
}

// Family returns the serializable (family, sigma) pair of a kernel built
// from this package — the inverse of ByName. Kernels from outside the
// package have no stable name and return an error; they can train but
// cannot be checkpointed or persisted.
func Family(k Func) (family string, sigma float64, err error) {
	switch v := k.(type) {
	case Gaussian:
		return "gaussian", v.Sigma, nil
	case Laplacian:
		return "laplacian", v.Sigma, nil
	case Cauchy:
		return "cauchy", v.Sigma, nil
	case Matern32:
		return "matern32", v.Sigma, nil
	case Matern52:
		return "matern52", v.Sigma, nil
	default:
		return "", 0, fmt.Errorf("kernel: %T has no serializable family", k)
	}
}

// PairwiseSqDist returns the a.Rows x b.Rows matrix of squared Euclidean
// distances between the rows of a and the rows of b, computed via one GEMM.
// Small negative values from cancellation are clamped to zero.
func PairwiseSqDist(a, b *mat.Dense) *mat.Dense {
	d := mat.NewDense(a.Rows, b.Rows)
	pairwiseSqDistInto(d, a, b)
	return d
}

// Matrix returns the a.Rows x b.Rows kernel matrix [k(a_i, b_j)]. Radial
// kernels use the vectorized pairwise-distance path; other kernels fall
// back to elementwise evaluation.
func Matrix(k Func, a, b *mat.Dense) *mat.Dense {
	out := mat.NewDense(a.Rows, b.Rows)
	MatrixInto(out, k, a, b)
	return out
}

// MatrixInto computes the kernel matrix into preallocated dst
// (a.Rows x b.Rows, overwritten). Training loops use it to avoid
// reallocating the m x n batch kernel matrix every iteration.
func MatrixInto(dst *mat.Dense, k Func, a, b *mat.Dense) {
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("kernel: MatrixInto dst %dx%d for %dx%d result",
			dst.Rows, dst.Cols, a.Rows, b.Rows))
	}
	if r, ok := k.(Radial); ok {
		pairwiseSqDistInto(dst, a, b)
		mat.ApplyInPlace(dst, r.OfSqDist)
		return
	}
	for i := 0; i < a.Rows; i++ {
		xi := a.RowView(i)
		row := dst.RowView(i)
		for j := 0; j < b.Rows; j++ {
			row[j] = k.Eval(xi, b.RowView(j))
		}
	}
}

// pairwiseSqDistInto computes squared distances into dst (overwritten).
func pairwiseSqDistInto(dst *mat.Dense, a, b *mat.Dense) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("kernel: PairwiseSqDist feature dims %d vs %d", a.Cols, b.Cols))
	}
	an := mat.RowSumSq(a)
	bn := mat.RowSumSq(b)
	mat.MulTTo(dst, a, b) // inner products
	for i := 0; i < dst.Rows; i++ {
		row := dst.RowView(i)
		ai := an[i]
		for j := range row {
			v := ai + bn[j] - 2*row[j]
			if v < 0 {
				v = 0
			}
			row[j] = v
		}
	}
}

// Gram returns the symmetric kernel matrix of x against itself, with the
// diagonal forced to exact k(x_i, x_i) values (protects against roundoff in
// the distance computation) and symmetry enforced by averaging.
func Gram(k Func, x *mat.Dense) *mat.Dense {
	g := Matrix(k, x, x)
	for i := 0; i < g.Rows; i++ {
		g.Set(i, i, k.Eval(x.RowView(i), x.RowView(i)))
		for j := 0; j < i; j++ {
			v := 0.5 * (g.At(i, j) + g.At(j, i))
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
	}
	return g
}

// Beta returns β = max_i k(x_i, x_i), the paper's normalization constant.
// For the Radial kernels in this package it is exactly 1.
func Beta(k Func, x *mat.Dense) float64 {
	if _, ok := k.(Radial); ok {
		return 1
	}
	best := math.Inf(-1)
	for i := 0; i < x.Rows; i++ {
		if v := k.Eval(x.RowView(i), x.RowView(i)); v > best {
			best = v
		}
	}
	return best
}
