package kernel

import (
	"fmt"
	"math"
)

// Matérn kernels interpolate in smoothness between the Laplacian (ν=1/2)
// and the Gaussian (ν→∞); their polynomially-corrected exponential decay
// gives slower kernel-spectrum decay than the Gaussian, which per the
// paper's analysis translates into a larger critical batch size m*.

// Matern32 is the Matérn kernel with ν = 3/2:
// k(x,z) = (1 + √3 r/σ) · exp(−√3 r/σ) with r = ‖x−z‖.
type Matern32 struct {
	// Sigma is the length scale σ > 0.
	Sigma float64
}

// Eval implements Func.
func (m Matern32) Eval(x, z []float64) float64 { return m.OfSqDist(sqDist(x, z)) }

// OfSqDist implements Radial.
func (m Matern32) OfSqDist(d2 float64) float64 {
	if d2 <= 0 {
		return 1
	}
	t := math.Sqrt(3*d2) / m.Sigma
	return (1 + t) * math.Exp(-t)
}

// Name implements Func.
func (m Matern32) Name() string { return fmt.Sprintf("matern32(σ=%g)", m.Sigma) }

// Matern52 is the Matérn kernel with ν = 5/2:
// k(x,z) = (1 + √5 r/σ + 5r²/(3σ²)) · exp(−√5 r/σ).
type Matern52 struct {
	// Sigma is the length scale σ > 0.
	Sigma float64
}

// Eval implements Func.
func (m Matern52) Eval(x, z []float64) float64 { return m.OfSqDist(sqDist(x, z)) }

// OfSqDist implements Radial.
func (m Matern52) OfSqDist(d2 float64) float64 {
	if d2 <= 0 {
		return 1
	}
	t := math.Sqrt(5*d2) / m.Sigma
	return (1 + t + 5*d2/(3*m.Sigma*m.Sigma)) * math.Exp(-t)
}

// Name implements Func.
func (m Matern52) Name() string { return fmt.Sprintf("matern52(σ=%g)", m.Sigma) }

// sqDist avoids importing mat for the two Matérn Eval paths.
func sqDist(x, z []float64) float64 {
	if len(x) != len(z) {
		panic(fmt.Sprintf("kernel: sqDist length mismatch %d vs %d", len(x), len(z)))
	}
	s := 0.0
	for i, v := range x {
		d := v - z[i]
		s += d * d
	}
	return s
}
