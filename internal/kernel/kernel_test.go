package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eigenpro/internal/eigen"
	"eigenpro/internal/mat"
)

func randX(rng *rand.Rand, n, d int) *mat.Dense {
	x := mat.NewDense(n, d)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func allKernels() []Func {
	return []Func{Gaussian{Sigma: 2}, Laplacian{Sigma: 3}, Cauchy{Sigma: 1.5}}
}

func TestKernelValuesKnown(t *testing.T) {
	x := []float64{0, 0}
	z := []float64{3, 4} // distance 5, squared 25
	if got := (Gaussian{Sigma: 5}).Eval(x, z); math.Abs(got-math.Exp(-0.5)) > 1e-15 {
		t.Fatalf("gaussian = %v, want exp(-1/2)", got)
	}
	if got := (Laplacian{Sigma: 5}).Eval(x, z); math.Abs(got-math.Exp(-1)) > 1e-15 {
		t.Fatalf("laplacian = %v, want exp(-1)", got)
	}
	if got := (Cauchy{Sigma: 5}).Eval(x, z); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("cauchy = %v, want 0.5", got)
	}
}

func TestKernelNormalization(t *testing.T) {
	x := []float64{1.5, -2, 0.25}
	for _, k := range allKernels() {
		if got := k.Eval(x, x); math.Abs(got-1) > 1e-15 {
			t.Fatalf("%s: k(x,x) = %v, want 1", k.Name(), got)
		}
	}
}

func TestKernelSymmetryAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, k := range allKernels() {
		for trial := 0; trial < 50; trial++ {
			x := make([]float64, 4)
			z := make([]float64, 4)
			for i := range x {
				x[i] = rng.NormFloat64() * 3
				z[i] = rng.NormFloat64() * 3
			}
			a, b := k.Eval(x, z), k.Eval(z, x)
			if a != b {
				t.Fatalf("%s not symmetric: %v vs %v", k.Name(), a, b)
			}
			if a <= 0 || a > 1 {
				t.Fatalf("%s out of (0,1]: %v", k.Name(), a)
			}
		}
	}
}

func TestKernelNames(t *testing.T) {
	if (Gaussian{Sigma: 5}).Name() != "gaussian(σ=5)" {
		t.Fatalf("name = %q", (Gaussian{Sigma: 5}).Name())
	}
	if (Laplacian{Sigma: 15}).Name() != "laplacian(σ=15)" {
		t.Fatalf("name = %q", (Laplacian{Sigma: 15}).Name())
	}
	if (Cauchy{Sigma: 2}).Name() != "cauchy(σ=2)" {
		t.Fatalf("name = %q", (Cauchy{Sigma: 2}).Name())
	}
}

func TestPairwiseSqDistMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randX(rng, 9, 5)
	b := randX(rng, 7, 5)
	d := PairwiseSqDist(a, b)
	for i := 0; i < 9; i++ {
		for j := 0; j < 7; j++ {
			want := mat.SqDist(a.RowView(i), b.RowView(j))
			if math.Abs(d.At(i, j)-want) > 1e-10 {
				t.Fatalf("(%d,%d): %v vs %v", i, j, d.At(i, j), want)
			}
		}
	}
}

func TestPairwiseSqDistNonNegative(t *testing.T) {
	// Identical rows would produce tiny negatives without clamping.
	a := mat.NewDense(3, 4)
	for i := 0; i < 3; i++ {
		a.SetRow(i, []float64{1e8, -1e8, 3.7e7, 2.2e7})
	}
	d := PairwiseSqDist(a, a)
	for _, v := range d.Data {
		if v < 0 {
			t.Fatalf("negative squared distance %v", v)
		}
	}
}

func TestMatrixMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randX(rng, 8, 3)
	b := randX(rng, 6, 3)
	for _, k := range allKernels() {
		m := Matrix(k, a, b)
		if m.Rows != 8 || m.Cols != 6 {
			t.Fatalf("%s: dims %dx%d", k.Name(), m.Rows, m.Cols)
		}
		for i := 0; i < 8; i++ {
			for j := 0; j < 6; j++ {
				want := k.Eval(a.RowView(i), b.RowView(j))
				if math.Abs(m.At(i, j)-want) > 1e-10 {
					t.Fatalf("%s (%d,%d): %v vs %v", k.Name(), i, j, m.At(i, j), want)
				}
			}
		}
	}
}

// nonRadial wraps a Radial kernel hiding the Radial interface so tests can
// exercise the elementwise fallback in Matrix.
type nonRadial struct{ inner Func }

func (n nonRadial) Eval(x, z []float64) float64 { return n.inner.Eval(x, z) }
func (n nonRadial) Name() string                { return "wrapped-" + n.inner.Name() }

func TestMatrixFallbackPathMatchesRadialPath(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := randX(rng, 10, 4)
	b := randX(rng, 5, 4)
	k := Gaussian{Sigma: 1.3}
	fast := Matrix(k, a, b)
	slow := Matrix(nonRadial{k}, a, b)
	if !mat.Equal(fast, slow, 1e-10) {
		t.Fatal("radial fast path disagrees with elementwise fallback")
	}
}

func TestMatrixIntoReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	a := randX(rng, 6, 4)
	b := randX(rng, 9, 4)
	dst := mat.NewDense(6, 9)
	dst.Fill(999) // must be fully overwritten
	k := Laplacian{Sigma: 2}
	MatrixInto(dst, k, a, b)
	if !mat.Equal(dst, Matrix(k, a, b), 1e-14) {
		t.Fatal("MatrixInto disagrees with Matrix")
	}
	// Non-radial fallback path.
	MatrixInto(dst, nonRadial{k}, a, b)
	if !mat.Equal(dst, Matrix(k, a, b), 1e-12) {
		t.Fatal("MatrixInto fallback disagrees")
	}
}

func TestMatrixIntoDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatrixInto(mat.NewDense(2, 2), Gaussian{Sigma: 1}, mat.NewDense(2, 3), mat.NewDense(3, 3))
}

func TestGramSymmetricUnitDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	x := randX(rng, 12, 6)
	for _, k := range allKernels() {
		g := Gram(k, x)
		for i := 0; i < 12; i++ {
			if math.Abs(g.At(i, i)-1) > 1e-14 {
				t.Fatalf("%s: diagonal %v != 1", k.Name(), g.At(i, i))
			}
			for j := 0; j < i; j++ {
				if g.At(i, j) != g.At(j, i) {
					t.Fatalf("%s: Gram not symmetric", k.Name())
				}
			}
		}
	}
}

func TestGramPositiveSemiDefinite(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	x := randX(rng, 25, 4)
	for _, k := range allKernels() {
		g := Gram(k, x)
		s, err := eigen.Sym(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range s.Values {
			if v < -1e-9 {
				t.Fatalf("%s: negative eigenvalue %v — kernel not PSD", k.Name(), v)
			}
		}
	}
}

func TestBetaIsOneForRadial(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	x := randX(rng, 10, 3)
	for _, k := range allKernels() {
		if got := Beta(k, x); got != 1 {
			t.Fatalf("%s: Beta = %v, want 1", k.Name(), got)
		}
	}
	// Fallback path computes max diagonal.
	if got := Beta(nonRadial{Gaussian{Sigma: 2}}, x); math.Abs(got-1) > 1e-14 {
		t.Fatalf("Beta fallback = %v, want 1", got)
	}
}

// Property: kernel values decrease with distance for radial kernels.
func TestQuickRadialMonotoneDecreasing(t *testing.T) {
	kernels := []Radial{Gaussian{Sigma: 2}, Laplacian{Sigma: 2}, Cauchy{Sigma: 2}}
	f := func(d1, d2 float64) bool {
		a, b := math.Abs(d1), math.Abs(d2)
		if a > b {
			a, b = b, a
		}
		for _, k := range kernels {
			if k.OfSqDist(a) < k.OfSqDist(b)-1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gram matrices of random data are PSD via quadratic form check
// vᵀKv ≥ 0 (cheaper than eigendecomposition, more samples).
func TestQuickGramQuadraticFormNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(15)
		x := randX(r, n, 3)
		g := Gram(Laplacian{Sigma: 1.5}, x)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		return mat.Dot(v, mat.MulVec(g, v)) > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
