package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"eigenpro/internal/eigen"
)

func maternKernels() []Radial {
	return []Radial{Matern32{Sigma: 2}, Matern52{Sigma: 2}}
}

func TestMaternNormalizationAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for _, k := range maternKernels() {
		x := []float64{1, -2, 0.5}
		if got := k.Eval(x, x); got != 1 {
			t.Fatalf("%s: k(x,x) = %v", k.Name(), got)
		}
		for trial := 0; trial < 30; trial++ {
			a := []float64{rng.NormFloat64(), rng.NormFloat64()}
			b := []float64{rng.NormFloat64(), rng.NormFloat64()}
			if k.Eval(a, b) != k.Eval(b, a) {
				t.Fatalf("%s not symmetric", k.Name())
			}
			v := k.Eval(a, b)
			if v <= 0 || v > 1 {
				t.Fatalf("%s out of (0,1]: %v", k.Name(), v)
			}
		}
	}
}

func TestMaternKnownValues(t *testing.T) {
	// At r = σ: matern32 = (1+√3)e^{−√3}, matern52 = (1+√5+5/3)e^{−√5}.
	m32 := Matern32{Sigma: 2}
	want32 := (1 + math.Sqrt(3)) * math.Exp(-math.Sqrt(3))
	if got := m32.Eval([]float64{0}, []float64{2}); math.Abs(got-want32) > 1e-15 {
		t.Fatalf("matern32 = %v, want %v", got, want32)
	}
	m52 := Matern52{Sigma: 2}
	want52 := (1 + math.Sqrt(5) + 5.0/3) * math.Exp(-math.Sqrt(5))
	if got := m52.Eval([]float64{0}, []float64{2}); math.Abs(got-want52) > 1e-15 {
		t.Fatalf("matern52 = %v, want %v", got, want52)
	}
}

func TestMaternNames(t *testing.T) {
	if (Matern32{Sigma: 2}).Name() != "matern32(σ=2)" {
		t.Fatal("matern32 name wrong")
	}
	if (Matern52{Sigma: 3}).Name() != "matern52(σ=3)" {
		t.Fatal("matern52 name wrong")
	}
}

func TestMaternGramPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	x := randX(rng, 20, 4)
	for _, k := range maternKernels() {
		g := Gram(k, x)
		s, err := eigen.Sym(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range s.Values {
			if v < -1e-9 {
				t.Fatalf("%s: negative eigenvalue %v", k.Name(), v)
			}
		}
	}
}

func TestMaternSmoothnessOrdering(t *testing.T) {
	// At moderate distances the smoother kernel (higher ν) decays faster
	// near 0 curvature-wise but all stay between Laplacian and Gaussian
	// with matched length scales at large distance. Check the monotone
	// decrease property instead, which is what training relies on.
	f := func(d1, d2 float64) bool {
		a, b := math.Abs(d1), math.Abs(d2)
		if a > b {
			a, b = b, a
		}
		for _, k := range maternKernels() {
			if k.OfSqDist(a) < k.OfSqDist(b)-1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaternMatrixFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	a := randX(rng, 8, 3)
	b := randX(rng, 5, 3)
	for _, k := range maternKernels() {
		m := Matrix(k, a, b)
		for i := 0; i < 8; i++ {
			for j := 0; j < 5; j++ {
				want := k.Eval(a.RowView(i), b.RowView(j))
				if math.Abs(m.At(i, j)-want) > 1e-12 {
					t.Fatalf("%s: matrix path mismatch", k.Name())
				}
			}
		}
	}
}
