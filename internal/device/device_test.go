package device

import (
	"testing"
	"testing/quick"
	"time"
)

func testDevice() *Device {
	return &Device{
		Name:           "test",
		ParallelOps:    1e6,
		MemoryFloats:   1e6,
		WaveTime:       time.Millisecond,
		LaunchOverhead: 100 * time.Microsecond,
	}
}

func TestIterationTimeConstantBelowCapacity(t *testing.T) {
	d := testDevice()
	t1 := d.IterationTime(1)
	t2 := d.IterationTime(0.5e6)
	t3 := d.IterationTime(1e6)
	if t1 != t2 || t2 != t3 {
		t.Fatalf("sub-capacity iteration times differ: %v %v %v", t1, t2, t3)
	}
	want := d.LaunchOverhead + d.WaveTime
	if t1 != want {
		t.Fatalf("iteration time %v, want %v", t1, want)
	}
}

func TestIterationTimeLinearAboveCapacity(t *testing.T) {
	d := testDevice()
	t2x := d.IterationTime(2e6)
	t4x := d.IterationTime(4e6)
	// Subtract overhead; remaining must double.
	w2 := t2x - d.LaunchOverhead
	w4 := t4x - d.LaunchOverhead
	if w4 != 2*w2 {
		t.Fatalf("above-capacity time not linear: %v then %v", w2, w4)
	}
}

func TestIdealModeFlat(t *testing.T) {
	d := testDevice().WithMode(Ideal)
	if d.IterationTime(1) != d.IterationTime(1e12) {
		t.Fatal("ideal device must be flat in work")
	}
	if d.Name != "test-ideal" {
		t.Fatalf("name = %q", d.Name)
	}
}

func TestSequentialModeProportional(t *testing.T) {
	d := testDevice().WithMode(Sequential)
	a := d.IterationTime(1e6) - d.LaunchOverhead
	b := d.IterationTime(3e6) - d.LaunchOverhead
	if b != 3*a {
		t.Fatalf("sequential not proportional: %v vs %v", a, b)
	}
	// Sequential must be much slower than parallel for the same work.
	p := testDevice().IterationTime(1e6)
	if d.IterationTime(1e6) < 10*p {
		t.Fatal("sequential should be far slower than parallel at capacity")
	}
}

func TestModeString(t *testing.T) {
	if Parallel.String() != "parallel" || Ideal.String() != "ideal" || Sequential.String() != "sequential" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode formatting wrong")
	}
}

func TestBatchCompute(t *testing.T) {
	d := testDevice()
	// (dim+labels)*n = 100*100 = 1e4 work per batch element; capacity 1e6 → m_C = 100.
	if got := d.BatchCompute(100, 90, 10); got != 100 {
		t.Fatalf("BatchCompute = %d, want 100", got)
	}
	// Oversized per-element work still returns at least 1.
	if got := d.BatchCompute(1e6, 1000, 10); got != 1 {
		t.Fatalf("BatchCompute floor = %d, want 1", got)
	}
}

func TestBatchMemory(t *testing.T) {
	d := testDevice()
	// base = (d+l)*n = 100*9000 = 9e5; remaining 1e5 floats / n=9000 → m_S = 11.
	if got := d.BatchMemory(9000, 90, 10); got != 11 {
		t.Fatalf("BatchMemory = %d, want 11", got)
	}
	// Data alone exceeding memory yields 0.
	if got := d.BatchMemory(20000, 90, 10); got != 0 {
		t.Fatalf("BatchMemory = %d, want 0", got)
	}
}

func TestMaxBatchIsMinClamped(t *testing.T) {
	d := testDevice()
	mc := d.BatchCompute(9000, 90, 10)
	ms := d.BatchMemory(9000, 90, 10)
	got := d.MaxBatch(9000, 90, 10)
	want := mc
	if ms < want {
		want = ms
	}
	if got != want {
		t.Fatalf("MaxBatch = %d, want min(mc=%d, ms=%d)", got, mc, ms)
	}
	// Clamped to n.
	if got := d.MaxBatch(3, 1, 1); got > 3 {
		t.Fatalf("MaxBatch must not exceed n, got %d", got)
	}
	// Clamped to at least 1 even when memory-infeasible.
	if got := d.MaxBatch(20000, 90, 10); got != 1 {
		t.Fatalf("MaxBatch floor = %d, want 1", got)
	}
}

func TestFits(t *testing.T) {
	d := testDevice()
	if !d.Fits(1e6) || d.Fits(1e6+1) {
		t.Fatal("Fits boundary wrong")
	}
}

func TestSimTitanXpPreset(t *testing.T) {
	d := SimTitanXp()
	if d.Mode != Parallel {
		t.Fatal("preset must default to Parallel")
	}
	if d.ParallelOps <= 0 || d.MemoryFloats <= 0 || d.WaveTime <= 0 {
		t.Fatal("preset has non-positive parameters")
	}
	// A scaled TIMIT-like workload should saturate at a batch in the
	// hundreds-to-thousands range, matching the paper's regime.
	m := d.MaxBatch(10000, 440, 48)
	if m < 50 || m > 50000 {
		t.Fatalf("preset m_max = %d out of plausible regime", m)
	}
}

func TestClockAccumulates(t *testing.T) {
	d := testDevice()
	c := NewClock(d)
	t1 := c.Charge(1e6)
	t2 := c.Charge(2e6)
	if c.Elapsed() != t1+t2 {
		t.Fatalf("Elapsed = %v, want %v", c.Elapsed(), t1+t2)
	}
	if c.Ops() != 3e6 {
		t.Fatalf("Ops = %v, want 3e6", c.Ops())
	}
	if c.Iterations() != 2 {
		t.Fatalf("Iterations = %d, want 2", c.Iterations())
	}
	if c.Device() != d {
		t.Fatal("Device accessor wrong")
	}
	c.Reset()
	if c.Elapsed() != 0 || c.Ops() != 0 || c.Iterations() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestNegativeOpsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative ops")
		}
	}()
	testDevice().IterationTime(-1)
}

// Property: iteration time is monotone non-decreasing in work for every mode.
func TestQuickIterationTimeMonotone(t *testing.T) {
	f := func(w1, w2 float64) bool {
		a, b := abs(w1), abs(w2)
		if a > b {
			a, b = b, a
		}
		for _, mode := range []Mode{Parallel, Ideal, Sequential} {
			d := testDevice().WithMode(mode)
			if d.IterationTime(a) > d.IterationTime(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: m_max never exceeds m_C or m_S (when m_S ≥ 1) and never exceeds n.
func TestQuickMaxBatchBounds(t *testing.T) {
	f := func(nRaw, dRaw, lRaw uint16) bool {
		n := int(nRaw%5000) + 1
		dim := int(dRaw%500) + 1
		l := int(lRaw%100) + 1
		d := testDevice()
		m := d.MaxBatch(n, dim, l)
		if m < 1 || m > n {
			return false
		}
		if m > d.BatchCompute(n, dim, l) {
			return false
		}
		if ms := d.BatchMemory(n, dim, l); ms >= 1 && m > ms {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestServeBatch(t *testing.T) {
	d := SimTitanXp()
	n, dim, labels := 800, 784, 10
	got := d.ServeBatch(n, dim, labels)
	if mc := d.BatchCompute(n, dim, labels); got != mc {
		t.Fatalf("ServeBatch = %d, want compute-bound %d", got, mc)
	}
	// Unlike MaxBatch, ServeBatch is not clamped to n: a tiny model can
	// still coalesce a huge query batch.
	small := d.ServeBatch(10, 4, 2)
	if small <= 10 {
		t.Fatalf("ServeBatch clamped to center count: %d", small)
	}
	// Memory-bound regime: shrink device memory until m_S < m_C.
	tight := *d
	tight.MemoryFloats = int64((784+10)*800) + 5*800
	if got := tight.ServeBatch(n, dim, labels); got != 5 {
		t.Fatalf("memory-bound ServeBatch = %d, want 5", got)
	}
	// Degenerate: data alone overflows memory → still at least 1.
	tight.MemoryFloats = 10
	if got := tight.ServeBatch(n, dim, labels); got != 1 {
		t.Fatalf("overflow ServeBatch = %d, want 1", got)
	}
}
