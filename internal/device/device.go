// Package device models the parallel computational resource abstraction of
// the paper's §2: a resource G is characterized by its parallel capacity C_G
// (operations that fully utilize one execution wave) and its memory S_G.
//
// This is the substitution for the paper's physical GPU (Nvidia Titan Xp):
// the Go ecosystem offers no CUDA path, so experiments run against this
// deterministic simulator, which implements exactly the abstraction the
// paper's analysis uses. The per-iteration timing model is
//
//	T(work) = LaunchOverhead + WaveTime * max(1, work/C_G)
//
// i.e. constant until work saturates a wave, then linear — the shape
// measured on the real GPU in the paper's Figure 3a. An Ideal mode (always
// one wave) and a Sequential mode (time strictly proportional to work)
// reproduce the reference curves in the same figure.
package device

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Mode selects the execution model used for timing.
type Mode int

const (
	// Parallel is the realistic model: constant time per iteration up to
	// the capacity C_G, linear growth beyond it.
	Parallel Mode = iota
	// Ideal is an infinitely parallel device: every iteration takes one
	// wave regardless of the amount of work.
	Ideal
	// Sequential charges time strictly proportional to work, like a
	// single-lane machine.
	Sequential
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Parallel:
		return "parallel"
	case Ideal:
		return "ideal"
	case Sequential:
		return "sequential"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Device is a simulated parallel computational resource G = (C_G, S_G).
type Device struct {
	// Name labels the device in reports.
	Name string
	// ParallelOps is C_G: the number of scalar multiply-add operations one
	// execution wave retires at full utilization.
	ParallelOps float64
	// MemoryFloats is S_G expressed in float64 storage slots.
	MemoryFloats int64
	// WaveTime is the duration of one fully-utilized execution wave.
	WaveTime time.Duration
	// LaunchOverhead is the fixed per-iteration cost (kernel launch, sync);
	// it drives the Amdahl's-law effect in the paper's Figure 3b.
	LaunchOverhead time.Duration
	// Mode selects the timing model; zero value is the realistic Parallel.
	Mode Mode
}

// SimTitanXp returns a simulated device loosely scaled from the paper's
// Nvidia GTX Titan Xp (3840 CUDA cores, 12 GB), shrunk so that the scaled
// synthetic workloads in this repo saturate it in the same regime the
// paper's full-size workloads saturated the physical card (m_max around
// a few hundred to a few thousand).
func SimTitanXp() *Device {
	return &Device{
		Name:           "sim-titan-xp",
		ParallelOps:    6.0e8,
		MemoryFloats:   2.0e8,
		WaveTime:       2 * time.Millisecond,
		LaunchOverhead: 150 * time.Microsecond,
		Mode:           Parallel,
	}
}

// WithMode returns a copy of d using the given execution mode.
func (d *Device) WithMode(m Mode) *Device {
	cp := *d
	cp.Mode = m
	if m != Parallel {
		cp.Name = d.Name + "-" + m.String()
	}
	return &cp
}

// IterationTime returns the simulated duration of one iteration performing
// the given number of scalar operations.
func (d *Device) IterationTime(ops float64) time.Duration {
	if ops < 0 {
		panic(fmt.Sprintf("device: negative ops %v", ops))
	}
	var waves float64
	switch d.Mode {
	case Ideal:
		waves = 1
	case Sequential:
		waves = ops / d.ParallelOps * 1e3 // a single lane ~1000x slower per op
	default:
		waves = math.Max(1, ops/d.ParallelOps)
	}
	return d.LaunchOverhead + time.Duration(waves*float64(d.WaveTime))
}

// BatchCompute returns m_C: the largest batch size whose per-iteration work
// (d+l)·m·n still fits in one wave (paper Step 1). At least 1.
func (d *Device) BatchCompute(n, dim, labels int) int {
	work := float64(dim+labels) * float64(n)
	if work <= 0 {
		return 1
	}
	m := int(d.ParallelOps / work)
	if m < 1 {
		m = 1
	}
	return m
}

// BatchMemory returns m_S: the largest batch size such that the working set
// (d+l+m)·n fits in device memory (paper Step 1). Returns 0 when even m=0
// does not fit (the data itself exceeds memory).
func (d *Device) BatchMemory(n, dim, labels int) int {
	base := int64(dim+labels) * int64(n)
	if base >= d.MemoryFloats {
		return 0
	}
	m := (d.MemoryFloats - base) / int64(n)
	if m > math.MaxInt32 {
		m = math.MaxInt32
	}
	return int(m)
}

// MaxBatch returns m_max = min(m_C, m_S) clamped to [1, n], the batch size
// that fully utilizes the device for an n-sample, dim-feature,
// labels-output workload (paper Step 1: m_max = min{m_C, m_S}). It is
// ServeBatch clamped to the training-set size: a training mini-batch cannot
// exceed n.
func (d *Device) MaxBatch(n, dim, labels int) int {
	m := d.ServeBatch(n, dim, labels)
	if m > n {
		m = n
	}
	return m
}

// ServeBatch returns the inference analogue of MaxBatch: the largest
// query-batch size m that fully utilizes the device when predicting with a
// model of n centers, dim features, and labels outputs. The per-row work
// (n·(d+l)) and working set ((d+l+m)·n) match the training formulas, but
// the result is not clamped to n — a serving batch coalesces independent
// queries, so its size is unrelated to the training-set size. At least 1.
func (d *Device) ServeBatch(n, dim, labels int) int {
	m := d.BatchCompute(n, dim, labels)
	if ms := d.BatchMemory(n, dim, labels); ms < m {
		m = ms
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Fits reports whether a working set of the given float64 count fits in
// device memory.
func (d *Device) Fits(floats int64) bool { return floats <= d.MemoryFloats }

// Clock accumulates simulated execution time and operation counts for a
// sequence of iterations on a device. All methods are safe for concurrent
// use, so a metrics scrape can read a clock that serving workers are
// charging without an external lock.
type Clock struct {
	dev     *Device
	mu      sync.Mutex
	elapsed time.Duration
	ops     float64
	iters   int64
}

// NewClock returns a clock bound to the given device.
func NewClock(d *Device) *Clock { return &Clock{dev: d} }

// Charge records one iteration of the given operation count and returns its
// simulated duration.
func (c *Clock) Charge(ops float64) time.Duration {
	t := c.dev.IterationTime(ops)
	c.mu.Lock()
	c.elapsed += t
	c.ops += ops
	c.iters++
	c.mu.Unlock()
	return t
}

// Elapsed returns total simulated time charged so far.
func (c *Clock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed
}

// Ops returns total operations charged so far.
func (c *Clock) Ops() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Iterations returns the number of Charge calls.
func (c *Clock) Iterations() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.iters
}

// Reset zeroes the clock.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.elapsed, c.ops, c.iters = 0, 0, 0
	c.mu.Unlock()
}

// Restore sets the clock's accumulated totals. It is the inverse of reading
// Elapsed/Ops/Iterations, used when resuming a checkpointed training run so
// simulated-time accounting continues where the interrupted run left off.
func (c *Clock) Restore(elapsed time.Duration, ops float64, iters int64) {
	c.mu.Lock()
	c.elapsed, c.ops, c.iters = elapsed, ops, iters
	c.mu.Unlock()
}

// Device returns the device the clock charges against.
func (c *Clock) Device() *Device { return c.dev }
