package device

import (
	"fmt"
	"time"
)

// GroupOptions configures NewGroup.
type GroupOptions struct {
	// SyncOverhead is the fixed per-iteration cost of synchronizing the
	// devices (gradient exchange / allreduce latency). It adds to the
	// group's LaunchOverhead.
	SyncOverhead time.Duration
	// ScalingEfficiency in (0,1] discounts the aggregate parallel capacity
	// for interconnect bandwidth limits; 1 means perfect scaling.
	// Default 0.9.
	ScalingEfficiency float64
}

// NewGroup composes count identical devices into a single data-parallel
// resource, the multi-GPU extension sketched in the paper's §6 ("Going
// beyond that ... using multi-GPU setups is the next natural step").
//
// Under synchronous data parallelism a mini-batch is split evenly across
// the devices, so the aggregate parallel capacity is (nearly) the sum of
// the members' and the usable memory for the batch-dependent working set
// grows likewise, while every iteration pays an extra synchronization
// cost. The returned Device plugs into the existing batch-size selection:
// m_max grows roughly ×count, and the adaptive kernel responds with a
// deeper q — resource adaptivity across device counts, not just device
// sizes.
func NewGroup(base *Device, count int, opt GroupOptions) (*Device, error) {
	if base == nil {
		return nil, fmt.Errorf("device: NewGroup with nil base device")
	}
	if count < 1 {
		return nil, fmt.Errorf("device: NewGroup count %d < 1", count)
	}
	if opt.SyncOverhead < 0 {
		return nil, fmt.Errorf("device: NewGroup sync overhead %v < 0", opt.SyncOverhead)
	}
	eff := opt.ScalingEfficiency
	if eff == 0 {
		eff = 0.9
	}
	if eff <= 0 || eff > 1 {
		return nil, fmt.Errorf("device: NewGroup efficiency %v out of (0,1]", eff)
	}
	scale := 1 + float64(count-1)*eff
	g := *base
	g.Name = fmt.Sprintf("%s-x%d", base.Name, count)
	g.ParallelOps = base.ParallelOps * scale
	// Each device replicates the training data and model (the n·(d+l)
	// term) but the m·n batch working set shards, so aggregate memory
	// scales with the batch share each member holds. Conservatively grant
	// the summed memory discounted by the replication of the base working
	// set: S_group = count·S − (count−1)·0 handled by callers; we expose
	// the summed capacity, which is exact for the sharded m·n term and
	// optimistic for the replicated d,l terms.
	g.MemoryFloats = base.MemoryFloats * int64(count)
	if count > 1 {
		g.LaunchOverhead = base.LaunchOverhead + opt.SyncOverhead
	}
	return &g, nil
}
