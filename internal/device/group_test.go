package device

import (
	"testing"
	"time"
)

func TestNewGroupErrors(t *testing.T) {
	if _, err := NewGroup(nil, 2, GroupOptions{}); err == nil {
		t.Fatal("nil base must error")
	}
	if _, err := NewGroup(testDevice(), 0, GroupOptions{}); err == nil {
		t.Fatal("count 0 must error")
	}
	if _, err := NewGroup(testDevice(), -3, GroupOptions{}); err == nil {
		t.Fatal("negative count must error")
	}
	if _, err := NewGroup(testDevice(), 2, GroupOptions{ScalingEfficiency: 1.5}); err == nil {
		t.Fatal("efficiency > 1 must error")
	}
	if _, err := NewGroup(testDevice(), 2, GroupOptions{ScalingEfficiency: -0.5}); err == nil {
		t.Fatal("negative efficiency must error")
	}
	if _, err := NewGroup(testDevice(), 2, GroupOptions{SyncOverhead: -time.Millisecond}); err == nil {
		t.Fatal("negative sync overhead must error")
	}
	// The zero value stays valid: default efficiency, no sync cost.
	if _, err := NewGroup(testDevice(), 2, GroupOptions{}); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
}

func TestNewGroupSingleIsIdentity(t *testing.T) {
	base := testDevice()
	g, err := NewGroup(base, 1, GroupOptions{SyncOverhead: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if g.ParallelOps != base.ParallelOps || g.MemoryFloats != base.MemoryFloats {
		t.Fatal("single-device group must match base capacity")
	}
	if g.LaunchOverhead != base.LaunchOverhead {
		t.Fatal("single-device group must pay no sync overhead")
	}
}

func TestNewGroupScalesCapacity(t *testing.T) {
	base := testDevice()
	g4, err := NewGroup(base, 4, GroupOptions{ScalingEfficiency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g4.ParallelOps != 4*base.ParallelOps {
		t.Fatalf("perfect scaling: ops = %v, want %v", g4.ParallelOps, 4*base.ParallelOps)
	}
	if g4.MemoryFloats != 4*base.MemoryFloats {
		t.Fatalf("memory = %v, want %v", g4.MemoryFloats, 4*base.MemoryFloats)
	}
	if g4.Name != "test-x4" {
		t.Fatalf("name = %q", g4.Name)
	}
	// Imperfect scaling discounts the added devices only.
	g2, err := NewGroup(base, 2, GroupOptions{ScalingEfficiency: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if g2.ParallelOps != 1.5*base.ParallelOps {
		t.Fatalf("ops = %v, want 1.5x", g2.ParallelOps)
	}
}

func TestNewGroupSyncOverhead(t *testing.T) {
	base := testDevice()
	g, err := NewGroup(base, 2, GroupOptions{SyncOverhead: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if g.LaunchOverhead != base.LaunchOverhead+time.Millisecond {
		t.Fatalf("overhead = %v", g.LaunchOverhead)
	}
}

func TestGroupRaisesMaxBatch(t *testing.T) {
	base := testDevice()
	n, d, l := 100, 90, 10
	single := base.MaxBatch(n, d, l)
	g, err := NewGroup(base, 4, GroupOptions{ScalingEfficiency: 1})
	if err != nil {
		t.Fatal(err)
	}
	grouped := g.MaxBatch(n, d, l)
	if grouped <= single && single < n {
		t.Fatalf("group m_max %d not above single %d", grouped, single)
	}
}
