package falkon

import (
	"math"
	"testing"

	"eigenpro/internal/data"
	"eigenpro/internal/device"
	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
	"eigenpro/internal/metrics"
)

func testDataset(n int) *data.Dataset {
	return data.Generate(data.GenConfig{
		Name: "test", N: n, Dim: 20, Classes: 4, LatentDim: 6, Seed: 77,
	})
}

func fitConfig() Config {
	return Config{
		Kernel:  kernel.Gaussian{Sigma: 4},
		Centers: 120,
		Lambda:  1e-6,
		Iters:   30,
		Seed:    3,
	}
}

func TestFitErrors(t *testing.T) {
	ds := testDataset(50)
	if _, err := Fit(Config{Centers: 10}, ds.X, ds.Y); err == nil {
		t.Fatal("missing kernel must error")
	}
	cfg := fitConfig()
	cfg.Centers = 1
	if _, err := Fit(cfg, ds.X, ds.Y); err == nil {
		t.Fatal("centers=1 must error")
	}
	cfg = fitConfig()
	cfg.Centers = 100
	if _, err := Fit(cfg, ds.X, ds.Y); err == nil {
		t.Fatal("centers>n must error")
	}
	if _, err := Fit(fitConfig(), ds.X, mat.NewDense(10, 2)); err == nil {
		t.Fatal("row mismatch must error")
	}
}

func TestFitClassifiesSeparableData(t *testing.T) {
	ds := testDataset(600)
	train, test := ds.Split(0.8, 1)
	cfg := fitConfig()
	res, err := Fit(cfg, train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	errRate := metrics.ClassificationError(res.Model.Predict(test.X), test.Labels)
	if errRate > 0.1 {
		t.Fatalf("test error %v too high for separable data", errRate)
	}
	if res.WallTime <= 0 {
		t.Fatal("wall time not recorded")
	}
}

// With M = n centers and λ → 0, FALKON approaches the exact kernel
// interpolant: compare its CG solution to the directly solved normal
// equations.
func TestFitMatchesDirectSolve(t *testing.T) {
	ds := testDataset(120)
	k := kernel.Gaussian{Sigma: 4}
	cfg := Config{Kernel: k, Centers: 120, Lambda: 1e-7, Iters: 200, Seed: 5}
	res, err := Fit(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	// Direct solve: H β = K_nmᵀ y.
	knm := kernel.Matrix(k, ds.X, res.Model.Centers)
	kmm := kernel.Gram(k, res.Model.Centers)
	h := mat.TMul(knm, knm)
	lamN := cfg.Lambda * float64(ds.N())
	for i := 0; i < h.Rows; i++ {
		for j := 0; j < h.Cols; j++ {
			h.Set(i, j, h.At(i, j)+lamN*kmm.At(i, j))
		}
		h.Set(i, i, h.At(i, i)+1e-8)
	}
	l, err := mat.Cholesky(h)
	if err != nil {
		t.Fatal(err)
	}
	direct := mat.CholeskySolveMat(l, mat.TMul(knm, ds.Y))
	// Compare predictions (coefficients can differ along near-null
	// directions without affecting the function).
	probe := testDataset(50).X
	pa := res.Model.Predict(probe)
	directModel := &Model{Kern: k, Centers: res.Model.Centers, Beta: direct}
	pb := directModel.Predict(probe)
	if mse := metrics.MSE(pa, pb); mse > 1e-6 {
		t.Fatalf("CG solution deviates from direct solve: mse %v", mse)
	}
}

func TestFitDeterministic(t *testing.T) {
	ds := testDataset(200)
	a, err := Fit(fitConfig(), ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(fitConfig(), ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Model.Beta.Data {
		if a.Model.Beta.Data[i] != b.Model.Beta.Data[i] {
			t.Fatal("FALKON not deterministic for fixed seed")
		}
	}
}

func TestFitChargesDevice(t *testing.T) {
	ds := testDataset(200)
	cfg := fitConfig()
	cfg.Device = device.SimTitanXp()
	res, err := Fit(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimTime <= 0 {
		t.Fatal("device time not charged")
	}
}

func TestMoreCentersImproveFit(t *testing.T) {
	ds := testDataset(500)
	train, test := ds.Split(0.8, 2)
	run := func(centers int) float64 {
		cfg := fitConfig()
		cfg.Centers = centers
		res, err := Fit(cfg, train.X, train.Y)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.MSE(res.Model.Predict(test.X), test.Y)
	}
	small := run(10)
	large := run(200)
	if large > small {
		t.Fatalf("more centers worsened test MSE: %v (M=10) vs %v (M=200)", small, large)
	}
}

func TestPredictLabels(t *testing.T) {
	ds := testDataset(300)
	res, err := Fit(fitConfig(), ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	labels := res.Model.PredictLabels(ds.X)
	if len(labels) != ds.N() {
		t.Fatalf("got %d labels", len(labels))
	}
	wrong := 0
	for i, l := range labels {
		if l != ds.Labels[i] {
			wrong++
		}
	}
	if frac := float64(wrong) / float64(len(labels)); frac > 0.05 {
		t.Fatalf("train error %v too high", frac)
	}
}

func TestConjugateGradientSolvesSPD(t *testing.T) {
	// 3x3 SPD system with known solution.
	a := mat.NewDenseData(3, 3, []float64{4, 1, 0, 1, 3, 1, 0, 1, 2})
	want := []float64{1, -2, 3}
	rhs := mat.MulVec(a, want)
	got := conjugateGradient(func(v []float64) []float64 { return mat.MulVec(a, v) }, rhs, 50)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("cg[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
