// Package falkon implements the FALKON kernel solver of Rudi, Carratino &
// Rosasco (NeurIPS 2017), the strongest single-GPU baseline the paper
// compares against in Table 2. FALKON combines a Nyström approximation
// with M random centers, ridge regularization λ, and conjugate gradient
// iterations preconditioned by Cholesky factors of the center matrix:
//
//	minimize over β:  ||K_nm β − y||² + λ n βᵀ K_mm β
//	normal equations:  H β = K_nmᵀ y,   H = K_nmᵀ K_nm + λ n K_mm
//	preconditioner:    B = T⁻¹ A⁻¹,  T T ᵀ = K_mm,  A Aᵀ = TᵀT/M + λ n I
//
// CG runs on the symmetric system (Bᵀ H B) γ = Bᵀ K_nmᵀ y with β = B γ.
package falkon

import (
	"fmt"
	"math/rand"
	"time"

	"eigenpro/internal/device"
	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
)

// Config controls a FALKON fit.
type Config struct {
	// Kernel is required.
	Kernel kernel.Func
	// Centers is the number M of Nyström centers (required >= 2).
	Centers int
	// Lambda is the ridge parameter λ (>= 0; a tiny jitter is always added
	// for numerical stability).
	Lambda float64
	// Iters is the number of CG iterations (default 20, the value the
	// FALKON paper reports as sufficient).
	Iters int
	// Seed fixes center sampling.
	Seed int64
	// Device, when non-nil, is charged with the simulated cost of the
	// solve for resource-time comparisons.
	Device *device.Device
}

// Model is a fitted FALKON predictor f(x) = Σ_j β_j k(c_j, x).
type Model struct {
	// Kern is the kernel.
	Kern kernel.Func
	// Centers holds the M Nyström centers (M x d).
	Centers *mat.Dense
	// Beta holds the coefficients (M x l).
	Beta *mat.Dense
}

// Result reports a completed fit.
type Result struct {
	// Model is the fitted predictor.
	Model *Model
	// Iters is the number of CG iterations executed per output column.
	Iters int
	// SimTime is the simulated device time (0 without a device).
	SimTime time.Duration
	// WallTime is the measured host time.
	WallTime time.Duration
}

// Fit trains a FALKON model on x (n x d) with targets y (n x l).
func Fit(cfg Config, x, y *mat.Dense) (*Result, error) {
	if cfg.Kernel == nil {
		return nil, fmt.Errorf("falkon: Config.Kernel is required")
	}
	n := x.Rows
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("falkon: %d samples with %d target rows", x.Rows, y.Rows)
	}
	m := cfg.Centers
	if m < 2 || m > n {
		return nil, fmt.Errorf("falkon: Centers=%d out of [2,%d]", m, n)
	}
	iters := cfg.Iters
	if iters <= 0 {
		iters = 20
	}
	start := time.Now()
	var clock *device.Clock
	if cfg.Device != nil {
		clock = device.NewClock(cfg.Device)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := rng.Perm(n)[:m]
	centers := x.SelectRows(idx)

	knm := kernel.Matrix(cfg.Kernel, x, centers) // n x M
	kmm := kernel.Gram(cfg.Kernel, centers)      // M x M
	if clock != nil {
		// Kernel matrices: n·M·d + M²·d ops; factorizations: 2·M³/3.
		clock.Charge(float64(n)*float64(m)*float64(x.Cols) +
			float64(m)*float64(m)*float64(x.Cols) +
			2.0/3.0*float64(m)*float64(m)*float64(m))
	}

	lam := cfg.Lambda
	jitter := 1e-10 * float64(m)
	// T Tᵀ = K_mm (+ jitter I).
	kmmJ := kmm.Clone()
	for i := 0; i < m; i++ {
		kmmJ.Set(i, i, kmmJ.At(i, i)+jitter)
	}
	lT, err := mat.Cholesky(kmmJ)
	if err != nil {
		return nil, fmt.Errorf("falkon: K_mm factorization: %w", err)
	}
	// A Aᵀ = TᵀT/M + λ n I where T is the lower factor lT.
	d := mat.TMul(lT, lT)
	mat.ScaleInPlace(d, 1/float64(m))
	reg := lam*float64(n) + jitter
	for i := 0; i < m; i++ {
		d.Set(i, i, d.At(i, i)+reg)
	}
	lA, err := mat.Cholesky(d)
	if err != nil {
		return nil, fmt.Errorf("falkon: preconditioner factorization: %w", err)
	}

	// Preconditioner applications: B z = T⁻ᵀ(A⁻ᵀ z)? Using lower factors,
	// B = (lTᵀ)⁻¹ (lAᵀ)⁻¹ and Bᵀ = lA⁻¹ lT⁻¹.
	applyB := func(z []float64) []float64 {
		u := mat.SolveUpperTriFromLowerT(lA, z)
		return mat.SolveUpperTriFromLowerT(lT, u)
	}
	applyBT := func(z []float64) []float64 {
		u := mat.SolveLowerTri(lT, z)
		return mat.SolveLowerTri(lA, u)
	}
	// H v = K_nmᵀ(K_nm v) + λ n K_mm v.
	applyH := func(v []float64) []float64 {
		t1 := mat.MulVec(knm, v)
		out := mat.TMulVec(knm, t1)
		t2 := mat.MulVec(kmm, v)
		for i := range out {
			out[i] += lam * float64(n) * t2[i]
		}
		return out
	}
	// Preconditioned operator: γ -> Bᵀ H B γ.
	applyOp := func(g []float64) []float64 { return applyBT(applyH(applyB(g))) }

	beta := mat.NewDense(m, y.Cols)
	perIterOps := 2*float64(n)*float64(m) + 6*float64(m)*float64(m)
	for col := 0; col < y.Cols; col++ {
		rhs := applyBT(mat.TMulVec(knm, y.Col(col)))
		gamma := conjugateGradient(applyOp, rhs, iters)
		beta.SetCol(col, applyB(gamma))
		if clock != nil {
			clock.Charge(perIterOps * float64(iters))
		}
	}

	res := &Result{
		Model:    &Model{Kern: cfg.Kernel, Centers: centers, Beta: beta},
		Iters:    iters,
		WallTime: time.Since(start),
	}
	if clock != nil {
		res.SimTime = clock.Elapsed()
	}
	return res, nil
}

// conjugateGradient runs iters steps of CG for the SPD operator apply on
// rhs, starting from zero.
func conjugateGradient(apply func([]float64) []float64, rhs []float64, iters int) []float64 {
	n := len(rhs)
	xv := make([]float64, n)
	r := make([]float64, n)
	copy(r, rhs)
	p := make([]float64, n)
	copy(p, rhs)
	rs := mat.Dot(r, r)
	for it := 0; it < iters; it++ {
		if rs <= 1e-28 {
			break
		}
		ap := apply(p)
		den := mat.Dot(p, ap)
		if den <= 0 {
			break
		}
		alpha := rs / den
		mat.Axpy(alpha, p, xv)
		mat.Axpy(-alpha, ap, r)
		rsNew := mat.Dot(r, r)
		betaCG := rsNew / rs
		for i := range p {
			p[i] = r[i] + betaCG*p[i]
		}
		rs = rsNew
	}
	return xv
}

// Predict evaluates the model on the rows of xq.
func (m *Model) Predict(xq *mat.Dense) *mat.Dense {
	kb := kernel.Matrix(m.Kern, xq, m.Centers)
	return mat.Mul(kb, m.Beta)
}

// PredictLabels returns the argmax class of each prediction row.
func (m *Model) PredictLabels(xq *mat.Dense) []int {
	pred := m.Predict(xq)
	out := make([]int, pred.Rows)
	for i := range out {
		out[i] = mat.ArgMaxRow(pred.RowView(i))
	}
	return out
}
