package mat

import (
	"runtime"
	"sync"
)

// gemmMinParallelWork is the number of multiply-adds below which matrix
// products run single-threaded; goroutine fan-out costs more than it saves
// on tiny operands.
const gemmMinParallelWork = 1 << 16

// workers returns the degree of parallelism used for matrix products.
var workers = runtime.GOMAXPROCS(0)

// parallelRows splits rows [0,n) into contiguous chunks and runs fn on each
// chunk concurrently. fn receives the half-open row range [lo,hi).
func parallelRows(n int, minWorkPerRow int, fn func(lo, hi int)) {
	w := workers
	if w > n {
		w = n
	}
	if w <= 1 || n*minWorkPerRow < gemmMinParallelWork {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Mul returns the matrix product a*b. It panics if a.Cols != b.Rows.
// Work is split across GOMAXPROCS goroutines by row blocks with an ikj
// loop order for cache-friendly access to b.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(dimErr("Mul", a, b))
	}
	out := NewDense(a.Rows, b.Cols)
	MulTo(out, a, b)
	return out
}

// MulTo computes dst = a*b into preallocated dst (overwritten). dst must be
// a.Rows x b.Cols and must not alias a or b.
func MulTo(dst, a, b *Dense) {
	if a.Cols != b.Rows {
		panic(dimErr("MulTo", a, b))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(dimErr("MulTo dst", dst, b))
	}
	n, k, m := a.Rows, a.Cols, b.Cols
	parallelRows(n, k*m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.RowView(i)
			drow := dst.RowView(i)
			for j := range drow {
				drow[j] = 0
			}
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b.Data[p*m : (p+1)*m]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// MulT returns a * bᵀ without materializing the transpose; b is accessed by
// rows, which is the cache-friendly layout for kernel Gram computations
// where both operands store one sample per row.
func MulT(a, b *Dense) *Dense {
	out := NewDense(a.Rows, b.Rows)
	MulTTo(out, a, b)
	return out
}

// MulTTo computes dst = a * bᵀ into preallocated dst (overwritten). dst
// must be a.Rows x b.Rows and must not alias a or b.
func MulTTo(dst, a, b *Dense) {
	if a.Cols != b.Cols {
		panic(dimErr("MulTTo", a, b))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(dimErr("MulTTo dst", dst, b))
	}
	out := dst
	n, k, m := a.Rows, a.Cols, b.Rows
	parallelRows(n, k*m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.RowView(i)
			drow := out.RowView(i)
			for j := 0; j < m; j++ {
				brow := b.RowView(j)
				s := 0.0
				for p := 0; p < k; p++ {
					s += arow[p] * brow[p]
				}
				drow[j] = s
			}
		}
	})
}

// TMul returns aᵀ * b without materializing the transpose.
func TMul(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(dimErr("TMul", a, b))
	}
	k, n, m := a.Rows, a.Cols, b.Cols
	out := NewDense(n, m)
	// Accumulate independently per output-row block to stay race-free:
	// out[i,:] = sum_p a[p,i] * b[p,:].
	parallelRows(n, k*m, func(lo, hi int) {
		for p := 0; p < k; p++ {
			arow := a.RowView(p)
			brow := b.RowView(p)
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				drow := out.RowView(i)
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MulVec returns the matrix-vector product a*x as a new slice.
func MulVec(a *Dense, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(dimErr("MulVec", a, &Dense{Rows: len(x), Cols: 1}))
	}
	out := make([]float64, a.Rows)
	parallelRows(a.Rows, a.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = Dot(a.RowView(i), x)
		}
	})
	return out
}

// TMulVec returns aᵀ*x as a new slice (length a.Cols).
func TMulVec(a *Dense, x []float64) []float64 {
	if a.Rows != len(x) {
		panic(dimErr("TMulVec", a, &Dense{Rows: len(x), Cols: 1}))
	}
	out := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		Axpy(x[i], a.RowView(i), out)
	}
	return out
}

// MulNaive is a straightforward triple-loop reference product used by tests
// to validate the parallel implementations.
func MulNaive(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(dimErr("MulNaive", a, b))
	}
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for p := 0; p < a.Cols; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}
