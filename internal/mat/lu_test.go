package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnownSystem(t *testing.T) {
	a := NewDenseData(3, 3, []float64{2, 1, -1, -3, -1, 2, -2, 1, 2})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := randDense(rng, n, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := MulVec(a, want)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-8 {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, x[i], want[i])
			}
		}
	}
}

func TestLUSingularDetection(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 4})
	if _, err := Solve(a, []float64{1, 1}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	d, err := Det(a)
	if err != nil || d != 0 {
		t.Fatalf("Det = %v, %v; want 0", d, err)
	}
}

func TestLUDet(t *testing.T) {
	a := NewDenseData(2, 2, []float64{3, 1, 4, 2}) // det = 2
	d, err := Det(a)
	if err != nil || math.Abs(d-2) > 1e-12 {
		t.Fatalf("Det = %v (%v), want 2", d, err)
	}
	// Determinant of identity is 1 even after pivoting.
	d, _ = Det(Eye(5))
	if math.Abs(d-1) > 1e-12 {
		t.Fatalf("Det(I) = %v", d)
	}
}

func TestLUInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	a := randDense(rng, 15, 15)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(Mul(a, inv), Eye(15), 1e-9) {
		t.Fatal("A·A⁻¹ != I")
	}
	if !Equal(Mul(inv, a), Eye(15), 1e-9) {
		t.Fatal("A⁻¹·A != I")
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := FactorLU(NewDense(2, 3)); err == nil {
		t.Fatal("non-square must error")
	}
}

func TestLUSolveMat(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	a := randDense(rng, 10, 10)
	x := randDense(rng, 10, 3)
	b := Mul(a, x)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.SolveMat(b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, x, 1e-8) {
		t.Fatal("SolveMat mismatch")
	}
}

// Property: det(A·B) == det(A)·det(B).
func TestQuickDetMultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randDense(r, n, n)
		b := randDense(r, n, n)
		da, err1 := Det(a)
		db, err2 := Det(b)
		dab, err3 := Det(Mul(a, b))
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return math.Abs(dab-da*db) < 1e-8*(1+math.Abs(da*db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: LU solve agrees with Cholesky solve on SPD systems.
func TestQuickLUAgreesWithCholesky(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(15)
		a := randSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x1, err := Solve(a, b)
		if err != nil {
			return false
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x2 := CholeskySolve(l, b)
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
