package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSPD returns a random symmetric positive definite n x n matrix.
func randSPD(rng *rand.Rand, n int) *Dense {
	a := randDense(rng, n, n)
	spd := MulT(a, a) // A*Aᵀ is PSD
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n)) // shift to make strictly PD
	}
	return spd
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 2, 5, 20, 50} {
		a := randSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		recon := MulT(l, l)
		if !Equal(recon, a, 1e-8*float64(n)) {
			t.Fatalf("n=%d: L*Lᵀ != A", n)
		}
		// L must be lower triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("n=%d: L not lower triangular at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 30
	a := randSPD(rng, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := MulVec(a, x)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	got := CholeskySolve(l, b)
	for i := range got {
		if math.Abs(got[i]-x[i]) > 1e-7 {
			t.Fatalf("solve[%d] = %v, want %v", i, got[i], x[i])
		}
	}
}

func TestCholeskySolveMat(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 15
	a := randSPD(rng, n)
	x := randDense(rng, n, 4)
	b := Mul(a, x)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	got := CholeskySolveMat(l, b)
	if !Equal(got, x, 1e-7) {
		t.Fatal("CholeskySolveMat mismatch")
	}
}

func TestTriangularSolves(t *testing.T) {
	l := NewDenseData(3, 3, []float64{2, 0, 0, 1, 3, 0, -1, 2, 4})
	x := []float64{1, -2, 0.5}
	b := MulVec(l, x)
	got := SolveLowerTri(l, b)
	for i := range got {
		if math.Abs(got[i]-x[i]) > 1e-12 {
			t.Fatalf("SolveLowerTri[%d] = %v, want %v", i, got[i], x[i])
		}
	}
	bt := MulVec(l.T(), x)
	gotT := SolveUpperTriFromLowerT(l, bt)
	for i := range gotT {
		if math.Abs(gotT[i]-x[i]) > 1e-12 {
			t.Fatalf("SolveUpperTriFromLowerT[%d] = %v, want %v", i, gotT[i], x[i])
		}
	}
}

func TestQRThinOrthonormalAndReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, dims := range [][2]int{{5, 5}, {10, 4}, {40, 12}} {
		a := randDense(rng, dims[0], dims[1])
		q, r := QRThin(a)
		// QᵀQ = I
		qtq := TMul(q, q)
		if !Equal(qtq, Eye(dims[1]), 1e-10) {
			t.Fatalf("dims %v: QᵀQ != I", dims)
		}
		// QR = A
		if !Equal(Mul(q, r), a, 1e-10) {
			t.Fatalf("dims %v: QR != A", dims)
		}
		// R upper triangular
		for i := 0; i < dims[1]; i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Fatalf("dims %v: R not upper triangular", dims)
				}
			}
		}
	}
}

func TestQRThinRankDeficient(t *testing.T) {
	// Second column is a multiple of the first.
	a := NewDenseData(3, 2, []float64{1, 2, 1, 2, 1, 2})
	q, r := QRThin(a)
	if math.Abs(r.At(1, 1)) > 1e-10 {
		t.Fatalf("rank-deficient column should produce ~0 diagonal, got %v", r.At(1, 1))
	}
	if !Equal(Mul(q, r), a, 1e-10) {
		t.Fatal("QR != A for rank-deficient input")
	}
}

func TestOrthonormalizeSpansSameSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randDense(rng, 20, 5)
	q := Orthonormalize(a)
	// Projecting A onto span(Q) must reproduce A: Q Qᵀ A == A.
	proj := Mul(q, TMul(q, a))
	if !Equal(proj, a, 1e-9) {
		t.Fatal("Q does not span col(A)")
	}
}

// Property: Cholesky solve returns a vector satisfying A x = b.
func TestQuickCholeskySolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(25)
		a := randSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		x := CholeskySolve(l, b)
		res := MulVec(a, x)
		for i := range res {
			if math.Abs(res[i]-b[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
