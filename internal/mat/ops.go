package mat

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise.
func Add(a, b *Dense) *Dense {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(dimErr("Add", a, b))
	}
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Dense) *Dense {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(dimErr("Sub", a, b))
	}
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// SubInPlace computes a -= b elementwise.
func SubInPlace(a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(dimErr("SubInPlace", a, b))
	}
	for i := range a.Data {
		a.Data[i] -= b.Data[i]
	}
}

// AddInPlace computes a += b elementwise.
func AddInPlace(a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(dimErr("AddInPlace", a, b))
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// Scale returns s * a.
func Scale(s float64, a *Dense) *Dense {
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = s * v
	}
	return out
}

// ScaleInPlace multiplies every element of a by s.
func ScaleInPlace(a *Dense, s float64) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

// AddScaledInPlace computes a += s*b elementwise (axpy).
func AddScaledInPlace(a *Dense, s float64, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(dimErr("AddScaledInPlace", a, b))
	}
	for i := range a.Data {
		a.Data[i] += s * b.Data[i]
	}
}

// Hadamard returns the elementwise product a .* b.
func Hadamard(a, b *Dense) *Dense {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(dimErr("Hadamard", a, b))
	}
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
	return out
}

// Apply returns f applied to every element of a.
func Apply(a *Dense, f func(float64) float64) *Dense {
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ApplyInPlace replaces every element of a with f(element).
func ApplyInPlace(a *Dense, f func(float64) float64) {
	for i, v := range a.Data {
		a.Data[i] = f(v)
	}
}

// Dot returns the inner product of equal-length vectors x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += a*x for equal-length vectors.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Norm2 returns the Euclidean norm of x with overflow-safe scaling.
func Norm2(x []float64) float64 {
	scale := 0.0
	for _, v := range x {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	if scale == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		r := v / scale
		sum += r * r
	}
	return scale * math.Sqrt(sum)
}

// SqDist returns the squared Euclidean distance between x and z.
func SqDist(x, z []float64) float64 {
	if len(x) != len(z) {
		panic(fmt.Sprintf("mat: SqDist length mismatch %d vs %d", len(x), len(z)))
	}
	s := 0.0
	for i, v := range x {
		d := v - z[i]
		s += d * d
	}
	return s
}

// RowSumSq returns per-row squared Euclidean norms of a.
func RowSumSq(a *Dense) []float64 {
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		s := 0.0
		for _, v := range a.RowView(i) {
			s += v * v
		}
		out[i] = s
	}
	return out
}

// ColMeans returns the per-column mean of a.
func ColMeans(a *Dense) []float64 {
	out := make([]float64, a.Cols)
	if a.Rows == 0 {
		return out
	}
	for i := 0; i < a.Rows; i++ {
		for j, v := range a.RowView(i) {
			out[j] += v
		}
	}
	inv := 1.0 / float64(a.Rows)
	for j := range out {
		out[j] *= inv
	}
	return out
}

// ColStds returns the per-column standard deviation of a around the given
// means (population convention, divisor n).
func ColStds(a *Dense, means []float64) []float64 {
	if len(means) != a.Cols {
		panic(fmt.Sprintf("mat: ColStds: %d means for %d cols", len(means), a.Cols))
	}
	out := make([]float64, a.Cols)
	if a.Rows == 0 {
		return out
	}
	for i := 0; i < a.Rows; i++ {
		for j, v := range a.RowView(i) {
			d := v - means[j]
			out[j] += d * d
		}
	}
	inv := 1.0 / float64(a.Rows)
	for j := range out {
		out[j] = math.Sqrt(out[j] * inv)
	}
	return out
}

// ArgMaxRow returns the index of the maximum element of a row vector.
// Ties resolve to the lowest index.
func ArgMaxRow(row []float64) int {
	best, bi := math.Inf(-1), 0
	for j, v := range row {
		if v > best {
			best, bi = v, j
		}
	}
	return bi
}
