package mat

import (
	"math"
	"math/rand"
	"testing"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	a := NewDense(r, c)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	return a
}

func TestNewDenseZeroed(t *testing.T) {
	a := NewDense(3, 4)
	if a.Rows != 3 || a.Cols != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", a.Rows, a.Cols)
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatalf("new matrix not zeroed: %v", a.Data)
		}
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseDataWrapsWithoutCopy(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	a := NewDenseData(2, 3, d)
	a.Set(0, 0, 42)
	if d[0] != 42 {
		t.Fatal("NewDenseData must alias the provided slice")
	}
	if a.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", a.At(1, 2))
	}
}

func TestNewDenseDataLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong data length")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestAtSetRowView(t *testing.T) {
	a := NewDense(2, 3)
	a.Set(1, 2, 7.5)
	if got := a.At(1, 2); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	row := a.RowView(1)
	row[0] = -1
	if a.At(1, 0) != -1 {
		t.Fatal("RowView must alias matrix storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestTranspose(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T dims = %dx%d, want 3x2", at.Rows, at.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeTwiceIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 5, 7)
	if !Equal(a, a.T().T(), 0) {
		t.Fatal("a.T().T() != a")
	}
}

func TestEye(t *testing.T) {
	e := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Fatalf("Eye(3)[%d,%d] = %v, want %v", i, j, e.At(i, j), want)
			}
		}
	}
}

func TestSliceRows(t *testing.T) {
	a := NewDenseData(4, 2, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	s := a.SliceRows(1, 3)
	want := NewDenseData(2, 2, []float64{3, 4, 5, 6})
	if !Equal(s, want, 0) {
		t.Fatalf("SliceRows = %v, want %v", s, want)
	}
	s.Set(0, 0, 99)
	if a.At(1, 0) == 99 {
		t.Fatal("SliceRows must copy")
	}
}

func TestSelectRowsCols(t *testing.T) {
	a := NewDenseData(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	r := a.SelectRows([]int{2, 0})
	if !Equal(r, NewDenseData(2, 3, []float64{7, 8, 9, 1, 2, 3}), 0) {
		t.Fatalf("SelectRows = %v", r)
	}
	c := a.SelectCols([]int{1, 1, 0})
	if !Equal(c, NewDenseData(3, 3, []float64{2, 2, 1, 5, 5, 4, 8, 8, 7}), 0) {
		t.Fatalf("SelectCols = %v", c)
	}
}

func TestColSetColSetRow(t *testing.T) {
	a := NewDense(3, 2)
	a.SetCol(1, []float64{1, 2, 3})
	if got := a.Col(1); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Col = %v", got)
	}
	a.SetRow(0, []float64{9, 8})
	if a.At(0, 0) != 9 || a.At(0, 1) != 8 {
		t.Fatal("SetRow failed")
	}
}

func TestMaxAbsFrobTrace(t *testing.T) {
	a := NewDenseData(2, 2, []float64{3, -4, 0, 0})
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v, want 5", got)
	}
	if got := a.Trace(); got != 3 {
		t.Fatalf("Trace = %v, want 3", got)
	}
}

func TestFrobeniusNormEmpty(t *testing.T) {
	if got := NewDense(0, 3).FrobeniusNorm(); got != 0 {
		t.Fatalf("FrobeniusNorm of empty = %v, want 0", got)
	}
}

func TestEqualToleranceAndShape(t *testing.T) {
	a := NewDenseData(1, 2, []float64{1, 2})
	b := NewDenseData(1, 2, []float64{1, 2.0005})
	if !Equal(a, b, 1e-3) {
		t.Fatal("expected equal within tol")
	}
	if Equal(a, b, 1e-6) {
		t.Fatal("expected unequal at tight tol")
	}
	if Equal(a, NewDense(2, 1), 1) {
		t.Fatal("different shapes must not be Equal")
	}
}

func TestFillZeroCopyFrom(t *testing.T) {
	a := NewDense(2, 2)
	a.Fill(3)
	if a.At(1, 1) != 3 {
		t.Fatal("Fill failed")
	}
	b := NewDense(2, 2)
	b.CopyFrom(a)
	if !Equal(a, b, 0) {
		t.Fatal("CopyFrom failed")
	}
	a.Zero()
	if a.MaxAbs() != 0 {
		t.Fatal("Zero failed")
	}
	if b.MaxAbs() != 3 {
		t.Fatal("CopyFrom must copy, not alias")
	}
}

func TestStackRows(t *testing.T) {
	got := StackRows([][]float64{{1, 2}, {3, 4}, {5, 6}}, 2)
	want := NewDenseData(3, 2, []float64{1, 2, 3, 4, 5, 6})
	if !Equal(got, want, 0) {
		t.Fatalf("StackRows = %v", got.Data)
	}
	if empty := StackRows(nil, 3); empty.Rows != 0 || empty.Cols != 3 {
		t.Fatalf("empty StackRows: %dx%d", empty.Rows, empty.Cols)
	}
	// Rows are copied, not aliased.
	src := []float64{7, 8}
	m := StackRows([][]float64{src}, 2)
	src[0] = 99
	if m.At(0, 0) != 7 {
		t.Fatal("StackRows aliased its input row")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged row did not panic")
		}
	}()
	StackRows([][]float64{{1}}, 2)
}
