// Package mat implements the dense linear algebra substrate used by the
// EigenPro 2.0 reproduction: a row-major float64 matrix type, parallel
// blocked matrix multiplication, elementwise and reduction operations, and
// the factorizations (QR, Cholesky) needed by the eigensolvers and the
// FALKON baseline.
//
// The package is deliberately self-contained (standard library only) since
// the Go ecosystem offers no BLAS/GPU path for this workload; internal/device
// provides the simulated parallel-resource accounting on top of these
// routines.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix of float64 values.
//
// The zero value is an empty 0x0 matrix. Data is stored in a single backing
// slice of length Rows*Cols; element (i,j) lives at Data[i*Cols+j]. Methods
// that return matrices allocate fresh backing storage unless documented
// otherwise (RowView aliases).
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates an r x c matrix of zeros. It panics if r or c is
// negative.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: NewDense with negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewDenseData wraps the given backing slice as an r x c matrix without
// copying. It panics if len(data) != r*c.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: NewDenseData: %d elements for %dx%d matrix", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// At returns the element at row i, column j.
func (a *Dense) At(i, j int) float64 { return a.Data[i*a.Cols+j] }

// Set assigns v to the element at row i, column j.
func (a *Dense) Set(i, j int, v float64) { a.Data[i*a.Cols+j] = v }

// RowView returns row i as a slice aliasing the matrix storage. Mutations
// through the returned slice are visible in the matrix.
func (a *Dense) RowView(i int) []float64 { return a.Data[i*a.Cols : (i+1)*a.Cols] }

// Dims returns the (rows, cols) dimensions.
func (a *Dense) Dims() (int, int) { return a.Rows, a.Cols }

// IsEmpty reports whether the matrix has zero elements.
func (a *Dense) IsEmpty() bool { return a.Rows == 0 || a.Cols == 0 }

// Clone returns a deep copy of the matrix.
func (a *Dense) Clone() *Dense {
	out := NewDense(a.Rows, a.Cols)
	copy(out.Data, a.Data)
	return out
}

// CopyFrom copies the contents of src into a. Dimensions must match.
func (a *Dense) CopyFrom(src *Dense) {
	if a.Rows != src.Rows || a.Cols != src.Cols {
		panic(dimErr("CopyFrom", a, src))
	}
	copy(a.Data, src.Data)
}

// Fill sets every element to v.
func (a *Dense) Fill(v float64) {
	for i := range a.Data {
		a.Data[i] = v
	}
}

// Zero sets every element to 0.
func (a *Dense) Zero() {
	for i := range a.Data {
		a.Data[i] = 0
	}
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Dense {
	out := NewDense(n, n)
	for i := 0; i < n; i++ {
		out.Data[i*n+i] = 1
	}
	return out
}

// T returns a newly allocated transpose of a.
func (a *Dense) T() *Dense {
	out := NewDense(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.RowView(i)
		for j, v := range row {
			out.Data[j*a.Rows+i] = v
		}
	}
	return out
}

// SliceRows returns a new matrix holding rows [from, to) of a (copied).
func (a *Dense) SliceRows(from, to int) *Dense {
	if from < 0 || to > a.Rows || from > to {
		panic(fmt.Sprintf("mat: SliceRows [%d,%d) out of range for %d rows", from, to, a.Rows))
	}
	out := NewDense(to-from, a.Cols)
	copy(out.Data, a.Data[from*a.Cols:to*a.Cols])
	return out
}

// StackRows copies the given rows (each of length cols) into one contiguous
// rows x cols matrix — the coalescing step that turns queued per-request
// feature vectors into a single GEMM operand.
func StackRows(rows [][]float64, cols int) *Dense {
	out := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mat: StackRows row %d has %d values, want %d", i, len(r), cols))
		}
		copy(out.RowView(i), r)
	}
	return out
}

// SelectRows gathers the given rows of a into a new len(idx) x Cols matrix.
func (a *Dense) SelectRows(idx []int) *Dense {
	out := NewDense(len(idx), a.Cols)
	for k, i := range idx {
		copy(out.RowView(k), a.RowView(i))
	}
	return out
}

// SelectCols gathers the given columns of a into a new Rows x len(idx)
// matrix.
func (a *Dense) SelectCols(idx []int) *Dense {
	out := NewDense(a.Rows, len(idx))
	for i := 0; i < a.Rows; i++ {
		src := a.RowView(i)
		dst := out.RowView(i)
		for k, j := range idx {
			dst[k] = src[j]
		}
	}
	return out
}

// Col returns a copy of column j as a slice.
func (a *Dense) Col(j int) []float64 {
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		out[i] = a.Data[i*a.Cols+j]
	}
	return out
}

// SetCol assigns v to column j. len(v) must equal Rows.
func (a *Dense) SetCol(j int, v []float64) {
	if len(v) != a.Rows {
		panic(fmt.Sprintf("mat: SetCol: %d values for %d rows", len(v), a.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		a.Data[i*a.Cols+j] = v[i]
	}
}

// SetRow assigns v to row i. len(v) must equal Cols.
func (a *Dense) SetRow(i int, v []float64) {
	if len(v) != a.Cols {
		panic(fmt.Sprintf("mat: SetRow: %d values for %d cols", len(v), a.Cols))
	}
	copy(a.RowView(i), v)
}

// MaxAbs returns the largest absolute element value, or 0 for an empty
// matrix.
func (a *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range a.Data {
		if av := math.Abs(v); av > max {
			max = av
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm sqrt(sum a_ij^2).
func (a *Dense) FrobeniusNorm() float64 {
	// Scaled accumulation to avoid overflow on large magnitudes.
	scale := a.MaxAbs()
	if scale == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range a.Data {
		r := v / scale
		sum += r * r
	}
	return scale * math.Sqrt(sum)
}

// Trace returns the sum of diagonal elements; panics if a is not square.
func (a *Dense) Trace() float64 {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("mat: Trace of non-square %dx%d matrix", a.Rows, a.Cols))
	}
	t := 0.0
	for i := 0; i < a.Rows; i++ {
		t += a.Data[i*a.Cols+i]
	}
	return t
}

// Equal reports whether a and b have identical dimensions and every element
// differs by at most tol in absolute value.
func Equal(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging; large matrices are
// summarized by shape.
func (a *Dense) String() string {
	if a.Rows*a.Cols > 64 {
		return fmt.Sprintf("Dense(%dx%d)", a.Rows, a.Cols)
	}
	s := fmt.Sprintf("Dense(%dx%d)[", a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < a.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", a.At(i, j))
		}
	}
	return s + "]"
}

func dimErr(op string, a, b *Dense) string {
	return fmt.Sprintf("mat: %s dimension mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols)
}
