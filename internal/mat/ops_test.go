package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddSubScale(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{4, 3, 2, 1})
	if !Equal(Add(a, b), NewDenseData(2, 2, []float64{5, 5, 5, 5}), 0) {
		t.Fatal("Add wrong")
	}
	if !Equal(Sub(a, b), NewDenseData(2, 2, []float64{-3, -1, 1, 3}), 0) {
		t.Fatal("Sub wrong")
	}
	if !Equal(Scale(2, a), NewDenseData(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Fatal("Scale wrong")
	}
}

func TestInPlaceOps(t *testing.T) {
	a := NewDenseData(1, 3, []float64{1, 2, 3})
	b := NewDenseData(1, 3, []float64{1, 1, 1})
	AddInPlace(a, b)
	if !Equal(a, NewDenseData(1, 3, []float64{2, 3, 4}), 0) {
		t.Fatal("AddInPlace wrong")
	}
	SubInPlace(a, b)
	if !Equal(a, NewDenseData(1, 3, []float64{1, 2, 3}), 0) {
		t.Fatal("SubInPlace wrong")
	}
	AddScaledInPlace(a, 2, b)
	if !Equal(a, NewDenseData(1, 3, []float64{3, 4, 5}), 0) {
		t.Fatal("AddScaledInPlace wrong")
	}
	ScaleInPlace(a, 0.5)
	if !Equal(a, NewDenseData(1, 3, []float64{1.5, 2, 2.5}), 0) {
		t.Fatal("ScaleInPlace wrong")
	}
}

func TestHadamardApply(t *testing.T) {
	a := NewDenseData(1, 3, []float64{1, 2, 3})
	b := NewDenseData(1, 3, []float64{2, 2, 2})
	if !Equal(Hadamard(a, b), NewDenseData(1, 3, []float64{2, 4, 6}), 0) {
		t.Fatal("Hadamard wrong")
	}
	sq := Apply(a, func(v float64) float64 { return v * v })
	if !Equal(sq, NewDenseData(1, 3, []float64{1, 4, 9}), 0) {
		t.Fatal("Apply wrong")
	}
	ApplyInPlace(a, func(v float64) float64 { return -v })
	if !Equal(a, NewDenseData(1, 3, []float64{-1, -2, -3}), 0) {
		t.Fatal("ApplyInPlace wrong")
	}
}

func TestDotAxpyNorm(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(x, y); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	z := []float64{0, 0, 0}
	Axpy(2, x, z)
	if z[0] != 2 || z[1] != 4 || z[2] != 6 {
		t.Fatalf("Axpy = %v", z)
	}
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-14 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if Norm2(nil) != 0 {
		t.Fatal("Norm2(nil) != 0")
	}
}

func TestSqDist(t *testing.T) {
	if got := SqDist([]float64{0, 0}, []float64{3, 4}); got != 25 {
		t.Fatalf("SqDist = %v, want 25", got)
	}
}

func TestRowSumSqColMeansColStds(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	ss := RowSumSq(a)
	if ss[0] != 5 || ss[1] != 25 {
		t.Fatalf("RowSumSq = %v", ss)
	}
	m := ColMeans(a)
	if m[0] != 2 || m[1] != 3 {
		t.Fatalf("ColMeans = %v", m)
	}
	s := ColStds(a, m)
	if math.Abs(s[0]-1) > 1e-14 || math.Abs(s[1]-1) > 1e-14 {
		t.Fatalf("ColStds = %v", s)
	}
}

func TestArgMaxRow(t *testing.T) {
	if got := ArgMaxRow([]float64{0.1, 0.9, 0.5}); got != 1 {
		t.Fatalf("ArgMaxRow = %d, want 1", got)
	}
	if got := ArgMaxRow([]float64{1, 1}); got != 0 {
		t.Fatalf("tie must resolve to first index, got %d", got)
	}
}

// Property: ||x||^2 == Dot(x,x) and SqDist(x,z) == ||x-z||^2.
func TestQuickNormDistConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		x := make([]float64, n)
		z := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			z[i] = r.NormFloat64()
		}
		n2 := Norm2(x)
		if math.Abs(n2*n2-Dot(x, x)) > 1e-9*(1+Dot(x, x)) {
			return false
		}
		d := make([]float64, n)
		for i := range d {
			d[i] = x[i] - z[i]
		}
		return math.Abs(SqDist(x, z)-Dot(d, d)) < 1e-9*(1+Dot(d, d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
