package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when a pivot is not
// positive, i.e. the input matrix is not (numerically) positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with A = L Lᵀ for a
// symmetric positive definite matrix A. Only the lower triangle of A is
// read. It returns ErrNotPositiveDefinite if a non-positive pivot is
// encountered.
func Cholesky(a *Dense) (*Dense, error) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("mat: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols))
	}
	n := a.Rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		lrowj := l.RowView(j)
		for p := 0; p < j; p++ {
			d -= lrowj[p] * lrowj[p]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		diag := math.Sqrt(d)
		lrowj[j] = diag
		inv := 1.0 / diag
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.RowView(i)
			for p := 0; p < j; p++ {
				s -= lrowi[p] * lrowj[p]
			}
			lrowi[j] = s * inv
		}
	}
	return l, nil
}

// SolveLowerTri solves L*x = b for x where L is lower triangular
// (forward substitution). b is not modified.
func SolveLowerTri(l *Dense, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: SolveLowerTri: rhs length %d for %dx%d", len(b), l.Rows, l.Cols))
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.RowView(i)
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveUpperTriFromLowerT solves Lᵀ*x = b by back substitution given the
// lower factor L (so the effective system matrix is upper triangular).
func SolveUpperTriFromLowerT(l *Dense, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: SolveUpperTriFromLowerT: rhs length %d for %dx%d", len(b), l.Rows, l.Cols))
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// CholeskySolve solves A*x = b given the lower Cholesky factor L of A.
func CholeskySolve(l *Dense, b []float64) []float64 {
	return SolveUpperTriFromLowerT(l, SolveLowerTri(l, b))
}

// CholeskySolveMat solves A*X = B column-by-column given the lower Cholesky
// factor L of A.
func CholeskySolveMat(l *Dense, b *Dense) *Dense {
	if l.Rows != b.Rows {
		panic(dimErr("CholeskySolveMat", l, b))
	}
	out := NewDense(b.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		out.SetCol(j, CholeskySolve(l, b.Col(j)))
	}
	return out
}

// QRThin computes a thin QR factorization of an m x n matrix with m >= n
// using modified Gram-Schmidt with one reorthogonalization pass: a = q*r
// where q is m x n with orthonormal columns and r is n x n upper triangular.
// Rank-deficient columns receive a zero r diagonal and a zero q column.
func QRThin(a *Dense) (q, r *Dense) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("mat: QRThin needs rows >= cols, got %dx%d", m, n))
	}
	q = a.Clone()
	r = NewDense(n, n)
	for j := 0; j < n; j++ {
		// Two passes of Gram-Schmidt against previous columns for stability.
		for pass := 0; pass < 2; pass++ {
			for p := 0; p < j; p++ {
				s := 0.0
				for i := 0; i < m; i++ {
					s += q.At(i, p) * q.At(i, j)
				}
				if pass == 0 {
					r.Set(p, j, r.At(p, j)+s)
				} else {
					r.Set(p, j, r.At(p, j)+s)
				}
				for i := 0; i < m; i++ {
					q.Set(i, j, q.At(i, j)-s*q.At(i, p))
				}
			}
		}
		norm := 0.0
		for i := 0; i < m; i++ {
			norm += q.At(i, j) * q.At(i, j)
		}
		norm = math.Sqrt(norm)
		r.Set(j, j, norm)
		if norm > 1e-300 {
			inv := 1.0 / norm
			for i := 0; i < m; i++ {
				q.Set(i, j, q.At(i, j)*inv)
			}
		} else {
			for i := 0; i < m; i++ {
				q.Set(i, j, 0)
			}
		}
	}
	return q, r
}

// Orthonormalize returns a matrix whose columns orthonormally span the
// column space of a (the Q factor of QRThin).
func Orthonormalize(a *Dense) *Dense {
	q, _ := QRThin(a)
	return q
}
