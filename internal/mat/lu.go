package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by LU-based solvers when the matrix is
// numerically singular.
var ErrSingular = errors.New("mat: matrix is singular")

// LU holds an LU factorization with partial pivoting: P·A = L·U with unit
// lower-triangular L and upper-triangular U packed into a single matrix.
type LU struct {
	lu    *Dense
	pivot []int
	sign  float64
}

// FactorLU computes the LU factorization of a square matrix with partial
// pivoting. It succeeds even for singular matrices; Solve and Inverse
// report ErrSingular at use time.
func FactorLU(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: FactorLU of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	for i := range pivot {
		pivot[i] = i
	}
	sign := 1.0
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in the column at or below the
		// diagonal.
		p := col
		max := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > max {
				max, p = v, r
			}
		}
		if p != col {
			rowP, rowC := lu.RowView(p), lu.RowView(col)
			for j := 0; j < n; j++ {
				rowP[j], rowC[j] = rowC[j], rowP[j]
			}
			pivot[p], pivot[col] = pivot[col], pivot[p]
			sign = -sign
		}
		d := lu.At(col, col)
		if d == 0 {
			continue // singular column; factorization proceeds
		}
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / d
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			rowR := lu.RowView(r)
			rowC := lu.RowView(col)
			for j := col + 1; j < n; j++ {
				rowR[j] -= f * rowC[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves A·x = b for one right-hand side.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("mat: LU.Solve rhs length %d for %dx%d", len(b), n, n)
	}
	for i := 0; i < n; i++ {
		if f.lu.At(i, i) == 0 {
			return nil, ErrSingular
		}
	}
	// Apply permutation, then forward/backward substitution.
	x := make([]float64, n)
	for i, p := range f.pivot {
		x[i] = b[p]
	}
	for i := 1; i < n; i++ {
		row := f.lu.RowView(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		row := f.lu.RowView(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// SolveMat solves A·X = B column by column.
func (f *LU) SolveMat(b *Dense) (*Dense, error) {
	if b.Rows != f.lu.Rows {
		return nil, fmt.Errorf("mat: LU.SolveMat rhs rows %d for %dx%d", b.Rows, f.lu.Rows, f.lu.Cols)
	}
	out := NewDense(b.Rows, b.Cols)
	for j := 0; j < b.Cols; j++ {
		col, err := f.Solve(b.Col(j))
		if err != nil {
			return nil, err
		}
		out.SetCol(j, col)
	}
	return out, nil
}

// Inverse returns A⁻¹ computed from the factorization.
func (f *LU) Inverse() (*Dense, error) {
	return f.SolveMat(Eye(f.lu.Rows))
}

// Solve solves the general square system A·x = b via LU with partial
// pivoting.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Det returns the determinant of a square matrix.
func Det(a *Dense) (float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return 0, err
	}
	return f.Det(), nil
}

// Inverse returns the inverse of a square matrix, or ErrSingular.
func Inverse(a *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse()
}
