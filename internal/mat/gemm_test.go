package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {64, 33, 17}, {130, 40, 65}} {
		a := randDense(rng, dims[0], dims[1])
		b := randDense(rng, dims[1], dims[2])
		got := Mul(a, b)
		want := MulNaive(a, b)
		if !Equal(got, want, 1e-10) {
			t.Fatalf("Mul mismatch for dims %v", dims)
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 9, 9)
	if !Equal(Mul(a, Eye(9)), a, 1e-14) {
		t.Fatal("A*I != A")
	}
	if !Equal(Mul(Eye(9), a), a, 1e-14) {
		t.Fatal("I*A != A")
	}
}

func TestMulDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(4, 2))
}

func TestMulTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 13, 7)
	b := randDense(rng, 21, 7)
	got := MulT(a, b)
	want := Mul(a, b.T())
	if !Equal(got, want, 1e-10) {
		t.Fatal("MulT != A*Bᵀ")
	}
}

func TestTMulMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 17, 6)
	b := randDense(rng, 17, 11)
	got := TMul(a, b)
	want := Mul(a.T(), b)
	if !Equal(got, want, 1e-10) {
		t.Fatal("TMul != Aᵀ*B")
	}
}

func TestMulVecAndTMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randDense(rng, 8, 5)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	xm := NewDenseData(5, 1, x)
	want := Mul(a, xm)
	got := MulVec(a, x)
	for i := range got {
		if diff := got[i] - want.At(i, 0); diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
	y := make([]float64, 8)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	wantT := Mul(a.T(), NewDenseData(8, 1, y))
	gotT := TMulVec(a, y)
	for i := range gotT {
		if diff := gotT[i] - wantT.At(i, 0); diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("TMulVec[%d] = %v, want %v", i, gotT[i], wantT.At(i, 0))
		}
	}
}

func TestMulTToReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	a := randDense(rng, 7, 4)
	b := randDense(rng, 9, 4)
	dst := NewDense(7, 9)
	dst.Fill(-5)
	MulTTo(dst, a, b)
	if !Equal(dst, Mul(a, b.T()), 1e-12) {
		t.Fatal("MulTTo != A*Bᵀ")
	}
}

func TestMulTToDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	MulTTo(NewDense(2, 2), NewDense(2, 3), NewDense(4, 3))
}

func TestMulToReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randDense(rng, 6, 4)
	b := randDense(rng, 4, 3)
	dst := NewDense(6, 3)
	dst.Fill(123) // must be fully overwritten
	MulTo(dst, a, b)
	if !Equal(dst, MulNaive(a, b), 1e-12) {
		t.Fatal("MulTo did not overwrite dst correctly")
	}
}

// Property: (A*B)*C == A*(B*C) (associativity up to roundoff).
func TestQuickMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n1, n2, n3, n4 := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a := randDense(r, n1, n2)
		b := randDense(r, n2, n3)
		c := randDense(r, n3, n4)
		left := Mul(Mul(a, b), c)
		right := Mul(a, Mul(b, c))
		return Equal(left, right, 1e-8)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: (A*B)ᵀ == Bᵀ*Aᵀ.
func TestQuickMulTransposeRule(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n1, n2, n3 := 1+r.Intn(15), 1+r.Intn(15), 1+r.Intn(15)
		a := randDense(r, n1, n2)
		b := randDense(r, n2, n3)
		return Equal(Mul(a, b).T(), Mul(b.T(), a.T()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mul is linear in its first argument.
func TestQuickMulLinearity(t *testing.T) {
	f := func(seed int64, sRaw float64) bool {
		r := rand.New(rand.NewSource(seed))
		s := float64(int(sRaw*100)%7) / 3.0
		n1, n2, n3 := 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10)
		a1 := randDense(r, n1, n2)
		a2 := randDense(r, n1, n2)
		b := randDense(r, n2, n3)
		left := Mul(Add(a1, Scale(s, a2)), b)
		right := Add(Mul(a1, b), Scale(s, Mul(a2, b)))
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randDense(rng, 256, 256)
	y := randDense(rng, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}
