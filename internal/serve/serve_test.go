package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/device"
	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
)

// testModel builds a deterministic Gaussian-kernel model without training.
func testModel(centers, dim, labels int, seed uint64) *core.Model {
	x := mat.NewDense(centers, dim)
	a := mat.NewDense(centers, labels)
	state := seed*2862933555777941757 + 3037000493
	next := func() float64 {
		state = state*2862933555777941757 + 3037000493
		return float64(state>>11) / float64(1<<53)
	}
	for i := range x.Data {
		x.Data[i] = next()
	}
	for i := range a.Data {
		a.Data[i] = 2*next() - 1
	}
	return &core.Model{Kern: kernel.Gaussian{Sigma: 2}, X: x, Alpha: a}
}

// slowKernel stalls every evaluation; with a single-center model one
// prediction costs exactly one delay.
type slowKernel struct{ d time.Duration }

func (k slowKernel) Eval(x, z []float64) float64 { time.Sleep(k.d); return 1 }
func (k slowKernel) Name() string                { return "slow" }

func slowModel(d time.Duration) *core.Model {
	return &core.Model{
		Kern:  slowKernel{d: d},
		X:     mat.NewDenseData(1, 2, []float64{0, 0}),
		Alpha: mat.NewDenseData(1, 1, []float64{1}),
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func TestPredictMatchesModel(t *testing.T) {
	m := testModel(40, 5, 3, 1)
	s := newTestServer(t, Config{})
	if err := s.Register("default", m); err != nil {
		t.Fatal(err)
	}
	q := testModel(8, 5, 1, 7).X // 8 query rows
	want := m.Predict(q)
	for i := 0; i < q.Rows; i++ {
		got, err := s.Predict(context.Background(), "default", q.RowView(i))
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		for j, v := range got {
			if math.Abs(v-want.At(i, j)) > 1e-12 {
				t.Fatalf("row %d col %d: got %v want %v", i, j, v, want.At(i, j))
			}
		}
	}
	st := s.Stats()
	if st.Requests != int64(q.Rows) {
		t.Fatalf("stats.Requests = %d, want %d", st.Requests, q.Rows)
	}
	if st.SimTime <= 0 || st.Batches == 0 {
		t.Fatalf("stats missing device accounting: %+v", st)
	}
}

func TestBatcherFlushBySize(t *testing.T) {
	// With an effectively infinite flush latency, the only way the batch
	// can be dispatched is by filling up to MaxBatch.
	const size = 4
	s := newTestServer(t, Config{MaxBatch: size, MaxLatency: time.Hour, Timeout: -1})
	if err := s.Register("m", testModel(10, 3, 2, 2)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Predict(context.Background(), "m", []float64{1, 2, 3}); err != nil {
				t.Error(err)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("batch never flushed at size")
	}
	st := s.Stats()
	if st.Batches != 1 || st.MeanOccupancy != size {
		t.Fatalf("want one full batch of %d, got %d batches, mean occupancy %.1f",
			size, st.Batches, st.MeanOccupancy)
	}
}

func TestBatcherFlushByDeadline(t *testing.T) {
	// Far fewer requests than MaxBatch: only the MaxLatency timer can
	// flush them, and they must all ride the same micro-batch.
	s := newTestServer(t, Config{MaxBatch: 64, MaxLatency: 50 * time.Millisecond})
	if err := s.Register("m", testModel(10, 3, 2, 3)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Predict(context.Background(), "m", []float64{0, 1, 2}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline flush took %v", elapsed)
	}
	st := s.Stats()
	if st.Batches != 1 || st.MeanOccupancy != 3 {
		t.Fatalf("want one deadline-flushed batch of 3, got %d batches, mean occupancy %.1f",
			st.Batches, st.MeanOccupancy)
	}
}

func TestRegistryHotSwapUnderConcurrentPredicts(t *testing.T) {
	mA := testModel(30, 4, 2, 10)
	mB := testModel(30, 4, 2, 20) // same shape, different centers/weights
	s := newTestServer(t, Config{MaxLatency: 200 * time.Microsecond})
	if err := s.Register("m", mA); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.1, 0.2, 0.3, 0.4}
	wantA := mA.Predict(mat.NewDenseData(1, 4, q)).RowView(0)
	wantB := mB.Predict(mat.NewDenseData(1, 4, q)).RowView(0)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				out, err := s.Predict(context.Background(), "m", q)
				if err != nil {
					t.Errorf("predict during swap: %v", err)
					return
				}
				if !rowNear(out, wantA) && !rowNear(out, wantB) {
					t.Errorf("prediction matches neither model: %v", out)
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		m := mA
		if i%2 == 0 {
			m = mB
		}
		if err := s.Register("m", m); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if err := s.Register("m", mB); err != nil {
		t.Fatal(err)
	}
	// Last swap installed mB; a fresh request must see it.
	out, err := s.Predict(context.Background(), "m", q)
	if err != nil {
		t.Fatal(err)
	}
	if !rowNear(out, wantB) {
		t.Fatalf("after final swap got %v, want %v", out, wantB)
	}
}

func rowNear(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

func TestBackpressureRejection(t *testing.T) {
	// One slow worker and a depth-1 queue: flooding must trip admission
	// control rather than queue without bound.
	s := newTestServer(t, Config{
		QueueDepth: 1, Workers: 1, MaxBatch: 1, Timeout: -1,
		MaxLatency: time.Millisecond,
	})
	if err := s.Register("m", slowModel(30*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	const flood = 16
	var rejected, completed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Predict(context.Background(), "m", []float64{0, 0})
			switch {
			case errors.Is(err, ErrOverloaded):
				rejected.Add(1)
			case err == nil:
				completed.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if rejected.Load() == 0 {
		t.Fatalf("no rejections from a depth-1 queue under %d concurrent requests", flood)
	}
	if completed.Load() == 0 {
		t.Fatal("every request was rejected; the queue admitted nothing")
	}
	if st := s.Stats(); st.Rejected != rejected.Load() {
		t.Fatalf("stats.Rejected = %d, callers saw %d", st.Rejected, rejected.Load())
	}
}

func TestQueuedDeadlineExpires(t *testing.T) {
	// The first request occupies the single worker long enough for the
	// second's per-request deadline to lapse while it is still queued.
	s := newTestServer(t, Config{
		Workers: 1, MaxBatch: 1, QueueDepth: 8,
		MaxLatency: time.Millisecond, Timeout: 40 * time.Millisecond,
	})
	if err := s.Register("m", slowModel(150*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Predict(context.Background(), "m", []float64{0, 0}); err != nil {
			t.Errorf("first request: %v", err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // ensure the slow request is in flight
	_, err := s.Predict(context.Background(), "m", []float64{0, 0})
	wg.Wait()
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("queued request returned %v, want ErrDeadlineExceeded", err)
	}
	if st := s.Stats(); st.Expired != 1 {
		t.Fatalf("stats.Expired = %d, want 1", st.Expired)
	}
}

func TestRequestErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	if _, err := s.Predict(context.Background(), "nope", []float64{1}); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model: got %v", err)
	}
	if err := s.Register("m", testModel(5, 3, 1, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Predict(context.Background(), "m", []float64{1, 2}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Predict(ctx, "m", []float64{1, 2, 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: got %v", err)
	}
	if err := s.Register("bad", nil); err == nil {
		t.Fatal("nil model registered")
	}
}

func TestCloseFailsPending(t *testing.T) {
	s := New(Config{Workers: 1, MaxBatch: 1, MaxLatency: time.Millisecond, Timeout: -1})
	if err := s.Register("m", slowModel(50*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := s.Predict(context.Background(), "m", []float64{0, 0})
			results <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	s.Close()
	s.Close() // idempotent
	for i := 0; i < 4; i++ {
		if err := <-results; err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("pending request got %v, want nil or ErrClosed", err)
		}
	}
	if _, err := s.Predict(context.Background(), "m", []float64{0, 0}); !errors.Is(err, ErrClosed) {
		t.Fatalf("predict after close: got %v", err)
	}
	if err := s.Register("m2", testModel(4, 2, 1, 5)); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after close: got %v", err)
	}
}

func TestServeBatchSizing(t *testing.T) {
	dev := device.SimTitanXp()
	m := testModel(100, 7, 3, 6)
	s := newTestServer(t, Config{Device: dev})
	if err := s.Register("m", m); err != nil {
		t.Fatal(err)
	}
	e, ok := s.reg.entry("m")
	if !ok {
		t.Fatal("entry missing")
	}
	want := dev.ServeBatch(m.X.Rows, m.X.Cols, m.Alpha.Cols)
	if got := int(e.maxBatch.Load()); got != want {
		t.Fatalf("entry maxBatch = %d, want device ServeBatch %d", got, want)
	}
	if want <= 1 {
		t.Fatalf("device ServeBatch = %d; expected a multi-request micro-batch", want)
	}
}

func TestStatsString(t *testing.T) {
	s := newTestServer(t, Config{})
	if err := s.Register("m", testModel(10, 2, 1, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Predict(context.Background(), "m", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	out := st.String()
	if out == "" || st.P99 == 0 || len(st.Occupancy) == 0 {
		t.Fatalf("thin stats rendering: %+v\n%s", st, out)
	}
}
