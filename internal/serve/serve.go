// Package serve is the batched inference serving subsystem: a concurrent
// model server whose request path coalesces individual Predict calls into
// micro-batches sized to the device model's maximum useful batch m_max.
//
// The paper's central observation — that a parallel device retires a whole
// wave of work in constant time, so batches below m_max waste the hardware —
// applies to inference exactly as it does to training. A lone prediction
// against an n-center model performs n·(d+l) multiply-adds, typically a
// small fraction of one execution wave; serving requests one at a time pays
// a full launch overhead plus wave per request. This package therefore
// queues concurrent requests per model and flushes them as one blocked
// kernel-GEMM evaluation when either the batch reaches m_max (computed from
// the same device cost accounting core.SelectParams uses for training) or
// the oldest queued request has waited MaxLatency.
//
// Components:
//
//   - batcher: per-model bounded queue, max-latency flush, m_max-sized
//     coalescing (batcher.go)
//   - worker pool: executes coalesced batches with Model.PredictBatch and
//     charges the simulated device clock (serve.go)
//   - Registry: named, hot-swappable models (registry.go)
//   - admission control: queue-full rejection and per-request deadlines
//   - Stats: throughput, latency quantiles, batch-occupancy histogram
//     (stats.go)
//   - HTTP JSON endpoint (http.go)
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/device"
	"eigenpro/internal/mat"
	"eigenpro/internal/obs"
	"eigenpro/internal/obs/slo"
)

// Errors returned by the request path.
var (
	// ErrOverloaded reports that the model's request queue is full; the
	// caller should shed load or retry with backoff.
	ErrOverloaded = errors.New("serve: queue full, request rejected")
	// ErrClosed reports a Predict against a closed server.
	ErrClosed = errors.New("serve: server closed")
	// ErrUnknownModel reports a request for a model name that was never
	// registered.
	ErrUnknownModel = errors.New("serve: unknown model")
	// ErrDeadlineExceeded reports that a request expired while queued,
	// before any device work was spent on it.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded in queue")
	// ErrShed reports deadline-aware admission control (Config.Shed)
	// rejecting a request at enqueue because its deadline cannot survive
	// the estimated queue wait — shedding doomed work before it occupies
	// queue space.
	ErrShed = errors.New("serve: predicted queue wait exceeds deadline, request shed")
	// ErrDraining reports a Predict against a draining server: admission is
	// closed for graceful shutdown while admitted requests flush. Load
	// balancers see the same condition as a 503 on GET /readyz.
	ErrDraining = errors.New("serve: draining, admission closed")
)

// Config configures a Server; zero values select the defaults.
type Config struct {
	// Device is the device model whose cost accounting sizes micro-batches;
	// nil selects device.SimTitanXp.
	Device *device.Device
	// MaxBatch overrides the per-model m_max = Device.ServeBatch when > 0.
	MaxBatch int
	// MaxLatency is the flush deadline: a non-full batch is dispatched once
	// its oldest request has waited this long. <= 0 selects
	// DefaultMaxLatency.
	MaxLatency time.Duration
	// QueueDepth bounds each model's request queue (admission control);
	// <= 0 selects DefaultQueueDepth.
	QueueDepth int
	// Workers is the size of the execution pool; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// Timeout is the default per-request deadline applied when the caller's
	// context has none. 0 selects DefaultTimeout; < 0 disables the default.
	Timeout time.Duration
	// Shed enables deadline-aware admission control: a request whose
	// deadline cannot survive the estimated queue wait (queued requests ×
	// an EWMA of recent per-row batch service time) is rejected with
	// ErrShed at enqueue instead of queueing work that is doomed to expire.
	Shed bool
	// Metrics is the registry the serving telemetry registers into; nil
	// creates a private registry (readable via Server.Metrics). Pass a
	// shared registry to expose serving, jobs, and trainer series from one
	// /metrics endpoint.
	Metrics *obs.Registry
	// Tracer records per-request span traces; nil creates a private tracer
	// of DefaultTraceCapacity. Readable via Server.Tracer.
	Tracer *obs.Tracer
	// TraceEvery samples request tracing: every Nth request not already
	// carrying a trace in its context starts one. 0 traces every request;
	// < 0 disables tracing.
	TraceEvery int
	// Events receives one wide obs.Event per request outcome — ok,
	// rejected, shed, expired, abandoned — carrying the request's model,
	// queue wait, device time, micro-batch id and occupancy, and trace id.
	// nil disables event logging entirely (unlike Metrics and Tracer, which
	// default to private instances): the event ring is an opt-in debugging
	// surface, and the zero Config keeps the hot path at its minimum cost.
	// Readable via Server.Events.
	Events *obs.EventLog
	// SLO is the burn-rate evaluator judging this server's telemetry. The
	// server itself never calls into it (the evaluator polls Metrics on its
	// own cadence — the hot path stays untouched); carrying it here lets
	// NewHandler mount GET /debug/slo and degrade /readyz while an
	// objective is paging. nil disables both.
	SLO *slo.Evaluator
	// Flight is the breach-triggered flight recorder whose snapshots
	// NewHandler serves at GET /debug/flight; nil disables the endpoint.
	// Arm it by passing the same recorder as the evaluator's
	// slo.Config.Flight.
	Flight *obs.FlightRecorder
}

// Defaults for Config zero values.
const (
	DefaultMaxLatency = 2 * time.Millisecond
	DefaultQueueDepth = 1024
	DefaultTimeout    = 2 * time.Second
)

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.Device == nil {
		c.Device = device.SimTitanXp()
	}
	if c.MaxLatency <= 0 {
		c.MaxLatency = DefaultMaxLatency
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.Timeout == 0:
		c.Timeout = DefaultTimeout
	case c.Timeout < 0:
		c.Timeout = 0
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Tracer == nil {
		c.Tracer = obs.NewTracer(obs.DefaultTraceCapacity)
	}
	if c.TraceEvery == 0 {
		c.TraceEvery = 1
	}
	return c
}

// Server coalesces concurrent Predict calls into device-saturating
// micro-batches over a registry of named models.
type Server struct {
	cfg      Config
	reg      *Registry
	work     chan *batch
	stats    *statsCore
	traceSeq atomic.Uint64 // request counter for TraceEvery sampling
	batchSeq atomic.Uint64 // dispatched micro-batch ids for wide events

	done     chan struct{}
	closed   atomic.Bool
	draining atomic.Bool    // admission closed for graceful shutdown
	pending  atomic.Int64   // requests admitted to a queue and not yet completed
	collWG   sync.WaitGroup // batcher goroutines, one per model entry
	workWG   sync.WaitGroup // worker pool
	closeMu  sync.Mutex
}

// New starts a server with the given configuration. Close releases its
// goroutines.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		work:  make(chan *batch, cfg.Workers),
		stats: newStatsCore(cfg.Device, cfg.Metrics),
		done:  make(chan struct{}),
	}
	s.reg = newRegistry(s)
	cfg.Metrics.GaugeFunc(MetricServeModels, "Registered model count.",
		func() float64 { return float64(len(s.reg.names())) })
	cfg.Metrics.GaugeFunc(MetricServeDraining, "1 while admission is closed for graceful shutdown.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	s.workWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			defer s.workWG.Done()
			for b := range s.work {
				s.execute(b)
			}
		}()
	}
	return s
}

// Register installs (or hot-swaps) the model under the given name. The
// micro-batch size for the name is recomputed from the device model and the
// new model's shape; requests already coalesced against the previous model
// complete against it.
func (s *Server) Register(name string, m *core.Model) error {
	// Serialized with Close so a first-time registration cannot add to
	// collWG concurrently with Close's Wait.
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if m == nil || m.X == nil || m.Alpha == nil {
		return fmt.Errorf("serve: Register %q: nil model", name)
	}
	return s.reg.register(name, m)
}

// Model returns the currently registered model for name.
func (s *Server) Model(name string) (*core.Model, bool) { return s.reg.model(name) }

// Models returns the registered model names, sorted.
func (s *Server) Models() []string { return s.reg.names() }

// maxBatchFor returns the micro-batch size used for a model of the given
// shape.
func (s *Server) maxBatchFor(m *core.Model) int {
	if s.cfg.MaxBatch > 0 {
		return s.cfg.MaxBatch
	}
	return s.cfg.Device.ServeBatch(m.X.Rows, m.X.Cols, m.Alpha.Cols)
}

// Predict routes one feature vector through the model's batcher and waits
// for the micro-batch carrying it to execute. It returns the prediction row
// (length = the model's label dimension), or ErrOverloaded / ErrShed /
// ErrUnknownModel / ErrDeadlineExceeded / the context's error. A caller
// that returns early (context canceled, server closing) abandons its
// request: the batcher and workers drop abandoned requests before any
// device work is spent on them.
func (s *Server) Predict(ctx context.Context, name string, x []float64) ([]float64, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if s.draining.Load() {
		s.stats.recordRejected()
		if s.cfg.Events != nil {
			s.cfg.Events.Emit(obs.Event{
				Level:   obs.LevelWarn,
				Kind:    obs.KindServeRequest,
				Model:   name,
				Outcome: "draining",
				Rows:    1,
				Err:     ErrDraining.Error(),
			})
		}
		return nil, ErrDraining
	}
	e, ok := s.reg.entry(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	if m := e.model.Load(); len(x) != m.X.Cols {
		return nil, fmt.Errorf("serve: model %q wants %d features, got %d", name, m.X.Cols, len(x))
	}
	tr := obs.FromContext(ctx)
	// A server-sampled trace is prepared here but committed to the ring
	// only after successful admission: rejections cluster during overload
	// incidents, and an empty "rejected" trace must not evict the retained
	// traces of requests that actually ran.
	var sampled *obs.Trace
	if tr == nil {
		sampled = s.prepareTrace("predict")
		tr = sampled
	}
	req := &request{x: x, ctx: ctx, tr: tr, enq: time.Now(), done: make(chan struct{})}
	if d, ok := ctx.Deadline(); ok {
		req.deadline = d
	} else if s.cfg.Timeout > 0 {
		req.deadline = req.enq.Add(s.cfg.Timeout)
	}
	if s.cfg.Shed && !req.deadline.IsZero() {
		if wait := e.estimatedWait(); wait > 0 && req.enq.Add(wait).After(req.deadline) {
			s.stats.recordShed()
			tr.Span("shed", req.enq, time.Now())
			err := fmt.Errorf("%w (estimated wait %v)", ErrShed, wait.Round(time.Millisecond))
			s.requestEvent(obs.LevelWarn, "shed", e.name, tr, req, err)
			return nil, err
		}
	}
	// The pending count is raised before the enqueue attempt so Drain can
	// never observe zero while an admitted request is still in flight; a
	// rejected request gives its increment straight back.
	req.pending = &s.pending
	s.pending.Add(1)
	select {
	case e.queue <- req:
		s.cfg.Tracer.Commit(sampled)
		tr.Span("enqueue", req.enq, time.Now())
	default:
		s.pending.Add(-1)
		req.pending = nil
		s.stats.recordRejected()
		tr.Span("rejected", req.enq, time.Now())
		s.requestEvent(obs.LevelWarn, "rejected", e.name, tr, req, ErrOverloaded)
		return nil, ErrOverloaded
	}
	select {
	case <-req.done:
		return req.out, req.err
	case <-ctx.Done():
		req.abandon()
		return nil, ctx.Err()
	case <-s.done:
		req.abandon()
		return nil, ErrClosed
	}
}

// PredictLabel is Predict followed by argmax over the output row.
func (s *Server) PredictLabel(ctx context.Context, name string, x []float64) (int, error) {
	out, err := s.Predict(ctx, name, x)
	if err != nil {
		return 0, err
	}
	return mat.ArgMaxRow(out), nil
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats { return s.stats.snapshot() }

// Metrics returns the registry the serving telemetry registers into.
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

// Tracer returns the span ring recording sampled request traces.
func (s *Server) Tracer() *obs.Tracer { return s.cfg.Tracer }

// Events returns the wide-event log, or nil when Config.Events was nil
// (event logging disabled).
func (s *Server) Events() *obs.EventLog { return s.cfg.Events }

// SLO returns the burn-rate evaluator, or nil when Config.SLO was nil
// (nil is valid everywhere it is passed).
func (s *Server) SLO() *slo.Evaluator { return s.cfg.SLO }

// Flight returns the flight recorder, or nil when Config.Flight was nil.
func (s *Server) Flight() *obs.FlightRecorder { return s.cfg.Flight }

// requestEvent emits one serve.request wide event for a request that
// terminated before any device work — rejected, shed, expired, or
// abandoned in the queue (no-op with a nil Config.Events). QueueWait is
// enqueue → now; there is no batch or device time to report.
func (s *Server) requestEvent(level obs.Level, outcome, model string, tr *obs.Trace,
	r *request, err error) {
	if s.cfg.Events == nil {
		return
	}
	ev := obs.Event{
		Level:     level,
		Kind:      obs.KindServeRequest,
		Model:     model,
		Outcome:   outcome,
		TraceID:   tr.ID(),
		Rows:      1,
		QueueWait: time.Since(r.enq),
	}
	if err != nil {
		ev.Err = err.Error()
	}
	s.cfg.Events.Emit(ev)
}

// batchEvent emits one serve.request wide event for a request that rode a
// dispatched micro-batch: ok, or abandoned mid-flight (no-op with a nil
// Config.Events). QueueWait is enqueue → device dispatch; DeviceTime,
// BatchID, and Occupancy describe the wave that carried it.
func (s *Server) batchEvent(level obs.Level, outcome, model string, r *request,
	batchID uint64, occupancy int, execStart time.Time, deviceTime time.Duration, err error) {
	if s.cfg.Events == nil {
		return
	}
	ev := obs.Event{
		Level:      level,
		Kind:       obs.KindServeRequest,
		Model:      model,
		Outcome:    outcome,
		TraceID:    r.tr.ID(),
		Rows:       1,
		QueueWait:  execStart.Sub(r.enq),
		DeviceTime: deviceTime,
		BatchID:    batchID,
		Occupancy:  occupancy,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	s.cfg.Events.Emit(ev)
}

// startTrace starts a retained trace if this request is sampled (per
// Config.TraceEvery), or returns nil — safe to use as a no-op trace.
func (s *Server) startTrace(name string) *obs.Trace {
	tr := s.prepareTrace(name)
	s.cfg.Tracer.Commit(tr)
	return tr
}

// prepareTrace applies the TraceEvery sampling decision and returns a
// prepared (not yet ring-retained) trace, or nil when unsampled. The
// caller commits it once the request passes admission.
func (s *Server) prepareTrace(name string) *obs.Trace {
	n := s.cfg.TraceEvery
	if n <= 0 {
		return nil
	}
	if n > 1 && (s.traceSeq.Add(1)-1)%uint64(n) != 0 {
		return nil
	}
	return s.cfg.Tracer.Prepare(name)
}

// Draining reports whether admission is closed for graceful shutdown.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully quiesces the server for shutdown: admission closes
// (Predict returns ErrDraining, /readyz turns 503 so load balancers stop
// routing here), then Drain waits until every already-admitted request has
// completed — flushed through the batcher and worker pool as usual — or the
// timeout lapses. It returns nil once the server is idle, or an error
// carrying the number of requests still in flight at the deadline. Drain
// does not stop the serving goroutines; call Close afterwards. Idempotent
// and safe to call concurrently; callers after the first wait alongside it.
func (s *Server) Drain(timeout time.Duration) error {
	begin := time.Now()
	if s.draining.CompareAndSwap(false, true) && s.cfg.Events != nil {
		s.cfg.Events.Emit(obs.Event{
			Level:   obs.LevelWarn,
			Kind:    obs.KindServerDrain,
			Outcome: "begin",
			Rows:    int(s.pending.Load()),
		})
	}
	deadline := begin.Add(timeout)
	for {
		n := s.pending.Load()
		if n <= 0 {
			s.drainEvent("drained", 0, begin)
			return nil
		}
		if !time.Now().Before(deadline) {
			s.drainEvent("timeout", int(n), begin)
			return fmt.Errorf("serve: drain timeout after %v with %d requests in flight", timeout, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// drainEvent emits the server.draining completion event (no-op with a nil
// Config.Events).
func (s *Server) drainEvent(outcome string, inflight int, begin time.Time) {
	if s.cfg.Events == nil {
		return
	}
	level := obs.LevelInfo
	if outcome != "drained" {
		level = obs.LevelError
	}
	s.cfg.Events.Emit(obs.Event{
		Level:     level,
		Kind:      obs.KindServerDrain,
		Outcome:   outcome,
		Rows:      inflight,
		QueueWait: time.Since(begin),
	})
}

// Close stops the batchers and workers. Queued requests fail with
// ErrClosed; in-flight batches complete. Close is idempotent.
func (s *Server) Close() {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.done)
	s.collWG.Wait()
	close(s.work)
	s.workWG.Wait()
}

// reap completes a request that no longer needs device work — its deadline
// lapsed while queued, or its caller abandoned it (context canceled, server
// closing) — and reports whether it did. Counting happens before the
// completion: a waiter that wakes on done must already see itself in the
// stats snapshot. The entry names the model in the request's wide event.
func (s *Server) reap(e *entry, r *request, now time.Time) bool {
	switch {
	case !r.deadline.IsZero() && now.After(r.deadline):
		s.stats.recordExpired()
		s.requestEvent(obs.LevelWarn, "expired", e.name, r.tr, r, ErrDeadlineExceeded)
		r.fail(ErrDeadlineExceeded)
	case r.isAbandoned():
		s.stats.recordAbandoned()
		r.tr.Span("abandoned", r.enq, now)
		s.requestEvent(obs.LevelWarn, "abandoned", e.name, r.tr, r, context.Canceled)
		r.fail(context.Canceled)
	default:
		return false
	}
	return true
}

// execute runs one coalesced micro-batch on the worker pool: drop expired,
// abandoned, or mismatched requests, stack the survivors into one GEMM
// operand, predict, charge the simulated device, and complete the waiters.
func (s *Server) execute(b *batch) {
	m := b.entry.model.Load()
	now := time.Now()
	live := b.reqs[:0]
	for _, r := range b.reqs {
		switch {
		case s.reap(b.entry, r, now):
			// Expired or abandoned between gather and execution: no device
			// work, no latency sample.
		case len(r.x) != m.X.Cols:
			// The model was hot-swapped to a different shape between
			// enqueue and execution.
			r.fail(fmt.Errorf("serve: model %q wants %d features, got %d", b.entry.name, m.X.Cols, len(r.x)))
		default:
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return
	}
	rows := make([][]float64, len(live))
	for i, r := range live {
		rows[i] = r.x
	}
	batchID := s.batchSeq.Add(1)
	execStart := time.Now()
	xq := mat.StackRows(rows, m.X.Cols)
	out := m.PredictBatch(xq, 0)
	s.stats.charge(core.PredictOps(m.X.Rows, len(live), m.X.Cols, m.Alpha.Cols))
	// Count everything before completing any request: a waiter that wakes
	// on done must already see itself and its batch in the stats snapshot.
	done := time.Now()
	deviceTime := done.Sub(execStart)
	b.entry.observeService(deviceTime, len(live))
	for _, r := range live {
		if r.isAbandoned() {
			// Canceled while the batch was on the device: that work is
			// already spent, but the latency quantiles must carry only
			// delivered responses.
			s.stats.recordAbandoned()
			r.tr.Span("abandoned", r.enq, done)
			s.batchEvent(obs.LevelWarn, "abandoned", b.entry.name, r, batchID, len(live), execStart, deviceTime, context.Canceled)
			continue
		}
		s.stats.recordDone(done.Sub(r.enq), r.tr.ID())
		r.tr.Span("batch-wait", r.enq, execStart)
		r.tr.Span("device-execute", execStart, done)
		s.batchEvent(obs.LevelInfo, "ok", b.entry.name, r, batchID, len(live), execStart, deviceTime, nil)
	}
	s.stats.recordBatch(len(live))
	for i, r := range live {
		// Copy the row: handing out a RowView would alias the whole batch
		// matrix across callers (and let one caller's append clobber
		// another's result).
		r.out = append([]float64(nil), out.RowView(i)...)
		r.settle()
		close(r.done)
	}
}
