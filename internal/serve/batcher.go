package serve

import (
	"time"

	"eigenpro/internal/obs"
)

// request is one queued Predict call.
type request struct {
	x        []float64
	tr       *obs.Trace // nil unless this request is traced
	enq      time.Time
	deadline time.Time // zero means none
	out      []float64
	err      error
	done     chan struct{}
}

// fail completes the request with an error.
func (r *request) fail(err error) {
	r.err = err
	close(r.done)
}

// batch is one coalesced micro-batch handed to the worker pool.
type batch struct {
	entry *entry
	reqs  []*request
}

// runBatcher is the per-model coalescing loop: it blocks for the first
// request, then gathers more until the batch reaches the model's m_max or
// the first request has waited MaxLatency, and dispatches the result to the
// worker pool. One goroutine per registry entry.
func (s *Server) runBatcher(e *entry) {
	defer s.collWG.Done()
	for {
		select {
		case first := <-e.queue:
			s.dispatch(&batch{entry: e, reqs: s.gather(e, first)})
		case <-s.done:
			s.drain(e)
			return
		}
	}
}

// gather coalesces requests behind first until the batch is full or
// MaxLatency has elapsed since first arrived.
func (s *Server) gather(e *entry, first *request) []*request {
	max := int(e.maxBatch.Load())
	reqs := append(make([]*request, 0, max), first)
	if max <= 1 {
		return reqs
	}
	// The latency bound is anchored at the first request's enqueue time,
	// not at batcher pickup: time already spent waiting in the queue
	// counts against its MaxLatency window. A non-positive remainder
	// fires the timer immediately.
	timer := time.NewTimer(s.cfg.MaxLatency - time.Since(first.enq))
	defer timer.Stop()
	for len(reqs) < max {
		select {
		case r := <-e.queue:
			reqs = append(reqs, r)
		case <-timer.C:
			return reqs
		case <-s.done:
			return reqs
		}
	}
	return reqs
}

// dispatch hands a batch to the worker pool. During shutdown the workers
// are still draining s.work (Close waits for the batchers before closing
// it), so this send cannot block forever.
func (s *Server) dispatch(b *batch) {
	if len(b.reqs) == 0 {
		return
	}
	s.work <- b
}

// drain fails whatever is left in the queue at shutdown.
func (s *Server) drain(e *entry) {
	for {
		select {
		case r := <-e.queue:
			r.fail(ErrClosed)
		default:
			return
		}
	}
}
