package serve

import (
	"context"
	"sync/atomic"
	"time"

	"eigenpro/internal/obs"
)

// request is one queued Predict call.
type request struct {
	x        []float64
	ctx      context.Context // caller's context; canceled means abandoned
	tr       *obs.Trace      // nil unless this request is traced
	enq      time.Time
	deadline time.Time // zero means none
	out      []float64
	err      error
	done     chan struct{}
	// pending points at the server's in-flight request count once this
	// request has been admitted to a queue; settle decrements it exactly
	// once, on whichever path completes the request. Drain waits on it.
	pending *atomic.Int64
	// abandoned marks a caller that returned without its context being
	// canceled (server shutdown raced the response); checked together with
	// ctx.Err so no device work is spent on a response nobody reads.
	abandoned atomic.Bool
}

// fail completes the request with an error.
func (r *request) fail(err error) {
	r.err = err
	r.settle()
	close(r.done)
}

// settle removes the request from the server's in-flight count. Each
// completion path calls it exactly once, immediately before closing done.
func (r *request) settle() {
	if r.pending != nil {
		r.pending.Add(-1)
	}
}

// abandon marks the request as having no caller waiting on it.
func (r *request) abandon() { r.abandoned.Store(true) }

// isAbandoned reports whether the caller has given up on this request.
// The context check is what makes cancellation propagation prompt: cancel()
// publishes ctx.Err synchronously, so a request canceled while queued is
// visible to the batcher and workers without waiting for the caller's
// goroutine to be rescheduled.
func (r *request) isAbandoned() bool {
	return r.abandoned.Load() || (r.ctx != nil && r.ctx.Err() != nil)
}

// batch is one coalesced micro-batch handed to the worker pool.
type batch struct {
	entry *entry
	reqs  []*request
}

// runBatcher is the per-model coalescing loop: it blocks for the first
// request, then gathers more until the batch reaches the model's m_max or
// the first request has waited MaxLatency, and dispatches the result to the
// worker pool. One goroutine per registry entry.
func (s *Server) runBatcher(e *entry) {
	defer s.collWG.Done()
	for {
		select {
		case first := <-e.queue:
			s.dispatch(&batch{entry: e, reqs: s.gather(e, first)})
		case <-s.done:
			s.drain(e)
			return
		}
	}
}

// gather coalesces live requests behind first until the batch is full or
// MaxLatency has elapsed since first arrived. Requests that no longer need
// device work (caller canceled, deadline already lapsed) are reaped as they
// are pulled, so a backlog of corpses cannot dilute batch occupancy.
func (s *Server) gather(e *entry, first *request) []*request {
	max := int(e.maxBatch.Load())
	reqs := make([]*request, 0, max)
	if !s.reap(e, first, time.Now()) {
		reqs = append(reqs, first)
	}
	if max <= 1 {
		return reqs
	}
	// The latency bound is anchored at the first request's enqueue time,
	// not at batcher pickup: time already spent waiting in the queue
	// counts against its MaxLatency window.
	remain := s.cfg.MaxLatency - time.Since(first.enq)
	if remain <= 0 {
		// Saturation: the first request already waited out its flush
		// window in the queue, so the backlog holds at least one wave of
		// work. Racing an already-fired timer against the queue in the
		// select below would dispatch near-empty batches at exactly the
		// moment full batches are available — drain the ready backlog
		// up to m_max instead.
		return s.drainReady(e, reqs, max)
	}
	timer := time.NewTimer(remain)
	defer timer.Stop()
	for len(reqs) < max {
		select {
		case r := <-e.queue:
			if !s.reap(e, r, time.Now()) {
				reqs = append(reqs, r)
			}
		case <-timer.C:
			// Flush deadline: top up with whatever is already queued
			// before dispatching — a non-blocking drain adds no latency.
			return s.drainReady(e, reqs, max)
		case <-s.done:
			return reqs
		}
	}
	return reqs
}

// drainReady appends already-queued live requests without blocking until
// the batch reaches max or the queue is momentarily empty.
func (s *Server) drainReady(e *entry, reqs []*request, max int) []*request {
	for len(reqs) < max {
		select {
		case r := <-e.queue:
			if !s.reap(e, r, time.Now()) {
				reqs = append(reqs, r)
			}
		default:
			return reqs
		}
	}
	return reqs
}

// dispatch hands a batch to the worker pool. During shutdown the workers
// are still draining s.work (Close waits for the batchers before closing
// it), so this send cannot block forever.
func (s *Server) dispatch(b *batch) {
	if len(b.reqs) == 0 {
		return
	}
	s.work <- b
}

// drain fails whatever is left in the queue at shutdown.
func (s *Server) drain(e *entry) {
	for {
		select {
		case r := <-e.queue:
			r.fail(ErrClosed)
		default:
			return
		}
	}
}
