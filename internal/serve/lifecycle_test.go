package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/mat"
)

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// gateKernel blocks every evaluation until the gate closes, pinning the
// worker pool in a known busy state for as long as a test needs; entered
// signals that an evaluation has started.
type gateKernel struct {
	gate    <-chan struct{}
	entered chan<- struct{}
}

func (k gateKernel) Eval(x, z []float64) float64 {
	if k.entered != nil {
		k.entered <- struct{}{}
	}
	<-k.gate
	return 1
}
func (k gateKernel) Name() string { return "gate" }

func gatedModel(t *testing.T) (*core.Model, <-chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	entered := make(chan struct{}, 64)
	// Opening the gate is registered after newTestServer's s.Close, so it
	// runs first and Close never waits on a stalled worker.
	t.Cleanup(func() { close(gate) })
	return &core.Model{
		Kern:  gateKernel{gate: gate, entered: entered},
		X:     mat.NewDenseData(1, 2, []float64{0, 0}),
		Alpha: mat.NewDenseData(1, 1, []float64{1}),
	}, entered
}

// TestCanceledRequestNeverExecutes pins cancellation propagation: a request
// whose context is canceled while it sits in the queue must be reaped
// before device execution — zero device ops charged, no latency sample,
// counted as abandoned rather than expired.
func TestCanceledRequestNeverExecutes(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, MaxBatch: 4, QueueDepth: 16,
		MaxLatency: time.Millisecond, Timeout: -1,
	})
	m := slowModel(time.Millisecond)
	if err := s.Register("m", m); err != nil {
		t.Fatal(err)
	}

	// cancel() publishes ctx.Err synchronously, so the request enqueues as
	// a corpse: whenever the batcher picks it up, it must already see it as
	// abandoned. This is the strongest deterministic form of "canceled
	// while queued".
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Predict(ctx, "m", []float64{0, 0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled request returned %v, want context.Canceled", err)
	}
	waitFor(t, 5*time.Second, func() bool { return s.Stats().Abandoned == 1 },
		"canceled request was never reaped")

	// A live request afterwards must be the only work the device ever sees.
	if _, err := s.Predict(context.Background(), "m", []float64{0, 0}); err != nil {
		t.Fatalf("live request after cancellation: %v", err)
	}
	st := s.Stats()
	if want := core.PredictOps(m.X.Rows, 1, m.X.Cols, m.Alpha.Cols); st.SimOps != want {
		t.Fatalf("device ops = %v, want %v (one live row): the canceled request reached the device",
			st.SimOps, want)
	}
	if st.Requests != 1 {
		t.Fatalf("latency histogram holds %d samples, want 1 (the live request only)", st.Requests)
	}
	if st.Expired != 0 {
		t.Fatalf("canceled request miscounted as expired: %+v", st)
	}
}

// TestSaturationOccupancy pins the occupancy fix: when queue wait exceeds
// MaxLatency (sustained overload), gather must drain the backlog into full
// batches instead of racing the fired flush timer, keeping mean occupancy
// at >= 0.8*m_max.
func TestSaturationOccupancy(t *testing.T) {
	const mmax = 8
	s := newTestServer(t, Config{
		Workers: 1, MaxBatch: mmax, QueueDepth: 256,
		MaxLatency: time.Millisecond, Timeout: -1,
	})
	if err := s.Register("m", slowModel(2*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	const (
		clients   = 4 * mmax
		perClient = 8
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := s.Predict(context.Background(), "m", []float64{0, 0}); err != nil {
					t.Errorf("predict under saturation: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Requests != clients*perClient {
		t.Fatalf("delivered %d of %d", st.Requests, clients*perClient)
	}
	if floor := 0.8 * mmax; st.MeanOccupancy < floor {
		t.Fatalf("mean occupancy %.2f under saturation, want >= %.1f (m_max=%d)\n%s",
			st.MeanOccupancy, floor, mmax, st)
	}
}

// TestDeadlineAwareShedding pins Config.Shed: once the per-row service
// EWMA is primed, a flood against a busy worker must shed the requests
// whose deadline cannot survive the estimated queue wait — at admission,
// with ErrShed (mapped to 429 by the HTTP layer) — while still admitting
// the requests that can make it.
func TestDeadlineAwareShedding(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, MaxBatch: 1, QueueDepth: 64, Shed: true,
		MaxLatency: time.Millisecond, Timeout: 30 * time.Millisecond,
	})
	if err := s.Register("m", slowModel(20*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// Prime the service-time EWMA with one measured batch.
	if _, err := s.Predict(context.Background(), "m", []float64{0, 0}); err != nil {
		t.Fatalf("priming request: %v", err)
	}

	const flood = 8
	var shed, delivered, expired int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Predict(context.Background(), "m", []float64{0, 0})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case errors.Is(err, ErrShed):
				shed++
			case errors.Is(err, ErrDeadlineExceeded):
				expired++
			case err == nil:
				delivered++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if shed == 0 {
		t.Fatalf("nothing shed: delivered %d, expired %d (queue-wait estimate never tripped)",
			delivered, expired)
	}
	if delivered == 0 {
		t.Fatal("everything shed; admission control admitted nothing")
	}
	if st := s.Stats(); st.Shed != shed {
		t.Fatalf("stats.Shed = %d, callers saw %d", st.Shed, shed)
	}
}

// TestRejectionDoesNotEvictTraces pins the trace-ring fix: queue-full
// rejections must not commit (and thereby evict) ring slots, which is
// exactly what they would do during an overload incident. The pipeline is
// plugged with a gated model so the queue stays full for the whole flood.
func TestRejectionDoesNotEvictTraces(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, MaxBatch: 1, QueueDepth: 1,
		MaxLatency: time.Millisecond, Timeout: -1,
	})
	m, entered := gatedModel(t)
	if err := s.Register("m", m); err != nil {
		t.Fatal(err)
	}
	e, ok := s.reg.entry("m")
	if !ok {
		t.Fatal("entry missing")
	}
	plug := func() { go s.Predict(context.Background(), "m", []float64{0, 0}) }
	// Plug the pipeline one stage at a time so the final state is
	// deterministic: one request executing (blocked on the gate), one
	// buffered in the work channel, one held by the batcher blocked on the
	// work send, one parked in the depth-1 queue. Nothing can drain until
	// the gate opens at cleanup, so every request below is rejected.
	plug()
	<-entered // worker is executing and gated
	plug()
	waitFor(t, 5*time.Second, func() bool { return len(s.work) == 1 },
		"second plug never reached the work buffer")
	plug()
	waitFor(t, 5*time.Second, func() bool { return len(e.queue) == 0 && len(s.work) == 1 },
		"third plug never reached the blocked batcher")
	plug()
	waitFor(t, 5*time.Second, func() bool { return len(e.queue) == 1 },
		"fourth plug never parked in the queue")

	before := s.Tracer().Len()
	var rejected int
	for i := 0; i < 100; i++ {
		if _, err := s.Predict(context.Background(), "m", []float64{0, 0}); errors.Is(err, ErrOverloaded) {
			rejected++
		} else {
			t.Fatalf("request %d was admitted into a plugged pipeline: %v", i, err)
		}
	}
	if after := s.Tracer().Len(); after != before {
		t.Fatalf("trace ring grew from %d to %d across %d rejections: rejected requests burn ring slots",
			before, after, rejected)
	}
}
