package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"eigenpro/internal/mat"
	"eigenpro/internal/obs"
	"eigenpro/internal/obs/slo"
)

// Bounds on the serve HTTP surface, mirroring the /train hardening: both
// endpoints decode untrusted bodies, so size must be capped before JSON or
// gob materializes it. Variables rather than constants so tests can lower
// them without uploading hundreds of megabytes.
var (
	// maxPredictBodyBytes bounds the POST /v1/predict body. A legitimate
	// large batch (maxPredictRows MNIST-sized rows) stays well under it.
	maxPredictBodyBytes int64 = 8 << 20
	// maxModelBodyBytes bounds the PUT /v1/models/{name} gob body.
	maxModelBodyBytes int64 = 256 << 20
)

const (
	// maxPredictRows caps the rows of one predict request: each row fans
	// out as its own goroutine through the batcher.
	maxPredictRows = 4096
	// maxPredictFeatures caps the per-row feature dimension.
	maxPredictFeatures = 1 << 16
)

// NewHandler exposes a Server over HTTP JSON:
//
//	POST /v1/predict        {"model":"m","x":[...]} or {"model":"m","xs":[[...],...]}
//	GET  /v1/models         list registered model names
//	PUT  /v1/models/{name}  gob model body (core.SaveModel) → register/hot-swap
//	GET  /v1/stats          serving counters
//	GET  /metrics           metric exposition (Prometheus text, or OpenMetrics
//	                        with exemplars under Accept: application/openmetrics-text)
//	GET  /debug/traces      recent request span traces (JSON; ?id= and ?limit=)
//	GET  /debug/events      recent wide events (JSON; ?model=&outcome=&since=&limit=)
//	GET  /debug/slo         SLO objectives, burn rates, budget, alert history (JSON)
//	GET  /debug/flight      flight-recorder snapshots (JSON; ?snapshot= and ?file=)
//	GET  /healthz           liveness
//	GET  /readyz            readiness: 200 once at least one model is
//	                        registered; 503 "degraded" while an SLO
//	                        objective is paging
//
// Each row of a predict request is routed through the batcher individually,
// so concurrent HTTP clients (and the rows of one multi-row request)
// coalesce into shared device-saturating micro-batches. Sampled predict
// requests (Config.TraceEvery) get a trace whose ID is echoed in the
// X-Trace-Id response header and the trace_id response field; its spans
// are readable at /debug/traces.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		handlePredict(s, w, r)
	})
	mux.HandleFunc("/v1/models", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, map[string]any{"models": s.Models()})
	})
	mux.HandleFunc("/v1/models/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut {
			httpError(w, http.StatusMethodNotAllowed, "PUT only")
			return
		}
		name := strings.TrimPrefix(r.URL.Path, "/v1/models/")
		if name == "" || strings.Contains(name, "/") {
			httpError(w, http.StatusBadRequest, "model name required")
			return
		}
		// The gob decoder may wrap the reader's error, so detect the
		// over-limit condition with a flagging reader rather than
		// errors.As on the decode error alone.
		body := &limitFlagReader{r: http.MaxBytesReader(w, r.Body, maxModelBodyBytes)}
		if err := s.LoadModel(name, body); err != nil {
			if body.tooBig {
				httpError(w, http.StatusRequestEntityTooLarge,
					"model body exceeds %d bytes", maxModelBodyBytes)
				return
			}
			httpError(w, http.StatusBadRequest, "load model: %v", err)
			return
		}
		writeJSON(w, map[string]any{"registered": name})
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.Handle("/metrics", obs.MetricsHandler(s.Metrics()))
	mux.Handle("/debug/traces", obs.TracesHandler(s.Tracer()))
	mux.Handle("/debug/events", obs.EventsHandler(s.Events()))
	mux.Handle("/debug/slo", slo.Handler(s.SLO()))
	mux.Handle("/debug/flight", obs.FlightHandler(s.Flight()))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", readyHandler(
		func() bool { return len(s.Models()) > 0 }, s.Draining, s.SLO()))
	return mux
}

// readyHandler returns a readiness endpoint: 200 "ok" when ready reports
// true, 503 otherwise. A draining server reports 503 "draining" so load
// balancers stop routing new traffic here during graceful shutdown, and a
// paging SLO objective degrades a ready process to 503 "degraded: slo page"
// so orchestrators stop routing new traffic at a server that is blowing its
// budget.
func readyHandler(ready, draining func() bool, ev *slo.Evaluator) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if draining != nil && draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		if !ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready")
			return
		}
		if ev.Paging() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "degraded: slo page")
			return
		}
		fmt.Fprintln(w, "ok")
	}
}

// predictRequest is the POST /v1/predict body; X carries one query, XS a
// batch. Model defaults to "default".
type predictRequest struct {
	Model string      `json:"model,omitempty"`
	X     []float64   `json:"x,omitempty"`
	XS    [][]float64 `json:"xs,omitempty"`
}

// predictResponse is the POST /v1/predict reply: one output row and argmax
// label per query row. TraceID names the request's span trace at
// /debug/traces when the request was sampled for tracing.
type predictResponse struct {
	Model   string      `json:"model"`
	Y       [][]float64 `json:"y"`
	Labels  []int       `json:"labels"`
	TraceID string      `json:"trace_id,omitempty"`
}

func handlePredict(s *Server, w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPredictBodyBytes)).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	if req.Model == "" {
		req.Model = "default"
	}
	rows := req.XS
	if len(req.X) > 0 {
		rows = append(rows, req.X)
	}
	if len(rows) == 0 {
		httpError(w, http.StatusBadRequest, "empty request: provide x or xs")
		return
	}
	if len(rows) > maxPredictRows {
		httpError(w, http.StatusRequestEntityTooLarge, "%d rows exceeds the %d-row cap", len(rows), maxPredictRows)
		return
	}
	for i, row := range rows {
		if len(row) > maxPredictFeatures {
			httpError(w, http.StatusRequestEntityTooLarge,
				"row %d has %d features, cap is %d", i, len(row), maxPredictFeatures)
			return
		}
	}
	resp := predictResponse{
		Model:  req.Model,
		Y:      make([][]float64, len(rows)),
		Labels: make([]int, len(rows)),
	}
	// A sampled request gets one trace shared by all its rows, carried to
	// Server.Predict through the context; the ID is echoed in the header
	// and body so the caller can look its spans up at /debug/traces.
	ctx := r.Context()
	if tr := s.startTrace("http.predict"); tr != nil {
		ctx = obs.NewContext(ctx, tr)
		resp.TraceID = tr.ID()
		w.Header().Set("X-Trace-Id", tr.ID())
	}
	// Rows go through Server.Predict concurrently so they coalesce into
	// micro-batches with each other and with other in-flight requests.
	errs := make([]error, len(rows))
	var wg sync.WaitGroup
	for i, x := range rows {
		wg.Add(1)
		go func(i int, x []float64) {
			defer wg.Done()
			out, err := s.Predict(ctx, req.Model, x)
			if err != nil {
				errs[i] = err
				return
			}
			resp.Y[i] = out
			resp.Labels[i] = mat.ArgMaxRow(out)
		}(i, x)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			httpError(w, statusFor(err), "%v", err)
			return
		}
	}
	writeJSON(w, resp)
}

// limitFlagReader records whether the wrapped reader (a MaxBytesReader)
// reported its limit, surviving any error wrapping by downstream decoders.
type limitFlagReader struct {
	r      io.Reader
	tooBig bool
}

func (l *limitFlagReader) Read(p []byte) (int, error) {
	n, err := l.r.Read(p)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			l.tooBig = true
		}
	}
	return n, err
}

// statusFor maps request-path errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownModel):
		return http.StatusNotFound
	case errors.Is(err, ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrClosed), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing useful left to do.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
