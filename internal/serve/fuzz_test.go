package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzPredictHTTP fuzzes the POST /v1/predict JSON decoding and error
// paths: the handler must answer every body with a well-formed HTTP
// response and never panic. No model is registered, so even
// structurally-valid requests exit fast on the unknown-model path without
// doing device work.
func FuzzPredictHTTP(f *testing.F) {
	s := New(Config{Workers: 1, Timeout: -1})
	defer s.Close()
	h := NewHandler(s)

	f.Add([]byte(`{"model":"m","x":[1,2,3]}`))
	f.Add([]byte(`{"xs":[[1],[2]]}`))
	f.Add([]byte(`{"model":"default"}`))
	f.Add([]byte(`{"x":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"model":123,"x":"nope"}`))
	f.Add([]byte("{\"xs\":[[1e308,1e308]],\"model\":\"\u0000\"}"))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code < 200 || rec.Code > 599 {
			t.Fatalf("implausible status %d", rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type %q", ct)
		}
	})
}

// FuzzModelUploadHTTP fuzzes the PUT /v1/models/{name} gob-decoding path
// (it feeds LoadModel, which must reject corrupt bodies cleanly).
func FuzzModelUploadHTTP(f *testing.F) {
	s := New(Config{Workers: 1, Timeout: -1})
	defer s.Close()
	h := NewHandler(s)

	f.Add("m", []byte("not a gob model"))
	f.Add("m", []byte{})
	f.Add("weird/name", []byte("x"))
	f.Add("", []byte("x"))
	f.Fuzz(func(t *testing.T, name string, body []byte) {
		req := httptest.NewRequest(http.MethodPut, "/v1/models/", bytes.NewReader(body))
		// Build the path manually: fuzzed names may not be URL-safe, which
		// is exactly the point.
		req.URL.Path = "/v1/models/" + name
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code < 200 || rec.Code > 599 {
			t.Fatalf("implausible status %d", rec.Code)
		}
	})
}
