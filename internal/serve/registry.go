package serve

import (
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eigenpro/internal/core"
	"eigenpro/internal/obs"
)

// entry is one named model slot: the hot-swappable model pointer, its
// bounded request queue, and the micro-batch size derived from the device
// model for the model's shape. The queue and its batcher goroutine outlive
// swaps — only the model pointer and batch size change.
type entry struct {
	name     string
	model    atomic.Pointer[core.Model]
	maxBatch atomic.Int64
	queue    chan *request
	// svcPerRowNanos is an EWMA of the wall-clock device service time per
	// executed batch row, maintained by execute and read by deadline-aware
	// admission (Config.Shed).
	svcPerRowNanos atomic.Int64
}

// observeService folds one executed batch into the per-row service EWMA
// (α = 1/4). A racing store loses one sample, which the next batch repairs.
func (e *entry) observeService(d time.Duration, rows int) {
	if rows <= 0 || d <= 0 {
		return
	}
	per := int64(d) / int64(rows)
	old := e.svcPerRowNanos.Load()
	if old == 0 {
		e.svcPerRowNanos.Store(per)
		return
	}
	e.svcPerRowNanos.Store(old + (per-old)/4)
}

// estimatedWait predicts how long a newly enqueued request would sit in
// the queue: the requests ahead of it × the EWMA per-row service time.
// With multiple workers this over-estimates, so shedding stays
// conservative about admitting. Zero until the first batch is measured.
func (e *entry) estimatedWait() time.Duration {
	return time.Duration(e.svcPerRowNanos.Load() * int64(len(e.queue)))
}

// Registry maps names to hot-swappable models. Swapping is atomic with
// respect to the request path: each micro-batch executes entirely against
// the model pointer it loads at execution time.
type Registry struct {
	srv     *Server
	mu      sync.RWMutex
	entries map[string]*entry
}

func newRegistry(s *Server) *Registry {
	return &Registry{srv: s, entries: make(map[string]*entry)}
}

// register installs or replaces the model under name, starting the entry's
// batcher on first registration.
func (r *Registry) register(name string, m *core.Model) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		e = &entry{name: name, queue: make(chan *request, r.srv.cfg.QueueDepth)}
		r.entries[name] = e
		r.srv.cfg.Metrics.GaugeFunc(MetricServeQueueDepth,
			"Requests waiting in the model's queue.",
			func() float64 { return float64(len(e.queue)) },
			obs.L("model", name))
		r.srv.collWG.Add(1)
		go r.srv.runBatcher(e)
	}
	e.model.Store(m)
	e.maxBatch.Store(int64(r.srv.maxBatchFor(m)))
	return nil
}

// entry returns the slot for name.
func (r *Registry) entry(name string) (*entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// model returns the current model for name.
func (r *Registry) model(name string) (*core.Model, bool) {
	e, ok := r.entry(name)
	if !ok {
		return nil, false
	}
	return e.model.Load(), true
}

// names returns the registered names, sorted.
func (r *Registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LoadModel reads a gob model (written by core.SaveModel) from r and
// registers it under name — the deployment path: train once, serve from any
// later process, hot-swap on retrain.
func (s *Server) LoadModel(name string, r io.Reader) error {
	m, err := core.LoadModel(r)
	if err != nil {
		return err
	}
	return s.Register(name, m)
}

// LoadModelFile is LoadModel reading from a file path.
func (s *Server) LoadModelFile(name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.LoadModel(name, f)
}
