package serve

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync"
	"time"

	"eigenpro/internal/device"
)

// latBucket0 is the upper bound of the first latency bucket; bucket i
// covers (latBucket0·2^(i-1), latBucket0·2^i].
const (
	latBucket0   = 50 * time.Microsecond
	latBucketCnt = 26 // top bucket ≈ 28 minutes; slower goes in the last
	occBucketCnt = 21 // occupancy up to 2^20 per micro-batch
)

// statsCore accumulates the serving counters; all methods are safe for
// concurrent use.
type statsCore struct {
	mu         sync.Mutex
	start      time.Time
	clock      *device.Clock
	requests   int64
	rejected   int64
	expired    int64
	batches    int64
	occSum     int64
	occBuckets [occBucketCnt]int64
	latBuckets [latBucketCnt]int64
}

func newStatsCore(dev *device.Device) *statsCore {
	return &statsCore{start: time.Now(), clock: device.NewClock(dev)}
}

func (s *statsCore) recordRejected() {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

func (s *statsCore) recordExpired() {
	s.mu.Lock()
	s.expired++
	s.mu.Unlock()
}

// charge accounts one micro-batch's operations on the simulated device.
func (s *statsCore) charge(ops float64) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clock.Charge(ops)
}

// recordBatch records a dispatched micro-batch of the given occupancy.
func (s *statsCore) recordBatch(occ int) {
	s.mu.Lock()
	s.batches++
	s.occSum += int64(occ)
	s.occBuckets[pow2Bucket(occ, occBucketCnt)]++
	s.mu.Unlock()
}

// recordDone records one completed request and its enqueue-to-completion
// latency.
func (s *statsCore) recordDone(lat time.Duration) {
	s.mu.Lock()
	s.requests++
	s.latBuckets[latBucket(lat)]++
	s.mu.Unlock()
}

// pow2Bucket maps v >= 1 to ceil(log2(v)) clamped to [0, n).
func pow2Bucket(v, n int) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len(uint(v - 1))
	if b >= n {
		b = n - 1
	}
	return b
}

// latBucket maps a latency to its histogram bucket.
func latBucket(lat time.Duration) int {
	b := 0
	for bound := latBucket0; lat > bound && b < latBucketCnt-1; bound *= 2 {
		b++
	}
	return b
}

// OccupancyBucket is one bar of the batch-occupancy histogram: Count
// micro-batches carried between Lo and Hi requests inclusive.
type OccupancyBucket struct {
	Lo, Hi int
	Count  int64
}

// Stats is a point-in-time snapshot of the serving counters.
type Stats struct {
	// Uptime is the time since the server started.
	Uptime time.Duration
	// Requests counts completed predictions; Rejected counts queue-full
	// admissions; Expired counts requests that timed out while queued.
	Requests, Rejected, Expired int64
	// Batches counts dispatched micro-batches; MeanOccupancy is
	// Requests-completed-or-failed-in-batch per batch.
	Batches       int64
	MeanOccupancy float64
	// P50 and P99 are wall-clock enqueue-to-completion latency quantiles
	// (upper bucket bounds of a log-spaced histogram).
	P50, P99 time.Duration
	// Throughput is completed requests per wall second since start.
	Throughput float64
	// SimTime and SimOps account the simulated device; SimThroughput is
	// completed requests per simulated device second — the number the
	// batched-vs-unbatched comparison is about.
	SimTime       time.Duration
	SimOps        float64
	SimThroughput float64
	// Occupancy is the non-empty part of the batch-size histogram.
	Occupancy []OccupancyBucket
}

// snapshot derives a Stats from the counters.
func (s *statsCore) snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Uptime:   time.Since(s.start),
		Requests: s.requests,
		Rejected: s.rejected,
		Expired:  s.expired,
		Batches:  s.batches,
		SimTime:  s.clock.Elapsed(),
		SimOps:   s.clock.Ops(),
	}
	if s.batches > 0 {
		st.MeanOccupancy = float64(s.occSum) / float64(s.batches)
	}
	if up := st.Uptime.Seconds(); up > 0 {
		st.Throughput = float64(s.requests) / up
	}
	if sim := st.SimTime.Seconds(); sim > 0 {
		st.SimThroughput = float64(s.requests) / sim
	}
	st.P50 = s.latQuantile(0.50)
	st.P99 = s.latQuantile(0.99)
	lo := 1
	for i, c := range s.occBuckets {
		hi := 1 << i
		if c > 0 {
			st.Occupancy = append(st.Occupancy, OccupancyBucket{Lo: lo, Hi: hi, Count: c})
		}
		lo = hi + 1
	}
	return st
}

// latQuantile returns the upper bound of the bucket holding the q-quantile
// completed request. Callers must hold s.mu.
func (s *statsCore) latQuantile(q float64) time.Duration {
	if s.requests == 0 {
		return 0
	}
	// Nearest-rank quantile: ceil(q·n), so p99 of 10 samples is the 10th,
	// not the 9th.
	rank := int64(math.Ceil(q * float64(s.requests)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	bound := latBucket0
	for i, c := range s.latBuckets {
		cum += c
		if cum >= rank {
			return bound
		}
		if i < latBucketCnt-1 {
			bound *= 2
		}
	}
	return bound
}

// String renders the snapshot as an aligned text table.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving stats (uptime %v)\n", st.Uptime.Round(time.Millisecond))
	fmt.Fprintf(&b, "  requests    %-10d rejected %-8d expired %d\n", st.Requests, st.Rejected, st.Expired)
	fmt.Fprintf(&b, "  batches     %-10d mean occupancy %.1f\n", st.Batches, st.MeanOccupancy)
	fmt.Fprintf(&b, "  latency     p50 %v  p99 %v\n", st.P50, st.P99)
	fmt.Fprintf(&b, "  throughput  %.0f req/s wall, %.0f req/s simulated device (%v device time)\n",
		st.Throughput, st.SimThroughput, st.SimTime.Round(time.Microsecond))
	if len(st.Occupancy) > 0 {
		b.WriteString("  batch occupancy:\n")
		for _, o := range st.Occupancy {
			if o.Lo == o.Hi {
				fmt.Fprintf(&b, "    %6d      %d\n", o.Hi, o.Count)
			} else {
				fmt.Fprintf(&b, "    %3d-%-6d  %d\n", o.Lo, o.Hi, o.Count)
			}
		}
	}
	return b.String()
}
