package serve

import (
	"fmt"
	"strings"
	"time"

	"eigenpro/internal/device"
	"eigenpro/internal/obs"
)

// Serving telemetry series names. One serving Server owns these series in
// its registry; the device CounterFuncs and utilization GaugeFunc read the
// first server's clock, so share a registry across servers only when they
// share a device budget.
const (
	MetricServeRequests   = "eigenpro_serve_requests_total"
	MetricServeRejected   = "eigenpro_serve_rejected_total"
	MetricServeExpired    = "eigenpro_serve_expired_total"
	MetricServeAbandoned  = "eigenpro_serve_abandoned_total"
	MetricServeShed       = "eigenpro_serve_shed_total"
	MetricServeBatches    = "eigenpro_serve_batches_total"
	MetricServeOccupancy  = "eigenpro_serve_batch_occupancy"
	MetricServeLatency    = "eigenpro_serve_latency_seconds"
	MetricServeDeviceBusy = "eigenpro_serve_device_busy_seconds_total"
	MetricServeDeviceOps  = "eigenpro_serve_device_ops_total"
	MetricServeDeviceUtil = "eigenpro_serve_device_utilization"
	MetricServeUptime     = "eigenpro_serve_uptime_seconds"
	MetricServeModels     = "eigenpro_serve_models"
	MetricServeQueueDepth = "eigenpro_serve_queue_depth"
	MetricServeDraining   = "eigenpro_serve_draining"
)

// latBucket0 is the upper bound of the first latency bucket; bucket i
// covers (latBucket0·2^(i-1), latBucket0·2^i].
const (
	latBucket0   = 50 * time.Microsecond
	latBucketCnt = 26 // top bucket ≈ 28 minutes; slower goes in the overflow
	occBucketCnt = 21 // occupancy up to 2^20 per micro-batch
)

// latBounds are the latency histogram bucket upper bounds as durations;
// latBoundsSec is the same table in seconds for obs.Histogram.
var (
	latBounds    [latBucketCnt]time.Duration
	latBoundsSec []float64
	occBounds    []float64
)

func init() {
	latBoundsSec = make([]float64, latBucketCnt)
	b := latBucket0
	for i := 0; i < latBucketCnt; i++ {
		latBounds[i] = b
		latBoundsSec[i] = b.Seconds()
		b *= 2
	}
	occBounds = make([]float64, occBucketCnt)
	for i := range occBounds {
		occBounds[i] = float64(int64(1) << i)
	}
}

// statsCore accumulates the serving counters as lock-free obs metrics: the
// hot path (recordDone, recordBatch, charge) performs only atomic adds, so
// a metrics scrape or a Stats snapshot can never contend with it.
type statsCore struct {
	start time.Time
	clock *device.Clock

	requests  *obs.Counter
	rejected  *obs.Counter
	expired   *obs.Counter
	abandoned *obs.Counter
	shed      *obs.Counter
	batches   *obs.Counter
	occ       *obs.Histogram
	lat       *obs.Histogram
}

func newStatsCore(dev *device.Device, reg *obs.Registry) *statsCore {
	s := &statsCore{
		start: time.Now(),
		clock: device.NewClock(dev),

		requests: reg.Counter(MetricServeRequests, "Completed predictions."),
		rejected: reg.Counter(MetricServeRejected, "Requests rejected by admission control (queue full)."),
		expired:  reg.Counter(MetricServeExpired, "Requests that expired while queued."),
		abandoned: reg.Counter(MetricServeAbandoned,
			"Requests abandoned by their caller (context canceled) before delivery."),
		shed: reg.Counter(MetricServeShed,
			"Requests shed at enqueue because the estimated queue wait exceeded their deadline."),
		batches: reg.Counter(MetricServeBatches, "Dispatched micro-batches."),
		occ: reg.Histogram(MetricServeOccupancy,
			"Requests carried per dispatched micro-batch.", occBounds),
		lat: reg.Histogram(MetricServeLatency,
			"Enqueue-to-completion request latency.", latBoundsSec),
	}
	reg.CounterFunc(MetricServeDeviceBusy,
		"Simulated device time charged by serving.",
		func() float64 { return s.clock.Elapsed().Seconds() })
	reg.CounterFunc(MetricServeDeviceOps,
		"Simulated device operations charged by serving.",
		func() float64 { return s.clock.Ops() })
	reg.GaugeFunc(MetricServeDeviceUtil,
		"Simulated-device busy seconds per wall second since start.",
		func() float64 {
			if up := time.Since(s.start).Seconds(); up > 0 {
				return s.clock.Elapsed().Seconds() / up
			}
			return 0
		})
	reg.GaugeFunc(MetricServeUptime, "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	return s
}

func (s *statsCore) recordRejected()  { s.rejected.Inc() }
func (s *statsCore) recordExpired()   { s.expired.Inc() }
func (s *statsCore) recordAbandoned() { s.abandoned.Inc() }
func (s *statsCore) recordShed()      { s.shed.Inc() }

// charge accounts one micro-batch's operations on the simulated device;
// the clock is internally synchronized.
func (s *statsCore) charge(ops float64) time.Duration { return s.clock.Charge(ops) }

// recordBatch records a dispatched micro-batch of the given occupancy.
func (s *statsCore) recordBatch(occ int) {
	s.batches.Inc()
	s.occ.Observe(float64(occ))
}

// recordDone records one completed request and its enqueue-to-completion
// latency. A non-empty traceID lands on the latency bucket as an
// OpenMetrics exemplar, linking the histogram to the trace that produced
// the observation.
func (s *statsCore) recordDone(lat time.Duration, traceID string) {
	s.requests.Inc()
	s.lat.ObserveEx(lat.Seconds(), traceID)
}

// OccupancyBucket is one bar of the batch-occupancy histogram: Count
// micro-batches carried between Lo and Hi requests inclusive.
type OccupancyBucket struct {
	Lo, Hi int
	Count  int64
}

// Stats is a point-in-time snapshot of the serving counters.
type Stats struct {
	// Uptime is the time since the server started.
	Uptime time.Duration
	// Requests counts delivered predictions; Rejected counts queue-full
	// admissions; Expired counts requests that timed out while queued;
	// Abandoned counts requests whose caller returned (context canceled,
	// server closing) before delivery; Shed counts requests rejected by
	// deadline-aware admission control (Config.Shed).
	Requests, Rejected, Expired, Abandoned, Shed int64
	// Batches counts dispatched micro-batches; MeanOccupancy is
	// Requests-completed-or-failed-in-batch per batch.
	Batches       int64
	MeanOccupancy float64
	// P50 and P99 are wall-clock enqueue-to-completion latency quantiles
	// (upper bucket bounds of a log-spaced histogram).
	P50, P99 time.Duration
	// Throughput is completed requests per wall second since start.
	Throughput float64
	// SimTime and SimOps account the simulated device; SimThroughput is
	// completed requests per simulated device second — the number the
	// batched-vs-unbatched comparison is about.
	SimTime       time.Duration
	SimOps        float64
	SimThroughput float64
	// Occupancy is the non-empty part of the batch-size histogram.
	Occupancy []OccupancyBucket
}

// snapshot derives a Stats from the metrics. It takes no lock: every read
// is an atomic load, so snapshotting (or scraping /metrics, which reads
// the same series) cannot stall the request path.
func (s *statsCore) snapshot() Stats {
	st := Stats{
		Uptime:    time.Since(s.start),
		Requests:  int64(s.requests.Value()),
		Rejected:  int64(s.rejected.Value()),
		Expired:   int64(s.expired.Value()),
		Abandoned: int64(s.abandoned.Value()),
		Shed:      int64(s.shed.Value()),
		Batches:   int64(s.batches.Value()),
		SimTime:   s.clock.Elapsed(),
		SimOps:    s.clock.Ops(),
	}
	if occ := s.occ.Snapshot(); occ.Count > 0 {
		st.MeanOccupancy = occ.Sum / float64(occ.Count)
		lo := 1
		for i, bound := range occ.Bounds {
			hi := int(bound)
			c := occ.Counts[i]
			if i == len(occ.Bounds)-1 {
				// Fold the overflow bucket into the last bar.
				c += occ.Counts[len(occ.Counts)-1]
			}
			if c > 0 {
				st.Occupancy = append(st.Occupancy, OccupancyBucket{Lo: lo, Hi: hi, Count: int64(c)})
			}
			lo = hi + 1
		}
	}
	if up := st.Uptime.Seconds(); up > 0 {
		st.Throughput = float64(st.Requests) / up
	}
	if sim := st.SimTime.Seconds(); sim > 0 {
		st.SimThroughput = float64(st.Requests) / sim
	}
	st.P50 = s.latQuantile(0.50)
	st.P99 = s.latQuantile(0.99)
	return st
}

// latQuantile returns the upper bound of the bucket holding the q-quantile
// completed request, as a duration from the exact bucket-bound table (a
// seconds→duration round trip could drift by a nanosecond).
func (s *statsCore) latQuantile(q float64) time.Duration {
	sec := s.lat.Quantile(q)
	if sec == 0 {
		return 0
	}
	for i, b := range latBoundsSec {
		if b >= sec {
			return latBounds[i]
		}
	}
	return latBounds[latBucketCnt-1]
}

// String renders the snapshot as an aligned text table.
func (st Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serving stats (uptime %v)\n", st.Uptime.Round(time.Millisecond))
	fmt.Fprintf(&b, "  requests    %-10d rejected %-8d expired %d\n", st.Requests, st.Rejected, st.Expired)
	fmt.Fprintf(&b, "  abandoned   %-10d shed     %d\n", st.Abandoned, st.Shed)
	fmt.Fprintf(&b, "  batches     %-10d mean occupancy %.1f\n", st.Batches, st.MeanOccupancy)
	fmt.Fprintf(&b, "  latency     p50 %v  p99 %v\n", st.P50, st.P99)
	fmt.Fprintf(&b, "  throughput  %.0f req/s wall, %.0f req/s simulated device (%v device time)\n",
		st.Throughput, st.SimThroughput, st.SimTime.Round(time.Microsecond))
	if len(st.Occupancy) > 0 {
		b.WriteString("  batch occupancy:\n")
		for _, o := range st.Occupancy {
			if o.Lo == o.Hi {
				fmt.Fprintf(&b, "    %6d      %d\n", o.Hi, o.Count)
			} else {
				fmt.Fprintf(&b, "    %3d-%-6d  %d\n", o.Lo, o.Hi, o.Count)
			}
		}
	}
	return b.String()
}
