package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"eigenpro/internal/core"
	"eigenpro/internal/mat"
)

func TestHTTPPredictAndStats(t *testing.T) {
	m := testModel(25, 4, 3, 11)
	s := newTestServer(t, Config{})
	if err := s.Register("default", m); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	body, _ := json.Marshal(predictRequest{XS: [][]float64{
		{0.1, 0.2, 0.3, 0.4},
		{0.5, 0.6, 0.7, 0.8},
	}})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	var pr predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Y) != 2 || len(pr.Labels) != 2 {
		t.Fatalf("bad response shape: %+v", pr)
	}
	want := m.Predict(mat.StackRows([][]float64{{0.1, 0.2, 0.3, 0.4}, {0.5, 0.6, 0.7, 0.8}}, 4))
	for i := range pr.Y {
		if !rowNear(pr.Y[i], want.RowView(i)) {
			t.Fatalf("row %d: got %v want %v", i, pr.Y[i], want.RowView(i))
		}
		if pr.Labels[i] != mat.ArgMaxRow(want.RowView(i)) {
			t.Fatalf("row %d label: got %d", i, pr.Labels[i])
		}
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 {
		t.Fatalf("stats over HTTP: %+v", st)
	}
}

func TestHTTPModelUploadHotSwap(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	m := testModel(12, 3, 2, 13)
	var buf bytes.Buffer
	if err := core.SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/fresh", bytes.NewReader(buf.Bytes()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var models struct{ Models []string }
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if len(models.Models) != 1 || models.Models[0] != "fresh" {
		t.Fatalf("models list: %v", models.Models)
	}

	body, _ := json.Marshal(predictRequest{Model: "fresh", X: []float64{1, 2, 3}})
	resp, err = http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict against uploaded model: status %d", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(`{"model":"ghost","x":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model over HTTP: status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
}

// TestHTTPBodyLimits pins the 413 surface: oversized or over-shaped bodies
// on both untrusted-decode endpoints are refused before they materialize.
func TestHTTPBodyLimits(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	post := func(body []byte) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Row-count cap: one row over maxPredictRows. The cap is checked before
	// model lookup, so no registration is needed.
	xs := make([][]float64, maxPredictRows+1)
	for i := range xs {
		xs[i] = []float64{0}
	}
	body, _ := json.Marshal(predictRequest{XS: xs})
	if code := post(body); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("rows over cap: status %d, want 413", code)
	}

	// Feature-dimension cap: one feature over maxPredictFeatures.
	body, _ = json.Marshal(predictRequest{X: make([]float64, maxPredictFeatures+1)})
	if code := post(body); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("features over cap: status %d, want 413", code)
	}

	// Byte cap on the predict body, lowered so the test stays small.
	defer func(v int64) { maxPredictBodyBytes = v }(maxPredictBodyBytes)
	maxPredictBodyBytes = 64
	body, _ = json.Marshal(predictRequest{XS: [][]float64{make([]float64, 64)}})
	if code := post(body); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("predict body over byte cap: status %d, want 413", code)
	}

	// Byte cap on the model upload body: a valid gob just over the lowered
	// limit must come back 413, not 400, even though gob wraps the read
	// error.
	defer func(v int64) { maxModelBodyBytes = v }(maxModelBodyBytes)
	maxModelBodyBytes = 128
	var buf bytes.Buffer
	if err := core.SaveModel(&buf, testModel(64, 8, 4, 17)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() <= int(maxModelBodyBytes) {
		t.Fatalf("test model gob is %d bytes, need > %d", buf.Len(), maxModelBodyBytes)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/big", bytes.NewReader(buf.Bytes()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("model body over byte cap: status %d, want 413", resp.StatusCode)
	}
	if got := s.Models(); len(got) != 0 {
		t.Fatalf("oversized model was registered anyway: %v", got)
	}
}
