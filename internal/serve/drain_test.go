package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"eigenpro/internal/obs"
)

// TestDrainFlushesInFlightRequests is the graceful-shutdown contract: a
// request admitted before Drain completes successfully, requests arriving
// after Drain are rejected with ErrDraining, and Drain returns only once
// the server is idle.
func TestDrainFlushesInFlightRequests(t *testing.T) {
	ev := obs.NewEventLog(64)
	s := newTestServer(t, Config{Events: ev, MaxBatch: 4, MaxLatency: 5 * time.Millisecond})
	if err := s.Register("default", slowModel(20*time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	// Launch an in-flight request and give it time to be admitted.
	type result struct {
		out []float64
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		out, err := s.Predict(context.Background(), "default", []float64{1, 2})
		resCh <- result{out, err}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.pending.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}

	// The admitted request must have been flushed, not failed.
	r := <-resCh
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if len(r.out) != 1 {
		t.Fatalf("in-flight request returned %d outputs, want 1", len(r.out))
	}

	// Admission is closed now.
	if _, err := s.Predict(context.Background(), "default", []float64{1, 2}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Predict after Drain: err = %v, want ErrDraining", err)
	}

	// Drain emitted begin and drained events; the late request a draining
	// rejection event.
	if n := len(ev.Query(obs.EventQuery{Kind: obs.KindServerDrain})); n != 2 {
		t.Fatalf("server.draining events = %d, want 2 (begin + drained)", n)
	}
	reqs := ev.Query(obs.EventQuery{Kind: obs.KindServeRequest, Outcome: "draining"})
	if len(reqs) != 1 {
		t.Fatalf("draining rejection events = %d, want 1", len(reqs))
	}

	// The draining gauge reads 1.
	if v, ok := s.Metrics().Value(MetricServeDraining); !ok || v != 1 {
		t.Fatalf("%s = %v, %v; want 1", MetricServeDraining, v, ok)
	}

	// Close after drain still works (idempotent shutdown order).
	s.Close()
}

// TestDrainTimeoutReportsInFlight pins the failure mode: a request that
// cannot finish within the timeout makes Drain return an error naming the
// in-flight count instead of hanging.
func TestDrainTimeoutReportsInFlight(t *testing.T) {
	ev := obs.NewEventLog(16)
	s := newTestServer(t, Config{Events: ev, MaxBatch: 1, Timeout: -1})
	if err := s.Register("default", slowModel(500*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Predict(context.Background(), "default", []float64{1, 2})
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.pending.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Drain(time.Millisecond); err == nil {
		t.Fatal("Drain with a stuck request returned nil")
	}
	if n := len(ev.Query(obs.EventQuery{Kind: obs.KindServerDrain, Outcome: "timeout"})); n != 1 {
		t.Fatalf("drain timeout events = %d, want 1", n)
	}
	<-done // let the slow batch finish before Cleanup closes the server
}

// TestDrainZeroLossUnderLoad drives many concurrent requests, drains midway,
// and asserts the invariant the CI graceful-drain job relies on: every
// request either succeeds or is rejected with ErrDraining — none fail with a
// shutdown error after being admitted.
func TestDrainZeroLossUnderLoad(t *testing.T) {
	s := newTestServer(t, Config{MaxBatch: 8, QueueDepth: 64, MaxLatency: time.Millisecond})
	if err := s.Register("default", slowModel(200*time.Microsecond)); err != nil {
		t.Fatal(err)
	}
	const callers = 32
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				if _, err := s.Predict(context.Background(), "default", []float64{1, 2}); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	if err := s.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("caller %d stopped with %v, want ErrDraining", i, err)
		}
	}
	if s.pending.Load() != 0 {
		t.Fatalf("pending = %d after drain, want 0", s.pending.Load())
	}
}

// TestReadyzReportsDraining covers the load-balancer signal: /readyz flips
// to 503 "draining" the moment Drain begins.
func TestReadyzReportsDraining(t *testing.T) {
	s := newTestServer(t, Config{})
	if err := s.Register("default", testModel(4, 2, 1, 1)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	get := func() (int, string) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get(); code != http.StatusOK {
		t.Fatalf("/readyz before drain: %d %q, want 200", code, body)
	}
	if err := s.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	code, body := get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d %q, want 503", code, body)
	}
	if body != "draining\n" {
		t.Fatalf("/readyz body = %q, want \"draining\\n\"", body)
	}
}
