package eigenpro

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestObservabilityHTTP exercises the PR's acceptance criteria through the
// public surface: with serving and the job manager sharing one metrics
// registry and one trace ring, a single GET /metrics on the combined
// handler exposes serving, jobs, and per-job trainer series, and the
// trace ID echoed in a predict response is findable at GET /debug/traces.
func TestObservabilityHTTP(t *testing.T) {
	reg := NewMetricsRegistry()
	tracer := NewTracer(0)
	srv := NewServer(ServerConfig{Metrics: reg, Tracer: tracer})
	defer srv.Close()
	mgr := NewTrainingManager(TrainingConfig{
		Workers: 1, Registrar: srv, Metrics: reg, Tracer: tracer,
	})
	defer mgr.Close()
	ts := httptest.NewServer(NewTrainServeHandler(srv, mgr))
	defer ts.Close()

	// Liveness is unconditional; readiness needs a model or an accepting
	// job manager (the manager is open, so this is ready immediately).
	for _, path := range []string{"/healthz", "/readyz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, r.StatusCode)
		}
	}

	// Train a small model over HTTP so the trainer telemetry flows into
	// the shared registry under the job label.
	body := `{"name":"obs-susy","dataset":"susy","n":240,"epochs":2,"s":64,"sigma":3,"seed":7}`
	resp, err := http.Post(ts.URL+"/train", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job TrainingJob
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("POST /train: %d %+v", resp.StatusCode, job)
	}
	if job.TraceID == "" {
		t.Fatalf("submitted job carries no trace_id: %+v", job)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		cur, ok := JobStatus(mgr, job.ID)
		if !ok {
			t.Fatalf("job %s vanished", job.ID)
		}
		if cur.State == JobDone {
			break
		}
		if cur.State == JobFailed || cur.State == JobCancelled {
			t.Fatalf("job ended %q (%s)", cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Predict and capture the echoed trace ID (body field and header).
	query := SUSYLike(4, 11).X.RowView(0)
	pb, _ := json.Marshal(map[string]any{"model": "obs-susy", "x": query})
	pr, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(pb))
	if err != nil {
		t.Fatal(err)
	}
	var pred struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(pr.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/predict: %d", pr.StatusCode)
	}
	if pred.TraceID == "" {
		t.Fatal("predict response carries no trace_id")
	}
	if hdr := pr.Header.Get("X-Trace-Id"); hdr != pred.TraceID {
		t.Fatalf("X-Trace-Id header %q != body trace_id %q", hdr, pred.TraceID)
	}

	// Both the predict trace and the job trace are in the shared ring,
	// with the spans the trace contract promises.
	tr, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var traces struct {
		Traces []struct {
			ID    string `json:"id"`
			Name  string `json:"name"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	spansOf := func(id string) map[string]bool {
		for _, snap := range traces.Traces {
			if snap.ID != id {
				continue
			}
			got := make(map[string]bool, len(snap.Spans))
			for _, sp := range snap.Spans {
				got[sp.Name] = true
			}
			return got
		}
		t.Fatalf("trace %s not found in /debug/traces (%d traces)", id, len(traces.Traces))
		return nil
	}
	predSpans := spansOf(pred.TraceID)
	for _, want := range []string{"enqueue", "batch-wait", "device-execute"} {
		if !predSpans[want] {
			t.Fatalf("predict trace missing span %q: %v", want, predSpans)
		}
	}
	jobSpans := spansOf(job.TraceID)
	for _, want := range []string{"submit", "queue", "epoch[1]", "epoch[2]", "register"} {
		if !jobSpans[want] {
			t.Fatalf("job trace missing span %q: %v", want, jobSpans)
		}
	}

	// One scrape covers all three subsystems because they share the
	// registry.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mr.Body)
	mr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", mr.StatusCode)
	}
	if ct := mr.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("exposition content type %q", ct)
	}
	exposition := string(raw)
	for _, series := range []string{
		// Serving.
		"eigenpro_serve_requests_total ",
		"eigenpro_serve_rejected_total ",
		"eigenpro_serve_latency_seconds_bucket{",
		"eigenpro_serve_latency_seconds_count ",
		"eigenpro_serve_batch_occupancy_bucket{",
		"eigenpro_serve_device_utilization ",
		"eigenpro_serve_models ",
		`eigenpro_serve_queue_depth{model="obs-susy"}`,
		// Jobs.
		"eigenpro_jobs_submitted_total 1",
		"eigenpro_jobs_completed_total 1",
		"eigenpro_jobs_queue_depth 0",
		`eigenpro_jobs_state{state="done"} 1`,
		// Trainer (via the job's OnEpoch hook).
		"eigenpro_train_epochs_total 2",
		"eigenpro_train_epoch_duration_seconds_count 2",
		`eigenpro_train_mse{job="` + job.ID + `"}`,
		`eigenpro_train_epoch{job="` + job.ID + `"} 2`,
	} {
		if !strings.Contains(exposition, series) {
			t.Fatalf("exposition missing %q\n----\n%s", series, exposition)
		}
	}
	if strings.Count(exposition, "# TYPE eigenpro_serve_requests_total counter") != 1 {
		t.Fatal("duplicate or missing TYPE line for eigenpro_serve_requests_total")
	}
}

// TestTraceIDTriad pins this PR's acceptance criterion end to end: the
// trace ID echoed by one predict response is findable on all three
// observability surfaces — as an OpenMetrics latency exemplar at
// GET /metrics, as a span trace at GET /debug/traces?id=, and on the
// request's wide event at GET /debug/events. It also checks the Go
// runtime telemetry rides along on the exposition.
func TestTraceIDTriad(t *testing.T) {
	reg := NewMetricsRegistry()
	tracer := NewTracer(0)
	events := NewEventLog(0)
	srv := NewServer(ServerConfig{Metrics: reg, Tracer: tracer, Events: events})
	defer srv.Close()
	mgr := NewTrainingManager(TrainingConfig{
		Workers: 1, Registrar: srv, Metrics: reg, Tracer: tracer, Events: events,
	})
	defer mgr.Close()
	ts := httptest.NewServer(NewTrainServeHandler(srv, mgr))
	defer ts.Close()

	ds := SUSYLike(240, 11)
	res, err := Train(Config{Kernel: GaussianKernel(3), Epochs: 1, Seed: 7}, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("triad", res.Model); err != nil {
		t.Fatal(err)
	}

	pb, _ := json.Marshal(map[string]any{"model": "triad", "x": ds.X.RowView(0)})
	pr, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(pb))
	if err != nil {
		t.Fatal(err)
	}
	var pred struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(pr.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK || pred.TraceID == "" {
		t.Fatalf("POST /v1/predict: %d trace_id=%q", pr.StatusCode, pred.TraceID)
	}

	// Surface 1: the OpenMetrics exposition carries the trace as a latency
	// bucket exemplar (and the plain exposition does not).
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	mr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	om := string(raw)
	if ct := mr.Header.Get("Content-Type"); !strings.Contains(ct, "application/openmetrics-text") {
		t.Fatalf("OpenMetrics content type %q", ct)
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Fatal("OpenMetrics exposition missing # EOF")
	}
	exemplar := `# {trace_id="` + pred.TraceID + `"}`
	if !strings.Contains(om, exemplar) {
		t.Fatalf("exposition missing exemplar %q\n----\n%s", exemplar, om)
	}
	if !strings.Contains(om, "go_goroutines ") || !strings.Contains(om, "go_gc_pauses_seconds_bucket{") {
		t.Fatal("exposition missing Go runtime telemetry")
	}
	plain, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	rawPlain, _ := io.ReadAll(plain.Body)
	plain.Body.Close()
	if strings.Contains(string(rawPlain), "# {") {
		t.Fatal("plain Prometheus exposition leaked exemplar syntax")
	}

	// Surface 2: /debug/traces?id= resolves the trace; an unknown id 404s.
	tr, err := http.Get(ts.URL + "/debug/traces?id=" + pred.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	var traces struct {
		Traces []struct {
			ID string `json:"id"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK || len(traces.Traces) != 1 || traces.Traces[0].ID != pred.TraceID {
		t.Fatalf("GET /debug/traces?id=%s: %d %+v", pred.TraceID, tr.StatusCode, traces)
	}
	if nf, err := http.Get(ts.URL + "/debug/traces?id=bogus"); err != nil {
		t.Fatal(err)
	} else {
		nf.Body.Close()
		if nf.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown trace id: %d, want 404", nf.StatusCode)
		}
	}

	// Surface 3: the request's wide event carries the same trace id.
	er, err := http.Get(ts.URL + "/debug/events?model=triad&outcome=ok")
	if err != nil {
		t.Fatal(err)
	}
	var evs struct {
		Events  []Event `json:"events"`
		Emitted uint64  `json:"emitted"`
	}
	if err := json.NewDecoder(er.Body).Decode(&evs); err != nil {
		t.Fatal(err)
	}
	er.Body.Close()
	if er.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/events: %d", er.StatusCode)
	}
	found := false
	for _, ev := range evs.Events {
		if ev.TraceID == pred.TraceID {
			found = true
			if ev.Kind != "serve.request" || ev.Rows != 1 || ev.BatchID == 0 || ev.Occupancy < 1 {
				t.Fatalf("wide event malformed: %+v", ev)
			}
		}
	}
	if !found {
		t.Fatalf("no wide event carries trace %s: %+v", pred.TraceID, evs)
	}
	if evs.Emitted == 0 {
		t.Fatal("event log reports zero emitted")
	}
}
