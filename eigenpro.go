// Package eigenpro is the public API of the EigenPro 2.0 reproduction: a
// kernel machine that adapts its optimization to a parallel computational
// resource so that the critical mini-batch size m* matches the resource's
// maximum useful batch m_max, extending linear batch-size scaling to full
// device utilization (Ma & Belkin, "Kernel machines that adapt to GPUs for
// effective large batch training", MLSys 2019).
//
// Quick start:
//
//	ds := eigenpro.MNISTLike(2000, 1)
//	train, test := ds.Split(0.8, 1)
//	res, err := eigenpro.Train(eigenpro.Config{
//		Kernel: eigenpro.GaussianKernel(5),
//		Epochs: 10,
//	}, train.X, train.Y)
//	if err != nil { ... }
//	errRate := eigenpro.ClassificationError(res.Model.Predict(test.X), test.Labels)
//
// All optimization parameters — the fixed coordinate block size s, the
// spectral flattening depth q, the batch size m = m_max, and the step size
// η — are selected analytically from the kernel spectrum and the device
// model; the only real knobs are the kernel family and its bandwidth.
package eigenpro

import (
	"io"
	"net/http"

	"eigenpro/internal/core"
	"eigenpro/internal/data"
	"eigenpro/internal/device"
	"eigenpro/internal/falkon"
	"eigenpro/internal/jobs"
	"eigenpro/internal/kernel"
	"eigenpro/internal/mat"
	"eigenpro/internal/metrics"
	"eigenpro/internal/obs"
	"eigenpro/internal/obs/slo"
	"eigenpro/internal/parallel"
	"eigenpro/internal/serve"
	"eigenpro/internal/svm"
)

// Matrix is a row-major dense matrix of float64 values (one sample per
// row for data matrices).
type Matrix = mat.Dense

// NewMatrix allocates an r x c zero matrix.
func NewMatrix(r, c int) *Matrix { return mat.NewDense(r, c) }

// NewMatrixData wraps a backing slice (length r*c) without copying.
func NewMatrixData(r, c int, values []float64) *Matrix { return mat.NewDenseData(r, c, values) }

// Kernel is a positive definite kernel function.
type Kernel = kernel.Func

// GaussianKernel returns k(x,z) = exp(−‖x−z‖²/(2σ²)).
func GaussianKernel(sigma float64) Kernel { return kernel.Gaussian{Sigma: sigma} }

// LaplacianKernel returns k(x,z) = exp(−‖x−z‖/σ); the paper (§5.5)
// recommends it for faster training and robustness to σ.
func LaplacianKernel(sigma float64) Kernel { return kernel.Laplacian{Sigma: sigma} }

// CauchyKernel returns k(x,z) = 1/(1 + ‖x−z‖²/σ²).
func CauchyKernel(sigma float64) Kernel { return kernel.Cauchy{Sigma: sigma} }

// Matern32Kernel returns the Matérn ν=3/2 kernel
// (1 + √3r/σ)·exp(−√3r/σ).
func Matern32Kernel(sigma float64) Kernel { return kernel.Matern32{Sigma: sigma} }

// Matern52Kernel returns the Matérn ν=5/2 kernel
// (1 + √5r/σ + 5r²/3σ²)·exp(−√5r/σ).
func Matern52Kernel(sigma float64) Kernel { return kernel.Matern52{Sigma: sigma} }

// KernelByName constructs a kernel from its family name (gaussian,
// laplacian, cauchy, matern32, matern52) and bandwidth — the mapping
// shared by the CLI, the HTTP training endpoint, and model serialization.
func KernelByName(family string, sigma float64) (Kernel, error) {
	return kernel.ByName(family, sigma)
}

// Device models a parallel computational resource G = (C_G, S_G); see
// internal/device for the timing model.
type Device = device.Device

// SimTitanXp returns the default simulated GPU, scaled from the paper's
// Nvidia GTX Titan Xp.
func SimTitanXp() *Device { return device.SimTitanXp() }

// Config configures Train; zero values select the paper's automatic
// choices.
type Config = core.Config

// Method selects the optimizer.
type Method = core.Method

// Optimizer methods.
const (
	// MethodSGD is plain mini-batch kernel SGD.
	MethodSGD = core.MethodSGD
	// MethodEigenPro1 is the original 2017 EigenPro iteration (baseline).
	MethodEigenPro1 = core.MethodEigenPro1
	// MethodEigenPro2 is the improved Algorithm 1 iteration (default).
	MethodEigenPro2 = core.MethodEigenPro2
)

// Model is a trained kernel machine f(x) = Σ_i α_i k(x_i, x).
type Model = core.Model

// Result reports a completed training run, including the analytically
// selected parameters (Params) and per-epoch history.
type Result = core.Result

// Params bundles the automatically selected quantities (q, m_max, η, ...);
// it corresponds to a row of the paper's Table 4.
type Params = core.Params

// Spectrum is a Nyström estimate of the kernel operator's top spectrum.
type Spectrum = core.Spectrum

// EpochStats records one epoch of training progress; Config.OnEpoch
// receives one per epoch.
type EpochStats = core.EpochStats

// Train fits a kernel machine on x with one-hot targets y.
func Train(cfg Config, x, y *Matrix) (*Result, error) { return core.Train(cfg, x, y) }

// Trainer is the interruptible training state machine behind Train: one
// Step per epoch, Checkpoint between steps, resume with ResumeTrainer.
// The async job manager (NewTrainingManager) is built on it.
type Trainer = core.Trainer

// NewTrainer prepares an interruptible training run (spectrum estimation
// and analytic parameter selection happen here).
func NewTrainer(cfg Config, x, y *Matrix) (*Trainer, error) { return core.NewTrainer(cfg, x, y) }

// ResumeTrainer reconstructs a Trainer from a Trainer.Checkpoint snapshot.
// x and y must be the training data of the original run; cfg contributes
// only the non-serializable ValX/ValLabels fields. The resumed run
// reproduces the uninterrupted run bit for bit.
func ResumeTrainer(r io.Reader, cfg Config, x, y *Matrix) (*Trainer, error) {
	return core.ResumeTrainer(r, cfg, x, y)
}

// ErrTrainingComplete is returned by Trainer.Step after training finished.
var ErrTrainingComplete = core.ErrTrainingComplete

// EstimateSpectrum computes a reusable Nyström spectrum from an s-point
// subsample with qmax eigenpairs.
func EstimateSpectrum(k Kernel, x *Matrix, s, qmax int, seed int64) (*Spectrum, error) {
	return core.EstimateSpectrum(k, x, s, qmax, seed)
}

// SelectParams runs the paper's Steps 1-2: batch-size and q selection for
// the given workload shape on the given device.
func SelectParams(sp *Spectrum, dev *Device, n, dim, labels int) Params {
	return core.SelectParams(sp, dev, n, dim, labels)
}

// SolveExact computes the interpolating solution K⁻¹y directly (O(n³);
// small problems only).
func SolveExact(k Kernel, x, y *Matrix, jitter float64) (*Model, error) {
	return core.SolveExact(k, x, y, jitter)
}

// BandwidthCandidate pairs a kernel with its cross-validation score.
type BandwidthCandidate = core.BandwidthCandidate

// BandwidthConfig controls SelectBandwidth.
type BandwidthConfig = core.BandwidthConfig

// SelectBandwidth cross-validates candidate kernels on a small subsample
// (the paper's Appendix B bandwidth-selection protocol) and returns the
// winner with all scores.
func SelectBandwidth(cands []Kernel, x, y *Matrix, labels []int, cfg BandwidthConfig) (Kernel, []BandwidthCandidate, error) {
	return core.SelectBandwidth(cands, x, y, labels, cfg)
}

// GaussianBandwidthLadder returns Gaussian kernels geometrically spaced
// around the median pairwise distance of a subsample — a standard CV grid.
func GaussianBandwidthLadder(x *Matrix, rungs int, seed int64) []Kernel {
	return core.GaussianBandwidthLadder(x, rungs, seed)
}

// SaveModel / LoadModel persist trained models with encoding/gob.
var (
	// SaveModel writes a model to w.
	SaveModel = core.SaveModel
	// LoadModel reads a model written by SaveModel.
	LoadModel = core.LoadModel
	// SaveSpectrum writes a Nyström spectrum to w.
	SaveSpectrum = core.SaveSpectrum
	// LoadSpectrum reads a spectrum written by SaveSpectrum.
	LoadSpectrum = core.LoadSpectrum
)

// Server is a concurrent model server that coalesces individual Predict
// calls into micro-batches sized to the device model's maximum useful batch
// m_max — the paper's batching discipline applied to the serving path. See
// internal/serve for the batching, admission-control, and statistics
// details.
type Server = serve.Server

// ServerConfig configures NewServer; zero values select the defaults
// (simulated Titan Xp device, 2ms flush latency, GOMAXPROCS workers).
type ServerConfig = serve.Config

// ServerStats is a snapshot of a server's counters: throughput, p50/p99
// latency, simulated device time, and the batch-occupancy histogram.
type ServerStats = serve.Stats

// Serving errors a caller can match with errors.Is.
var (
	// ErrServerOverloaded reports a queue-full admission rejection.
	ErrServerOverloaded = serve.ErrOverloaded
	// ErrServerClosed reports a request against a closed server.
	ErrServerClosed = serve.ErrClosed
	// ErrUnknownModel reports a request for an unregistered model name.
	ErrUnknownModel = serve.ErrUnknownModel
	// ErrRequestExpired reports a per-request deadline that lapsed while
	// the request was queued.
	ErrRequestExpired = serve.ErrDeadlineExceeded
	// ErrRequestShed reports a deadline-aware admission rejection
	// (ServerConfig.Shed): the request's deadline could not survive the
	// estimated queue wait, so it was refused before queueing doomed work.
	ErrRequestShed = serve.ErrShed
	// ErrServerDraining reports a request against a draining server:
	// admission is closed for graceful shutdown (Server.Drain) while
	// already-admitted requests flush. /readyz reports the same condition
	// as 503 "draining".
	ErrServerDraining = serve.ErrDraining
)

// NewServer starts a batched inference server. Register models with
// Server.Register or Server.LoadModel, predict with Server.Predict, and
// inspect Server.Stats; call Close to release its goroutines.
func NewServer(cfg ServerConfig) *Server { return serve.New(cfg) }

// NewServerHandler exposes a server over HTTP JSON (POST /v1/predict,
// GET /v1/models, PUT /v1/models/{name}, GET /v1/stats, GET /metrics,
// GET /debug/traces, GET /healthz, GET /readyz).
func NewServerHandler(s *Server) http.Handler { return serve.NewHandler(s) }

// MetricsRegistry is a dependency-free metrics registry (counters, gauges,
// fixed-bucket histograms) with Prometheus text exposition. Pass one
// registry as both ServerConfig.Metrics and TrainingConfig.Metrics to
// expose serving, job, and training series from a single /metrics
// endpoint.
type MetricsRegistry = obs.Registry

// Tracer is a bounded in-memory ring of per-request span traces.
type Tracer = obs.Tracer

// EventLog is a lock-free bounded ring of wide events: one structured
// record per served request, training epoch, and job state transition,
// with leveled severity, head+tail sampling (errors always kept, ok
// outcomes 1-in-N), and an optional JSON-lines sink. Pass one log as both
// ServerConfig.Events and TrainingConfig.Events to read the whole
// system's history from a single /debug/events endpoint.
type EventLog = obs.EventLog

// Event is one wide event record; see EventLog.
type Event = obs.Event

// EventQuery filters EventLog.Query (zero fields match everything).
type EventQuery = obs.EventQuery

// Event severity levels.
type EventLevel = obs.Level

// Event severities.
const (
	EventInfo  = obs.LevelInfo
	EventWarn  = obs.LevelWarn
	EventError = obs.LevelError
)

// MetricLabel is one name=value metric dimension.
type MetricLabel = obs.Label

// Label is shorthand for MetricLabel{k, v}.
func Label(k, v string) MetricLabel { return obs.L(k, v) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer returns a trace ring holding the newest capacity traces
// (<= 0 selects a default capacity).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewEventLog returns an event log retaining the newest capacity events
// (<= 0 selects a default capacity of 4096).
func NewEventLog(capacity int) *EventLog { return obs.NewEventLog(capacity) }

// MetricsHandler serves the registries (plus Go runtime telemetry) with
// content negotiation: Prometheus text by default, OpenMetrics with
// histogram exemplars under Accept: application/openmetrics-text.
// Duplicate registries are exposed once.
func MetricsHandler(regs ...*MetricsRegistry) http.Handler { return obs.MetricsHandler(regs...) }

// TracesHandler serves the tracers' recent span traces as JSON
// (?id= for one trace, ?limit= to bound the response).
func TracesHandler(tracers ...*Tracer) http.Handler { return obs.TracesHandler(tracers...) }

// EventsHandler serves the logs' recent wide events as JSON, filtered by
// ?kind=&model=&outcome=&job=&level=&since=&limit=.
func EventsHandler(logs ...*EventLog) http.Handler { return obs.EventsHandler(logs...) }

// RegisterRuntimeMetrics registers Go runtime telemetry (goroutines,
// heap, GC pauses, scheduler latency) into reg. MetricsHandler already
// exposes these from a process-wide registry; use this only to place the
// go_* series in a registry of your own.
func RegisterRuntimeMetrics(reg *MetricsRegistry) { obs.RegisterRuntimeMetrics(reg) }

// LogTraining returns a Config.OnEpoch hook that emits one wide
// train.epoch event per completed epoch into log, labeled with the given
// job or run name. The training manager installs this automatically for
// its jobs; use it directly to log a standalone Train run.
func LogTraining(log *EventLog, job string) func(EpochStats) {
	return core.LogTraining(log, job, core.EpochStats{})
}

// PprofHandler serves the net/http/pprof profiling endpoints under
// /debug/pprof/ — mount it explicitly (it is never wired in by default).
func PprofHandler() http.Handler { return obs.PprofHandler() }

// SLOEvaluator judges the telemetry the rest of the system emits:
// declarative objectives (availability, latency, training progress)
// evaluated on a fixed cadence from the MetricsRegistry and EventLog into
// Google-SRE-style multi-window burn rates with fast (page) and slow
// (warn) alert rules, hysteresis, and wide slo.state transition events.
// It polls — the serving and training hot paths carry no new locks or
// instrumentation. A nil *SLOEvaluator is valid everywhere and reports
// every objective healthy. See internal/obs/slo.
type SLOEvaluator = slo.Evaluator

// SLOConfig configures NewSLOEvaluator: the objectives, the fast-rule
// window (slow is 6x), the evaluation cadence, and the telemetry sources.
// Set Flight to a FlightRecorder to capture a debugging snapshot on every
// escalation to page.
type SLOConfig = slo.Config

// SLOObjective declares one objective; zero optional fields select
// defaults (target 99%, 250ms latency threshold, the serving series).
type SLOObjective = slo.Objective

// SLOKind selects what an SLOObjective measures.
type SLOKind = slo.Kind

// Objective kinds.
const (
	// SLOAvailability measures the non-ok outcome ratio over served
	// requests (rejected + expired + abandoned + shed vs completed).
	SLOAvailability = slo.Availability
	// SLOLatency measures the fraction of requests completing under the
	// objective's LatencyP99 threshold.
	SLOLatency = slo.Latency
	// SLOTrainingProgress measures per-job training health from
	// train.epoch wide events: epoch-duration stretch and validation-error
	// regression.
	SLOTrainingProgress = slo.TrainingProgress
)

// SLOStatus is the full /debug/slo payload: every objective's burn rates,
// error-budget remaining, and alert state, plus the transition history.
type SLOStatus = slo.Status

// SLOObjectiveStatus is one objective's current standing within an
// SLOStatus.
type SLOObjectiveStatus = slo.ObjectiveStatus

// SLOTransition is one recorded ok|warn|page alert-state change.
type SLOTransition = slo.Transition

// NewSLOEvaluator validates cfg, registers the eigenpro_slo_* gauges into
// cfg.Metrics (default cfg.Source), and starts the background evaluation
// loop; call Close to release it. Attach the evaluator to
// ServerConfig.SLO / TrainingConfig.SLO so the HTTP handlers serve
// GET /debug/slo and degrade /readyz while an objective pages.
func NewSLOEvaluator(cfg SLOConfig) (*SLOEvaluator, error) { return slo.New(cfg) }

// SLOHandler serves GET /debug/slo for the given evaluators (nil
// evaluators are skipped; duplicates are reported once).
func SLOHandler(evs ...*SLOEvaluator) http.Handler { return slo.Handler(evs...) }

// FlightRecorder captures breach-triggered debugging snapshots: a CPU
// profile, heap profile, goroutine dump, the newest wide events, the
// retained span traces, and both metrics expositions, written as one
// directory per capture into a bounded, rate-limited disk ring. Arm it
// via SLOConfig.Flight so every warn→page escalation ships with the
// evidence needed to diagnose it. A nil *FlightRecorder is valid and
// disables capturing.
type FlightRecorder = obs.FlightRecorder

// FlightConfig configures NewFlightRecorder; zero values select the
// defaults (8 snapshots, >= 5m apart, 5s CPU profile, 512 events).
type FlightConfig = obs.FlightConfig

// FlightSnapshot describes one captured snapshot, as listed by
// GET /debug/flight.
type FlightSnapshot = obs.FlightSnapshot

// NewFlightRecorder returns a recorder writing snapshots under cfg.Dir
// (default <tmp>/eigenpro-flight), creating the directory if needed.
func NewFlightRecorder(cfg FlightConfig) (*FlightRecorder, error) {
	return obs.NewFlightRecorder(cfg)
}

// FlightHandler serves GET /debug/flight: the snapshot listing, one
// snapshot's file list (?snapshot=), or raw file contents (?file=).
func FlightHandler(f *FlightRecorder) http.Handler { return obs.FlightHandler(f) }

// ObserveTraining returns a Config.OnEpoch hook that records per-epoch
// training telemetry (epoch/iteration counters, epoch-duration histogram,
// and labeled train-MSE / validation-error / device-utilization gauges)
// into reg. The training manager installs this automatically for its jobs;
// use it directly to instrument a standalone Train run.
func ObserveTraining(reg *MetricsRegistry, labels ...MetricLabel) func(EpochStats) {
	return core.ObserveTraining(reg, core.EpochStats{}, labels...)
}

// TrainingManager runs submitted training jobs asynchronously on a bounded
// worker pool with per-epoch status, cancellation (checkpointing at the
// next epoch boundary), bit-exact resume, and auto-registration of
// completed models into a serving registry. See internal/jobs.
type TrainingManager = jobs.Manager

// TrainingConfig configures NewTrainingManager. Set Registrar to a *Server
// so completed models become servable with no manual step.
type TrainingConfig = jobs.Config

// TrainingSpec describes one training job: a model name, a training
// Config, and the data.
type TrainingSpec = jobs.Spec

// TrainingJob is a point-in-time snapshot of a job's status and metrics.
type TrainingJob = jobs.Info

// JobState is a training-job lifecycle phase.
type JobState = jobs.State

// Training-job lifecycle states.
const (
	JobQueued    = jobs.StateQueued
	JobRunning   = jobs.StateRunning
	JobCancelled = jobs.StateCancelled
	JobDone      = jobs.StateDone
	JobFailed    = jobs.StateFailed
)

// Training-job lifecycle errors a caller can match with errors.Is.
var (
	// ErrJobsClosed reports an operation against a closed manager.
	ErrJobsClosed = jobs.ErrClosed
	// ErrJobQueueFull reports a submission rejected by admission control.
	ErrJobQueueFull = jobs.ErrQueueFull
	// ErrUnknownJob reports an unknown job id.
	ErrUnknownJob = jobs.ErrUnknownJob
)

// NewTrainingManager starts an async training-job manager. Submit with
// SubmitTraining (or Manager.Submit), watch with JobStatus/Wait, stop with
// Cancel, continue with Resume; call Close to release the workers.
func NewTrainingManager(cfg TrainingConfig) *TrainingManager { return jobs.New(cfg) }

// OpenTrainingManager starts a training-job manager with crash-safe
// durability when cfg.StateDir is set: every lifecycle transition is
// journaled, running jobs checkpoint at epoch boundaries, and opening the
// same state directory again replays the journal — finished models
// re-register into cfg.Registrar, and jobs interrupted by a crash or
// shutdown resume automatically, reproducing the uninterrupted run bit for
// bit. With an empty StateDir it behaves exactly like NewTrainingManager.
func OpenTrainingManager(cfg TrainingConfig) (*TrainingManager, error) { return jobs.Open(cfg) }

// SubmitTraining enqueues a training job and returns its id.
func SubmitTraining(m *TrainingManager, spec TrainingSpec) (string, error) { return m.Submit(spec) }

// JobStatus returns a snapshot of a training job's status and metrics.
func JobStatus(m *TrainingManager, id string) (TrainingJob, bool) { return m.Job(id) }

// NewTrainServeHandler combines the serving endpoints (NewServerHandler)
// with the training-job endpoints on one mux:
//
//	POST /train, GET /jobs, GET /jobs/{id},
//	POST /jobs/{id}/cancel, POST /jobs/{id}/resume
//
// When the manager's Registrar is s, a model trained via POST /train is
// immediately servable via POST /v1/predict under its submitted name — the
// full train → serve loop over one HTTP server.
//
// GET /metrics merges the server's and the manager's registries (one
// exposition when they share a registry), so a single scrape covers
// request rates, rejection/expiry counts, micro-batch occupancy,
// device-clock utilization, queue depths, per-job epoch progress, and the
// train-MSE trajectory; runtime telemetry (go_*) rides along, and an
// Accept: application/openmetrics-text header selects OpenMetrics with
// latency exemplars. GET /debug/traces merges both span rings,
// GET /debug/events merges both wide-event logs, GET /debug/slo merges
// both SLO evaluators (and /debug/flight serves whichever flight recorder
// is attached), and GET /readyz reports ready once a model is servable or
// the manager is accepting jobs — degraded (503) while any SLO objective
// is paging, and 503 "draining" once Server.Drain has begun graceful
// shutdown.
func NewTrainServeHandler(s *Server, m *TrainingManager) http.Handler {
	mux := http.NewServeMux()
	jh := jobs.NewHandler(m)
	mux.Handle("/train", jh)
	mux.Handle("/jobs", jh)
	mux.Handle("/jobs/", jh)
	mux.Handle("/metrics", obs.MetricsHandler(s.Metrics(), m.Metrics()))
	mux.Handle("/debug/traces", obs.TracesHandler(s.Tracer(), m.Tracer()))
	mux.Handle("/debug/events", obs.EventsHandler(s.Events(), m.Events()))
	mux.Handle("/debug/slo", slo.Handler(s.SLO(), m.SLO()))
	flight := s.Flight()
	if flight == nil {
		flight = m.Flight()
	}
	mux.Handle("/debug/flight", obs.FlightHandler(flight))
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		if len(s.Models()) == 0 && !m.Accepting() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "not ready\n")
			return
		}
		if slo.AnyPaging(s.SLO(), m.SLO()) {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "degraded: slo page\n")
			return
		}
		io.WriteString(w, "ok\n")
	})
	mux.Handle("/", serve.NewHandler(s))
	return mux
}

// NewDeviceGroup composes count identical devices into one data-parallel
// resource (the paper's §6 multi-GPU direction).
func NewDeviceGroup(base *Device, count int, opt DeviceGroupOptions) (*Device, error) {
	return device.NewGroup(base, count, opt)
}

// DeviceGroupOptions configures NewDeviceGroup.
type DeviceGroupOptions = device.GroupOptions

// Dataset is a labeled sample collection.
type Dataset = data.Dataset

// GenConfig controls synthetic dataset generation.
type GenConfig = data.GenConfig

// GenerateDataset builds a synthetic classification dataset.
func GenerateDataset(cfg GenConfig) *Dataset { return data.Generate(cfg) }

// MNISTLike generates an MNIST-shaped synthetic dataset (784 features,
// 10 classes, values in [0,1]).
func MNISTLike(n int, seed int64) *Dataset { return data.MNISTLike(n, seed) }

// CIFAR10Like generates a grayscale-CIFAR-shaped dataset (1024 features,
// 10 classes).
func CIFAR10Like(n int, seed int64) *Dataset { return data.CIFAR10Like(n, seed) }

// SVHNLike generates a grayscale-SVHN-shaped dataset (1024 features,
// 10 classes).
func SVHNLike(n int, seed int64) *Dataset { return data.SVHNLike(n, seed) }

// TIMITLike generates a TIMIT-frame-shaped dataset (440 z-scored features,
// 48 classes).
func TIMITLike(n int, seed int64) *Dataset { return data.TIMITLike(n, seed) }

// SUSYLike generates a SUSY-shaped dataset (18 features, 2 classes).
func SUSYLike(n int, seed int64) *Dataset { return data.SUSYLike(n, seed) }

// ImageNetFeaturesLike generates a dataset shaped like the paper's
// PCA-reduced ImageNet CNN features (256 features, 50 classes).
func ImageNetFeaturesLike(n int, seed int64) *Dataset { return data.ImageNetFeaturesLike(n, seed) }

// DatasetByName generates the preset dataset with the given name (mnist,
// cifar10, svhn, timit, susy, imagenet) — the mapping shared by the CLI
// and the HTTP training endpoint.
func DatasetByName(name string, n int, seed int64) (*Dataset, error) {
	return data.ByName(name, n, seed)
}

// ReadCSV parses label-first CSV rows into a dataset.
func ReadCSV(r io.Reader, name string) (*Dataset, error) { return data.ReadCSV(r, name) }

// WriteCSV writes a dataset as label-first CSV rows.
func WriteCSV(w io.Writer, ds *Dataset) error { return data.WriteCSV(w, ds) }

// ReadLibSVM parses LibSVM/SVMLight sparse rows into a dense dataset; pass
// dim 0 to infer the feature dimension.
func ReadLibSVM(r io.Reader, name string, dim int) (*Dataset, error) {
	return data.ReadLibSVM(r, name, dim)
}

// WriteLibSVM writes a dataset in LibSVM/SVMLight sparse format.
func WriteLibSVM(w io.Writer, ds *Dataset) error { return data.WriteLibSVM(w, ds) }

// ShardedConfig configures data-parallel training across a device group
// (the paper's §6 multi-GPU direction).
type ShardedConfig = parallel.Config

// ShardedResult reports a data-parallel run.
type ShardedResult = parallel.Result

// TrainSharded fits a kernel machine with the center set partitioned
// across workers; the result matches single-device Train up to roundoff.
func TrainSharded(cfg ShardedConfig, x, y *Matrix) (*ShardedResult, error) {
	return parallel.Train(cfg, x, y)
}

// ShardedTrainer is the interruptible state machine behind TrainSharded,
// with the same Step/Checkpoint/resume contract as Trainer.
type ShardedTrainer = parallel.Trainer

// NewShardedTrainer prepares an interruptible sharded training run.
func NewShardedTrainer(cfg ShardedConfig, x, y *Matrix) (*ShardedTrainer, error) {
	return parallel.NewTrainer(cfg, x, y)
}

// ResumeShardedTrainer reconstructs a ShardedTrainer from a checkpoint;
// the resumed run reproduces the uninterrupted run bit for bit.
func ResumeShardedTrainer(r io.Reader, x, y *Matrix) (*ShardedTrainer, error) {
	return parallel.ResumeTrainer(r, x, y)
}

// MSE returns the mean squared error between predictions and targets.
func MSE(pred, target *Matrix) float64 { return metrics.MSE(pred, target) }

// ClassificationError returns the argmax misclassification rate.
func ClassificationError(pred *Matrix, labels []int) float64 {
	return metrics.ClassificationError(pred, labels)
}

// FalkonConfig configures the FALKON baseline (Rudi et al. 2017).
type FalkonConfig = falkon.Config

// FalkonResult reports a FALKON fit.
type FalkonResult = falkon.Result

// FitFalkon trains the FALKON baseline.
func FitFalkon(cfg FalkonConfig, x, y *Matrix) (*FalkonResult, error) { return falkon.Fit(cfg, x, y) }

// SVMConfig configures the SMO kernel-SVM baseline.
type SVMConfig = svm.Config

// SVMResult reports an SVM fit.
type SVMResult = svm.Result

// TrainSVM fits a one-vs-rest kernel SVM (LibSVM stand-in; set
// Config.Parallel for the ThunderSVM-like driver).
func TrainSVM(cfg SVMConfig, x *Matrix, labels []int, classes int) (*SVMResult, error) {
	return svm.Train(cfg, x, labels, classes)
}
