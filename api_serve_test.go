package eigenpro

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestServerPublicAPI exercises the serving vertical through the public
// surface only: train, save, load into a server, predict (direct and over
// HTTP), and read stats.
func TestServerPublicAPI(t *testing.T) {
	ds := MNISTLike(300, 3)
	train, test := ds.Split(0.8, 3)
	res, err := Train(Config{Kernel: GaussianKernel(5), Epochs: 2, Seed: 3}, train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveModel(&buf, res.Model); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(ServerConfig{})
	defer srv.Close()
	if err := srv.LoadModel("mnist", &buf); err != nil {
		t.Fatal(err)
	}

	want := res.Model.Predict(test.X)
	got, err := srv.Predict(context.Background(), "mnist", test.X.RowView(0))
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range got {
		if diff := v - want.At(0, j); diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("served prediction differs from Model.Predict at col %d", j)
		}
	}
	if lbl, err := srv.PredictLabel(context.Background(), "mnist", test.X.RowView(1)); err != nil {
		t.Fatal(err)
	} else if lbl < 0 || lbl >= ds.Classes {
		t.Fatalf("label %d out of range", lbl)
	}

	ts := httptest.NewServer(NewServerHandler(srv))
	defer ts.Close()
	body, _ := json.Marshal(map[string]any{"model": "mnist", "x": test.X.RowView(2)})
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP predict status %d", resp.StatusCode)
	}

	st := srv.Stats()
	if st.Requests != 3 || st.Batches == 0 || st.SimTime <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	if _, err := srv.Predict(context.Background(), "absent", test.X.RowView(0)); err == nil {
		t.Fatal("unknown model accepted")
	}

	// PredictBatch is the public fast path the server uses internally.
	if batch := res.Model.PredictBatch(test.X, 16); !equalish(batch, want) {
		t.Fatal("PredictBatch differs from Predict")
	}
}

// equalish compares matrices loosely for the public API test.
func equalish(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if d := v - b.Data[i]; d > 1e-10 || d < -1e-10 {
			return false
		}
	}
	return true
}
