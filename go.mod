module eigenpro

go 1.21
