package eigenpro

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPublicDataIO(t *testing.T) {
	ds := SUSYLike(50, 4)
	var csv bytes.Buffer
	if err := WriteCSV(&csv, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&csv, "susy")
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.Dim() != ds.Dim() {
		t.Fatal("csv round trip changed shape")
	}

	var lib bytes.Buffer
	if err := WriteLibSVM(&lib, ds); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadLibSVM(&lib, "susy", ds.Dim())
	if err != nil {
		t.Fatal(err)
	}
	if back2.N() != ds.N() {
		t.Fatal("libsvm round trip changed size")
	}
	if _, err := ReadLibSVM(strings.NewReader("garbage"), "x", 0); err == nil {
		t.Fatal("garbage must error")
	}
}

func TestPublicSerialization(t *testing.T) {
	ds := SUSYLike(120, 5)
	res, err := Train(Config{Kernel: LaplacianKernel(4), Epochs: 2, Seed: 5}, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, res.Model); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if MSE(loaded.Predict(ds.X), res.Model.Predict(ds.X)) != 0 {
		t.Fatal("reloaded model predicts differently")
	}

	var sbuf bytes.Buffer
	if err := SaveSpectrum(&sbuf, res.Spectrum); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpectrum(&sbuf); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSharded(t *testing.T) {
	ds := SUSYLike(160, 6)
	res, err := TrainSharded(ShardedConfig{
		Kernel: GaussianKernel(4), Workers: 2, Epochs: 3, Seed: 6,
	}, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters == 0 {
		t.Fatal("no iterations")
	}
}

func TestPublicDeviceGroup(t *testing.T) {
	g, err := NewDeviceGroup(SimTitanXp(), 4, DeviceGroupOptions{
		SyncOverhead: 100 * time.Microsecond, ScalingEfficiency: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.ParallelOps <= SimTitanXp().ParallelOps {
		t.Fatal("group capacity did not grow")
	}
}

func TestPublicBandwidthSelection(t *testing.T) {
	ds := SUSYLike(200, 7)
	ladder := GaussianBandwidthLadder(ds.X, 3, 7)
	if len(ladder) != 3 {
		t.Fatalf("ladder size %d", len(ladder))
	}
	best, scored, err := SelectBandwidth(ladder, ds.X, ds.Y, ds.Labels,
		BandwidthConfig{Subsample: 120, Folds: 2, Epochs: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || len(scored) != 3 {
		t.Fatal("selection incomplete")
	}
}

func TestPublicMaternKernels(t *testing.T) {
	x := []float64{0, 1}
	if Matern32Kernel(2).Eval(x, x) != 1 || Matern52Kernel(2).Eval(x, x) != 1 {
		t.Fatal("matern kernels not normalized")
	}
}
