package eigenpro

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// durableSpec is a small training job used by the durability tests.
func durableSpec(name string, epochs int, seed int64) TrainingSpec {
	ds := SUSYLike(200, seed)
	return TrainingSpec{
		Name: name,
		Config: Config{
			Kernel: GaussianKernel(3),
			Epochs: epochs,
			Seed:   seed,
			S:      64,
		},
		X: ds.X,
		Y: ds.Y,
	}
}

// TestDurableRestartRecoversThroughPublicAPI is the PR's acceptance
// criterion exercised via the public surface only: a persistent manager is
// shut down mid-job, a fresh manager on the same state directory recovers
// and auto-resumes it, the finished model re-registers into the serving
// registry, and its coefficients are bit-identical to an uninterrupted
// Train run with the same seed.
func TestDurableRestartRecoversThroughPublicAPI(t *testing.T) {
	stateDir := t.TempDir()
	spec := durableSpec("susy", 60, 7)

	mgr, err := OpenTrainingManager(TrainingConfig{Workers: 1, StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	id, err := SubmitTraining(mgr, spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if info, ok := JobStatus(mgr, id); ok && info.Epoch >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached epoch 2")
		}
		time.Sleep(2 * time.Millisecond)
	}
	mgr.Close() // checkpoint + journal "interrupted"

	srv := NewServer(ServerConfig{})
	defer srv.Close()
	mgr2, err := OpenTrainingManager(TrainingConfig{Workers: 1, StateDir: stateDir, Registrar: srv})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if mgr2.Recovered() != 1 {
		t.Fatalf("Recovered() = %d, want 1", mgr2.Recovered())
	}
	info, err := mgr2.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != JobDone || !info.Servable || !info.Recovered {
		t.Fatalf("recovered job: %+v, want done+servable+recovered", info)
	}

	// Bit-exact versus the uninterrupted reference run.
	ref, err := Train(spec.Config, spec.X, spec.Y)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := mgr2.Model(id)
	if !ok {
		t.Fatal("no model for recovered job")
	}
	for i, v := range got.Alpha.Data {
		if v != ref.Model.Alpha.Data[i] {
			t.Fatalf("Alpha[%d] = %v, want %v (not bit-identical)", i, v, ref.Model.Alpha.Data[i])
		}
	}

	// The finished model is servable on the registry recovery registered
	// it into.
	if _, err := srv.Predict(context.Background(), "susy", spec.X.RowView(0)); err != nil {
		t.Fatalf("Predict against recovered model: %v", err)
	}

	// The recovery counter is exposed on /metrics of the combined handler.
	ts := httptest.NewServer(NewTrainServeHandler(srv, mgr2))
	defer ts.Close()
	if v, ok := mgr2.Metrics().Value("eigenpro_jobs_recovered_total"); !ok || v != 1 {
		t.Fatalf("eigenpro_jobs_recovered_total = %v, %v; want 1", v, ok)
	}
}

// TestDrainThroughPublicAPI covers the graceful-shutdown surface: Drain
// closes admission with ErrServerDraining, /readyz flips to 503
// "draining", and in-flight work is flushed rather than failed.
func TestDrainThroughPublicAPI(t *testing.T) {
	srv := NewServer(ServerConfig{})
	defer srv.Close()
	mgr := NewTrainingManager(TrainingConfig{Workers: 1, Registrar: srv})
	defer mgr.Close()

	res, err := Train(durableSpec("susy", 3, 1).Config,
		durableSpec("susy", 3, 1).X, durableSpec("susy", 3, 1).Y)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register("susy", res.Model); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewTrainServeHandler(srv, mgr))
	defer ts.Close()

	if err := srv.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := srv.Predict(context.Background(), "susy", res.Model.X.RowView(0)); !errors.Is(err, ErrServerDraining) {
		t.Fatalf("Predict while draining: %v, want ErrServerDraining", err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || string(body) != "draining\n" {
		t.Fatalf("/readyz while draining: %d %q, want 503 \"draining\\n\"", resp.StatusCode, body)
	}
}
