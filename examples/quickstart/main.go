// Quickstart: train an EigenPro 2.0 kernel machine with fully automatic
// parameter selection, evaluate it, and compare against the exact kernel
// interpolant it is guaranteed to converge to.
package main

import (
	"fmt"
	"log"

	"eigenpro"
)

func main() {
	// A scaled-down MNIST-shaped dataset: 784 features in [0,1], 10
	// classes.
	ds := eigenpro.MNISTLike(1200, 1)
	train, test := ds.Split(0.8, 1)

	// Everything except the kernel and its bandwidth is chosen
	// analytically: the subsample size s, the spectral depth q, the batch
	// size m = m_max, and the step size η.
	res, err := eigenpro.Train(eigenpro.Config{
		Kernel: eigenpro.GaussianKernel(5),
		Epochs: 6,
	}, train.X, train.Y)
	if err != nil {
		log.Fatal(err)
	}

	p := res.Params
	fmt.Printf("selected: q=%d  batch=%d (m* of original kernel was %.1f)  eta=%.1f\n",
		p.QAdjusted, p.Batch, p.MStarOriginal, p.Eta)
	fmt.Printf("train mse after %d epochs: %.2g (simulated GPU time %v)\n",
		res.Epochs, res.FinalTrainMSE, res.SimTime.Round(1000))

	testErr := eigenpro.ClassificationError(res.Model.Predict(test.X), test.Labels)
	fmt.Printf("test error: %.2f%%\n", 100*testErr)

	// The adaptive kernel changes the optimization, not the solution: the
	// predictor approaches the exact minimum-norm interpolant K⁻¹y.
	exact, err := eigenpro.SolveExact(eigenpro.GaussianKernel(5), train.X, train.Y, 0)
	if err != nil {
		log.Fatal(err)
	}
	gap := eigenpro.MSE(res.Model.Predict(test.X), exact.Predict(test.X))
	fmt.Printf("mean squared gap to exact interpolant on test points: %.2g\n", gap)
}
