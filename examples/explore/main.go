// Explore walks the full exploratory-ML loop of the paper's §5.4 and
// Appendix B: select the kernel bandwidth by cross-validation on a small
// subsample, train with automatic parameters, persist the model, and serve
// predictions from the reloaded copy.
package main

import (
	"bytes"
	"fmt"
	"log"

	"eigenpro"
)

func main() {
	ds := eigenpro.SVHNLike(900, 17)
	train, test := ds.Split(0.8, 17)

	// Appendix B: bandwidth by cross-validation on a subsample, over a
	// geometric ladder centered at the median pairwise distance.
	ladder := eigenpro.GaussianBandwidthLadder(train.X, 5, 17)
	best, scored, err := eigenpro.SelectBandwidth(ladder, train.X, train.Y, train.Labels,
		eigenpro.BandwidthConfig{Subsample: 300, Folds: 3, Epochs: 4, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bandwidth search:")
	for _, c := range scored {
		marker := " "
		if c.Kernel == best {
			marker = "*"
		}
		fmt.Printf("  %s %-18s cv error %.1f%%\n", marker, c.Kernel.Name(), 100*c.Error)
	}

	// Train with the winner; everything else is automatic.
	res, err := eigenpro.Train(eigenpro.Config{
		Kernel: best, Epochs: 6, Seed: 17,
	}, train.X, train.Y)
	if err != nil {
		log.Fatal(err)
	}
	testErr := eigenpro.ClassificationError(res.Model.Predict(test.X), test.Labels)
	fmt.Printf("\ntrained with %s: test error %.2f%% in %v wall time\n",
		best.Name(), 100*testErr, res.WallTime.Round(1000000))

	// Persist and reload — the deployment path.
	var buf bytes.Buffer
	if err := eigenpro.SaveModel(&buf, res.Model); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	loaded, err := eigenpro.LoadModel(&buf)
	if err != nil {
		log.Fatal(err)
	}
	gap := eigenpro.MSE(loaded.Predict(test.X), res.Model.Predict(test.X))
	fmt.Printf("serialized %d bytes; reloaded model prediction gap: %g\n", size, gap)
}
