// Trainserve: the full train → serve loop through the async training-job
// subsystem — submit a training job, watch per-epoch progress, cancel it
// mid-run (taking a checkpoint at the epoch boundary), resume it
// bit-for-bit, and classify against the auto-registered model on the
// batched inference server, all in one process.
//
// The job manager's contract is exact, not approximate: the
// cancelled-and-resumed run produces coefficients bit-identical to an
// uninterrupted run with the same seed, which this walkthrough verifies at
// the end.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"eigenpro"
)

func main() {
	ds := eigenpro.MNISTLike(1200, 1)
	train, test := ds.Split(0.8, 1)
	cfg := eigenpro.Config{
		Kernel: eigenpro.GaussianKernel(5),
		Epochs: 6,
		Seed:   1,
	}

	// The serving side: completed jobs auto-register here.
	srv := eigenpro.NewServer(eigenpro.ServerConfig{})
	defer srv.Close()
	mgr := eigenpro.NewTrainingManager(eigenpro.TrainingConfig{
		Workers:   2,
		Registrar: srv, // ← the train → serve hand-off
	})
	defer mgr.Close()

	// Submit and watch.
	id, err := eigenpro.SubmitTraining(mgr, eigenpro.TrainingSpec{
		Name:   "mnist",
		Config: cfg,
		X:      train.X,
		Y:      train.Y,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s as model %q\n", id, "mnist")

	cancelled := false
	lastEpoch := 0
	for {
		info, _ := eigenpro.JobStatus(mgr, id)
		if info.Epoch > lastEpoch {
			fmt.Printf("  epoch %d/%d: train mse %.5f\n", info.Epoch, info.Epochs, info.TrainMSE)
			lastEpoch = info.Epoch
		}
		// Interrupt the job once it is half way through.
		if !cancelled && info.State == eigenpro.JobRunning && info.Epoch >= 2 {
			fmt.Println("cancelling mid-run (checkpoint at the next epoch boundary)...")
			if err := mgr.Cancel(id); err != nil {
				log.Fatal(err)
			}
			cancelled = true
		}
		if info.State == eigenpro.JobCancelled {
			fmt.Printf("parked at epoch %d, checkpointed=%v; resuming\n", info.Epoch, info.Checkpointed)
			if err := mgr.Resume(id); err != nil {
				log.Fatal(err)
			}
		}
		if info.State == eigenpro.JobDone {
			fmt.Printf("done after %d epochs (%d resume(s)); servable=%v\n",
				info.Epoch, info.Resumes, info.Servable)
			break
		}
		if info.State == eigenpro.JobFailed {
			log.Fatalf("job failed: %s", info.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The model is already live on the server — no manual registration.
	correct := 0
	for i := 0; i < test.N(); i++ {
		label, err := srv.PredictLabel(context.Background(), "mnist", test.X.RowView(i))
		if err != nil {
			log.Fatal(err)
		}
		if label == test.Labels[i] {
			correct++
		}
	}
	fmt.Printf("served accuracy on %d held-out samples: %.1f%%\n",
		test.N(), 100*float64(correct)/float64(test.N()))

	// Verify the checkpoint/resume guarantee: the interrupted job's model
	// is bit-identical to an uninterrupted run with the same seed.
	ref, err := eigenpro.Train(cfg, train.X, train.Y)
	if err != nil {
		log.Fatal(err)
	}
	jobModel, _ := mgr.Model(id)
	for i, v := range jobModel.Alpha.Data {
		if v != ref.Model.Alpha.Data[i] {
			log.Fatalf("coefficient %d differs from the uninterrupted run", i)
		}
	}
	fmt.Println("cancel+resume model is bit-identical to the uninterrupted run ✓")
	fmt.Println()
	fmt.Print(srv.Stats())

	durabilityWalkthrough(cfg, train.X, train.Y, ref.Model)
}

// durabilityWalkthrough is the kill/restart act: the same train → serve
// loop, but with a -state-dir-style persistent manager that survives its
// process. The manager is shut down mid-run — standing in for a crash or a
// SIGTERM (the `eigenpro serve` command wires the real signals) — and a
// freshly opened manager on the same state directory replays the journal,
// auto-resumes the interrupted job from its epoch checkpoint, and finishes
// with coefficients bit-identical to the uninterrupted run.
func durabilityWalkthrough(cfg eigenpro.Config, x, y *eigenpro.Matrix, ref *eigenpro.Model) {
	fmt.Println()
	fmt.Println("— durability: kill the manager mid-run, restart, resume —")
	stateDir, err := os.MkdirTemp("", "eigenpro-state-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)

	mgr, err := eigenpro.OpenTrainingManager(eigenpro.TrainingConfig{
		Workers:  1,
		StateDir: stateDir, // ← every transition journaled, checkpoints on disk
	})
	if err != nil {
		log.Fatal(err)
	}
	id, err := eigenpro.SubmitTraining(mgr, eigenpro.TrainingSpec{
		Name: "mnist", Config: cfg, X: x, Y: y,
	})
	if err != nil {
		log.Fatal(err)
	}
	for { // let it get some epochs in before the "crash"
		info, _ := eigenpro.JobStatus(mgr, id)
		if info.Epoch >= 2 {
			fmt.Printf("job %s at epoch %d — shutting down mid-run\n", id, info.Epoch)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mgr.Close() // graceful shutdown: checkpoints and journals "interrupted"

	// A new process: same state directory, nothing else carried over.
	srv2 := eigenpro.NewServer(eigenpro.ServerConfig{})
	defer srv2.Close()
	mgr2, err := eigenpro.OpenTrainingManager(eigenpro.TrainingConfig{
		Workers:   1,
		StateDir:  stateDir,
		Registrar: srv2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr2.Close()
	fmt.Printf("restarted: recovered %d job(s) from the journal\n", mgr2.Recovered())

	info, err := mgr2.Wait(id)
	if err != nil || info.State != eigenpro.JobDone {
		log.Fatalf("recovered job did not finish: %+v err=%v", info, err)
	}
	fmt.Printf("resumed from epoch checkpoint and finished after %d epochs; servable=%v\n",
		info.Epoch, info.Servable)

	m, _ := mgr2.Model(id)
	for i, v := range m.Alpha.Data {
		if v != ref.Alpha.Data[i] {
			log.Fatalf("coefficient %d differs from the uninterrupted run", i)
		}
	}
	fmt.Println("kill+restart model is bit-identical to the uninterrupted run ✓")
}
