// Autotune shows how the adaptive kernel reshapes itself to different
// computational resources: the same dataset and kernel produce different
// (q, m, η) as the device's parallel capacity and memory change — the
// paper's Step 1-2 in isolation. A bigger device yields a larger m_max,
// which demands deeper spectral flattening (larger q) and a larger step.
package main

import (
	"fmt"
	"log"
	"time"

	"eigenpro"
)

func main() {
	ds := eigenpro.TIMITLike(1500, 9)
	kern := eigenpro.LaplacianKernel(15)

	sp, err := eigenpro.EstimateSpectrum(kern, ds.X, 500, 120, 9)
	if err != nil {
		log.Fatal(err)
	}

	devices := []*eigenpro.Device{
		{Name: "laptop-gpu", ParallelOps: 5e7, MemoryFloats: 5e7,
			WaveTime: 4 * time.Millisecond, LaunchOverhead: 300 * time.Microsecond},
		{Name: "titan-xp-scaled", ParallelOps: 6e8, MemoryFloats: 2e8,
			WaveTime: 2 * time.Millisecond, LaunchOverhead: 150 * time.Microsecond},
		{Name: "server-gpu", ParallelOps: 6e9, MemoryFloats: 2e9,
			WaveTime: 2 * time.Millisecond, LaunchOverhead: 100 * time.Microsecond},
	}

	fmt.Printf("dataset %s: n=%d d=%d l=%d, kernel %s, m*(k)=%.1f\n\n",
		ds.Name, ds.N(), ds.Dim(), ds.LabelDim(), kern.Name(),
		mustMStar(sp))
	fmt.Printf("%-16s  %-8s  %-8s  %-8s  %-6s  %-8s  %-10s  %-8s\n",
		"device", "m_C", "m_S", "m_max", "q", "adj q", "eta", "pred accel")
	for _, dev := range devices {
		p := eigenpro.SelectParams(sp, dev, ds.N(), ds.Dim(), ds.LabelDim())
		fmt.Printf("%-16s  %-8d  %-8d  %-8d  %-6d  %-8d  %-10.2f  %-8.1fx\n",
			dev.Name, p.MC, p.MS, p.MMax, p.Q, p.QAdjusted, p.Eta, p.Acceleration)
	}
	fmt.Println("\nsame data, same kernel, same final predictor — only the optimization adapts")
}

func mustMStar(sp *eigenpro.Spectrum) float64 {
	return sp.Beta / sp.Lambda(1)
}
