// Serving: train a small model, stand up the batched inference server, fire
// concurrent clients at it, and print the serving statistics — the paper's
// device-adaptive batching discipline applied to the prediction path.
//
// The same requests served one at a time would each pay a full kernel
// launch plus execution wave on the device; the server coalesces them into
// micro-batches sized to the device model's m_max, so the device-time
// column of the stats is many times smaller than request-count × single-
// request cost.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"eigenpro"
)

func main() {
	// Train a small MNIST-like model (the expensive, once-per-deployment
	// step).
	ds := eigenpro.MNISTLike(900, 1)
	train, test := ds.Split(0.8, 1)
	res, err := eigenpro.Train(eigenpro.Config{
		Kernel: eigenpro.GaussianKernel(5),
		Epochs: 4,
		Seed:   1,
	}, train.X, train.Y)
	if err != nil {
		log.Fatal(err)
	}
	model := res.Model
	fmt.Printf("trained: %d centers, train mse %.3g, wall %v\n",
		model.X.Rows, res.FinalTrainMSE, res.WallTime.Round(time.Millisecond))

	dev := eigenpro.SimTitanXp()
	fmt.Printf("device %s sizes the serving micro-batch at m_max=%d\n",
		dev.Name, dev.ServeBatch(model.X.Rows, model.X.Cols, model.Alpha.Cols))

	// Stand up the server and register the model under a name; a retrained
	// model could later be hot-swapped with another Register call.
	srv := eigenpro.NewServer(eigenpro.ServerConfig{})
	defer srv.Close()
	if err := srv.Register("mnist", model); err != nil {
		log.Fatal(err)
	}

	// Fire concurrent closed-loop clients, each classifying test rows. Every
	// tenth request is canceled by its caller before it is issued — an
	// impatient client hanging up. The server reaps those requests before
	// they reach the device (the "abandoned" row of the stats below), so no
	// device time is spent computing responses nobody reads, and the latency
	// quantiles carry only delivered responses.
	const (
		clients   = 32
		perClient = 40
		cancelNth = 10
	)
	var correct, total, hungUp atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				ctx := context.Background()
				if i%cancelNth == cancelNth-1 {
					cctx, cancel := context.WithCancel(ctx)
					cancel()
					ctx = cctx
				}
				row := (c*perClient + i) % test.N()
				label, err := srv.PredictLabel(ctx, "mnist", test.X.RowView(row))
				if err != nil {
					if errors.Is(err, context.Canceled) {
						hungUp.Add(1)
						continue
					}
					log.Printf("client %d: %v", c, err)
					return
				}
				total.Add(1)
				if label == test.Labels[row] {
					correct.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	fmt.Printf("\n%d clients × %d requests (%d hung up): %.1f%% accuracy in %v wall\n",
		clients, perClient, hungUp.Load(),
		100*float64(correct.Load())/float64(total.Load()), wall.Round(time.Millisecond))
	fmt.Println()
	fmt.Print(srv.Stats())

	fmt.Printf("\nunbatched, the device model charges each request its own launch + wave;\n")
	fmt.Printf("coalescing packed %.1f requests per micro-batch on average instead.\n",
		srv.Stats().MeanOccupancy)
}
