// Largebatch demonstrates the paper's central claim (Figures 1-2): plain
// kernel SGD stops benefiting from batch sizes beyond its small critical
// batch m*(k), while EigenPro 2.0's adaptive kernel keeps the linear
// speedup going up to the device's maximum useful batch m_max.
package main

import (
	"fmt"
	"log"

	"eigenpro"
)

func main() {
	ds := eigenpro.GenerateDataset(eigenpro.GenConfig{
		Name: "demo", N: 800, Dim: 48, Classes: 10,
		LatentDim: 12, Range01: true, Decay: 1.2, Seed: 7,
	})
	kern := eigenpro.GaussianKernel(1.2)
	dev := eigenpro.SimTitanXp()

	sp, err := eigenpro.EstimateSpectrum(kern, ds.X, 300, 64, 7)
	if err != nil {
		log.Fatal(err)
	}
	params := eigenpro.SelectParams(sp, dev, ds.N(), ds.Dim(), ds.LabelDim())
	fmt.Printf("m*(original kernel) = %.1f, device m_max = %d\n\n",
		params.MStarOriginal, params.MMax)
	fmt.Printf("%-8s  %-22s  %-22s\n", "batch", "sgd time-to-converge", "eigenpro2 time-to-converge")

	for _, m := range []int{1, 4, 16, 64, 256, params.MMax} {
		line := fmt.Sprintf("%-8d", m)
		for _, method := range []eigenpro.Method{eigenpro.MethodSGD, eigenpro.MethodEigenPro2} {
			res, err := eigenpro.Train(eigenpro.Config{
				Kernel: kern, Device: dev, Method: method,
				S: 300, QMax: 64, Batch: m, Spectrum: sp,
				Epochs: 50, StopTrainMSE: 2e-3, Seed: 7,
			}, ds.X, ds.Y)
			if err != nil {
				log.Fatal(err)
			}
			cell := fmt.Sprintf("%v (%d epochs)", res.SimTime.Round(1000), res.Epochs)
			if !res.Converged {
				cell = "did not converge"
			}
			line += fmt.Sprintf("  %-22s", cell)
		}
		fmt.Println(line)
	}
	fmt.Println("\nexpected shape: sgd flattens once batch exceeds m*, eigenpro2 keeps improving to m_max")
}
