// Interactive reproduces the paper's §5.4 "interactive/exploratory machine
// learning" scenario (Table 3): kernel machines on small-to-medium datasets
// train in interactive time with zero optimization tuning, fast enough to
// sweep several datasets and bandwidths in one sitting — here against the
// SMO kernel-SVM baseline (the LibSVM stand-in).
package main

import (
	"fmt"
	"log"

	"eigenpro"
)

func main() {
	type job struct {
		name  string
		ds    *eigenpro.Dataset
		kern  eigenpro.Kernel
		sigma float64
	}
	n := 500
	jobs := []job{
		{"mnist-like", eigenpro.MNISTLike(n, 11), eigenpro.GaussianKernel(5), 5},
		{"svhn-like", eigenpro.SVHNLike(n, 12), eigenpro.GaussianKernel(6), 6},
		{"cifar10-like", eigenpro.CIFAR10Like(n, 13), eigenpro.GaussianKernel(6), 6},
		{"timit-like", eigenpro.TIMITLike(n, 14), eigenpro.LaplacianKernel(15), 15},
	}

	fmt.Printf("%-14s  %-12s  %-10s  %-12s  %-10s\n",
		"dataset", "eigenpro", "err", "svm (smo)", "err")
	for _, j := range jobs {
		train, test := j.ds.Split(0.8, 3)

		res, err := eigenpro.Train(eigenpro.Config{
			Kernel: j.kern, Epochs: 5, Seed: 3,
		}, train.X, train.Y)
		if err != nil {
			log.Fatal(err)
		}
		epErr := eigenpro.ClassificationError(res.Model.Predict(test.X), test.Labels)

		svmRes, err := eigenpro.TrainSVM(eigenpro.SVMConfig{
			Kernel: j.kern, C: 10, Seed: 3,
		}, train.X, train.Labels, train.Classes)
		if err != nil {
			log.Fatal(err)
		}
		pred := svmRes.Model.PredictLabels(test.X)
		wrong := 0
		for i, p := range pred {
			if p != test.Labels[i] {
				wrong++
			}
		}
		svmErr := float64(wrong) / float64(len(pred))

		fmt.Printf("%-14s  %-12v  %-10s  %-12v  %-10s\n",
			j.name, res.WallTime.Round(1000000), fmt.Sprintf("%.1f%%", 100*epErr),
			svmRes.WallTime.Round(1000000), fmt.Sprintf("%.1f%%", 100*svmErr))
	}
	fmt.Println("\nworry-free optimization: every eigenpro run above used fully automatic parameters")
}
