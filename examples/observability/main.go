// Observability: wire serving, the training-job manager, and the per-job
// trainers onto ONE metrics registry, ONE trace ring, and ONE wide-event
// log, then read the whole process back through the unified endpoints —
// a Prometheus/OpenMetrics exposition at /metrics, per-request span
// traces at /debug/traces, and structured wide events at /debug/events.
//
// The walkthrough drives the full train → serve loop over HTTP (the same
// combined handler `eigenpro serve` mounts), then prints:
//
//   - the trace of one predict request (enqueue → batch-wait →
//     device-execute), located in the ring by the trace ID the HTTP
//     response echoed back;
//   - the trace of the training job (submit → queue → epoch[k] →
//     register);
//   - the same trace ID resolved on the other two surfaces: the
//     OpenMetrics latency-bucket exemplar and the request's wide event;
//   - the wide-event history of the training job (every state
//     transition plus one train.epoch record per epoch);
//   - a trimmed /metrics scrape showing serving, jobs, trainer, and Go
//     runtime series side by side in one exposition.
//
// The last act adds the judgment layer: declarative SLOs evaluated as
// burn rates over the same telemetry, with a flight recorder armed behind
// them. The demo defines a latency objective on real serving (which stays
// healthy) plus a synthetic availability objective fed by demo counters,
// drives the synthetic one to a breach, and watches the alert walk
// ok → warn → page: /readyz degrades, a diagnosis snapshot (CPU/heap
// profiles, goroutines, recent wide events, traces, metrics) lands on
// disk, and /debug/flight serves it back.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"eigenpro"
)

func main() {
	// One registry, one trace ring, and one wide-event log for the whole
	// process. Passing the same trio to both configs is the entire
	// integration story: serving counters, job-state gauges, per-epoch
	// training telemetry, and every wide event all land on the same
	// endpoints.
	reg := eigenpro.NewMetricsRegistry()
	tracer := eigenpro.NewTracer(0)   // 0 = default ring capacity
	events := eigenpro.NewEventLog(0) // 0 = default 4096-event ring
	// In production, sample steady-state ok events (errors, sheds, and
	// expiries are always kept) and mirror to a JSON-lines sink:
	//   events.SetSampleEvery(10)
	//   events.SetSink(os.Stderr, eigenpro.EventWarn)

	// The judgment layer. A flight recorder holds the evidence locker
	// (bounded on disk, rate-limited), and the SLO evaluator polls the
	// registry once per Resolution, folding deltas into burn-rate windows —
	// the serving hot path is never touched. The latency objective watches
	// real serving and will stay green; the availability objective watches
	// two demo counters this walkthrough will push into breach.
	flightDir, err := os.MkdirTemp("", "eigenpro-flight-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(flightDir)
	demoGood := reg.Counter("demo_good_total", "synthetic good requests")
	demoBad := reg.Counter("demo_bad_total", "synthetic bad requests")
	flight, err := eigenpro.NewFlightRecorder(eigenpro.FlightConfig{
		Dir:        flightDir,
		CPUProfile: 100 * time.Millisecond, // keep the demo snappy; default is 5s
		Events:     events,
		Registries: []*eigenpro.MetricsRegistry{reg},
	})
	if err != nil {
		log.Fatal(err)
	}
	sloEval, err := eigenpro.NewSLOEvaluator(eigenpro.SLOConfig{
		Objectives: []eigenpro.SLOObjective{
			{Kind: eigenpro.SLOLatency, Name: "serve-latency", Target: 0.99,
				LatencyP99: 250 * time.Millisecond},
			{Kind: eigenpro.SLOAvailability, Name: "demo-availability", Target: 0.99,
				GoodMetric: "demo_good_total", BadMetrics: []string{"demo_bad_total"}},
		},
		Window:     2 * time.Second, // demo-sized; production uses minutes
		Resolution: 50 * time.Millisecond,
		PageAfter:  300 * time.Millisecond,
		Source:     reg,
		Events:     events,
		Flight:     flight,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sloEval.Close()

	srv := eigenpro.NewServer(eigenpro.ServerConfig{
		Metrics: reg,
		Tracer:  tracer,
		Events:  events,
		SLO:     sloEval,
		Flight:  flight,
	})
	defer srv.Close()
	mgr := eigenpro.NewTrainingManager(eigenpro.TrainingConfig{
		Workers:   1,
		Registrar: srv, // finished jobs auto-register on the server
		Metrics:   reg,
		Tracer:    tracer,
		Events:    events,
	})
	defer mgr.Close()

	ts := httptest.NewServer(eigenpro.NewTrainServeHandler(srv, mgr))
	defer ts.Close()

	// Train a model over HTTP and wait for it.
	body := `{"name":"susy","dataset":"susy","n":400,"epochs":3,"s":64,"sigma":3,"seed":1}`
	resp, err := http.Post(ts.URL+"/train", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var job eigenpro.TrainingJob
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted job %s (trace %s)\n", job.ID, job.TraceID)
	for {
		cur, ok := eigenpro.JobStatus(mgr, job.ID)
		if !ok || cur.State == eigenpro.JobFailed {
			log.Fatalf("job did not finish: %+v", cur)
		}
		if cur.State == eigenpro.JobDone {
			fmt.Printf("job done: %d epochs, final mse %.3g\n", cur.Epoch, cur.TrainMSE)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Predict; the response echoes the trace ID (also in X-Trace-Id).
	query := eigenpro.SUSYLike(4, 9).X.RowView(0)
	pb, _ := json.Marshal(map[string]any{"model": "susy", "x": query})
	pr, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(pb))
	if err != nil {
		log.Fatal(err)
	}
	var pred struct {
		Labels  []int  `json:"labels"`
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(pr.Body).Decode(&pred); err != nil {
		log.Fatal(err)
	}
	pr.Body.Close()
	fmt.Printf("predicted label %d (trace %s)\n\n", pred.Labels[0], pred.TraceID)

	// Pull the shared trace ring and print the two traces we hold IDs
	// for: the predict request and the training job.
	tr, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		log.Fatal(err)
	}
	var ring struct {
		Traces []struct {
			ID    string `json:"id"`
			Name  string `json:"name"`
			Spans []struct {
				Name     string        `json:"name"`
				Duration time.Duration `json:"duration_ns"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&ring); err != nil {
		log.Fatal(err)
	}
	tr.Body.Close()
	for _, snap := range ring.Traces {
		if snap.ID != pred.TraceID && snap.ID != job.TraceID {
			continue
		}
		fmt.Printf("trace %s (%s):\n", snap.ID, snap.Name)
		for _, sp := range snap.Spans {
			fmt.Printf("  %-16s %v\n", sp.Name, sp.Duration.Round(time.Microsecond))
		}
	}

	// The same trace ID resolves on the other two surfaces. Surface two:
	// the OpenMetrics exposition (content-negotiated via Accept) attaches
	// it to the latency bucket the request landed in as an exemplar.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	omr, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	omRaw, err := io.ReadAll(omr.Body)
	omr.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nlatency-bucket exemplar carrying the predict trace id:")
	for _, line := range strings.Split(string(omRaw), "\n") {
		if strings.Contains(line, `trace_id="`+pred.TraceID+`"`) {
			fmt.Println("  " + line)
		}
	}

	// Surface three: the request's wide event at /debug/events, filtered
	// the way an incident query would be.
	er, err := http.Get(ts.URL + "/debug/events?kind=serve.request&model=susy&outcome=ok")
	if err != nil {
		log.Fatal(err)
	}
	var evPayload struct {
		Events  []eigenpro.Event `json:"events"`
		Emitted uint64           `json:"emitted"`
		Dropped uint64           `json:"dropped"`
	}
	if err := json.NewDecoder(er.Body).Decode(&evPayload); err != nil {
		log.Fatal(err)
	}
	er.Body.Close()
	for _, ev := range evPayload.Events {
		if ev.TraceID != pred.TraceID {
			continue
		}
		fmt.Printf("\nwide event for trace %s:\n", ev.TraceID)
		fmt.Printf("  batch %d (occupancy %d), queue wait %v, device time %v\n",
			ev.BatchID, ev.Occupancy, ev.QueueWait.Round(time.Microsecond),
			ev.DeviceTime.Round(time.Microsecond))
	}

	// The training job left a wide-event history too: one job.state
	// record per lifecycle transition and one train.epoch per epoch.
	fmt.Printf("\njob %s event history (newest first, %d kept / %d sampled out):\n",
		job.ID, evPayload.Emitted, evPayload.Dropped)
	jr, err := http.Get(ts.URL + "/debug/events?job=" + job.ID)
	if err != nil {
		log.Fatal(err)
	}
	var jobEvents struct {
		Events []eigenpro.Event `json:"events"`
	}
	if err := json.NewDecoder(jr.Body).Decode(&jobEvents); err != nil {
		log.Fatal(err)
	}
	jr.Body.Close()
	for _, ev := range jobEvents.Events {
		switch ev.Kind {
		case "train.epoch":
			fmt.Printf("  train.epoch  epoch %d  mse %.3g  wall %v\n",
				ev.Epoch, ev.MSE, ev.Wall.Round(time.Microsecond))
		case "job.state":
			fmt.Printf("  job.state    -> %s\n", ev.Outcome)
		}
	}

	// One /metrics scrape covers all three subsystems plus the Go
	// runtime. Print the series this walkthrough touched (a real
	// deployment points Prometheus at the endpoint instead).
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	raw, err := io.ReadAll(mr.Body)
	mr.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nselected /metrics series:")
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		for _, prefix := range []string{
			"eigenpro_serve_requests_total",
			"eigenpro_serve_latency_seconds_count",
			"eigenpro_serve_device_utilization",
			"eigenpro_jobs_submitted_total",
			"eigenpro_jobs_state",
			"eigenpro_train_epochs_total",
			"eigenpro_train_mse",
			"go_goroutines",
			"go_gc_cycles_total",
		} {
			if strings.HasPrefix(line, prefix) {
				fmt.Println("  " + line)
			}
		}
	}

	// ---- The judgment layer: SLO burn rates and the flight recorder ----

	// Healthy first. The evaluator's opening observation is a baseline:
	// counts that predate it read as history, not traffic (and on a busy
	// box the background tick may lag the CPU-heavy walkthrough above),
	// so wait for the first tick before seeding good traffic, then spread
	// it across a few resolution windows like a real workload would.
	for sloEval.Ticks() == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	for i := 0; i < 8; i++ {
		demoGood.Add(25)
		time.Sleep(60 * time.Millisecond)
	}
	fmt.Println("\nSLO standings before the breach:")
	printSLOs(ts.URL)

	// Drive the synthetic breach: all-bad traffic burns the 1% error
	// budget at 100x, tripping the fast burn rule (warn), and sustaining
	// it past PageAfter escalates to page — which trips the armed flight
	// recorder exactly once (further triggers are rate-limited).
	fmt.Println("\ndriving all-bad synthetic traffic...")
	for i := 0; !sloEval.Paging() && i < 200; i++ {
		demoBad.Add(25)
		time.Sleep(25 * time.Millisecond)
	}
	fmt.Println("\nSLO standings during the breach:")
	printSLOs(ts.URL)

	// Readiness now reports the process degraded.
	rr, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		log.Fatal(err)
	}
	rbody, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	fmt.Printf("\nGET /readyz -> %d %s", rr.StatusCode, rbody)

	// The page shipped with its diagnosis bundle. meta.json is written
	// last, so a listed-and-complete snapshot is fully on disk.
	flight.Wait()
	fr, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		log.Fatal(err)
	}
	var flightList struct {
		Snapshots []eigenpro.FlightSnapshot `json:"snapshots"`
	}
	if err := json.NewDecoder(fr.Body).Decode(&flightList); err != nil {
		log.Fatal(err)
	}
	fr.Body.Close()
	for _, snap := range flightList.Snapshots {
		fmt.Printf("\nflight snapshot %s (reason %q, complete %v):\n",
			filepath.Join(flightDir, snap.Name), snap.Reason, snap.Complete)
		for _, f := range snap.Files {
			fmt.Printf("  %-14s %6d bytes\n", f.Name, f.Bytes)
		}
	}

	// Every alert-state change is also a wide event on the shared log.
	sr, err := http.Get(ts.URL + "/debug/events?kind=slo.state")
	if err != nil {
		log.Fatal(err)
	}
	var sloEvents struct {
		Events []eigenpro.Event `json:"events"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&sloEvents); err != nil {
		log.Fatal(err)
	}
	sr.Body.Close()
	fmt.Println("\nslo.state wide events (newest first):")
	for _, ev := range sloEvents.Events {
		fmt.Printf("  %-7s %-20s -> %s\n", ev.Level, ev.Objective, ev.Outcome)
	}
}

// printSLOs renders the /debug/slo standings as a small table.
func printSLOs(base string) {
	resp, err := http.Get(base + "/debug/slo")
	if err != nil {
		log.Fatal(err)
	}
	var payload struct {
		Objectives []eigenpro.SLOObjectiveStatus `json:"objectives"`
		Paging     bool                          `json:"paging"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	for _, o := range payload.Objectives {
		fmt.Printf("  %-20s %-5s burn fast %7.2f  slow %7.2f  budget %6.1f%%\n",
			o.Name, strings.ToUpper(o.State), o.BurnFast, o.BurnSlow,
			100*o.ErrorBudgetRemaining)
	}
	if payload.Paging {
		fmt.Println("  (paging: /readyz now reports degraded)")
	}
}
