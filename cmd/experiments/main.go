// Command experiments regenerates the paper's tables and figures against
// the simulated device and scaled synthetic workloads.
//
// Usage:
//
//	experiments [-run all|figure2|figure3a|figure3b|table1|table2|table3|table4|accel|pca|robustness|serving|overload|jobs|obs-overhead] [-scale small|medium|large]
package main

import (
	"flag"
	"fmt"
	"os"

	"eigenpro/internal/bench"
)

func main() {
	runFlag := flag.String("run", "all", "experiment id: all, figure2, figure3a, figure3b, table1, table2, table3, table4, accel, pca, robustness, ablation-q, ablation-s, multigpu, serving, overload, jobs, obs-overhead")
	scaleFlag := flag.String("scale", "medium", "workload scale: small, medium, large")
	flag.Parse()

	var scale bench.Scale
	switch *scaleFlag {
	case "small":
		scale = bench.Small
	case "medium":
		scale = bench.Medium
	case "large":
		scale = bench.Large
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	var reports []*bench.Report
	var err error
	switch *runFlag {
	case "all":
		reports, err = bench.All(scale)
	case "figure2":
		reports, err = bench.Figure2(scale)
	case "figure3a":
		reports = []*bench.Report{bench.Figure3a(scale)}
	case "figure3b":
		reports = []*bench.Report{bench.Figure3b(scale)}
	case "table1":
		reports, err = one(bench.Table1, scale)
	case "table2":
		reports, err = one(bench.Table2, scale)
	case "table3":
		reports, err = one(bench.Table3, scale)
	case "table4":
		reports, err = one(bench.Table4, scale)
	case "accel":
		reports, err = one(bench.Acceleration, scale)
	case "pca":
		reports, err = one(bench.PCAStudy, scale)
	case "robustness":
		reports, err = one(bench.KernelRobustness, scale)
	case "ablation-q":
		reports, err = one(bench.AblationQ, scale)
	case "ablation-s":
		reports, err = one(bench.AblationS, scale)
	case "multigpu":
		reports, err = one(bench.MultiGPU, scale)
	case "serving":
		reports, err = one(bench.ServingThroughput, scale)
	case "overload":
		reports, err = one(bench.OverloadServing, scale)
	case "jobs":
		reports, err = one(bench.TrainingJobs, scale)
	case "obs-overhead":
		reports, err = one(bench.ObsOverhead, scale)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *runFlag)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiment failed: %v\n", err)
		os.Exit(1)
	}
	for _, r := range reports {
		fmt.Println(r)
	}
}

func one(f func(bench.Scale) (*bench.Report, error), scale bench.Scale) ([]*bench.Report, error) {
	r, err := f(scale)
	if err != nil {
		return nil, err
	}
	return []*bench.Report{r}, nil
}
