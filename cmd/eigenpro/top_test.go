package main

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eigenpro"
)

func TestPollServer(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("go_goroutines 9\neigenpro_serve_requests_total 42\n"))
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("limit") != "512" {
			t.Errorf("events poll limit = %q, want 512", r.URL.Query().Get("limit"))
		}
		w.Write([]byte(`{"events":[{"kind":"serve.request","outcome":"ok"}],"emitted":7,"dropped":2}`))
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"objectives":[{"name":"availability","state":"page","burn_fast":20.5,` +
			`"burn_slow":8.1,"error_budget_remaining":-0.4}],"paging":true}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	p, err := pollServer(ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(p.samples, "eigenpro_serve_requests_total", nil); got != 42 {
		t.Fatalf("requests = %v, want 42", got)
	}
	if !p.hasEvent || len(p.events) != 1 || p.emitted != 7 || p.dropped != 2 {
		t.Fatalf("events poll = %+v", p)
	}
	if !p.hasSLO || !p.sloPaging || len(p.slos) != 1 || p.slos[0].Name != "availability" {
		t.Fatalf("slo poll = %+v", p)
	}

	// A server without /debug/events (disabled logging) degrades to
	// metrics-only rather than failing the poll.
	bare := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("go_goroutines 3\n"))
	}))
	defer bare.Close()
	p, err = pollServer(bare.Client(), bare.URL)
	if err != nil {
		t.Fatal(err)
	}
	if p.hasEvent {
		t.Fatal("poll claims events from a server without /debug/events")
	}
	if p.hasSLO || p.sloPaging {
		t.Fatal("poll claims SLOs from a server without /debug/slo")
	}
	if len(p.samples) != 1 {
		t.Fatalf("samples = %+v", p.samples)
	}

	// A failing /metrics fails the poll outright.
	if _, err := pollServer(bare.Client(), bare.URL+"/nope"); err == nil {
		t.Fatal("poll of a dead metrics endpoint did not error")
	}
}

func TestParseSampleLine(t *testing.T) {
	cases := []struct {
		line   string
		ok     bool
		name   string
		labels map[string]string
		value  float64
	}{
		{"go_goroutines 12", true, "go_goroutines", nil, 12},
		{`eigenpro_serve_queue_depth{model="default"} 3`, true,
			"eigenpro_serve_queue_depth", map[string]string{"model": "default"}, 3},
		{`h_bucket{le="+Inf",model="m"} 7`, true,
			"h_bucket", map[string]string{"le": "+Inf", "model": "m"}, 7},
		{`weird{k="a\"b,c\nd"} 1`, true, "weird", map[string]string{"k": "a\"b,c\nd"}, 1},
		{"lat_sum 0.125", true, "lat_sum", nil, 0.125},
		{"# HELP foo bar", false, "", nil, 0},
		{"", false, "", nil, 0},
		{"noval{", false, "", nil, 0},
		{"name notanumber", false, "", nil, 0},
	}
	for _, c := range cases {
		s, ok := parseSampleLine(c.line)
		if ok != c.ok {
			t.Errorf("parseSampleLine(%q) ok = %v, want %v", c.line, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if s.name != c.name || s.value != c.value {
			t.Errorf("parseSampleLine(%q) = %+v", c.line, s)
		}
		for k, v := range c.labels {
			if s.labels[k] != v {
				t.Errorf("parseSampleLine(%q) label %s = %q, want %q", c.line, k, s.labels[k], v)
			}
		}
	}
}

func TestParseExposition(t *testing.T) {
	text := `# HELP eigenpro_serve_requests_total Requests.
# TYPE eigenpro_serve_requests_total counter
eigenpro_serve_requests_total 40
eigenpro_serve_queue_depth{model="a"} 2
eigenpro_serve_queue_depth{model="b"} 5

garbage line without a value x
# EOF
`
	ss := parseExposition(text)
	if len(ss) != 3 {
		t.Fatalf("parsed %d samples, want 3: %+v", len(ss), ss)
	}
	if got := metricValue(ss, "eigenpro_serve_queue_depth", nil); got != 7 {
		t.Fatalf("summed queue depth = %v, want 7", got)
	}
	if got := metricValue(ss, "eigenpro_serve_queue_depth", map[string]string{"model": "b"}); got != 5 {
		t.Fatalf("model=b queue depth = %v, want 5", got)
	}
	if got := labelValues(ss, "eigenpro_serve_queue_depth", "model"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("labelValues = %v", got)
	}
}

func TestCumHistSubAndQuantile(t *testing.T) {
	mk := func(lines string) cumHist {
		return histFromSamples(parseExposition(lines), "lat")
	}
	prev := mk(`lat_bucket{le="0.001"} 10
lat_bucket{le="0.01"} 20
lat_bucket{le="+Inf"} 20
`)
	cur := mk(`lat_bucket{le="0.001"} 10
lat_bucket{le="0.01"} 60
lat_bucket{le="+Inf"} 70
`)
	win := cur.sub(prev)
	// Window: 0 in ≤1ms, 40 in ≤10ms, 10 overflow.
	if win.cums[0] != 0 || win.cums[1] != 40 || win.cums[2] != 50 {
		t.Fatalf("windowed cums = %v", win.cums)
	}
	if got := win.quantile(0.50); got != 0.01 {
		t.Fatalf("p50 = %v, want 0.01", got)
	}
	// p99 rank (49.5) lands in the overflow bucket: saturate at the largest
	// finite bound rather than reporting +Inf.
	if got := win.quantile(0.99); got != 0.01 {
		t.Fatalf("p99 = %v, want saturation at 0.01", got)
	}

	// Shape mismatch (restarted server) falls back to cur.
	if got := cur.sub(cumHist{}); len(got.cums) != 3 || got.cums[2] != 70 {
		t.Fatalf("shape-mismatch sub = %+v", got)
	}
	// Counter reset (negative delta) falls back to cur.
	if got := prev.sub(cur); got.cums[1] != 20 {
		t.Fatalf("reset sub = %+v", got)
	}
	// Empty histogram quantile is 0.
	if got := (cumHist{}).quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	if math.IsInf(win.quantile(1), 1) {
		t.Fatal("quantile returned +Inf")
	}
}

func topPoll(at time.Time, exposition string, events []eigenpro.Event) poll {
	return poll{
		at:       at,
		samples:  parseExposition(exposition),
		events:   events,
		emitted:  uint64(len(events)),
		dropped:  3,
		hasEvent: true,
	}
}

func TestDeriveDashboard(t *testing.T) {
	t0 := time.Now()
	prevExp := `eigenpro_serve_requests_total 100
eigenpro_serve_shed_total 0
eigenpro_serve_rejected_total 0
eigenpro_serve_batches_total 50
eigenpro_serve_latency_seconds_bucket{le="0.001"} 50
eigenpro_serve_latency_seconds_bucket{le="0.01"} 100
eigenpro_serve_latency_seconds_bucket{le="+Inf"} 100
`
	curExp := `eigenpro_serve_requests_total 300
eigenpro_serve_shed_total 40
eigenpro_serve_rejected_total 10
eigenpro_serve_batches_total 150
eigenpro_serve_latency_seconds_bucket{le="0.001"} 150
eigenpro_serve_latency_seconds_bucket{le="0.01"} 300
eigenpro_serve_latency_seconds_bucket{le="+Inf"} 300
eigenpro_serve_queue_depth{model="default"} 4
eigenpro_serve_device_utilization 0.8
eigenpro_train_epoch{job="j1"} 7
eigenpro_train_mse{job="j1"} 0.125
go_goroutines 23
go_heap_objects_bytes 1048576
`
	events := []eigenpro.Event{
		{Time: t0.Add(1900 * time.Millisecond), Kind: "job.state", Job: "j1", Outcome: "running"},
		{Time: t0.Add(1800 * time.Millisecond), Kind: "serve.request", Model: "default", Outcome: "shed",
			Level: eigenpro.EventWarn},
		{Time: t0.Add(1500 * time.Millisecond), Kind: "serve.request", Model: "default", Outcome: "ok"},
		{Time: t0.Add(1200 * time.Millisecond), Kind: "serve.request", Model: "default", Outcome: "ok"},
		{Time: t0.Add(-time.Second), Kind: "serve.request", Model: "default", Outcome: "ok"}, // before window
		{Time: t0.Add(-2 * time.Second), Kind: "job.state", Job: "j1", Outcome: "queued"},
	}
	d := deriveDashboard(
		topPoll(t0, prevExp, nil),
		topPoll(t0.Add(2*time.Second), curExp, events),
		4)

	if d.window != 2*time.Second {
		t.Fatalf("window = %v", d.window)
	}
	if d.reqRate != 100 { // 200 requests / 2s
		t.Fatalf("reqRate = %v, want 100", d.reqRate)
	}
	if math.Abs(d.shedRate-0.2) > 1e-9 { // 50 shed+rejected of 250 offered
		t.Fatalf("shedRate = %v, want 0.2", d.shedRate)
	}
	if d.p50 != time.Millisecond { // window: 100 ≤1ms, 100 in (1ms,10ms]
		t.Fatalf("p50 = %v, want 1ms", d.p50)
	}
	if d.p99 != 10*time.Millisecond {
		t.Fatalf("p99 = %v, want 10ms", d.p99)
	}
	if d.occMean != 2 { // 200 requests / 100 batches
		t.Fatalf("occMean = %v, want 2", d.occMean)
	}
	if d.devUtil != 0.8 || d.goroutines != 23 || d.heapBytes != 1048576 {
		t.Fatalf("gauges: %+v", d)
	}
	if len(d.models) != 1 || d.models[0].name != "default" || d.models[0].queueDepth != 4 {
		t.Fatalf("models = %+v", d.models)
	}
	if got := d.models[0].okPerSec; got != 1 { // 2 ok events in window / 2s
		t.Fatalf("okPerSec = %v, want 1", got)
	}
	if len(d.jobs) != 1 || d.jobs[0].id != "j1" || d.jobs[0].epoch != 7 ||
		d.jobs[0].mse != 0.125 || d.jobs[0].state != "running" {
		t.Fatalf("jobs = %+v", d.jobs)
	}
	if len(d.recent) != 1 || d.recent[0].Outcome != "shed" {
		t.Fatalf("recent = %+v", d.recent)
	}
	if !d.hasEvents || d.eventsDropped != 3 {
		t.Fatalf("event counters: %+v", d)
	}
}

func TestRenderDashboard(t *testing.T) {
	d := dashboard{
		window:     time.Second,
		reqRate:    123.4,
		p50:        800 * time.Microsecond,
		p99:        9 * time.Millisecond,
		occMean:    2.5,
		shedRate:   0.05,
		devUtil:    0.75,
		goroutines: 17,
		heapBytes:  3 << 20,
		models:     []modelRow{{name: "default", queueDepth: 4, okPerSec: 120}},
		jobs:       []jobRow{{id: "j1", epoch: 7, mse: 0.125, state: "running"}},
		hasEvents:  true, eventsEmitted: 500, eventsDropped: 900,
		recent: []eigenpro.Event{{
			Time: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
			Kind: "serve.request", Model: "default", Outcome: "expired",
			Level: eigenpro.EventWarn,
		}},
	}
	out := renderDashboard(d)
	for _, want := range []string{
		"eigenpro top", "123.4 req/s", "p50 800µs", "p99 9ms", "occupancy 2.5",
		"shed+rejected 5.0%", "device util 75%",
		"17 goroutines", "3.0 MiB heap objects",
		"500 emitted, 900 sampled out",
		"default", "running", "j1", "expired",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered dashboard missing %q:\n%s", want, out)
		}
	}
}

// TestTopSLOPanel checks the SLO standings flow from poll through derive
// into the rendered panel, and that the panel is omitted when the server
// exposes no evaluator.
func TestTopSLOPanel(t *testing.T) {
	t0 := time.Now()
	cur := topPoll(t0.Add(time.Second), "go_goroutines 1\n", nil)
	cur.hasSLO = true
	cur.sloPaging = true
	cur.slos = []eigenpro.SLOObjectiveStatus{
		{Name: "availability", State: "page", BurnFast: 20.5, BurnSlow: 8.1,
			ErrorBudgetRemaining: -0.4},
		{Name: "latency-p99", State: "ok", BurnFast: 0.2, BurnSlow: 0.1,
			ErrorBudgetRemaining: 0.97},
	}
	d := deriveDashboard(topPoll(t0, "go_goroutines 1\n", nil), cur, 4)
	if !d.hasSLO || !d.paging || len(d.slos) != 2 {
		t.Fatalf("derived SLO view = %+v", d)
	}

	out := renderDashboard(d)
	for _, want := range []string{
		"slo objective", "availability", "PAGE", "20.50", "8.10", "-40.0%",
		"latency-p99", "OK", "97.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SLO panel missing %q:\n%s", want, out)
		}
	}

	// No evaluator: no panel.
	d.hasSLO = false
	if out := renderDashboard(d); strings.Contains(out, "slo objective") {
		t.Fatal("SLO panel rendered without an evaluator")
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{512, "512 B"},
		{2048, "2.0 KiB"},
		{3 << 20, "3.0 MiB"},
		{5 << 30, "5.0 GiB"},
	}
	for _, c := range cases {
		if got := fmtBytes(c.v); got != c.want {
			t.Errorf("fmtBytes(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSubject(t *testing.T) {
	if got := subject(eigenpro.Event{Model: "m"}); got != "m" {
		t.Fatalf("subject model = %q", got)
	}
	if got := subject(eigenpro.Event{Job: "j"}); got != "j" {
		t.Fatalf("subject job = %q", got)
	}
}
