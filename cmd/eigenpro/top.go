package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"eigenpro"
)

// runTop implements the top subcommand: a terminal dashboard that polls a
// serving process's GET /metrics, GET /debug/events, and GET /debug/slo
// and renders live throughput, latency quantiles, batch occupancy, shed
// rate, queue depths per model, per-job training progress, per-objective
// SLO standing (burn rates, error budget, alert state), and the most
// recent warn/error events. Rates and quantiles are computed over the
// polling window (two consecutive scrapes), not since process start, so
// the display tracks what the server is doing now. In -once mode the exit
// status is 2 when any SLO objective is paging, so CI can gate on it.
func runTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8095", "host:port (or full URL) of the eigenpro server")
	interval := fs.Duration("interval", time.Second, "polling interval")
	once := fs.Bool("once", false, "render one snapshot (two polls, one interval apart) and exit; exit status 2 if an SLO objective is paging")
	showEvents := fs.Int("events", 4, "recent warn/error events to show")
	fs.Parse(args)

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 10 * time.Second}

	prev, err := pollServer(client, base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "top: %v\n", err)
		os.Exit(1)
	}
	for {
		time.Sleep(*interval)
		cur, err := pollServer(client, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "top: %v\n", err)
			os.Exit(1)
		}
		out := renderDashboard(deriveDashboard(prev, cur, *showEvents))
		if *once {
			fmt.Print(out)
			// CI gate: a paging SLO objective fails the snapshot run.
			if cur.sloPaging {
				fmt.Fprintln(os.Stderr, "top: an SLO objective is paging")
				os.Exit(2)
			}
			return
		}
		// Clear the terminal and repaint in place.
		fmt.Print("\033[2J\033[H" + out)
		prev = cur
	}
}

// poll is one scrape of the server: the metric samples, the newest
// events, and the SLO standings, timestamped.
type poll struct {
	at       time.Time
	samples  []sample
	events   []eigenpro.Event
	emitted  uint64
	dropped  uint64
	hasEvent bool

	slos      []eigenpro.SLOObjectiveStatus
	sloPaging bool
	hasSLO    bool
}

// pollServer fetches /metrics, /debug/events, and /debug/slo. A failing
// events or slo endpoint (disabled logging, no evaluator, older server)
// degrades to whatever surfaces answer.
func pollServer(client *http.Client, base string) (poll, error) {
	p := poll{at: time.Now()}
	body, err := fetch(client, base+"/metrics")
	if err != nil {
		return p, err
	}
	p.samples = parseExposition(string(body))
	if body, err := fetch(client, base+"/debug/events?limit=512"); err == nil {
		var payload struct {
			Events  []eigenpro.Event `json:"events"`
			Emitted uint64           `json:"emitted"`
			Dropped uint64           `json:"dropped"`
		}
		if json.Unmarshal(body, &payload) == nil {
			p.events = payload.Events
			p.emitted = payload.Emitted
			p.dropped = payload.Dropped
			p.hasEvent = true
		}
	}
	if body, err := fetch(client, base+"/debug/slo"); err == nil {
		var payload struct {
			Objectives []eigenpro.SLOObjectiveStatus `json:"objectives"`
			Paging     bool                          `json:"paging"`
		}
		if json.Unmarshal(body, &payload) == nil && len(payload.Objectives) > 0 {
			p.slos = payload.Objectives
			p.sloPaging = payload.Paging
			p.hasSLO = true
		}
	}
	return p, nil
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 8<<20))
}

// sample is one parsed exposition line: name{labels} value.
type sample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition parses Prometheus text exposition into samples,
// skipping comments and malformed lines.
func parseExposition(text string) []sample {
	var out []sample
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if s, ok := parseSampleLine(line); ok {
			out = append(out, s)
		}
	}
	return out
}

// parseSampleLine parses one `name{k="v",...} value` line; the label
// block is optional and values may contain escaped quotes.
func parseSampleLine(line string) (sample, bool) {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return sample{}, false
	}
	s := sample{name: line[:i]}
	rest := line[i:]
	if rest[0] == '{' {
		labels, after, ok := parseLabelBlock(rest)
		if !ok {
			return sample{}, false
		}
		s.labels, rest = labels, after
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return sample{}, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return sample{}, false
	}
	s.value = v
	return s, true
}

// parseLabelBlock parses a `{k="v",...}` prefix, handling \" escapes in
// values, and returns the labels and the remainder after the block.
func parseLabelBlock(rest string) (map[string]string, string, bool) {
	labels := map[string]string{}
	j := 1
	for j < len(rest) && rest[j] != '}' {
		eq := strings.IndexByte(rest[j:], '=')
		if eq < 0 || j+eq+1 >= len(rest) || rest[j+eq+1] != '"' {
			return nil, "", false
		}
		key := rest[j : j+eq]
		j += eq + 2 // past ="
		var val strings.Builder
		for j < len(rest) && rest[j] != '"' {
			if rest[j] == '\\' && j+1 < len(rest) {
				j++
				switch rest[j] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[j])
				}
			} else {
				val.WriteByte(rest[j])
			}
			j++
		}
		if j >= len(rest) {
			return nil, "", false
		}
		labels[key] = val.String()
		j++ // closing quote
		if j < len(rest) && rest[j] == ',' {
			j++
		}
	}
	if j >= len(rest) {
		return nil, "", false
	}
	return labels, rest[j+1:], true
}

// metricValue sums the samples of name whose labels include want.
func metricValue(ss []sample, name string, want map[string]string) float64 {
	var total float64
	for _, s := range ss {
		if s.name != name || !labelsMatch(s.labels, want) {
			continue
		}
		total += s.value
	}
	return total
}

func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// labelValues collects the distinct values of one label across samples of
// name, sorted.
func labelValues(ss []sample, name, label string) []string {
	seen := map[string]bool{}
	for _, s := range ss {
		if s.name == name {
			if v, ok := s.labels[label]; ok && !seen[v] {
				seen[v] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// cumHist is a cumulative-bucket histogram reassembled from _bucket
// samples (le ascending, +Inf last).
type cumHist struct {
	les  []float64
	cums []float64
}

// histFromSamples collects name_bucket samples into a cumHist.
func histFromSamples(ss []sample, name string) cumHist {
	type b struct{ le, cum float64 }
	var bs []b
	for _, s := range ss {
		if s.name != name+"_bucket" {
			continue
		}
		le, err := parseLe(s.labels["le"])
		if err != nil {
			continue
		}
		bs = append(bs, b{le, s.value})
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
	h := cumHist{}
	for _, x := range bs {
		h.les = append(h.les, x.le)
		h.cums = append(h.cums, x.cum)
	}
	return h
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return inf, nil
	}
	return strconv.ParseFloat(s, 64)
}

var inf = func() float64 { v, _ := strconv.ParseFloat("+Inf", 64); return v }()

// sub returns the windowed histogram cur − prev (bucket-wise). Mismatched
// shapes fall back to cur (first poll, or a restarted server).
func (h cumHist) sub(prev cumHist) cumHist {
	if len(prev.cums) != len(h.cums) {
		return h
	}
	out := cumHist{les: h.les, cums: make([]float64, len(h.cums))}
	for i := range h.cums {
		d := h.cums[i] - prev.cums[i]
		if d < 0 {
			return h
		}
		out.cums[i] = d
	}
	return out
}

// quantile returns the upper bound of the bucket holding the q-quantile
// observation (the largest finite bound for the overflow bucket; 0 when
// empty).
func (h cumHist) quantile(q float64) float64 {
	n := len(h.cums)
	if n == 0 || h.cums[n-1] == 0 {
		return 0
	}
	rank := q * h.cums[n-1]
	for i, c := range h.cums {
		if c >= rank {
			if h.les[i] == inf {
				break
			}
			return h.les[i]
		}
	}
	// Overflow: saturate at the largest finite bound.
	for i := n - 1; i >= 0; i-- {
		if h.les[i] != inf {
			return h.les[i]
		}
	}
	return 0
}

// modelRow is one serving model's line of the dashboard.
type modelRow struct {
	name       string
	queueDepth float64
	okPerSec   float64 // from ok events in the window (sampled: a floor)
}

// jobRow is one training job's line.
type jobRow struct {
	id         string
	epoch, mse float64
	state      string
}

// dashboard is the derived, render-ready view of two polls.
type dashboard struct {
	window   time.Duration
	reqRate  float64
	p50, p99 time.Duration
	occMean  float64
	shedRate float64 // shed+rejected / offered over the window
	devUtil  float64
	models   []modelRow
	jobs     []jobRow

	goroutines float64
	heapBytes  float64

	hasSLO bool
	paging bool
	slos   []eigenpro.SLOObjectiveStatus

	hasEvents                    bool
	eventsEmitted, eventsDropped uint64
	recent                       []eigenpro.Event
}

// deriveDashboard computes windowed rates and quantiles from two polls.
func deriveDashboard(prev, cur poll, showEvents int) dashboard {
	dt := cur.at.Sub(prev.at)
	if dt <= 0 {
		dt = time.Second
	}
	d := dashboard{window: dt}

	delta := func(name string) float64 {
		return metricValue(cur.samples, name, nil) - metricValue(prev.samples, name, nil)
	}
	req := delta("eigenpro_serve_requests_total")
	shed := delta("eigenpro_serve_shed_total") + delta("eigenpro_serve_rejected_total")
	d.reqRate = req / dt.Seconds()
	if offered := req + shed; offered > 0 {
		d.shedRate = shed / offered
	}
	lat := histFromSamples(cur.samples, "eigenpro_serve_latency_seconds").
		sub(histFromSamples(prev.samples, "eigenpro_serve_latency_seconds"))
	d.p50 = time.Duration(lat.quantile(0.50) * float64(time.Second))
	d.p99 = time.Duration(lat.quantile(0.99) * float64(time.Second))
	if batches := delta("eigenpro_serve_batches_total"); batches > 0 {
		d.occMean = req / batches
	}
	d.devUtil = metricValue(cur.samples, "eigenpro_serve_device_utilization", nil)
	d.goroutines = metricValue(cur.samples, "go_goroutines", nil)
	d.heapBytes = metricValue(cur.samples, "go_heap_objects_bytes", nil)

	okCount := map[string]float64{}
	for _, ev := range cur.events {
		if ev.Kind == "serve.request" && ev.Outcome == "ok" && ev.Time.After(prev.at) {
			okCount[ev.Model]++
		}
	}
	for _, name := range labelValues(cur.samples, "eigenpro_serve_queue_depth", "model") {
		d.models = append(d.models, modelRow{
			name:       name,
			queueDepth: metricValue(cur.samples, "eigenpro_serve_queue_depth", map[string]string{"model": name}),
			okPerSec:   okCount[name] / dt.Seconds(),
		})
	}

	jobState := map[string]string{}
	for _, ev := range cur.events {
		if ev.Kind == "job.state" {
			if _, seen := jobState[ev.Job]; !seen { // events are newest first
				jobState[ev.Job] = ev.Outcome
			}
		}
	}
	for _, id := range labelValues(cur.samples, "eigenpro_train_epoch", "job") {
		d.jobs = append(d.jobs, jobRow{
			id:    id,
			epoch: metricValue(cur.samples, "eigenpro_train_epoch", map[string]string{"job": id}),
			mse:   metricValue(cur.samples, "eigenpro_train_mse", map[string]string{"job": id}),
			state: jobState[id],
		})
	}

	for _, ev := range cur.events {
		if ev.Level == eigenpro.EventInfo || len(d.recent) >= showEvents {
			continue
		}
		d.recent = append(d.recent, ev)
	}
	d.hasEvents = cur.hasEvent
	d.eventsEmitted = cur.emitted
	d.eventsDropped = cur.dropped
	d.hasSLO = cur.hasSLO
	d.paging = cur.sloPaging
	d.slos = cur.slos
	return d
}

// renderDashboard formats the derived view as an aligned text screen.
func renderDashboard(d dashboard) string {
	var b strings.Builder
	fmt.Fprintf(&b, "eigenpro top — %v window\n\n", d.window.Round(time.Millisecond))
	fmt.Fprintf(&b, "serving   %8.1f req/s   p50 %-10v p99 %-10v occupancy %.1f\n",
		d.reqRate, d.p50.Round(time.Microsecond), d.p99.Round(time.Microsecond), d.occMean)
	fmt.Fprintf(&b, "          shed+rejected %.1f%%   device util %.0f%%\n",
		100*d.shedRate, 100*d.devUtil)
	fmt.Fprintf(&b, "runtime   %.0f goroutines, %s heap objects\n", d.goroutines, fmtBytes(d.heapBytes))
	if d.hasEvents {
		fmt.Fprintf(&b, "events    %d emitted, %d sampled out\n", d.eventsEmitted, d.eventsDropped)
	}
	b.WriteString("\n")
	if d.hasSLO {
		b.WriteString("  slo objective          state   burn fast   burn slow    budget\n")
		for _, o := range d.slos {
			fmt.Fprintf(&b, "  %-22s %-6s %10.2f  %10.2f  %7.1f%%\n",
				o.Name, strings.ToUpper(o.State), o.BurnFast, o.BurnSlow,
				100*o.ErrorBudgetRemaining)
		}
		b.WriteString("\n")
	}
	if len(d.models) > 0 {
		b.WriteString("  model                queue   ok ev/s\n")
		for _, m := range d.models {
			fmt.Fprintf(&b, "  %-20s %5.0f   %7.1f\n", m.name, m.queueDepth, m.okPerSec)
		}
		b.WriteString("\n")
	}
	if len(d.jobs) > 0 {
		b.WriteString("  job                  epoch   train mse    state\n")
		for _, j := range d.jobs {
			fmt.Fprintf(&b, "  %-20s %5.0f   %9.3g    %s\n", j.id, j.epoch, j.mse, j.state)
		}
		b.WriteString("\n")
	}
	if len(d.recent) > 0 {
		b.WriteString("  recent warn/error events:\n")
		for _, ev := range d.recent {
			what := ev.Outcome
			if ev.Err != "" {
				what += ": " + ev.Err
			}
			fmt.Fprintf(&b, "  %s %-6s %-14s %s%s\n",
				ev.Time.Format("15:04:05"), ev.Level, ev.Kind, subject(ev), " "+what)
		}
	}
	return b.String()
}

// subject names what an event is about: its model or job.
func subject(ev eigenpro.Event) string {
	if ev.Model != "" {
		return ev.Model
	}
	return ev.Job
}

// fmtBytes renders a byte count humanly.
func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1f GiB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1f MiB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1f KiB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}
