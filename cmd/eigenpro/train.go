package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eigenpro"
)

// runTrainJob implements the train subcommand: submit the training run to
// the async job manager and watch its progress — the same lifecycle the
// HTTP /train endpoint drives, from the command line. The job can be
// interrupted with -cancel-after-epoch and resumed, demonstrating the
// checkpoint path produces the identical model.
func runTrainJob(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	dataset := fs.String("dataset", "mnist", "dataset: mnist, cifar10, svhn, timit, susy, imagenet")
	n := fs.Int("n", 2000, "number of samples to generate")
	kernelName := fs.String("kernel", "gaussian", "kernel family: gaussian, laplacian, cauchy, matern32, matern52")
	sigma := fs.Float64("sigma", 5, "kernel bandwidth")
	epochs := fs.Int("epochs", 10, "maximum training epochs")
	method := fs.String("method", "eigenpro2", "optimizer: eigenpro2, eigenpro1, sgd")
	seed := fs.Int64("seed", 1, "random seed")
	name := fs.String("name", "default", "model name for the job")
	savePath := fs.String("save", "", "write the trained model (gob) to this path")
	cancelAfter := fs.Int("cancel-after-epoch", 0, "cancel the job once this many epochs completed, then resume (demonstrates checkpoint/resume)")
	poll := fs.Duration("poll", 50*time.Millisecond, "status poll interval")
	fs.Parse(args)

	ds, err := datasetByName(*dataset, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kern, err := eigenpro.KernelByName(*kernelName, *sigma)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var m eigenpro.Method
	switch *method {
	case "eigenpro2":
		m = eigenpro.MethodEigenPro2
	case "eigenpro1":
		m = eigenpro.MethodEigenPro1
	case "sgd":
		m = eigenpro.MethodSGD
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}

	train, test := ds.Split(0.8, *seed)
	fmt.Printf("dataset %s: %d train / %d test, d=%d, %d classes\n",
		ds.Name, train.N(), test.N(), ds.Dim(), ds.Classes)

	mgr := eigenpro.NewTrainingManager(eigenpro.TrainingConfig{Workers: 1})
	defer mgr.Close()

	id, err := eigenpro.SubmitTraining(mgr, eigenpro.TrainingSpec{
		Name: *name,
		Config: eigenpro.Config{
			Kernel: kern, Method: m, Epochs: *epochs, Seed: *seed,
			ValX: test.X, ValLabels: test.Labels,
		},
		X: train.X,
		Y: train.Y,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "submit: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("submitted %s (model %q); watching\n", id, *name)

	lastEpoch := 0
	cancelled := false
	for {
		info, ok := eigenpro.JobStatus(mgr, id)
		if !ok {
			fmt.Fprintf(os.Stderr, "job %s vanished\n", id)
			os.Exit(1)
		}
		if info.Epoch > lastEpoch {
			fmt.Printf("  epoch %2d/%d: train mse %.5f  val err %.2f%%  sim time %v\n",
				info.Epoch, info.Epochs, info.TrainMSE, 100*info.ValError, info.SimTime.Round(time.Microsecond))
			lastEpoch = info.Epoch
		}
		if *cancelAfter > 0 && !cancelled && info.Epoch >= *cancelAfter && info.State == eigenpro.JobRunning {
			fmt.Printf("cancelling at epoch boundary %d (checkpoint-on-cancel)...\n", info.Epoch)
			mgr.Cancel(id)
			cancelled = true
		}
		if info.State == eigenpro.JobCancelled {
			fmt.Printf("job parked: checkpointed=%v; resuming\n", info.Checkpointed)
			if err := mgr.Resume(id); err != nil {
				fmt.Fprintf(os.Stderr, "resume: %v\n", err)
				os.Exit(1)
			}
		}
		if info.State == eigenpro.JobDone {
			fmt.Printf("done: %d epochs, %d iters, sim time %v (resumes: %d)\n",
				info.Epoch, info.Iters, info.SimTime.Round(time.Microsecond), info.Resumes)
			break
		}
		if info.State == eigenpro.JobFailed {
			fmt.Fprintf(os.Stderr, "job failed: %s\n", info.Error)
			os.Exit(1)
		}
		time.Sleep(*poll)
	}

	model, ok := mgr.Model(id)
	if !ok {
		fmt.Fprintln(os.Stderr, "no model retained")
		os.Exit(1)
	}
	testErr := eigenpro.ClassificationError(model.Predict(test.X), test.Labels)
	fmt.Printf("final test error %.2f%%\n", 100*testErr)

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *savePath, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := eigenpro.SaveModel(f, model); err != nil {
			fmt.Fprintf(os.Stderr, "save model: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("model written to %s\n", *savePath)
	}
}

// datasetByName resolves the synthetic dataset presets shared by the train
// and serve subcommands.
func datasetByName(name string, n int, seed int64) (*eigenpro.Dataset, error) {
	return eigenpro.DatasetByName(name, n, seed)
}
