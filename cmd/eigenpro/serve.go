package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"eigenpro"
)

// runServe implements the serve subcommand: load a saved model (or train a
// fresh one on a synthetic dataset when -model is empty), register it, and
// expose the batched prediction endpoint over HTTP — together with the
// async training-job endpoints, so POST /train → GET /jobs/{id} → POST
// /v1/predict closes the train → serve loop on one process.
//
// With -state-dir the job manager runs in crash-safe persistent mode:
// lifecycle transitions are journaled, running jobs checkpoint each epoch,
// and restarting with the same directory recovers every job — finished
// models become servable again and interrupted jobs resume bit-exactly.
// SIGTERM/SIGINT triggers graceful shutdown: admission closes (/readyz
// turns 503 "draining"), in-flight predictions flush within -drain-timeout,
// the HTTP listener shuts down, and running jobs checkpoint to disk.
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelPath := fs.String("model", "", "gob model to serve (from eigenpro -save); empty trains a fresh one")
	name := fs.String("name", "default", "name to register the model under")
	addr := fs.String("addr", ":8095", "HTTP listen address")
	maxLatency := fs.Duration("max-latency", 2*time.Millisecond, "micro-batch flush deadline")
	maxBatch := fs.Int("max-batch", 0, "micro-batch size cap (0 = device m_max)")
	queue := fs.Int("queue", 1024, "request queue depth per model (admission control)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 2*time.Second, "default per-request deadline")
	shed := fs.Bool("shed", false, "deadline-aware admission: reject requests whose deadline cannot survive the estimated queue wait (429)")
	metricsOn := fs.Bool("metrics", true, "expose GET /metrics, GET /debug/traces, and GET /debug/events")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	traceEvery := fs.Int("trace-every", 1, "trace every Nth predict request (<0 disables tracing)")
	logFile := fs.String("log-file", "", "mirror wide events as JSON lines to this file (empty: ring only; \"-\" for stderr)")
	logEvery := fs.Int("log-every", 1, "keep 1-in-N ok events (warn/error always kept)")
	sloLatencyP99 := fs.Duration("slo-latency-p99", 0, "latency SLO: requests must complete within this long (0 disables the objective)")
	sloAvailability := fs.Float64("slo-availability", 0, "availability SLO target in (0,1), e.g. 0.999 (0 disables the objective)")
	sloWindow := fs.Duration("slo-window", 5*time.Minute, "fast burn-rate window (the slow window is 6x this)")
	sloTarget := fs.Float64("slo-latency-target", 0.99, "latency SLO: required under-threshold fraction")
	flightDir := fs.String("flight-dir", "", "flight-recorder snapshot directory (empty: <tmp>/eigenpro-flight)")
	flightProfile := fs.Duration("flight-profile", 5*time.Second, "flight-recorder CPU-profile length per snapshot (<0 disables the CPU profile)")
	flightInterval := fs.Duration("flight-interval", 5*time.Minute, "minimum spacing between flight snapshots")
	trainWorkers := fs.Int("train-workers", 2, "training-job worker pool size")
	trainQueue := fs.Int("train-queue", 64, "pending training-job queue depth")
	stateDir := fs.String("state-dir", "", "durable state directory for crash-safe training jobs (empty: in-memory only)")
	checkpointEvery := fs.Int("checkpoint-every", 1, "checkpoint running jobs every N epoch boundaries (persistent mode)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for flushing in-flight predictions")
	dataset := fs.String("dataset", "mnist", "fallback training dataset when -model is empty")
	n := fs.Int("n", 1000, "fallback training samples")
	sigma := fs.Float64("sigma", 5, "fallback training kernel bandwidth")
	epochs := fs.Int("epochs", 5, "fallback training epochs")
	seed := fs.Int64("seed", 1, "fallback training seed")
	fs.Parse(args)

	// One registry, one trace ring, and one wide-event log shared by
	// serving, the job manager, and (through it) the per-job trainers: a
	// single /metrics scrape, /debug/traces read, or /debug/events query
	// covers the whole process.
	reg := eigenpro.NewMetricsRegistry()
	tracer := eigenpro.NewTracer(0)
	events := eigenpro.NewEventLog(0)
	events.SetSampleEvery(*logEvery)
	switch *logFile {
	case "":
	case "-":
		events.SetSink(os.Stderr, eigenpro.EventInfo)
	default:
		f, err := os.OpenFile(*logFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "open -log-file: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		events.SetSink(f, eigenpro.EventInfo)
	}
	// SLO judgment layer: declarative objectives evaluated from the shared
	// registry/event log by a background poller, with a flight recorder
	// armed to snapshot the process on every escalation to page.
	var sloEval *eigenpro.SLOEvaluator
	var flight *eigenpro.FlightRecorder
	if *sloLatencyP99 > 0 || *sloAvailability > 0 {
		var err error
		flight, err = eigenpro.NewFlightRecorder(eigenpro.FlightConfig{
			Dir:         *flightDir,
			CPUProfile:  *flightProfile,
			MinInterval: *flightInterval,
			Events:      events,
			Tracers:     []*eigenpro.Tracer{tracer},
			Registries:  []*eigenpro.MetricsRegistry{reg},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "flight recorder: %v\n", err)
			os.Exit(1)
		}
		var objectives []eigenpro.SLOObjective
		if *sloAvailability > 0 {
			objectives = append(objectives, eigenpro.SLOObjective{
				Kind:   eigenpro.SLOAvailability,
				Target: *sloAvailability,
			})
		}
		if *sloLatencyP99 > 0 {
			objectives = append(objectives, eigenpro.SLOObjective{
				Kind:       eigenpro.SLOLatency,
				Target:     *sloTarget,
				LatencyP99: *sloLatencyP99,
			})
		}
		sloEval, err = eigenpro.NewSLOEvaluator(eigenpro.SLOConfig{
			Objectives: objectives,
			Window:     *sloWindow,
			Source:     reg,
			Events:     events,
			Flight:     flight,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "slo: %v\n", err)
			os.Exit(1)
		}
		defer sloEval.Close()
		fmt.Printf("slo: %d objective(s), window %v (slow %v), flight snapshots under %s\n",
			len(objectives), *sloWindow, 6**sloWindow, flight.Dir())
	}
	srv := eigenpro.NewServer(eigenpro.ServerConfig{
		MaxBatch:   *maxBatch,
		MaxLatency: *maxLatency,
		QueueDepth: *queue,
		Workers:    *workers,
		Timeout:    *timeout,
		Shed:       *shed,
		Metrics:    reg,
		Tracer:     tracer,
		TraceEvery: *traceEvery,
		Events:     events,
		SLO:        sloEval,
		Flight:     flight,
	})
	defer srv.Close()

	// The manager comes up before the model decision: in persistent mode
	// recovery replays the journal here, re-registering finished models
	// into srv and auto-resuming interrupted jobs — which can make the
	// fallback training below unnecessary.
	mgr, err := eigenpro.OpenTrainingManager(eigenpro.TrainingConfig{
		Workers:         *trainWorkers,
		QueueDepth:      *trainQueue,
		Registrar:       srv,
		Metrics:         reg,
		Tracer:          tracer,
		Events:          events,
		SLO:             sloEval,
		Flight:          flight,
		StateDir:        *stateDir,
		CheckpointEvery: *checkpointEvery,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "open training manager: %v\n", err)
		os.Exit(1)
	}
	defer mgr.Close()
	if *stateDir != "" {
		fmt.Printf("durable job state under %s; recovered %d job(s)\n", *stateDir, mgr.Recovered())
	}

	switch {
	case *modelPath != "":
		if err := srv.LoadModelFile(*name, *modelPath); err != nil {
			fmt.Fprintf(os.Stderr, "load model: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serving model %q from %s\n", *name, *modelPath)
	case len(srv.Models()) > 0:
		// Recovery restored at least one finished model; no fallback needed.
		fmt.Printf("serving recovered model(s): %s\n", strings.Join(srv.Models(), ", "))
	default:
		m, err := trainFallback(*dataset, *n, *sigma, *epochs, *seed, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "train fallback model: %v\n", err)
			os.Exit(1)
		}
		if err := srv.Register(*name, m); err != nil {
			fmt.Fprintf(os.Stderr, "register model: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serving freshly trained %s model as %q\n", *dataset, *name)
	}

	if mdl, ok := srv.Model(*name); ok {
		fmt.Printf("model: %d centers, %d features, %d outputs; device micro-batch m_max=%d\n",
			mdl.X.Rows, mdl.X.Cols, mdl.Alpha.Cols,
			eigenpro.SimTitanXp().ServeBatch(mdl.X.Rows, mdl.X.Cols, mdl.Alpha.Cols))
	}
	mux := http.NewServeMux()
	mux.Handle("/", eigenpro.NewTrainServeHandler(srv, mgr))
	endpoints := "POST /v1/predict, GET /v1/stats, POST /train, GET /jobs"
	if sloEval != nil {
		endpoints += ", GET /debug/slo, GET /debug/flight"
	}
	if *metricsOn {
		endpoints += ", GET /metrics"
	} else {
		mux.HandleFunc("/metrics", http.NotFound)
		mux.HandleFunc("/debug/traces", http.NotFound)
		mux.HandleFunc("/debug/events", http.NotFound)
	}
	if *pprofOn {
		mux.Handle("/debug/pprof/", eigenpro.PprofHandler())
		endpoints += ", GET /debug/pprof/"
	}
	fmt.Printf("listening on %s — %s\n", *addr, endpoints)

	// Graceful shutdown: SIGTERM/SIGINT closes admission (Predict returns
	// 503, /readyz reports "draining"), flushes in-flight predictions
	// within -drain-timeout, stops the HTTP listener, and lets the deferred
	// mgr.Close checkpoint running jobs — so a later restart with the same
	// -state-dir resumes them bit-exactly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // a second signal kills the process immediately
		fmt.Printf("signal received; draining in-flight requests (budget %v)...\n", *drainTimeout)
		if err := srv.Drain(*drainTimeout); err != nil {
			fmt.Fprintf(os.Stderr, "drain: %v\n", err)
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "http shutdown: %v\n", err)
		}
		// Checkpoint running jobs now (idempotent with the deferred call)
		// so the "shut down" line below truthfully means state is durable.
		mgr.Close()
		fmt.Println("shut down cleanly")
	}
}

// trainFallback trains a small model so the server is usable without a
// saved artifact. Its per-epoch telemetry reports into the shared
// registry under job="startup", so /metrics carries trainer series even
// before the first POST /train.
func trainFallback(dataset string, n int, sigma float64, epochs int, seed int64, reg *eigenpro.MetricsRegistry) (*eigenpro.Model, error) {
	ds, err := datasetByName(dataset, n, seed)
	if err != nil {
		return nil, err
	}
	fmt.Printf("no -model given; training on %d %s-like samples...\n", ds.N(), dataset)
	res, err := eigenpro.Train(eigenpro.Config{
		Kernel:  eigenpro.GaussianKernel(sigma),
		Epochs:  epochs,
		Seed:    seed,
		OnEpoch: eigenpro.ObserveTraining(reg, eigenpro.Label("job", "startup")),
	}, ds.X, ds.Y)
	if err != nil {
		return nil, err
	}
	fmt.Printf("trained to mse %.4g in %v wall\n", res.FinalTrainMSE, res.WallTime.Round(time.Millisecond))
	return res.Model, nil
}
