// Command eigenpro trains an EigenPro 2.0 kernel machine on one of the
// synthetic benchmark datasets and prints the automatically selected
// parameters, per-epoch progress, and final accuracy.
//
// Usage:
//
//	eigenpro [-dataset mnist|cifar10|svhn|timit|susy|imagenet] [-n 2000]
//	         [-kernel gaussian|laplacian|cauchy] [-sigma 5] [-epochs 10]
//	         [-method eigenpro2|eigenpro1|sgd] [-seed 1]
//
// The train subcommand runs the same workload through the async
// training-job manager — submit, watch per-epoch status, optionally cancel
// at an epoch boundary (taking a checkpoint) and resume bit-for-bit:
//
//	eigenpro train [-dataset mnist] [-n 2000] [-epochs 10] [-name default]
//	               [-cancel-after-epoch 0] [-save model.gob]
//
// The serve subcommand loads (or trains) a model and serves batched
// predictions over HTTP JSON; it also exposes the training-job endpoints
// (POST /train, GET /jobs, ...) so models can be trained and hot-deployed
// over the same server:
//
//	eigenpro serve [-model model.gob] [-addr :8095] [-max-latency 2ms]
//	               [-queue 1024] [-workers 0] [-train-workers 2]
//	               [-dataset mnist] [-n 1000] [-log-file events.jsonl]
//	               [-log-every 1]
//
// The top subcommand is a live terminal dashboard over a running serve
// process: it polls GET /metrics and GET /debug/events and renders
// windowed throughput, p50/p99 latency, batch occupancy, shed rate,
// per-model queues, per-job training progress, and recent warn/error
// events:
//
//	eigenpro top [-addr localhost:8095] [-interval 1s] [-once]
package main

import (
	"flag"
	"fmt"
	"os"

	"eigenpro"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			runServe(os.Args[2:])
			return
		case "train":
			runTrainJob(os.Args[2:])
			return
		case "top":
			runTop(os.Args[2:])
			return
		}
	}
	runTrain()
}

func runTrain() {
	dataset := flag.String("dataset", "mnist", "dataset: mnist, cifar10, svhn, timit, susy, imagenet")
	n := flag.Int("n", 2000, "number of samples to generate")
	kernelName := flag.String("kernel", "gaussian", "kernel family: gaussian, laplacian, cauchy, matern32, matern52")
	sigma := flag.Float64("sigma", 5, "kernel bandwidth")
	epochs := flag.Int("epochs", 10, "maximum training epochs")
	method := flag.String("method", "eigenpro2", "optimizer: eigenpro2, eigenpro1, sgd")
	seed := flag.Int64("seed", 1, "random seed")
	autoSigma := flag.Bool("auto-sigma", false, "select the Gaussian bandwidth by cross-validation (Appendix B), ignoring -kernel/-sigma")
	savePath := flag.String("save", "", "write the trained model (gob) to this path")
	flag.Parse()

	ds, err := datasetByName(*dataset, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	kern, err := eigenpro.KernelByName(*kernelName, *sigma)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var m eigenpro.Method
	switch *method {
	case "eigenpro2":
		m = eigenpro.MethodEigenPro2
	case "eigenpro1":
		m = eigenpro.MethodEigenPro1
	case "sgd":
		m = eigenpro.MethodSGD
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}

	train, test := ds.Split(0.8, *seed)
	fmt.Printf("dataset %s: %d train / %d test, d=%d, %d classes\n",
		ds.Name, train.N(), test.N(), ds.Dim(), ds.Classes)

	if *autoSigma {
		ladder := eigenpro.GaussianBandwidthLadder(train.X, 5, *seed)
		best, scored, err := eigenpro.SelectBandwidth(ladder, train.X, train.Y, train.Labels,
			eigenpro.BandwidthConfig{Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bandwidth selection failed: %v\n", err)
			os.Exit(1)
		}
		for _, c := range scored {
			fmt.Printf("  candidate %-22s cv error %.2f%%\n", c.Kernel.Name(), 100*c.Error)
		}
		kern = best
		fmt.Printf("selected %s by cross-validation\n", kern.Name())
	}

	res, err := eigenpro.Train(eigenpro.Config{
		Kernel: kern,
		Method: m,
		Epochs: *epochs,
		Seed:   *seed,
		ValX:   test.X, ValLabels: test.Labels,
	}, train.X, train.Y)
	if err != nil {
		fmt.Fprintf(os.Stderr, "training failed: %v\n", err)
		os.Exit(1)
	}

	p := res.Params
	fmt.Printf("auto-selected parameters: s=%d  m*(k)=%.1f  m_C=%d  m_S=%d  m_max=%d  q=%d (adjusted %d)  m=%d  eta=%.2f\n",
		p.S, p.MStarOriginal, p.MC, p.MS, p.MMax, p.Q, p.QAdjusted, p.Batch, p.Eta)
	fmt.Printf("predicted acceleration over plain SGD: %.1fx\n", p.Acceleration)
	for _, st := range res.History {
		fmt.Printf("  epoch %2d: train mse %.5f  val err %.2f%%  sim time %v\n",
			st.Epoch, st.TrainMSE, 100*st.ValError, st.SimTime.Round(1000))
	}
	testErr := eigenpro.ClassificationError(res.Model.Predict(test.X), test.Labels)
	fmt.Printf("final: test error %.2f%%  simulated GPU time %v  wall time %v\n",
		100*testErr, res.SimTime.Round(1000), res.WallTime.Round(1000))

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "create %s: %v\n", *savePath, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := eigenpro.SaveModel(f, res.Model); err != nil {
			fmt.Fprintf(os.Stderr, "save model: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("model written to %s\n", *savePath)
	}
}
