package eigenpro

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestSLOBreachLifecycle is the PR's acceptance test: a live server under
// an unmeetable latency objective walks ok -> warn -> page, /readyz
// degrades to 503 while paging, and exactly one rate-limited flight
// snapshot is captured and retrievable through GET /debug/flight.
func TestSLOBreachLifecycle(t *testing.T) {
	ds := MNISTLike(200, 17)
	res, err := Train(Config{Kernel: GaussianKernel(5), Epochs: 1, Seed: 17}, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}

	reg := NewMetricsRegistry()
	events := NewEventLog(512)
	tracer := NewTracer(64)

	flight, err := NewFlightRecorder(FlightConfig{
		Dir:         t.TempDir(),
		CPUProfile:  20 * time.Millisecond,
		MinInterval: time.Hour, // one snapshot per test run, whatever flaps
		Events:      events,
		Tracers:     []*Tracer{tracer},
		Registries:  []*MetricsRegistry{reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	// LatencyP99 of 1ns is unmeetable: every completed request lands in a
	// histogram bucket above it, so the error budget burns at 1/(1-target)
	// = 100x — far past the fast-burn page threshold.
	ev, err := NewSLOEvaluator(SLOConfig{
		Objectives: []SLOObjective{{
			Kind:       SLOLatency,
			Name:       "latency-p99",
			Target:     0.99,
			LatencyP99: time.Nanosecond,
		}},
		Window:     2400 * time.Millisecond,
		Resolution: 50 * time.Millisecond,
		PageAfter:  400 * time.Millisecond,
		Source:     reg,
		Events:     events,
		Flight:     flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()

	srv := NewServer(ServerConfig{
		Metrics: reg, Events: events, Tracer: tracer,
		SLO: ev, Flight: flight,
	})
	defer srv.Close()
	if err := srv.Register("m", res.Model); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServerHandler(srv))
	defer ts.Close()

	// Drive traffic while polling /debug/slo, recording each distinct state
	// as it appears; stop once the objective pages.
	query := ds.X.RowView(0)
	var seen []string
	deadline := time.Now().Add(30 * time.Second)
	for {
		for i := 0; i < 10; i++ {
			if _, err := srv.Predict(context.Background(), "m", query); err != nil {
				t.Fatal(err)
			}
		}
		st := sloState(t, ts.URL)
		if len(seen) == 0 || seen[len(seen)-1] != st {
			seen = append(seen, st)
		}
		if st == "page" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("objective never paged; states seen: %v", seen)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if want := []string{"ok", "warn", "page"}; strings.Join(seen, ",") != strings.Join(want, ",") {
		t.Fatalf("state progression %v, want %v", seen, want)
	}

	// Readiness degrades while paging.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "degraded") {
		t.Fatalf("GET /readyz while paging: %d %q, want 503 degraded", resp.StatusCode, body)
	}

	// Exactly one snapshot was captured (the rate limit swallows any
	// further triggers), and it is complete and fetchable over HTTP.
	flight.Wait()
	if got := flight.Captures(); got != 1 {
		t.Fatalf("flight captures = %d, want exactly 1", got)
	}
	var listing struct {
		Snapshots []FlightSnapshot `json:"snapshots"`
	}
	getJSON(t, ts.URL+"/debug/flight", &listing)
	if len(listing.Snapshots) != 1 || !listing.Snapshots[0].Complete {
		t.Fatalf("flight listing = %+v, want one complete snapshot", listing.Snapshots)
	}
	snap := listing.Snapshots[0]
	if snap.Reason != "latency-p99" {
		t.Fatalf("snapshot reason %q, want the breaching objective", snap.Reason)
	}
	have := map[string]bool{}
	for _, f := range snap.Files {
		have[f.Name] = true
	}
	for _, name := range []string{
		"cpu.pprof", "heap.pprof", "goroutines.txt",
		"events.jsonl", "traces.json", "metrics.prom", "metrics.om", "meta.json",
	} {
		if !have[name] {
			t.Fatalf("snapshot missing %s (has %v)", name, snap.Files)
		}
	}
	fresp, err := http.Get(ts.URL + "/debug/flight?snapshot=" + snap.Name + "&file=meta.json")
	if err != nil {
		t.Fatal(err)
	}
	meta, _ := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	if fresp.StatusCode != 200 || !strings.Contains(string(meta), "latency-p99") {
		t.Fatalf("fetch meta.json: %d %q", fresp.StatusCode, meta)
	}
	if _, err := os.Stat(filepath.Join(flight.Dir(), snap.Name, "cpu.pprof")); err != nil {
		t.Fatal(err)
	}

	// The transition history on /debug/slo tells the same story and the
	// page transition points at the snapshot.
	var slo struct {
		History []SLOTransition `json:"history"`
		Paging  bool            `json:"paging"`
	}
	getJSON(t, ts.URL+"/debug/slo", &slo)
	if !slo.Paging {
		t.Fatal("/debug/slo paging = false while an objective pages")
	}
	var paged bool
	for _, tr := range slo.History {
		if tr.To == "page" {
			paged = true
			if tr.Snapshot == "" {
				t.Fatal("page transition carries no snapshot path")
			}
		}
	}
	if !paged {
		t.Fatalf("history has no page transition: %+v", slo.History)
	}

	// The breach also shows up as wide events: slo.state transitions and
	// the flight.snapshot record.
	if evs := events.Query(EventQuery{Kind: "slo.state"}); len(evs) < 2 {
		t.Fatalf("want ok>warn and warn>page slo.state events, got %+v", evs)
	}
	if evs := events.Query(EventQuery{Kind: "flight.snapshot"}); len(evs) != 1 {
		t.Fatalf("want one flight.snapshot event, got %+v", evs)
	}
}

// sloState fetches the single objective's alert state from /debug/slo.
func sloState(t *testing.T, base string) string {
	t.Helper()
	var payload struct {
		Objectives []SLOObjectiveStatus `json:"objectives"`
	}
	getJSON(t, base+"/debug/slo", &payload)
	if len(payload.Objectives) != 1 {
		t.Fatalf("/debug/slo objectives = %+v", payload.Objectives)
	}
	return payload.Objectives[0].State
}

// getJSON fetches a URL and decodes the JSON body into out.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
