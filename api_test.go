package eigenpro

import (
	"math"
	"testing"
)

// The façade tests exercise the full public workflow end-to-end: dataset
// generation, automatic training, baseline fitting, and metric evaluation.

func TestPublicTrainWorkflow(t *testing.T) {
	ds := SUSYLike(400, 1)
	train, test := ds.Split(0.8, 1)
	res, err := Train(Config{
		Kernel: GaussianKernel(4),
		Epochs: 6,
		Seed:   1,
	}, train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodEigenPro2 {
		t.Fatalf("zero-value config must select EigenPro 2.0, got %v", res.Method)
	}
	errRate := ClassificationError(res.Model.Predict(test.X), test.Labels)
	if errRate > 0.35 {
		t.Fatalf("test error %v implausibly high", errRate)
	}
	if res.Params.Batch < 1 || res.Params.Eta <= 0 {
		t.Fatalf("bad auto params %+v", res.Params)
	}
}

func TestPublicKernels(t *testing.T) {
	x := []float64{0, 0}
	z := []float64{3, 4}
	if g := GaussianKernel(5).Eval(x, z); math.Abs(g-math.Exp(-0.5)) > 1e-15 {
		t.Fatalf("gaussian = %v", g)
	}
	if l := LaplacianKernel(5).Eval(x, z); math.Abs(l-math.Exp(-1)) > 1e-15 {
		t.Fatalf("laplacian = %v", l)
	}
	if c := CauchyKernel(5).Eval(x, z); math.Abs(c-0.5) > 1e-15 {
		t.Fatalf("cauchy = %v", c)
	}
}

func TestPublicMatrixHelpers(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatal("NewMatrix dims wrong")
	}
	w := NewMatrixData(1, 2, []float64{1, 2})
	if w.At(0, 1) != 2 {
		t.Fatal("NewMatrixData wrong")
	}
	target := NewMatrixData(1, 2, []float64{1, 4})
	if got := MSE(w, target); got != 2 {
		t.Fatalf("MSE = %v, want 2", got)
	}
}

func TestPublicSpectrumAndParams(t *testing.T) {
	ds := MNISTLike(300, 2)
	sp, err := EstimateSpectrum(GaussianKernel(5), ds.X, 150, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := SelectParams(sp, SimTitanXp(), ds.N(), ds.Dim(), ds.LabelDim())
	if p.MMax < 1 || p.QAdjusted < p.Q {
		t.Fatalf("bad params %+v", p)
	}
}

func TestPublicBaselines(t *testing.T) {
	ds := SUSYLike(300, 3)
	train, test := ds.Split(0.8, 3)

	fk, err := FitFalkon(FalkonConfig{
		Kernel: GaussianKernel(4), Centers: 80, Lambda: 1e-6, Seed: 3,
	}, train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	if e := ClassificationError(fk.Model.Predict(test.X), test.Labels); e > 0.4 {
		t.Fatalf("falkon error %v implausibly high", e)
	}

	sv, err := TrainSVM(SVMConfig{Kernel: GaussianKernel(4), C: 10, Seed: 3},
		train.X, train.Labels, train.Classes)
	if err != nil {
		t.Fatal(err)
	}
	pred := sv.Model.PredictLabels(test.X)
	if len(pred) != test.N() {
		t.Fatal("svm prediction count wrong")
	}
}

func TestPublicDatasetGenerators(t *testing.T) {
	for _, ds := range []*Dataset{
		MNISTLike(20, 1), CIFAR10Like(20, 1), SVHNLike(20, 1),
		TIMITLike(48, 1), SUSYLike(20, 1), ImageNetFeaturesLike(50, 1),
	} {
		if ds.N() == 0 || ds.Dim() == 0 || ds.Classes < 2 {
			t.Fatalf("%s: degenerate dataset", ds.Name)
		}
	}
	custom := GenerateDataset(GenConfig{Name: "c", N: 30, Dim: 5, Classes: 3, Seed: 1})
	if custom.LabelDim() != 3 {
		t.Fatal("custom dataset label dim wrong")
	}
}
