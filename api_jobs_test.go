package eigenpro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestTrainServeLoopHTTP exercises the acceptance criterion end to end
// through the public surface: a model trained via POST /train on the
// combined handler is servable via POST /v1/predict on the same server
// with no manual registration step.
func TestTrainServeLoopHTTP(t *testing.T) {
	srv := NewServer(ServerConfig{})
	defer srv.Close()
	mgr := NewTrainingManager(TrainingConfig{Workers: 2, Registrar: srv})
	defer mgr.Close()
	ts := httptest.NewServer(NewTrainServeHandler(srv, mgr))
	defer ts.Close()

	// Submit training over HTTP.
	body := `{"name":"susy-http","dataset":"susy","n":300,"epochs":3,"s":64,"sigma":3,"seed":4}`
	resp, err := http.Post(ts.URL+"/train", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var job TrainingJob
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("POST /train: %d %+v", resp.StatusCode, job)
	}

	// Watch the job over HTTP until it completes.
	deadline := time.Now().Add(120 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur TrainingJob
		if err := json.NewDecoder(r.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if cur.State == JobDone {
			if !cur.Servable {
				t.Fatalf("done but not servable: %+v", cur)
			}
			break
		}
		if cur.State == JobFailed || cur.State == JobCancelled {
			t.Fatalf("job ended %q (%s)", cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Predict against the freshly trained model on the SAME server.
	query := SUSYLike(4, 9).X.RowView(0)
	pb, _ := json.Marshal(map[string]any{"model": "susy-http", "x": query})
	pr, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(pb))
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/predict after train: %d", pr.StatusCode)
	}
	var pred struct {
		Y      [][]float64 `json:"y"`
		Labels []int       `json:"labels"`
	}
	if err := json.NewDecoder(pr.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	if len(pred.Y) != 1 || len(pred.Y[0]) != 2 || len(pred.Labels) != 1 {
		t.Fatalf("prediction shape %+v", pred)
	}

	// The jobs listing is visible on the combined mux too.
	lr, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Body.Close()
	var listing struct {
		Jobs []TrainingJob `json:"jobs"`
	}
	if err := json.NewDecoder(lr.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 || listing.Jobs[0].Name != "susy-http" {
		t.Fatalf("listing %+v", listing)
	}
}

// TestSubmitTrainingPublicAPI exercises the library-level loop:
// SubmitTraining → JobStatus → Wait → served prediction, plus cancel and
// bit-exact resume through the public Trainer surface.
func TestSubmitTrainingPublicAPI(t *testing.T) {
	srv := NewServer(ServerConfig{})
	defer srv.Close()
	mgr := NewTrainingManager(TrainingConfig{Workers: 1, Registrar: srv})
	defer mgr.Close()

	ds := SUSYLike(240, 5)
	spec := TrainingSpec{
		Name: "susy",
		Config: Config{
			Kernel: GaussianKernel(3),
			Epochs: 3,
			S:      64,
			Seed:   5,
		},
		X: ds.X,
		Y: ds.Y,
	}
	id, err := SubmitTraining(mgr, spec)
	if err != nil {
		t.Fatal(err)
	}
	if info, ok := JobStatus(mgr, id); !ok || info.Name != "susy" {
		t.Fatalf("JobStatus: %v %+v", ok, info)
	}
	info, err := mgr.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != JobDone || !info.Servable {
		t.Fatalf("job %+v", info)
	}
	if _, ok := srv.Model("susy"); !ok {
		t.Fatal("trained model not auto-registered")
	}

	// Public checkpoint surface: step two epochs, checkpoint, resume,
	// finish, and match the job-trained coefficients bit for bit.
	tr, err := NewTrainer(spec.Config, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		if _, err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tr.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeTrainer(&buf, Config{}, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	for !resumed.Done() {
		if _, err := resumed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := mgr.Model(id)
	got := resumed.Result().Model
	for i, v := range got.Alpha.Data {
		if v != want.Alpha.Data[i] {
			t.Fatalf("coefficient %d differs: %v != %v", i, v, want.Alpha.Data[i])
		}
	}
}

// TestShardedTrainerPublicAPI smoke-tests the sharded checkpoint surface.
func TestShardedTrainerPublicAPI(t *testing.T) {
	ds := SUSYLike(160, 7)
	cfg := ShardedConfig{Kernel: GaussianKernel(3), Workers: 2, Epochs: 2, S: 48, Seed: 7}
	tr, err := NewShardedTrainer(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeShardedTrainer(&buf, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	for !resumed.Done() {
		if _, err := resumed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := TrainSharded(cfg, ds.X, ds.Y)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range resumed.Result().Model.Alpha.Data {
		if v != ref.Model.Alpha.Data[i] {
			t.Fatal(fmt.Sprintf("sharded coefficient %d differs", i))
		}
	}
}
